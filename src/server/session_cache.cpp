#include "server/session_cache.hpp"

#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "netlist/bench_parser.hpp"
#include "netlist/verilog_parser.hpp"
#include "obs/metrics.hpp"
#include "sim/sim2.hpp"
#include "store/format.hpp"
#include "workload/textio.hpp"

namespace mdd::server {

namespace {

struct SessionMetrics {
  obs::Counter& hits = obs::registry().counter("sessions.hits");
  obs::Counter& misses = obs::registry().counter("sessions.misses");
  obs::Counter& evictions = obs::registry().counter("sessions.evictions");
  obs::Counter& load_failures =
      obs::registry().counter("sessions.load_failures");
  obs::Gauge& bytes = obs::registry().gauge("sessions.bytes");
  obs::Gauge& entries = obs::registry().gauge("sessions.entries");
  /// Store files that existed but could not be attached (corrupt,
  /// truncated, or built for different content) — the session loaded
  /// fine, it just runs storeless.
  obs::Counter& store_attach_failures =
      obs::registry().counter("store.attach_failures");
  obs::Counter& store_attached =
      obs::registry().counter("store.attached");
};

SessionMetrics& session_metrics() {
  static SessionMetrics m;
  return m;
}

/// The spill file may grow past the composite memo's RAM budget by this
/// factor before further puts are declined — disk is cheap relative to
/// re-propagating a multiplet, but not unbounded.
constexpr std::size_t kSpillDiskFactor = 4;

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Netlist load_netlist_file(const std::string& path) {
  if (ends_with(path, ".bench")) return parse_bench_file(path).netlist;
  if (ends_with(path, ".v")) {
    static const CellLibrary lib;
    return parse_verilog_file(path, lib).netlist;
  }
  throw std::runtime_error("unknown netlist extension (want .bench or .v): " +
                           path);
}

/// Looks for a prebuilt dictionary store matching the session's content
/// hashes. An absent file is the normal case and silent; a present but
/// unusable one (corrupt, truncated, or built for different content) is
/// logged and counted, never fatal — the session simply runs storeless.
std::shared_ptr<const store::DictReader> try_attach_store(
    const std::string& store_dir, const Netlist& netlist,
    const PatternSet& patterns) {
  if (store_dir.empty()) return nullptr;
  const std::string path =
      store::store_path_for(store_dir, netlist, patterns);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return nullptr;
  try {
    auto dict = store::DictReader::open(path);
    dict->validate_for(netlist, patterns);
    session_metrics().store_attached.inc();
    return dict;
  } catch (const std::exception& e) {
    session_metrics().store_attach_failures.inc();
    std::cerr << "openmdd: ignoring dictionary store " << path << ": "
              << e.what() << "\n";
    return nullptr;
  }
}

std::shared_ptr<const Session> load_session(const std::string& netlist_path,
                                            const std::string& patterns_path,
                                            std::size_t memo_bytes,
                                            std::size_t composite_bytes,
                                            const std::string& store_dir) {
  auto session = std::make_shared<Session>();
  session->netlist = load_netlist_file(netlist_path);
  session->patterns = read_patterns_file(patterns_path);
  if (session->patterns.n_signals() != session->netlist.n_inputs())
    throw std::runtime_error(
        "pattern width (" + std::to_string(session->patterns.n_signals()) +
        ") does not match netlist inputs (" +
        std::to_string(session->netlist.n_inputs()) + "): " + patterns_path);
  session->good = simulate(session->netlist, session->patterns);
  session->baseline = SingleFaultPropagator::make_baseline(session->netlist,
                                                           session->patterns);
  // The memo learns the session's full window so truncated-window lookups
  // can be served by restricting full-window entries.
  session->memo = std::make_unique<SignatureMemo>(
      memo_bytes, session->patterns.n_patterns());
  session->traces = std::make_unique<TraceMemo>();
  session->composites = std::make_unique<CompositeMemo>(composite_bytes);
  session->dict =
      try_attach_store(store_dir, session->netlist, session->patterns);
  if (session->dict != nullptr) session->memo->set_store(session->dict);
  if (!store_dir.empty()) {
    // Journal + spill sidecars exist whenever a store directory does —
    // also when the .mdds itself is still absent, so the very first
    // served pass already feeds the first `dict refresh`. Both are
    // fail-open: any problem detaches them, the session loads fine.
    const std::uint64_t nh = store::netlist_content_hash(session->netlist);
    const std::uint64_t ph = store::patterns_content_hash(session->patterns);
    session->journal = std::make_shared<store::FaultJournal>(
        store::journal_path_for(store_dir, session->netlist,
                                session->patterns),
        nh, ph);
    session->memo->set_journal(session->journal);
    session->spill = std::make_shared<store::CompositeSpill>(
        store::spill_path_for(store_dir, session->netlist, session->patterns),
        nh, ph, session->patterns.n_patterns(), session->netlist.n_outputs(),
        composite_bytes * kSpillDiskFactor);
    session->composites->set_spill(session->spill);
  }
  session->approx_bytes = approx_session_bytes(*session);
  return session;
}

}  // namespace

std::size_t approx_session_bytes(const Session& session) {
  const auto matrix_bytes = [](const PatternSet& ps) {
    return ps.n_blocks() * ps.n_signals() * sizeof(Word);
  };
  // Netlist internals (gate records, fanin/fanout adjacency, name table)
  // are approximated by a per-net constant.
  std::size_t baseline_bytes = 0;
  if (session.baseline != nullptr)
    baseline_bytes = session.baseline->values.size() *
                         session.netlist.n_nets() * sizeof(Word) +
                     matrix_bytes(session.baseline->good);
  return matrix_bytes(session.patterns) + matrix_bytes(session.good) +
         baseline_bytes + session.netlist.n_nets() * 160;
}

SessionCache::SessionCache(std::size_t max_bytes, std::size_t memo_bytes,
                           std::size_t composite_bytes,
                           std::string store_dir)
    : max_bytes_(max_bytes),
      memo_bytes_(memo_bytes),
      composite_bytes_(composite_bytes),
      store_dir_(std::move(store_dir)) {}

void SessionCache::evict_over_budget_locked() {
  // Never evict the just-admitted MRU head: an over-budget single session
  // still serves its requests, it just evicts everything else. Pinned
  // keys (an in-flight batch) are skipped — their memos stay resident no
  // matter how much other traffic loads.
  auto it = lru_.end();
  while (bytes_ > max_bytes_ && lru_.size() > 1 && it != lru_.begin()) {
    --it;
    if (it == lru_.begin()) break;  // MRU head survives
    if (auto p = pins_.find(*it); p != pins_.end() && p->second > 0)
      continue;
    const Key victim = *it;
    it = lru_.erase(it);
    lru_pos_.erase(victim);
    auto ent = entries_.find(victim);
    if (ent != entries_.end()) {
      if (ent->second->session)
        bytes_ -= ent->second->session->approx_bytes;
      entries_.erase(ent);
    }
    ++evictions_;
    session_metrics().evictions.inc();
  }
  session_metrics().bytes.set(static_cast<std::int64_t>(bytes_));
  session_metrics().entries.set(static_cast<std::int64_t>(lru_.size()));
}

SessionCache::Pin SessionCache::pin(const std::string& netlist_path,
                                    const std::string& patterns_path) {
  Key key = netlist_path + '\n' + patterns_path;
  std::lock_guard<std::mutex> lock(mutex_);
  ++pins_[key];
  return Pin(this, std::move(key));
}

void SessionCache::Pin::release() {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(cache_->mutex_);
  auto it = cache_->pins_.find(key_);
  if (it != cache_->pins_.end() && --it->second == 0)
    cache_->pins_.erase(it);
  cache_ = nullptr;
}

std::shared_ptr<const Session> SessionCache::get(
    const std::string& netlist_path, const std::string& patterns_path,
    bool* was_hit) {
  const Key key = netlist_path + '\n' + patterns_path;
  for (;;) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        entry = std::make_shared<Entry>();
        entries_.emplace(key, entry);
      } else {
        entry = it->second;
      }
    }

    // The slow path (parse + simulate) runs under the per-entry mutex
    // only — other circuits load concurrently, same-circuit callers wait
    // here and then take the hit branch.
    std::lock_guard<std::mutex> load_lock(entry->load_mutex);
    if (entry->session) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++hits_;
      session_metrics().hits.inc();
      auto pos = lru_pos_.find(key);
      if (pos != lru_pos_.end())
        lru_.splice(lru_.begin(), lru_, pos->second);
      if (was_hit != nullptr) *was_hit = true;
      return entry->session;
    }

    {
      // The creator may have failed (entry orphaned) — retry from scratch
      // so this caller performs its own load attempt.
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end() || it->second != entry) continue;
    }

    try {
      entry->session = load_session(netlist_path, patterns_path, memo_bytes_,
                                    composite_bytes_, store_dir_);
    } catch (...) {
      session_metrics().load_failures.inc();
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
      throw;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    session_metrics().misses.inc();
    bytes_ += entry->session->approx_bytes;
    lru_.push_front(key);
    lru_pos_[key] = lru_.begin();
    evict_over_budget_locked();
    if (was_hit != nullptr) *was_hit = false;
    return entry->session;
  }
}

SessionCache::AccountingCheck SessionCache::check_accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AccountingCheck out;
  out.accounted = bytes_;
  const auto fail = [&](std::string what) {
    if (out.ok) {
      out.ok = false;
      out.detail = std::move(what);
    }
  };
  std::size_t n_lru = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it, ++n_lru) {
    const Key& key = *it;
    const auto pos = lru_pos_.find(key);
    if (pos == lru_pos_.end() || pos->second != it) {
      fail("lru_pos_ does not point at the LRU node for '" + key + "'");
      continue;
    }
    const auto ent = entries_.find(key);
    if (ent == entries_.end() || ent->second->session == nullptr) {
      fail("LRU key '" + key + "' has no loaded entry");
      continue;
    }
    out.recomputed += ent->second->session->approx_bytes;
  }
  if (lru_pos_.size() != n_lru)
    fail("lru_pos_ holds keys the LRU list does not");
  for (const auto& [key, count] : pins_)
    if (count == 0) fail("pin count for '" + key + "' decayed to zero");
  if (out.recomputed != out.accounted)
    fail("accounted bytes " + std::to_string(out.accounted) +
         " != recomputed " + std::to_string(out.recomputed));
  return out;
}

MemoLayerStats SessionCache::layer_stats() const {
  MemoLayerStats out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    const std::shared_ptr<const Session> session = entry->session;
    if (session == nullptr) continue;  // still loading
    if (session->memo) {
      const SignatureMemoStats s = session->memo->stats();
      out.signature.hits += s.hits;
      out.signature.misses += s.misses;
      out.signature.evictions += s.evictions;
      out.signature.entries += s.entries;
      out.signature.approx_bytes += s.approx_bytes;
      out.signature.store_hits += s.store_hits;
      out.signature.store_misses += s.store_misses;
      out.signature.window_restricts += s.window_restricts;
    }
    if (session->traces) {
      const TraceMemoStats s = session->traces->stats();
      out.traces.hits += s.hits;
      out.traces.misses += s.misses;
      out.traces.evictions += s.evictions;
      out.traces.entries += s.entries;
      out.traces.approx_bytes += s.approx_bytes;
    }
    if (session->composites) {
      const CompositeMemoStats s = session->composites->stats();
      out.composites.hits += s.hits;
      out.composites.misses += s.misses;
      out.composites.evictions += s.evictions;
      out.composites.entries += s.entries;
      out.composites.approx_bytes += s.approx_bytes;
      out.composites.spill_hits += s.spill_hits;
      out.composites.spill_misses += s.spill_misses;
    }
    // Account the reader the memo is serving from NOW — a background
    // refresh may have swapped a newer one in since load time.
    const std::shared_ptr<const store::DictReader> dict =
        session->memo ? session->memo->store_reader() : session->dict;
    if (dict != nullptr) {
      ++out.store_sessions;
      out.store_entries += dict->n_entries();
      out.store_bytes_mapped += dict->bytes_mapped();
    }
    if (session->journal != nullptr && !session->journal->detached()) {
      ++out.journal_sessions;
      out.journal_pending += session->journal->pending();
    }
    if (session->spill != nullptr && !session->spill->detached()) {
      const store::SpillStats s = session->spill->stats();
      ++out.spill_sessions;
      out.spill_entries += s.entries;
      out.spill_bytes += s.bytes;
    }
  }
  return out;
}

std::vector<std::shared_ptr<const Session>> SessionCache::resident_sessions()
    const {
  std::vector<std::shared_ptr<const Session>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_)
    if (entry->session != nullptr) out.push_back(entry->session);
  return out;
}

SessionCacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.max_bytes = max_bytes_;
  return s;
}

}  // namespace mdd::server
