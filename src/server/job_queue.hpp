// openmdd — bounded MPMC job queue with explicit backpressure.
//
// The daemon's admission point: producers (connection readers) try_push
// and get an immediate `false` when the queue is full — the protocol
// layer turns that into an `overloaded` response instead of letting
// latency grow without bound. Consumers (the worker pool) block in pop()
// until a job or shutdown arrives. close() wakes everyone; pops drain the
// remaining jobs first, then return nullopt.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mdd::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Non-blocking admission; false = full or closed (backpressure — the
  /// caller owns the reject response). `item` is moved from only on
  /// success, so a rejected job is still usable for the reject reply.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        ++n_rejected_;
        return false;
      }
      items_.push_back(std::move(item));
      ++n_accepted_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND
  /// drained; nullopt means "no more work, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission; queued jobs still drain through pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::size_t high_water = 0;
    std::size_t depth = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return Stats{n_accepted_, n_rejected_, high_water_, items_.size(),
                 capacity_};
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t n_accepted_ = 0;
  std::uint64_t n_rejected_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mdd::server
