// openmdd — machine-readable diagnosis result schema.
//
// ONE serializer for both delivery paths: `openmdd diagnose --format
// json` and the `openmdd_serve` daemon emit a DiagnosisReport through
// these functions, so batch and served results are byte-diffable (the CI
// smoke job holds them to that). Wall-clock timings are deliberately NOT
// part of a report object — they are nondeterministic and live in the
// surrounding envelope (`timings_ms`), keeping the `reports` value itself
// reproducible at any thread count.
#pragma once

#include <span>

#include "diag/diagnosis.hpp"
#include "server/json.hpp"

namespace mdd::server {

/// Schema:
///   {"method":"multiplet","explains_all":true,"timed_out":false,
///    "n_candidates_scored":1234,
///    "suspects":[{"fault":"sa0 n16","score":30.0,
///                 "tfsf":3,"tfsp":0,"tpsf":0,
///                 "alternates":["sa1 g3.1"]}],
///    "n_slat_patterns":0,"n_nonslat_patterns":0}   // slat method only
Json report_to_json(const DiagnosisReport& report, const Netlist& netlist);

/// Array of report objects, in the order given.
Json reports_to_json(std::span<const DiagnosisReport> reports,
                     const Netlist& netlist);

}  // namespace mdd::server
