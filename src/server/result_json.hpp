// openmdd — machine-readable diagnosis result schema.
//
// ONE serializer for both delivery paths: `openmdd diagnose --format
// json` and the `openmdd_serve` daemon emit a DiagnosisReport through
// these functions, so batch and served results are byte-diffable (the CI
// smoke job holds them to that). Wall-clock timings are deliberately NOT
// part of a report object — they are nondeterministic and live in the
// surrounding envelope (`timings_ms`), keeping the `reports` value itself
// reproducible at any thread count.
#pragma once

#include <span>

#include "diag/diagnosis.hpp"
#include "diag/volume.hpp"
#include "server/json.hpp"

namespace mdd::server {

/// Schema:
///   {"method":"multiplet","explains_all":true,"timed_out":false,
///    "n_candidates_scored":1234,
///    "suspects":[{"fault":"sa0 n16","score":30.0,
///                 "tfsf":3,"tfsp":0,"tpsf":0,
///                 "alternates":["sa1 g3.1"]}],
///    "n_slat_patterns":0,"n_nonslat_patterns":0}   // slat method only
Json report_to_json(const DiagnosisReport& report, const Netlist& netlist);

/// Array of report objects, in the order given.
Json reports_to_json(std::span<const DiagnosisReport> reports,
                     const Netlist& netlist);

/// Cross-datalog volume summary (diagnose_batch responses and the CLI
/// batch mode share it, like report_to_json). Schema:
///   {"n_datalogs":128,"n_diagnosed":126,"n_failed":2,"n_explained":119,
///    "n_timed_out":0,"n_systematic_datalogs":88,"n_random_datalogs":30,
///    "n_distinct_candidates":241,
///    "recurrences":[{"fault":"sa0 n16","n_datalogs":41,"n_rank1":37,
///                    "total_score":1201.5,"best_score":44.0,
///                    "systematic":true}],
///    "net_hits":[{"net":"n16","count":41}],
///    "failing_pattern_hist":[{"patterns":"3-4","count":17}]}
Json volume_to_json(const VolumeSummary& summary, const Netlist& netlist);

}  // namespace mdd::server
