// openmdd — Prometheus metrics endpoint.
//
// A deliberately tiny HTTP/1.0 responder on its own loopback socket and
// thread, separate from the JSONL protocol port so scrapers need no
// knowledge of the diagnosis protocol (and a wedged diagnosis queue
// never blocks a scrape). Every request, whatever the path, is answered
// with the text exposition (format 0.0.4) of the process-wide metric
// registry — or of a caller-supplied body provider (the shard router
// aggregates its workers' expositions this way) — and the connection is
// closed: the subset of HTTP that `curl` and a Prometheus scraper
// actually need.
//
// Robustness: the responder is single-threaded, so one hostile client
// must not wedge scraping for everyone. A client that connects but never
// sends its request is cut off after a poll deadline, and a client that
// stops reading a multi-KB exposition mid-send is abandoned once the
// socket buffer stays full past the same deadline — both paths counted,
// never blocking stop().
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>

namespace mdd::server {

/// Serves the obs registry over HTTP until stop() — loopback only, like
/// the protocol socket (unauthenticated by design).
class MetricsHttpServer {
 public:
  /// Produces the exposition body for one scrape. Called on the serving
  /// thread; exceptions degrade to an empty body (scrape still answered).
  using BodyProvider = std::function<std::string()>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving
  /// thread. Reports the bound port through `on_listening`. A null
  /// `body` serves the process-wide registry exposition. Throws
  /// std::runtime_error if the socket cannot be bound.
  MetricsHttpServer(std::uint16_t port, std::ostream& log,
                    const std::function<void(std::uint16_t)>& on_listening = {},
                    BodyProvider body = {});
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Per-connection poll deadline for both the request read and a
  /// stalled response write, milliseconds. Exposed for tests; set before
  /// traffic.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  /// Stops accepting and joins the serving thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void run();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::ostream& log_;
  BodyProvider body_;
  int io_timeout_ms_ = 2000;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace mdd::server
