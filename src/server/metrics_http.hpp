// openmdd — Prometheus metrics endpoint.
//
// A deliberately tiny HTTP/1.0 responder on its own loopback socket and
// thread, separate from the JSONL protocol port so scrapers need no
// knowledge of the diagnosis protocol (and a wedged diagnosis queue
// never blocks a scrape). Every request, whatever the path, is answered
// with the text exposition (format 0.0.4) of the process-wide metric
// registry and the connection is closed — the subset of HTTP that
// `curl` and a Prometheus scraper actually need.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <thread>

namespace mdd::server {

/// Serves the obs registry over HTTP until stop() — loopback only, like
/// the protocol socket (unauthenticated by design).
class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving
  /// thread. Reports the bound port through `on_listening`. Throws
  /// std::runtime_error if the socket cannot be bound.
  MetricsHttpServer(std::uint16_t port, std::ostream& log,
                    const std::function<void(std::uint16_t)>& on_listening = {});
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Stops accepting and joins the serving thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void run();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::ostream& log_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace mdd::server
