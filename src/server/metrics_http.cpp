#include "server/metrics_http.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

void send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // scraper went away; nothing to salvage
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(
    std::uint16_t port, std::ostream& log,
    const std::function<void(std::uint16_t)>& on_listening)
    : log_(log) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("metrics socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics bind/listen: " + what);
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  log_ << "openmdd_serve: metrics on http://127.0.0.1:" << port_
       << "/metrics\n";
  log_.flush();
  if (on_listening) on_listening(port_);
  thread_ = std::thread([this] { run(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::run() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    // Read (and discard) the request head so the client sees its request
    // consumed; one read is plenty for a scraper's GET line + headers.
    char head[2048];
    const ssize_t r = ::recv(fd, head, sizeof head, 0);
    (void)r;
    const std::string body =
        obs::render_prometheus(obs::registry().snapshot());
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n"
        "\r\n" +
        body;
    send_all(fd, response.data(), response.size());
    ::close(fd);
  }
}

}  // namespace mdd::server
