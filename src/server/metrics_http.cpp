#include "server/metrics_http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

struct ScrapeMetrics {
  obs::Counter& scrapes = obs::registry().counter("metrics.scrapes");
  /// Connections dropped for misbehaving: never sent a request within
  /// the poll deadline, or stopped reading the response mid-send.
  obs::Counter& slow_clients =
      obs::registry().counter("metrics.slow_clients");
};

ScrapeMetrics& scrape_metrics() {
  static ScrapeMetrics m;
  return m;
}

/// Returns false if the client stalled (send buffer full past the
/// deadline) or vanished; a short write always resumes at the tail, so a
/// multi-KB exposition is never silently truncated for a healthy reader.
bool send_all(int fd, const char* data, std::size_t n, int timeout_ms) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd, POLLOUT, 0};
        const int ready = ::poll(&p, 1, timeout_ms);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) return false;  // reader stalled past the deadline
        continue;
      }
      return false;  // scraper went away; nothing to salvage
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(
    std::uint16_t port, std::ostream& log,
    const std::function<void(std::uint16_t)>& on_listening, BodyProvider body)
    : log_(log), body_(std::move(body)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("metrics socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics bind/listen: " + what);
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  log_ << "openmdd_serve: metrics on http://127.0.0.1:" << port_
       << "/metrics\n";
  log_.flush();
  if (on_listening) on_listening(port_);
  thread_ = std::thread([this] { run(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::run() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    // Wait (bounded) for the request head, then read and discard it so
    // the client sees its request consumed; one read is plenty for a
    // scraper's GET line + headers. The responder is single-threaded, so
    // a client that connects and sends nothing must NOT hold the line
    // open forever — it is cut off at the poll deadline and the next
    // scraper is served.
    pollfd p{fd, POLLIN, 0};
    int ready;
    do {
      ready = ::poll(&p, 1, io_timeout_ms_);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      scrape_metrics().slow_clients.inc();
      ::close(fd);
      continue;
    }
    char head[2048];
    const ssize_t r = ::recv(fd, head, sizeof head, 0);
    (void)r;
    std::string body;
    try {
      body = body_ ? body_()
                   : obs::render_prometheus(obs::registry().snapshot());
    } catch (const std::exception&) {
      body.clear();  // answer the scrape; a broken provider is not fatal
    }
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n"
        "\r\n" +
        body;
    if (send_all(fd, response.data(), response.size(), io_timeout_ms_))
      scrape_metrics().scrapes.inc();
    else
      scrape_metrics().slow_clients.inc();
    ::close(fd);
  }
}

}  // namespace mdd::server
