#include "server/result_json.hpp"

namespace mdd::server {

Json report_to_json(const DiagnosisReport& report, const Netlist& netlist) {
  Json j;
  j.set("method", report.method);
  j.set("explains_all", report.explains_all);
  j.set("timed_out", report.timed_out);
  j.set("n_candidates_scored", report.n_candidates_scored);
  JsonArray suspects;
  suspects.reserve(report.suspects.size());
  for (const ScoredCandidate& sc : report.suspects) {
    Json s;
    s.set("fault", to_string(sc.fault, netlist));
    s.set("score", sc.score);
    s.set("tfsf", sc.counts.tfsf);
    s.set("tfsp", sc.counts.tfsp);
    s.set("tpsf", sc.counts.tpsf);
    JsonArray alternates;
    alternates.reserve(sc.alternates.size());
    for (const Fault& alt : sc.alternates)
      alternates.emplace_back(to_string(alt, netlist));
    s.set("alternates", std::move(alternates));
    suspects.push_back(std::move(s));
  }
  j.set("suspects", std::move(suspects));
  if (report.method == "slat") {
    j.set("n_slat_patterns", report.n_slat_patterns);
    j.set("n_nonslat_patterns", report.n_nonslat_patterns);
  }
  return j;
}

Json reports_to_json(std::span<const DiagnosisReport> reports,
                     const Netlist& netlist) {
  JsonArray arr;
  arr.reserve(reports.size());
  for (const DiagnosisReport& r : reports)
    arr.push_back(report_to_json(r, netlist));
  return Json(std::move(arr));
}

Json volume_to_json(const VolumeSummary& summary, const Netlist& netlist) {
  Json j;
  j.set("n_datalogs", summary.n_datalogs);
  j.set("n_diagnosed", summary.n_diagnosed);
  j.set("n_failed", summary.n_failed);
  j.set("n_explained", summary.n_explained);
  j.set("n_timed_out", summary.n_timed_out);
  j.set("n_systematic_datalogs", summary.n_systematic_datalogs);
  j.set("n_random_datalogs", summary.n_random_datalogs);
  j.set("n_distinct_candidates", summary.n_distinct_candidates);
  JsonArray recurrences;
  recurrences.reserve(summary.recurrences.size());
  for (const CandidateRecurrence& r : summary.recurrences) {
    Json rec;
    rec.set("fault", to_string(r.fault, netlist));
    rec.set("n_datalogs", r.n_datalogs);
    rec.set("n_rank1", r.n_rank1);
    rec.set("total_score", r.total_score);
    rec.set("best_score", r.best_score);
    rec.set("systematic", r.systematic);
    recurrences.push_back(std::move(rec));
  }
  j.set("recurrences", std::move(recurrences));
  JsonArray net_hits;
  net_hits.reserve(summary.net_hits.size());
  for (const auto& [net, count] : summary.net_hits) {
    Json hit;
    hit.set("net", netlist.net_name(net));
    hit.set("count", count);
    net_hits.push_back(std::move(hit));
  }
  j.set("net_hits", std::move(net_hits));
  JsonArray hist;
  hist.reserve(summary.failing_pattern_hist.size());
  for (const VolumeBucket& b : summary.failing_pattern_hist) {
    Json bucket;
    bucket.set("patterns", b.label);
    bucket.set("count", b.count);
    hist.push_back(std::move(bucket));
  }
  j.set("failing_pattern_hist", std::move(hist));
  return j;
}

}  // namespace mdd::server
