#include "server/result_json.hpp"

namespace mdd::server {

Json report_to_json(const DiagnosisReport& report, const Netlist& netlist) {
  Json j;
  j.set("method", report.method);
  j.set("explains_all", report.explains_all);
  j.set("timed_out", report.timed_out);
  j.set("n_candidates_scored", report.n_candidates_scored);
  JsonArray suspects;
  suspects.reserve(report.suspects.size());
  for (const ScoredCandidate& sc : report.suspects) {
    Json s;
    s.set("fault", to_string(sc.fault, netlist));
    s.set("score", sc.score);
    s.set("tfsf", sc.counts.tfsf);
    s.set("tfsp", sc.counts.tfsp);
    s.set("tpsf", sc.counts.tpsf);
    JsonArray alternates;
    alternates.reserve(sc.alternates.size());
    for (const Fault& alt : sc.alternates)
      alternates.emplace_back(to_string(alt, netlist));
    s.set("alternates", std::move(alternates));
    suspects.push_back(std::move(s));
  }
  j.set("suspects", std::move(suspects));
  if (report.method == "slat") {
    j.set("n_slat_patterns", report.n_slat_patterns);
    j.set("n_nonslat_patterns", report.n_nonslat_patterns);
  }
  return j;
}

Json reports_to_json(std::span<const DiagnosisReport> reports,
                     const Netlist& netlist) {
  JsonArray arr;
  arr.reserve(reports.size());
  for (const DiagnosisReport& r : reports)
    arr.push_back(report_to_json(r, netlist));
  return Json(std::move(arr));
}

}  // namespace mdd::server
