#include "server/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mdd::server {

namespace {

const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  // Integral values in the exact-double range print as integers — ids,
  // counts, and match statistics stay diff-friendly.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    const auto [p, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<long long>(d));
    out.append(buf, p);
    return;
  }
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, p);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char t = peek();
      ++pos_;
      if (t == '}') return Json(std::move(obj));
      if (t != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char t = peek();
      ++pos_;
      if (t == ']') return Json(std::move(arr));
      if (t != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::string_view("0123456789+-.eE").find(text_[pos_]) !=
            std::string_view::npos))
      ++pos_;
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc{} || p != text_.data() + pos_) {
      pos_ = start;
      fail("bad number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool(bool dflt) const {
  const bool* b = std::get_if<bool>(&v_);
  return b != nullptr ? *b : dflt;
}

double Json::as_number(double dflt) const {
  const double* d = std::get_if<double>(&v_);
  return d != nullptr ? *d : dflt;
}

std::int64_t Json::as_int(std::int64_t dflt) const {
  const double* d = std::get_if<double>(&v_);
  return d != nullptr ? static_cast<std::int64_t>(*d) : dflt;
}

const std::string& Json::as_string() const {
  const std::string* s = std::get_if<std::string>(&v_);
  return s != nullptr ? *s : kEmptyString;
}

const JsonArray& Json::as_array() const {
  const JsonArray* a = std::get_if<JsonArray>(&v_);
  return a != nullptr ? *a : kEmptyArray;
}

const JsonObject& Json::as_object() const {
  const JsonObject* o = std::get_if<JsonObject>(&v_);
  return o != nullptr ? *o : kEmptyObject;
}

const Json* Json::find(std::string_view key) const {
  const JsonObject* o = std::get_if<JsonObject>(&v_);
  if (o == nullptr) return nullptr;
  for (const auto& [k, v] : *o)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::get_string(std::string_view key, std::string dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(dflt);
}

double Json::get_number(std::string_view key, double dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : dflt;
}

bool Json::get_bool(std::string_view key, bool dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : dflt;
}

void Json::set(std::string key, Json value) {
  if (is_null()) v_ = JsonObject{};
  JsonObject* o = std::get_if<JsonObject>(&v_);
  if (o == nullptr) return;
  for (auto& [k, v] : *o) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  o->emplace_back(std::move(key), std::move(value));
}

void Json::dump(std::string& out) const {
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += std::get<bool>(v_) ? "true" : "false"; break;
    case Type::Number: dump_number(std::get<double>(v_), out); break;
    case Type::String: dump_string(std::get<std::string>(v_), out); break;
    case Type::Array: {
      out.push_back('[');
      const JsonArray& a = std::get<JsonArray>(v_);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out.push_back(',');
        a[i].dump(out);
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      const JsonObject& o = std::get<JsonObject>(v_);
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) out.push_back(',');
        dump_string(o[i].first, out);
        out.push_back(':');
        o[i].second.dump(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump(out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace mdd::server
