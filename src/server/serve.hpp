// openmdd — transports for the diagnosis daemon.
//
// The service itself is transport-free (JSON in, JSON out); this layer
// frames it as line-delimited JSON over three transports:
//
//  * serve_stdio — one request object per stdin line, one response object
//    per stdout line. Responses are written as they complete, so they can
//    arrive out of order relative to requests — clients match on `id`.
//  * serve_tcp — same framing on a loopback-only TCP socket, one reader
//    thread per connection, all feeding the shared service queue.
//  * serve_uds — same framing on a Unix-domain stream socket; this is the
//    shard-worker transport behind the router (server/router.hpp), kept
//    off TCP so a box full of workers burns no ports and gets filesystem
//    permissions for free.
//
// All loops understand {"op":"shutdown"}: drain outstanding work,
// acknowledge, and return. The matching blocking clients (LineClient and
// its TCP/UDS flavors) are used by openmdd_loadgen, the router, and the
// smoke tests.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "server/service.hpp"

namespace mdd::server {

/// Serves until EOF or a shutdown op; returns 0 on clean exit.
int serve_stdio(DiagnosisService& service, std::istream& in,
                std::ostream& out);

/// Binds 127.0.0.1:`port` (0 = ephemeral), reports the bound port through
/// `on_listening`, serves until a shutdown op. Returns 0 on clean exit,
/// nonzero on socket errors. Loopback only by design — the daemon speaks
/// an unauthenticated protocol.
int serve_tcp(DiagnosisService& service, std::uint16_t port,
              std::ostream& log,
              const std::function<void(std::uint16_t)>& on_listening = {});

/// Binds a Unix-domain stream socket at `path` (an existing socket file
/// is unlinked first — workers respawn onto the same address), reports
/// readiness through `on_listening`, serves until a shutdown op. Returns
/// 0 on clean exit, nonzero on socket errors.
int serve_uds(DiagnosisService& service, const std::string& path,
              std::ostream& log,
              const std::function<void(const std::string&)>& on_listening = {});

/// Connects a blocking stream socket to the Unix-domain address `path`,
/// retrying for up to `connect_timeout_ms` (worker startup races).
/// Returns the connected fd (CLOEXEC); throws std::runtime_error on
/// timeout.
int connect_uds_fd(const std::string& path, int connect_timeout_ms = 5000);

/// Same, for 127.0.0.1:`port` TCP.
int connect_tcp_fd(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms = 5000);

/// Blocking JSONL client over an adopted stream socket: one line out, one
/// line in. Throws std::runtime_error on IO failure.
class LineClient {
 public:
  /// Adopts `fd` (closed by the destructor).
  explicit LineClient(int fd) : fd_(fd) {}
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends one request line and blocks for one response line.
  std::string roundtrip(const std::string& line);

  void send_line(const std::string& line);
  std::string recv_line();
  /// recv_line with a poll deadline: nullopt if no complete line arrived
  /// within `timeout_ms` (the connection stays usable); throws on EOF or
  /// socket error like recv_line.
  std::optional<std::string> recv_line_for(int timeout_ms);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// LineClient connected to 127.0.0.1:`port`, retrying the connect for up
/// to `connect_timeout_ms` (server startup races in scripts/CI).
class TcpLineClient : public LineClient {
 public:
  TcpLineClient(const std::string& host, std::uint16_t port,
                int connect_timeout_ms = 5000)
      : LineClient(connect_tcp_fd(host, port, connect_timeout_ms)) {}
};

/// LineClient connected to a Unix-domain socket path.
class UdsLineClient : public LineClient {
 public:
  explicit UdsLineClient(const std::string& path, int connect_timeout_ms = 5000)
      : LineClient(connect_uds_fd(path, connect_timeout_ms)) {}
};

}  // namespace mdd::server
