// openmdd — transports for the diagnosis daemon.
//
// The service itself is transport-free (JSON in, JSON out); this layer
// frames it as line-delimited JSON over two transports:
//
//  * serve_stdio — one request object per stdin line, one response object
//    per stdout line. Responses are written as they complete, so they can
//    arrive out of order relative to requests — clients match on `id`.
//  * serve_tcp — same framing on a loopback-only TCP socket, one reader
//    thread per connection, all feeding the shared service queue.
//
// Both loops understand {"op":"shutdown"}: drain outstanding work,
// acknowledge, and return. TCP also provides TcpLineClient, the matching
// blocking client used by openmdd_loadgen and the smoke tests.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "server/service.hpp"

namespace mdd::server {

/// Serves until EOF or a shutdown op; returns 0 on clean exit.
int serve_stdio(DiagnosisService& service, std::istream& in,
                std::ostream& out);

/// Binds 127.0.0.1:`port` (0 = ephemeral), reports the bound port through
/// `on_listening`, serves until a shutdown op. Returns 0 on clean exit,
/// nonzero on socket errors. Loopback only by design — the daemon speaks
/// an unauthenticated protocol.
int serve_tcp(DiagnosisService& service, std::uint16_t port,
              std::ostream& log,
              const std::function<void(std::uint16_t)>& on_listening = {});

/// Blocking JSONL client: one line out, one line in. Throws
/// std::runtime_error on connect/IO failure.
class TcpLineClient {
 public:
  /// Retries the connect for up to `connect_timeout_ms` (server startup
  /// races in scripts/CI).
  TcpLineClient(const std::string& host, std::uint16_t port,
                int connect_timeout_ms = 5000);
  ~TcpLineClient();

  TcpLineClient(const TcpLineClient&) = delete;
  TcpLineClient& operator=(const TcpLineClient&) = delete;

  /// Sends one request line and blocks for one response line.
  std::string roundtrip(const std::string& line);

 private:
  void send_line(const std::string& line);
  std::string recv_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mdd::server
