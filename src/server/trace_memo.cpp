#include "server/trace_memo.hpp"

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

struct TraceMemoMetrics {
  obs::Counter& hits = obs::registry().counter("memo.trace.hits");
  obs::Counter& misses = obs::registry().counter("memo.trace.misses");
};

TraceMemoMetrics& trace_memo_metrics() {
  static TraceMemoMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const std::vector<Fault>> TraceMemo::lookup(
    std::uint32_t pattern, std::uint32_t po) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key(pattern, po));
  if (it == entries_.end()) {
    ++misses_;
    trace_memo_metrics().misses.inc();
    return nullptr;
  }
  ++hits_;
  trace_memo_metrics().hits.inc();
  return it->second;
}

void TraceMemo::store(std::uint32_t pattern, std::uint32_t po,
                      std::shared_ptr<const std::vector<Fault>> faults) {
  const std::size_t cost =
      sizeof(std::vector<Fault>) + faults->size() * sizeof(Fault) + 64;
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes_ + cost > max_bytes_) return;
  auto [it, inserted] = entries_.emplace(key(pattern, po), std::move(faults));
  if (inserted) bytes_ += cost;
}

TraceMemoStats TraceMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  return s;
}

}  // namespace mdd::server
