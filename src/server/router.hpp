// openmdd — sharded multi-session serving: the crash-recovering router.
//
// The diagnosis flow is embarrassingly partitionable by the
// (netlist, patterns) pair — every session, memo, store file, and
// journal is already keyed by that content-hash pair — so the router
// scales the daemon past one process by placing each session on one of
// N forked worker processes and speaking plain JSONL to all of them:
//
//   client ── TCP ──► router ── unix sockets ──► worker 0..N-1
//                       │                          (openmdd_serve --uds)
//                       └─ supervisor: waitpid + heartbeat + respawn
//
// Placement is rendezvous (highest-random-weight) hashing of the session
// key over ALL shard indices, independent of liveness: a shard that dies
// and respawns is re-admitted with exactly its old sessions, which it
// cold-starts from the shared --store-dir. Responses stream back
// VERBATIM — the router never re-serializes a worker line, so routed
// responses are byte-identical to a single-process daemon's (including
// `diagnose_batch` item streams, whose in-order emission the worker's
// ReorderBuffer already guarantees).
//
// Robustness contract:
//  * worker exit (crash, OOM-kill) is detected by waitpid; every request
//    in flight on that shard is answered with a typed
//    {"status":"error","error":"shard_failed","shard":k} line instead of
//    a hung connection, and the shard respawns with capped backoff;
//  * worker hang is detected by heartbeat pings (answered on the
//    worker's reader thread, so a busy queue never looks like a hang)
//    and cured with SIGKILL + respawn;
//  * `op=stats` fans out and returns the field-wise sum plus a
//    per-shard breakdown; the Prometheus exposition merges worker
//    registries under a `shard` label (obs::merge_prometheus);
//  * store refresh needs no router involvement: workers serialize folds
//    through the flock beside the journal (store::RefreshLock).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/json.hpp"

namespace mdd::server {

/// Rendezvous placement of `key` over shards [0, n): the shard whose
/// mixed hash with the key is highest wins. Stable under shard death
/// (placement ignores liveness) and fully deterministic across router
/// restarts — the property the respawn byte-identity test pins.
std::size_t pick_shard(std::string_view key, std::size_t n_shards);

struct RouterOptions {
  std::size_t n_shards = 2;
  /// Directory for the per-shard unix sockets (`shard-<i>.sock`). Must
  /// exist and be writable; typically a mkdtemp under /tmp.
  std::string socket_dir;
  /// Worker command line; the router appends `--uds <socket>` per shard.
  /// Typically /proc/self/exe plus the serving flags minus --port.
  std::vector<std::string> worker_argv;
  /// Liveness probe period; a worker missing 2 consecutive probes is
  /// SIGKILLed and respawned. 0 disables hang detection (exit detection
  /// via waitpid always runs).
  int heartbeat_ms = 5000;
  /// Spawn → serving deadline per worker before it is killed and retried.
  int ready_timeout_ms = 30000;
  /// How long a routed request waits for its dead shard to respawn
  /// before giving up with `shard_failed`.
  int route_wait_ms = 10000;
  /// Base respawn delay; doubles (capped at 5s) while a worker
  /// crash-loops, resets once it stays up.
  int respawn_backoff_ms = 200;
};

class ShardRouter {
 public:
  ShardRouter(RouterOptions options, std::ostream& log);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Spawns every worker and waits until all are serving (readiness =
  /// ping answered on the shard socket). Throws std::runtime_error if
  /// any worker cannot be started within ready_timeout_ms.
  void start();

  /// Accept loop on 127.0.0.1:`port` (0 = ephemeral) until a client
  /// sends {"op":"shutdown"}; returns 0 on clean exit. Workers are shut
  /// down (drain + ack) before the client's shutdown is acknowledged.
  int serve_tcp(std::uint16_t port,
                const std::function<void(std::uint16_t)>& on_listening = {});

  /// Aggregated exposition: every live worker's registry relabelled
  /// `shard="<i>"`, plus the router's own registry as `shard="router"`.
  std::string prometheus_text();

  /// Stops the supervisor and terminates every worker (shutdown op, then
  /// SIGKILL after a drain deadline). Idempotent; the destructor calls it.
  void shutdown_workers();

 private:
  struct Shard {
    std::size_t index = 0;
    std::string socket_path;
    // Guarded by mutex_ below.
    pid_t pid = -1;
    std::uint64_t generation = 0;  ///< bumped on every (re)spawn
    enum class State { down, starting, live } state = State::down;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point ready_at{};
    std::chrono::steady_clock::time_point respawn_after{};
    std::chrono::steady_clock::time_point next_beat{};
    int backoff_ms = 0;
    int missed_beats = 0;
    std::uint64_t respawns = 0;
  };

  void supervise();  ///< supervisor thread body
  void spawn_locked(Shard& shard);
  void handle_connection(int fd, std::atomic<bool>& stop);
  /// Blocks until `shard` is live (or route_wait_ms passes); returns the
  /// live generation, or nullopt on timeout/shutdown.
  std::optional<std::uint64_t> wait_live(std::size_t shard);
  Json aggregate_stats();
  void log_event(const Json& record);

  RouterOptions options_;
  std::ostream& log_;
  std::mutex log_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable state_cv_;  ///< signalled on shard state change
  std::vector<Shard> shards_;
  bool stopping_ = false;
  bool workers_down_ = false;  ///< shutdown_workers already ran

  /// Live client-connection fds: a shutdown op wakes every other
  /// connection (shutdown(SHUT_RD)) so their upstreams close and the
  /// workers' connection threads can drain before the workers exit.
  std::mutex conns_mutex_;
  std::condition_variable conns_cv_;
  std::unordered_set<int> conn_fds_;

  std::atomic<std::size_t> rr_next_{0};  ///< keyless-request round robin

  std::thread supervisor_;
  int listen_fd_ = -1;
};

}  // namespace mdd::server
