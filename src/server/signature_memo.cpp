#include "server/signature_memo.hpp"

namespace mdd::server {

namespace {

std::size_t approx_signature_bytes(const ErrorSignature& sig) {
  return sizeof(ErrorSignature) +
         sig.n_failing_patterns() *
             (sizeof(std::uint32_t) + sig.n_po_words() * sizeof(Word));
}

}  // namespace

std::shared_ptr<const ErrorSignature> SignatureMemo::lookup(const Fault& f) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(f);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void SignatureMemo::store(const Fault& f,
                          std::shared_ptr<const ErrorSignature> sig) {
  const std::size_t cost = approx_signature_bytes(*sig);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes_ + cost > max_bytes_) return;
  auto [it, inserted] = entries_.emplace(f, std::move(sig));
  if (inserted) bytes_ += cost;
}

SignatureMemoStats SignatureMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SignatureMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  return s;
}

}  // namespace mdd::server
