#include "server/signature_memo.hpp"

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

std::size_t approx_signature_bytes(const ErrorSignature& sig) {
  return sizeof(ErrorSignature) +
         sig.n_failing_patterns() *
             (sizeof(std::uint32_t) + sig.n_po_words() * sizeof(Word));
}

struct MemoMetrics {
  obs::Counter& hits = obs::registry().counter("memo.signature.hits");
  obs::Counter& misses = obs::registry().counter("memo.signature.misses");
  obs::Counter& evictions =
      obs::registry().counter("memo.signature.evictions");
  obs::Counter& inserts = obs::registry().counter("memo.signature.inserts");
  obs::Counter& declined = obs::registry().counter(
      "memo.signature.declined");  ///< single entry over the whole budget
  /// Disk-tier traffic (persistent dictionary store).
  obs::Counter& store_hits = obs::registry().counter("store.hits");
  obs::Counter& store_misses = obs::registry().counter("store.misses");
  obs::Counter& store_decode_failures =
      obs::registry().counter("store.decode_failures");
};

MemoMetrics& memo_metrics() {
  static MemoMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const ErrorSignature> SignatureMemo::lookup(const Fault& f) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(f);
  if (it != entries_.end()) {
    ++hits_;
    memo_metrics().hits.inc();
    it->second.referenced = true;
    return it->second.sig;
  }
  if (dict_ != nullptr) {
    if (auto idx = dict_->find(f)) {
      try {
        auto sig =
            std::make_shared<const ErrorSignature>(dict_->decode(*idx));
        ++store_hits_;
        memo_metrics().store_hits.inc();
        // Promote into the memory tier: repeat lookups become pointer
        // copies and the clock policy decides how long it stays hot.
        const std::size_t cost = approx_signature_bytes(*sig);
        if (cost <= max_bytes_) {
          make_room(cost);
          entries_.emplace(f, Entry{sig, cost, false});
          ring_.push_back(f);
          bytes_ += cost;
          memo_metrics().inserts.inc();
        }
        return sig;
      } catch (const store::StoreError&) {
        // Structurally impossible after open-time hashing unless the file
        // was truncated/rewritten underneath the mapping. Degrade to
        // simulation permanently rather than rethrowing into a request.
        memo_metrics().store_decode_failures.inc();
        dict_ = nullptr;
      }
    } else {
      ++store_misses_;
      memo_metrics().store_misses.inc();
    }
  }
  ++misses_;
  memo_metrics().misses.inc();
  return nullptr;
}

void SignatureMemo::set_store(std::shared_ptr<const store::DictReader> dict) {
  std::lock_guard<std::mutex> lock(mutex_);
  dict_ = std::move(dict);
}

bool SignatureMemo::has_store() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dict_ != nullptr;
}

std::shared_ptr<const store::DictReader> SignatureMemo::store_reader() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dict_;
}

void SignatureMemo::make_room(std::size_t need) {
  // Second chance: a referenced entry survives one hand pass (its bit is
  // cleared); an unreferenced one is evicted. Every full lap either
  // evicts something or clears at least one bit, so the sweep terminates.
  while (bytes_ + need > max_bytes_ && !ring_.empty()) {
    if (hand_ >= ring_.size()) hand_ = 0;
    auto it = entries_.find(ring_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;
      ++hand_;
      continue;
    }
    if (it != entries_.end()) {
      bytes_ -= it->second.cost;
      entries_.erase(it);
      ++evictions_;
      memo_metrics().evictions.inc();
    }
    ring_[hand_] = ring_.back();
    ring_.pop_back();
  }
}

void SignatureMemo::store(const Fault& f,
                          std::shared_ptr<const ErrorSignature> sig) {
  const std::size_t cost = approx_signature_bytes(*sig);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cost > max_bytes_) {
    memo_metrics().declined.inc();
    return;
  }
  if (entries_.count(f) != 0) return;  // racing computes of the same fault
  make_room(cost);
  entries_.emplace(f, Entry{std::move(sig), cost, false});
  ring_.push_back(f);
  bytes_ += cost;
  memo_metrics().inserts.inc();
}

SignatureMemoStats SignatureMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SignatureMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  s.store_hits = store_hits_;
  s.store_misses = store_misses_;
  return s;
}

}  // namespace mdd::server
