#include "server/signature_memo.hpp"

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

std::size_t approx_signature_bytes(const ErrorSignature& sig) {
  return sizeof(ErrorSignature) +
         sig.n_failing_patterns() *
             (sizeof(std::uint32_t) + sig.n_po_words() * sizeof(Word));
}

/// Restriction to a SHORTER applied window, shape included: the result
/// reports n_patterns() == `n` so it is byte-identical to a fresh
/// simulation over that window. (restrict_signature keeps the original
/// shape — wrong for the memo's determinism contract.)
ErrorSignature restrict_to_window(const ErrorSignature& full, std::size_t n) {
  ErrorSignature out(n, full.n_outputs());
  const auto& patterns = full.failing_patterns();
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i] >= n) break;  // sorted: nothing later fits either
    out.append(patterns[i], full.mask(i));
  }
  return out;
}

struct MemoMetrics {
  obs::Counter& hits = obs::registry().counter("memo.signature.hits");
  obs::Counter& misses = obs::registry().counter("memo.signature.misses");
  obs::Counter& evictions =
      obs::registry().counter("memo.signature.evictions");
  obs::Counter& inserts = obs::registry().counter("memo.signature.inserts");
  obs::Counter& declined = obs::registry().counter(
      "memo.signature.declined");  ///< single entry over the whole budget
  /// Lookups for a truncated window served by restricting a full-window
  /// entry (memory or store tier).
  obs::Counter& window_restricts =
      obs::registry().counter("memo.signature.window_restricts");
  /// Disk-tier traffic (persistent dictionary store).
  obs::Counter& store_hits = obs::registry().counter("store.hits");
  obs::Counter& store_misses = obs::registry().counter("store.misses");
  obs::Counter& store_decode_failures =
      obs::registry().counter("store.decode_failures");
};

MemoMetrics& memo_metrics() {
  static MemoMetrics m;
  return m;
}

}  // namespace

void SignatureMemo::admit(const Key& key,
                          std::shared_ptr<const ErrorSignature> sig) {
  const std::size_t cost = approx_signature_bytes(*sig);
  if (cost > max_bytes_) {
    memo_metrics().declined.inc();
    return;
  }
  if (entries_.count(key) != 0) return;  // racing computes, same key
  make_room(cost);
  entries_.emplace(key, Entry{std::move(sig), cost, false});
  ring_.push_back(key);
  bytes_ += cost;
  memo_metrics().inserts.inc();
}

std::shared_ptr<const ErrorSignature> SignatureMemo::lookup(
    const Fault& f, std::size_t window_patterns) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{f, window_patterns};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    memo_metrics().hits.inc();
    it->second.referenced = true;
    return it->second.sig;
  }
  // A full-window entry answers any shorter window by restriction — the
  // signature over the first w patterns is a prefix of the full one.
  if (full_window_ != 0 && window_patterns < full_window_) {
    auto full_it = entries_.find(Key{f, full_window_});
    if (full_it != entries_.end()) {
      full_it->second.referenced = true;
      auto restricted = std::make_shared<const ErrorSignature>(
          restrict_to_window(*full_it->second.sig, window_patterns));
      ++hits_;
      ++window_restricts_;
      memo_metrics().hits.inc();
      memo_metrics().window_restricts.inc();
      // Admit under the exact key: the batch's remaining datalogs with
      // this window shape get pointer copies.
      admit(key, restricted);
      return restricted;
    }
  }
  if (dict_ != nullptr && window_patterns <= dict_->n_patterns()) {
    if (auto idx = dict_->find(f)) {
      try {
        auto full =
            std::make_shared<const ErrorSignature>(dict_->decode(*idx));
        ++store_hits_;
        memo_metrics().store_hits.inc();
        std::shared_ptr<const ErrorSignature> sig;
        if (window_patterns == dict_->n_patterns()) {
          sig = std::move(full);
        } else {
          sig = std::make_shared<const ErrorSignature>(
              restrict_to_window(*full, window_patterns));
          ++window_restricts_;
          memo_metrics().window_restricts.inc();
        }
        // Promote into the memory tier: repeat lookups become pointer
        // copies and the clock policy decides how long it stays hot.
        admit(key, sig);
        return sig;
      } catch (const store::StoreError&) {
        // Structurally impossible after open-time hashing unless the file
        // was truncated/rewritten underneath the mapping. Degrade to
        // simulation permanently rather than rethrowing into a request.
        memo_metrics().store_decode_failures.inc();
        dict_ = nullptr;
      }
    } else {
      ++store_misses_;
      memo_metrics().store_misses.inc();
    }
  }
  ++misses_;
  memo_metrics().misses.inc();
  return nullptr;
}

void SignatureMemo::set_store(std::shared_ptr<const store::DictReader> dict) {
  std::lock_guard<std::mutex> lock(mutex_);
  dict_ = std::move(dict);
  // The dictionary always simulates the full pattern set, so it pins the
  // session's full-window length when the memo was built without one.
  if (full_window_ == 0 && dict_ != nullptr) full_window_ = dict_->n_patterns();
}

bool SignatureMemo::has_store() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dict_ != nullptr;
}

std::shared_ptr<const store::DictReader> SignatureMemo::store_reader() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dict_;
}

void SignatureMemo::make_room(std::size_t need) {
  // Second chance: a referenced entry survives one hand pass (its bit is
  // cleared); an unreferenced one is evicted. Every full lap either
  // evicts something or clears at least one bit, so the sweep terminates.
  while (bytes_ + need > max_bytes_ && !ring_.empty()) {
    if (hand_ >= ring_.size()) hand_ = 0;
    auto it = entries_.find(ring_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;
      ++hand_;
      continue;
    }
    if (it != entries_.end()) {
      bytes_ -= it->second.cost;
      entries_.erase(it);
      ++evictions_;
      memo_metrics().evictions.inc();
    }
    ring_[hand_] = ring_.back();
    ring_.pop_back();
  }
}

void SignatureMemo::store(const Fault& f, std::size_t window_patterns,
                          std::shared_ptr<const ErrorSignature> sig) {
  std::shared_ptr<store::FaultJournal> journal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admit(Key{f, window_patterns}, std::move(sig));
    journal = journal_;
  }
  // Outside the memo lock: the journal has its own mutex and does file
  // I/O. Reaching store() means every serving tier missed and a real
  // simulation was paid — exactly what the next refresh should fold in.
  if (journal != nullptr) journal->record(f);
}

void SignatureMemo::set_journal(std::shared_ptr<store::FaultJournal> journal) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_ = std::move(journal);
}

std::shared_ptr<store::FaultJournal> SignatureMemo::journal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_;
}

SignatureMemoStats SignatureMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SignatureMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  s.store_hits = store_hits_;
  s.store_misses = store_misses_;
  s.window_restricts = window_restricts_;
  return s;
}

}  // namespace mdd::server
