// openmdd — in-order publisher for streamed batch items.
//
// Batch datalogs are diagnosed by a private thread group in whatever
// order workers grab them, but the streamed `diagnose_batch_item` lines
// are part of the protocol in INDEX order — clients must see a
// deterministic sequence. The reorder buffer sits between the workers and
// the emit sink: publish(i, item) stores out-of-order completions and the
// sink receives every ready prefix item exactly once, in order. Buffering
// is bounded by the batch size by construction; the observed peak
// (done-but-not-yet-emitted items) is exposed as a high-water mark so a
// pathological schedule — item 0 finishing last behind the whole batch —
// is visible in /stats instead of silent.
//
// Thread-safe: publish() may be called concurrently from any worker; the
// sink runs under the internal mutex, so lines are serialized without the
// caller needing its own emit lock.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "server/json.hpp"

namespace mdd::server {

class ReorderBuffer {
 public:
  using Sink = std::function<void(const Json&)>;

  /// `n` is the batch size (every index in [0, n) must be published
  /// exactly once). A null `sink` disables emission — items are only
  /// collected for take_items() (the non-streamed response mode).
  ReorderBuffer(std::size_t n, Sink sink)
      : items_(n), done_(n, 0), sink_(std::move(sink)) {}

  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;

  /// Records item `i` as finished and emits every ready prefix item.
  void publish(std::size_t i, Json item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (i >= items_.size() || done_[i]) return;
    items_[i] = std::move(item);
    done_[i] = 1;
    ++n_done_;
    // Peak is measured BEFORE draining: when index 0 lands after k later
    // items already finished, k+1 entries were buffered at once.
    high_water_ = std::max(high_water_, n_done_ - next_emit_);
    if (!sink_) return;
    while (next_emit_ < items_.size() && done_[next_emit_]) {
      sink_(items_[next_emit_]);
      ++next_emit_;
    }
  }

  /// Peak count of finished-but-not-yet-emitted items. With a null sink
  /// nothing ever drains, so this degenerates to the publish count.
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  /// Moves the collected items out (call once, after all publishes).
  std::vector<Json> take_items() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(items_);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Json> items_;
  std::vector<char> done_;  ///< not vector<bool>: workers touch neighbors
  Sink sink_;
  std::size_t next_emit_ = 0;  ///< first index not yet handed to the sink
  std::size_t n_done_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mdd::server
