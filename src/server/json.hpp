// openmdd — minimal JSON value type for the serving protocol.
//
// The daemon speaks line-delimited JSON; this is the self-contained value
// type behind it (no third-party dependency). Two properties matter more
// than generality:
//
//  * deterministic output — objects keep insertion order and `dump()` is
//    byte-stable, so a served diagnosis can be diffed byte-for-byte
//    against `openmdd diagnose --format json`;
//  * defensive input — `parse()` rejects malformed text with a positioned
//    std::runtime_error and bounds recursion depth, since it reads
//    whatever a client sends.
//
// Numbers are doubles (JSON's own model); integral values within the
// exact-double range print without a fractional part.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mdd::server {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered (deterministic dump); lookup is linear — protocol
/// objects have a handful of keys.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(unsigned u) : v_(static_cast<double>(u)) {}
  Json(long l) : v_(static_cast<double>(l)) {}
  Json(unsigned long ul) : v_(static_cast<double>(ul)) {}
  Json(long long ll) : v_(static_cast<double>(ll)) {}
  Json(unsigned long long ull) : v_(static_cast<double>(ull)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_number() const { return type() == Type::Number; }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Typed accessors return `dflt` on type mismatch (the protocol layer
  /// validates presence separately where it matters).
  bool as_bool(bool dflt = false) const;
  double as_number(double dflt = 0.0) const;
  std::int64_t as_int(std::int64_t dflt = 0) const;
  const std::string& as_string() const;  // empty string on mismatch
  const JsonArray& as_array() const;     // empty array on mismatch
  const JsonObject& as_object() const;   // empty object on mismatch

  /// Object member by key; nullptr if absent or not an object.
  const Json* find(std::string_view key) const;
  /// Convenience lookups with defaults (absent key or wrong type).
  std::string get_string(std::string_view key, std::string dflt = "") const;
  double get_number(std::string_view key, double dflt = 0.0) const;
  bool get_bool(std::string_view key, bool dflt = false) const;

  /// Appends or replaces an object member (no-op unless object/null;
  /// null promotes to an object first).
  void set(std::string key, Json value);

  bool operator==(const Json&) const = default;

  /// Compact deterministic serialization (no whitespace, "\uXXXX" escapes
  /// only for control characters).
  std::string dump() const;
  void dump(std::string& out) const;

  /// Parses one JSON value; trailing non-whitespace, depth > 64, or any
  /// syntax error throws std::runtime_error with a byte offset.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v_;
};

}  // namespace mdd::server
