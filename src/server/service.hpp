// openmdd — diagnosis-as-a-service core.
//
// `DiagnosisService` is the transport-independent heart of the daemon:
// decoded JSON requests go in, JSON responses come out. Requests admitted
// through submit() flow through a bounded job queue (full queue → an
// immediate `overloaded` response — explicit backpressure, not unbounded
// latency) and execute on a core::ThreadPool whose workers drain the
// queue until shutdown. Each request carries an optional deadline,
// counted from ADMISSION (queue wait spends budget): expired-in-queue
// jobs are answered `timeout` without running, and in-flight work is cut
// short cooperatively via CancelToken checkpoints inside the diagnosers,
// returning whatever partial result was found.
//
// Protocol (one JSON object per line; see DESIGN.md §7):
//   {"id":7,"op":"diagnose","netlist":"c.bench","patterns":"c.pat",
//    "datalog":"datalog\napplied 128\nfail 3 : z1\n",
//    "method":"multiplet","deadline_ms":2000}
//   -> {"id":7,"status":"ok","cache":"hit","reports":[...],
//       "timings_ms":{...}}
//
// Volume mode (`op=diagnose_batch`) diagnoses a STREAM of datalogs for
// one session in a single request: the session is pinned (no mid-batch
// eviction), baseline/dictionary/memos warm once, and a private worker
// group diagnoses across datalogs concurrently while sharing the
// session's SignatureMemo/CompositeMemo. Per-datalog "reports" are
// byte-identical to N separate `diagnose` requests; the response adds a
// cross-datalog volume summary (systematic vs. random recurrence, net
// hit histograms — see diag/volume.hpp). With `"stream":true` on a
// transport that supports it, each per-datalog result is emitted as its
// own JSONL line (`op=diagnose_batch_item`, in index order) before the
// summary response.
//
// Other ops: ping, stats, metrics (obs-registry snapshot as JSON), sleep
// (test/load-shaping aid). Responses carry status ok | timeout |
// overloaded | error. A request with `"trace": true` gets a per-stage
// wall-time breakdown attached to its response (see obs/trace.hpp);
// requests slower than ServiceOptions::slow_ms additionally emit one
// structured JSON line to the slow log.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <thread>

#include "core/cancel.hpp"
#include "core/exec.hpp"
#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "server/job_queue.hpp"
#include "server/json.hpp"
#include "server/session_cache.hpp"

namespace mdd::server {

/// Deadline budget of a request, shared by every admission path so a
/// given `deadline_ms` means the same instant on stdio, TCP, and direct
/// handle() calls (microsecond resolution; the old handle() path
/// truncated to whole milliseconds, turning 0.5 into "no deadline").
/// Absent or 0 falls back to `default_deadline` (0 = none → nullopt).
/// Negative, NaN, infinite, or non-numeric values throw
/// std::invalid_argument.
std::optional<std::chrono::steady_clock::duration> deadline_budget(
    const Json& request,
    std::chrono::milliseconds default_deadline = std::chrono::milliseconds{
        0});

struct ServiceOptions {
  /// Worker threads executing queued requests (one request per worker at
  /// a time; independent of intra-request parallelism below).
  std::size_t n_workers = 2;
  /// Job-queue capacity; admission beyond it answers `overloaded`.
  std::size_t queue_depth = 64;
  /// Session-cache budget (parsed circuits + good responses).
  std::size_t cache_bytes = 256ull << 20;
  /// Per-session solo-signature memo budget (cross-request amortization).
  std::size_t memo_bytes = 256ull << 20;
  /// Per-session composite-signature memo budget (multiplet search).
  std::size_t composite_bytes = 64ull << 20;
  /// Directory of prebuilt dictionary stores (`openmdd dict build`).
  /// Non-empty: each session load looks up its content-hash-named store
  /// file and, when present and valid, serves candidate signatures from
  /// the mmap instead of simulating them — warm cold starts across
  /// daemon restarts. Empty (default): no persistent store.
  std::string store_dir;
  /// Intra-request parallelism for the solo-signature warm. Serial by
  /// default: with many concurrent requests, request-level parallelism
  /// is the better use of the cores.
  ExecPolicy exec{};
  /// Applied when a request carries no deadline_ms; zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Requests slower than this (end-to-end, queue wait included) emit one
  /// structured JSON line to `slow_log`; 0 disables.
  double slow_ms = 0.0;
  /// Destination for slow-request records; null means std::cerr. The
  /// stream must outlive the service and tolerate worker-thread writes
  /// (the service serializes them internally).
  std::ostream* slow_log = nullptr;
  /// Simulation kernel ("scalar", "avx2", "avx512"). Empty = keep the
  /// process-wide default (CPUID best, or MDD_KERNEL). An unavailable
  /// name makes the service constructor throw std::invalid_argument.
  /// Applied process-wide before any session is built; the active choice
  /// is reported by ping/stats and the fsim_kernel info metric.
  std::string kernel;
  /// Datalog-level parallelism inside one diagnose_batch request. The
  /// batch occupies a single queue worker and spawns its own threads —
  /// the pool's nested-parallelism guard would serialize parallel_for —
  /// so this is independent of n_workers. 0 = use n_workers. A request's
  /// own "threads" field overrides this per batch (clamped to the batch
  /// size).
  std::size_t batch_threads = 0;
  /// Background store refresh (`openmdd_serve --store-refresh N`): when a
  /// resident session's store-miss journal accumulates at least N
  /// distinct faults, a low-priority maintenance thread folds them into
  /// the `.mdds` file and swaps a freshly opened reader into the
  /// session's memo — in-flight requests keep the old mapping, later ones
  /// serve the learned universe without a daemon restart. 0 (default)
  /// disables the thread; requires a non-empty store_dir. Fold failures
  /// are counted, never fatal.
  std::size_t store_refresh_threshold = 0;
};

class DiagnosisService {
 public:
  /// Streaming sink for multi-response ops (diagnose_batch with
  /// "stream":true): invoked once per intermediate JSONL line, from the
  /// executing thread, strictly before the final response. Must be
  /// thread-safe against concurrent responses, like `done`.
  using Emit = std::function<void(const Json&)>;

  explicit DiagnosisService(const ServiceOptions& options = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Queues `request`; `done` is invoked exactly once with the response —
  /// from a worker thread normally, or inline right here when the queue
  /// rejects (overloaded / shutting down). `done` must be thread-safe
  /// against other responses (the serve loops serialize on a write
  /// mutex). `emit`, if given, receives intermediate streamed lines.
  void submit(Json request, std::function<void(Json)> done, Emit emit = {});

  /// Executes a request synchronously on the calling thread, bypassing
  /// queue and deadline admission (tests, one-shot tools). A null
  /// `cancel` honors the request's own deadline_ms, if any.
  Json handle(const Json& request, const CancelToken* cancel = nullptr,
              const Emit& emit = {});

  /// Stops admission and joins the workers (queued jobs still drain and
  /// answer). Idempotent; the destructor calls it.
  void shutdown();

  Json stats_json() const;
  SessionCache& cache() { return cache_; }
  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;
  struct Job {
    Json request;
    std::function<void(Json)> done;
    Emit emit;  ///< streamed intermediate lines; may be empty
    Clock::time_point admitted{};  ///< for the queue-wait histogram
    Clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// One datalog reference inside a batch (inline text or file path).
  struct DatalogInput {
    bool is_file = false;
    std::string value;
  };
  /// Everything the per-datalog pipeline produces; `reports` serialize to
  /// the exact "reports" value the single-request path emits.
  struct DiagnoseOutcome {
    Datalog log;
    std::vector<DiagnosisReport> reports;
    bool timed_out = false;
    std::size_t n_candidates = 0;
    std::size_t solo_computes = 0;
    double t_context = 0.0;   ///< datalog parse + context + warm, ms
    double t_diagnose = 0.0;  ///< ranking, ms
  };

  void drain();  ///< worker loop: pop → execute → done(response)
  void refresh_loop();  ///< background store-refresh thread body
  /// One fold for one session: journal → store → reader swap → compact.
  void refresh_session(const std::shared_ptr<const Session>& session);
  Json dispatch(const Json& request, const CancelToken* cancel,
                obs::Trace& trace, const Emit& emit);
  Json handle_diagnose(const Json& request, const CancelToken* cancel,
                       obs::Trace& trace);
  Json handle_diagnose_batch(const Json& request, const CancelToken* cancel,
                             obs::Trace& trace, const Emit& emit);
  /// The per-datalog core shared by handle_diagnose and the batch
  /// workers: parse → context (session memos attached) → store/parallel
  /// warm → rank. Throws on parse/method errors.
  DiagnoseOutcome diagnose_one(const Session& session,
                               const DatalogInput& input,
                               const std::string& method,
                               const CancelToken* cancel, obs::Trace& trace);
  Json handle_sleep(const Json& request, const CancelToken* cancel);
  void count_status(const Json& response);
  /// Post-dispatch bookkeeping shared by drain() and handle(): status
  /// counters, the end-to-end latency histogram, trace attachment
  /// ("trace": true), and the slow-request log.
  void finish_request(const Json& request, Json& response,
                      const obs::Trace& trace, double total_ms);

  ServiceOptions options_;
  SessionCache cache_;
  BoundedQueue<Job> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread pump_;  ///< runs pool_->run_on_all(drain) until shutdown
  bool joined_ = false;

  std::thread refresh_thread_;  ///< background fold; joinable iff enabled
  std::mutex refresh_mutex_;
  std::condition_variable refresh_cv_;
  bool stop_refresh_ = false;
  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> refresh_failures_{0};

  std::atomic<std::uint64_t> n_ok_{0};
  std::atomic<std::uint64_t> n_error_{0};
  std::atomic<std::uint64_t> n_timeout_{0};
  std::atomic<std::uint64_t> n_overloaded_{0};
  std::mutex slow_log_mutex_;  ///< one slow-request record per line
};

}  // namespace mdd::server
