#include "server/service.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/version.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "obs/metrics.hpp"
#include "server/result_json.hpp"
#include "sim/kernel.hpp"
#include "store/format.hpp"
#include "workload/textio.hpp"

namespace mdd::server {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Echoes the request id (verbatim, any JSON type) into a fresh response.
Json make_response(const Json& request, std::string_view status) {
  Json r;
  if (const Json* id = request.find("id")) r.set("id", *id);
  r.set("status", std::string(status));
  return r;
}

Json error_response(const Json& request, const std::string& what) {
  Json r = make_response(request, "error");
  r.set("error", what);
  return r;
}

/// Server-side registry handles, resolved once per process.
struct ServiceMetrics {
  obs::Counter& ok = obs::registry().counter("server.requests.ok");
  obs::Counter& error = obs::registry().counter("server.requests.error");
  obs::Counter& timeout = obs::registry().counter("server.requests.timeout");
  obs::Counter& overloaded =
      obs::registry().counter("server.requests.overloaded");
  /// Requests answered `timeout` before running (expired while queued).
  obs::Counter& queue_expired =
      obs::registry().counter("server.deadline_queue_expired");
  /// Timed-out diagnoses that still returned a partial ranking.
  obs::Counter& partials = obs::registry().counter("server.partial_results");
  obs::Counter& queue_rejects =
      obs::registry().counter("server.queue_rejects");
  obs::Counter& slow_requests =
      obs::registry().counter("server.slow_requests");
  obs::Gauge& queue_depth = obs::registry().gauge("server.queue_depth");
  obs::Histogram& request_ms = obs::registry().latency("server.request_ms");
  obs::Histogram& queue_wait_ms =
      obs::registry().latency("server.queue_wait_ms");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

Json trace_to_json(const obs::Trace& trace) {
  JsonArray stages;
  for (const obs::Trace::SpanRecord& s : trace.spans()) {
    Json stage;
    stage.set("stage", s.stage);
    if (s.depth > 0) stage.set("depth", s.depth);
    stage.set("ms", s.ms);
    stages.push_back(std::move(stage));
  }
  return Json(std::move(stages));
}

Json snapshot_to_json(const obs::Snapshot& snap) {
  Json counters;
  for (const obs::CounterSample& c : snap.counters)
    counters.set(c.name, c.value);
  Json gauges;
  for (const obs::GaugeSample& g : snap.gauges) gauges.set(g.name, g.value);
  Json histograms;
  for (const obs::HistogramSample& h : snap.histograms) {
    Json hist;
    JsonArray bounds, bins;
    for (double b : h.bounds) bounds.push_back(b);
    for (std::uint64_t v : h.bins) bins.push_back(v);
    hist.set("le", Json(std::move(bounds)));
    hist.set("bins", Json(std::move(bins)));
    hist.set("count", h.count);
    hist.set("sum", h.sum);
    histograms.set(h.name, std::move(hist));
  }
  Json infos;
  for (const obs::InfoSample& i : snap.infos) infos.set(i.name, i.label_value);
  Json out;
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("infos", std::move(infos));
  return out;
}

}  // namespace

std::optional<std::chrono::steady_clock::duration> deadline_budget(
    const Json& request, std::chrono::milliseconds default_deadline) {
  double ms = 0.0;
  if (const Json* v = request.find("deadline_ms")) {
    if (!v->is_number())
      throw std::invalid_argument("deadline_ms must be a number");
    ms = v->as_number();
    if (std::isnan(ms) || std::isinf(ms) || ms < 0.0)
      throw std::invalid_argument(
          "deadline_ms must be a finite non-negative number");
  }
  if (ms <= 0.0 && default_deadline.count() > 0)
    ms = static_cast<double>(default_deadline.count());
  if (ms <= 0.0) return std::nullopt;
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

DiagnosisService::DiagnosisService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_bytes, options.memo_bytes,
             options.composite_bytes, options.store_dir),
      queue_(options.queue_depth),
      pool_(std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options.n_workers))) {
  if (!options.kernel.empty() && !set_current_kernel(options.kernel))
    throw std::invalid_argument("unknown simulation kernel '" +
                                options.kernel + "' (available: " +
                                kernel_names() + ")");
  obs::registry().set_info("fsim.kernel", "kernel", current_kernel().name);
  pump_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { drain(); });
  });
}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::shutdown() {
  queue_.close();
  if (!joined_ && pump_.joinable()) {
    pump_.join();
    joined_ = true;
  }
}

void DiagnosisService::drain() {
  while (auto job = queue_.pop()) {
    service_metrics().queue_depth.set(
        static_cast<std::int64_t>(queue_.size()));
    service_metrics().queue_wait_ms.observe(ms_since(job->admitted));
    obs::Trace trace;
    Json response;
    try {
      if (job->has_deadline && Clock::now() >= job->deadline) {
        // Expired while queued: answer without burning a worker on it.
        service_metrics().queue_expired.inc();
        response = make_response(job->request, "timeout");
        response.set("where", "queue");
      } else if (job->has_deadline) {
        CancelToken token(job->deadline);
        response = dispatch(job->request, &token, trace);
      } else {
        response = dispatch(job->request, nullptr, trace);
      }
    } catch (const std::exception& e) {
      response = error_response(job->request, e.what());
    }
    finish_request(job->request, response, trace, ms_since(job->admitted));
    job->done(std::move(response));
  }
}

void DiagnosisService::submit(Json request, std::function<void(Json)> done) {
  Job job;
  job.admitted = Clock::now();
  try {
    if (auto budget = deadline_budget(request, options_.default_deadline)) {
      job.has_deadline = true;
      job.deadline = job.admitted + *budget;
    }
  } catch (const std::exception& e) {
    Json response = error_response(request, e.what());
    count_status(response);
    done(std::move(response));
    return;
  }
  job.request = std::move(request);
  job.done = std::move(done);
  if (!queue_.try_push(std::move(job))) {
    // try_push moves from the job only on success; on rejection it is
    // intact and carries the reject reply.
    service_metrics().queue_rejects.inc();
    Json response = make_response(job.request, "overloaded");
    count_status(response);
    job.done(std::move(response));
  }
}

Json DiagnosisService::handle(const Json& request, const CancelToken* cancel) {
  const auto t0 = Clock::now();
  obs::Trace trace;
  Json r;
  try {
    std::optional<CancelToken> own_token;
    if (cancel == nullptr) {
      if (auto budget = deadline_budget(request)) {
        own_token.emplace(t0 + *budget);
        cancel = &*own_token;
      }
    }
    r = dispatch(request, cancel, trace);
  } catch (const std::exception& e) {
    r = error_response(request, e.what());
  }
  finish_request(request, r, trace, ms_since(t0));
  return r;
}

Json DiagnosisService::dispatch(const Json& request,
                                const CancelToken* cancel,
                                obs::Trace& trace) {
  if (!request.is_object())
    return error_response(request, "request must be a JSON object");
  const std::string op = request.get_string("op", "diagnose");
  if (op == "diagnose") return handle_diagnose(request, cancel, trace);
  if (op == "sleep") return handle_sleep(request, cancel);
  if (op == "ping") {
    Json r = make_response(request, "ok");
    r.set("op", "ping");
    r.set("version", kVersion);
    r.set("kernel", current_kernel().name);
    Json store;
    store.set("enabled", !options_.store_dir.empty());
    if (!options_.store_dir.empty()) store.set("dir", options_.store_dir);
    store.set("format_version", store::kFormatVersion);
    r.set("store", std::move(store));
    return r;
  }
  if (op == "stats") {
    Json r = make_response(request, "ok");
    r.set("op", "stats");
    r.set("stats", stats_json());
    return r;
  }
  if (op == "metrics") {
    Json r = make_response(request, "ok");
    r.set("op", "metrics");
    r.set("metrics", snapshot_to_json(obs::registry().snapshot()));
    return r;
  }
  return error_response(request, "unknown op '" + op + "'");
}

Json DiagnosisService::handle_diagnose(const Json& request,
                                       const CancelToken* cancel,
                                       obs::Trace& trace) {
  const auto t0 = Clock::now();
  auto parse_span = trace.span("parse");
  const std::string netlist_path = request.get_string("netlist");
  const std::string patterns_path = request.get_string("patterns");
  if (netlist_path.empty() || patterns_path.empty())
    return error_response(request,
                          "diagnose needs 'netlist' and 'patterns' paths");
  const Json* inline_log = request.find("datalog");
  const std::string datalog_file = request.get_string("datalog_file");
  if ((inline_log == nullptr) == datalog_file.empty())
    return error_response(
        request, "diagnose needs exactly one of 'datalog' (inline text) or "
                 "'datalog_file' (path)");
  const std::string method = request.get_string("method", "multiplet");
  parse_span.close();

  auto session_span = trace.span("session");
  bool cache_hit = false;
  std::shared_ptr<const Session> session;
  try {
    session = cache_.get(netlist_path, patterns_path, &cache_hit);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
  session_span.close();
  const double t_session = ms_since(t0);

  const auto t1 = Clock::now();
  auto datalog_span = trace.span("datalog");
  Datalog log;
  try {
    if (inline_log != nullptr) {
      std::istringstream in(inline_log->as_string());
      log = read_datalog(in, session->netlist);
    } else {
      log = read_datalog_file(datalog_file, session->netlist);
    }
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
  datalog_span.close();

  auto context_span = trace.span("context");
  CandidateOptions candidate_options;
  candidate_options.trace_store = session->traces.get();
  DiagnosisContext ctx(session->netlist, session->patterns, log,
                       candidate_options, &session->good, session->baseline,
                       &trace);
  if (session->memo) ctx.attach_solo_store(session->memo.get());
  if (session->composites)
    ctx.attach_composite_memo(session->composites.get());
  context_span.close();
  // Consult the persistent store BEFORE scheduling a PPSFP warm: slots it
  // answers are pure mmap decodes, and when it covers every candidate the
  // parallel warm-up is skipped outright (the store-served cold start).
  std::size_t store_warmed = 0;
  if (ctx.solo_store_attached() && session->memo && session->memo->has_store()) {
    auto span = trace.span("store_warm");
    store_warmed = ctx.warm_solo_from_store();
  }
  if (!options_.exec.is_serial() && store_warmed < ctx.n_candidates()) {
    auto warm_span = trace.span("warm");
    ctx.warm_solo_signatures(options_.exec, cancel);
  }
  const double t_context = ms_since(t1);

  const auto t2 = Clock::now();
  std::vector<DiagnosisReport> reports;
  if (method == "multiplet" || method == "all") {
    auto span = trace.span("rank:multiplet");
    MultipletOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_multiplet(ctx, opt));
  }
  if (method == "slat" || method == "all") {
    auto span = trace.span("rank:slat");
    SlatOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_slat(ctx, opt));
  }
  if (method == "single" || method == "all") {
    auto span = trace.span("rank:single");
    SingleFaultOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_single_fault(ctx, opt));
  }
  if (reports.empty())
    return error_response(request, "unknown method '" + method + "'");
  const double t_diagnose = ms_since(t2);

  bool timed_out = cancel != nullptr && cancel->cancelled();
  for (const DiagnosisReport& r : reports) timed_out |= r.timed_out;

  auto serialize_span = trace.span("serialize");
  Json response = make_response(request, timed_out ? "timeout" : "ok");
  response.set("op", "diagnose");
  response.set("method", method);
  response.set("kernel", current_kernel().name);
  response.set("cache", cache_hit ? "hit" : "miss");
  if (timed_out) response.set("partial", true);
  response.set("reports", reports_to_json(reports, session->netlist));
  Json timings;
  timings.set("session", t_session);
  timings.set("context", t_context);
  timings.set("diagnose", t_diagnose);
  timings.set("total", ms_since(t0));
  response.set("timings_ms", std::move(timings));
  serialize_span.close();
  return response;
}

Json DiagnosisService::handle_sleep(const Json& request,
                                    const CancelToken* cancel) {
  // Test / load-shaping aid: occupies a worker for `ms` (capped), honoring
  // the deadline — lets the backpressure and queue-timeout paths be
  // exercised without a heavy circuit.
  const double ms = std::clamp(request.get_number("ms", 0.0), 0.0, 60000.0);
  const auto until = Clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         ms * 1000.0));
  while (Clock::now() < until) {
    if (cancel != nullptr && cancel->cancelled())
      return make_response(request, "timeout");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Json r = make_response(request, "ok");
  r.set("op", "sleep");
  return r;
}

void DiagnosisService::count_status(const Json& response) {
  const std::string status = response.get_string("status");
  if (status == "ok") {
    ++n_ok_;
    service_metrics().ok.inc();
  } else if (status == "timeout") {
    ++n_timeout_;
    service_metrics().timeout.inc();
  } else if (status == "overloaded") {
    ++n_overloaded_;
    service_metrics().overloaded.inc();
  } else {
    ++n_error_;
    service_metrics().error.inc();
  }
}

void DiagnosisService::finish_request(const Json& request, Json& response,
                                      const obs::Trace& trace,
                                      double total_ms) {
  count_status(response);
  service_metrics().request_ms.observe(total_ms);
  if (response.get_bool("partial")) service_metrics().partials.inc();
  if (request.is_object() && request.get_bool("trace"))
    response.set("trace", trace_to_json(trace));
  if (options_.slow_ms > 0.0 && total_ms >= options_.slow_ms) {
    service_metrics().slow_requests.inc();
    Json record;
    record.set("event", "slow_request");
    if (const Json* id = request.find("id")) record.set("id", *id);
    record.set("op", request.get_string("op", "diagnose"));
    const std::string method = request.get_string("method");
    if (!method.empty()) record.set("method", method);
    record.set("status", response.get_string("status"));
    record.set("total_ms", total_ms);
    Json stages;
    for (const obs::Trace::SpanRecord& s : trace.spans())
      if (s.depth == 0) stages.set(s.stage, s.ms);
    record.set("stages_ms", std::move(stages));
    std::ostream& out =
        options_.slow_log != nullptr ? *options_.slow_log : std::cerr;
    std::lock_guard<std::mutex> lock(slow_log_mutex_);
    out << record.dump() << "\n";
    out.flush();
  }
}

Json DiagnosisService::stats_json() const {
  Json s;
  s.set("version", kVersion);
  s.set("kernel", current_kernel().name);
  s.set("workers", options_.n_workers);
  const SessionCacheStats cs = cache_.stats();
  Json cache;
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  cache.set("max_bytes", cs.max_bytes);
  s.set("cache", std::move(cache));
  const auto qs = queue_.stats();
  Json queue;
  queue.set("accepted", qs.accepted);
  queue.set("rejected", qs.rejected);
  queue.set("high_water", qs.high_water);
  queue.set("depth", qs.depth);
  queue.set("capacity", qs.capacity);
  s.set("queue", std::move(queue));
  Json requests;
  requests.set("ok", n_ok_.load());
  requests.set("error", n_error_.load());
  requests.set("timeout", n_timeout_.load());
  requests.set("overloaded", n_overloaded_.load());
  s.set("requests", std::move(requests));

  // Per-session memo layers, aggregated across resident sessions with one
  // uniform shape per layer (hits/misses/evictions/entries/bytes).
  const MemoLayerStats ls = cache_.layer_stats();
  const auto memo_json = [](std::uint64_t hits, std::uint64_t misses,
                            std::uint64_t evictions, std::size_t entries,
                            std::size_t bytes) {
    Json m;
    m.set("hits", hits);
    m.set("misses", misses);
    m.set("evictions", evictions);
    m.set("entries", entries);
    m.set("bytes", bytes);
    return m;
  };
  Json memos;
  Json signature =
      memo_json(ls.signature.hits, ls.signature.misses,
                ls.signature.evictions, ls.signature.entries,
                ls.signature.approx_bytes);
  signature.set("store_hits", ls.signature.store_hits);
  signature.set("store_misses", ls.signature.store_misses);
  memos.set("signature", std::move(signature));
  memos.set("trace", memo_json(ls.traces.hits, ls.traces.misses,
                               ls.traces.evictions, ls.traces.entries,
                               ls.traces.approx_bytes));
  memos.set("composite",
            memo_json(ls.composites.hits, ls.composites.misses,
                      ls.composites.evictions, ls.composites.entries,
                      ls.composites.approx_bytes));
  s.set("memos", std::move(memos));

  Json store;
  store.set("enabled", !options_.store_dir.empty());
  if (!options_.store_dir.empty()) store.set("dir", options_.store_dir);
  store.set("format_version", store::kFormatVersion);
  store.set("sessions", ls.store_sessions);
  store.set("entries", ls.store_entries);
  store.set("bytes_mapped", ls.store_bytes_mapped);
  store.set("hits", ls.signature.store_hits);
  store.set("misses", ls.signature.store_misses);
  s.set("store", std::move(store));
  return s;
}

}  // namespace mdd::server
