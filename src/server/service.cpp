#include "server/service.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/version.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "diag/volume.hpp"
#include "obs/metrics.hpp"
#include "server/reorder.hpp"
#include "server/result_json.hpp"
#include "sim/kernel.hpp"
#include "store/format.hpp"
#include "store/refresh.hpp"
#include "workload/textio.hpp"

namespace mdd::server {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Echoes the request id (verbatim, any JSON type) into a fresh response.
Json make_response(const Json& request, std::string_view status) {
  Json r;
  if (const Json* id = request.find("id")) r.set("id", *id);
  r.set("status", std::string(status));
  return r;
}

Json error_response(const Json& request, const std::string& what) {
  Json r = make_response(request, "error");
  r.set("error", what);
  return r;
}

/// Server-side registry handles, resolved once per process.
struct ServiceMetrics {
  obs::Counter& ok = obs::registry().counter("server.requests.ok");
  obs::Counter& error = obs::registry().counter("server.requests.error");
  obs::Counter& timeout = obs::registry().counter("server.requests.timeout");
  obs::Counter& overloaded =
      obs::registry().counter("server.requests.overloaded");
  /// Requests answered `timeout` before running (expired while queued).
  obs::Counter& queue_expired =
      obs::registry().counter("server.deadline_queue_expired");
  /// Timed-out diagnoses that still returned a partial ranking.
  obs::Counter& partials = obs::registry().counter("server.partial_results");
  obs::Counter& queue_rejects =
      obs::registry().counter("server.queue_rejects");
  obs::Counter& slow_requests =
      obs::registry().counter("server.slow_requests");
  obs::Gauge& queue_depth = obs::registry().gauge("server.queue_depth");
  obs::Histogram& request_ms = obs::registry().latency("server.request_ms");
  obs::Histogram& queue_wait_ms =
      obs::registry().latency("server.queue_wait_ms");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

/// Volume-pipeline registry handles (op=diagnose_batch).
struct VolumeMetrics {
  obs::Counter& batches = obs::registry().counter("volume.batches");
  obs::Counter& datalogs = obs::registry().counter("volume.datalogs");
  /// Per-datalog failures inside otherwise-successful batches.
  obs::Counter& datalog_errors =
      obs::registry().counter("volume.datalog_errors");
  /// Amortization ledger: candidates considered vs. solo signatures
  /// actually simulated across batch datalogs — the gap is what the
  /// shared memos absorbed.
  obs::Counter& candidates = obs::registry().counter("volume.candidates");
  obs::Counter& solo_computes =
      obs::registry().counter("volume.solo_computes");
  obs::Counter& systematic =
      obs::registry().counter("volume.systematic_datalogs");
  obs::Counter& random = obs::registry().counter("volume.random_datalogs");
  obs::Histogram& batch_ms = obs::registry().latency("volume.batch_ms");
  obs::Histogram& datalog_ms = obs::registry().latency("volume.datalog_ms");
  /// Peak done-but-unemitted streamed items of the latest batch — how far
  /// out-of-order completion ran ahead of the in-order protocol.
  obs::Gauge& reorder_high_water =
      obs::registry().gauge("volume.reorder_buffer_high_water");
};

VolumeMetrics& volume_metrics() {
  static VolumeMetrics m;
  return m;
}

Json trace_to_json(const obs::Trace& trace) {
  JsonArray stages;
  for (const obs::Trace::SpanRecord& s : trace.spans()) {
    Json stage;
    stage.set("stage", s.stage);
    if (s.depth > 0) stage.set("depth", s.depth);
    stage.set("ms", s.ms);
    stages.push_back(std::move(stage));
  }
  return Json(std::move(stages));
}

Json snapshot_to_json(const obs::Snapshot& snap) {
  Json counters;
  for (const obs::CounterSample& c : snap.counters)
    counters.set(c.name, c.value);
  Json gauges;
  for (const obs::GaugeSample& g : snap.gauges) gauges.set(g.name, g.value);
  Json histograms;
  for (const obs::HistogramSample& h : snap.histograms) {
    Json hist;
    JsonArray bounds, bins;
    for (double b : h.bounds) bounds.push_back(b);
    for (std::uint64_t v : h.bins) bins.push_back(v);
    hist.set("le", Json(std::move(bounds)));
    hist.set("bins", Json(std::move(bins)));
    hist.set("count", h.count);
    hist.set("sum", h.sum);
    histograms.set(h.name, std::move(hist));
  }
  Json infos;
  for (const obs::InfoSample& i : snap.infos) infos.set(i.name, i.label_value);
  Json out;
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("infos", std::move(infos));
  return out;
}

}  // namespace

std::optional<std::chrono::steady_clock::duration> deadline_budget(
    const Json& request, std::chrono::milliseconds default_deadline) {
  double ms = 0.0;
  if (const Json* v = request.find("deadline_ms")) {
    if (!v->is_number())
      throw std::invalid_argument("deadline_ms must be a number");
    ms = v->as_number();
    if (std::isnan(ms) || std::isinf(ms) || ms < 0.0)
      throw std::invalid_argument(
          "deadline_ms must be a finite non-negative number");
  }
  if (ms <= 0.0 && default_deadline.count() > 0)
    ms = static_cast<double>(default_deadline.count());
  if (ms <= 0.0) return std::nullopt;
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

DiagnosisService::DiagnosisService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_bytes, options.memo_bytes,
             options.composite_bytes, options.store_dir),
      queue_(options.queue_depth),
      pool_(std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options.n_workers))) {
  if (!options.kernel.empty() && !set_current_kernel(options.kernel))
    throw std::invalid_argument("unknown simulation kernel '" +
                                options.kernel + "' (available: " +
                                kernel_names() + ")");
  obs::registry().set_info("fsim.kernel", "kernel", current_kernel().name);
  pump_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { drain(); });
  });
  if (options_.store_refresh_threshold > 0 && !options_.store_dir.empty())
    refresh_thread_ = std::thread([this] { refresh_loop(); });
}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    stop_refresh_ = true;
  }
  refresh_cv_.notify_all();
  if (refresh_thread_.joinable()) refresh_thread_.join();
  queue_.close();
  if (!joined_ && pump_.joinable()) {
    pump_.join();
    joined_ = true;
  }
}

void DiagnosisService::refresh_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(refresh_mutex_);
      refresh_cv_.wait_for(lock, std::chrono::milliseconds(200),
                           [this] { return stop_refresh_; });
      if (stop_refresh_) return;
    }
    for (const auto& session : cache_.resident_sessions()) {
      if (session->journal == nullptr || session->journal->detached())
        continue;
      if (session->journal->pending() < options_.store_refresh_threshold)
        continue;
      refresh_session(session);
    }
  }
}

void DiagnosisService::refresh_session(
    const std::shared_ptr<const Session>& session) {
  // Lock → snapshot → fold → swap → compact. The fold simulates on THIS
  // thread (the maintenance thread, not a queue worker), and the swap is
  // one shared_ptr store inside the memo: in-flight requests keep
  // decoding the old mapping, later lookups serve the merged one. Faults
  // recorded between the snapshot and the compact survive as journal
  // remainder for the next round. Failures are counted and skipped — a
  // broken disk must never take the serving path down.
  //
  // The cross-process flock serializes folds of one store folder: with
  // sharded serving every worker runs this thread against the shared
  // --store-dir, and two unserialized folds are a lost update (both read
  // version N, the second rename drops the first's learned faults while
  // its journal was already compacted). `busy` skips the round — the
  // holder folds now, this worker's backlog folds on a later tick
  // against the holder's output. The snapshot is taken AFTER the lock so
  // it cannot interleave with the holder's compact.
  try {
    const store::RefreshLock lock = store::RefreshLock::try_acquire(
        options_.store_dir, session->netlist, session->patterns);
    if (!lock.may_fold()) return;
    const std::vector<Fault> folded = session->journal->pending_faults();
    if (folded.empty()) return;
    store::fold_into_store(session->netlist, session->patterns,
                           options_.store_dir, folded, options_.exec);
    auto reader = store::DictReader::open(store::store_path_for(
        options_.store_dir, session->netlist, session->patterns));
    reader->validate_for(session->netlist, session->patterns);
    session->memo->set_store(std::move(reader));
    session->journal->compact(folded);
    refreshes_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    refresh_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("store.refresh_failures").inc();
    std::cerr << "openmdd_serve: store refresh failed: " << e.what() << "\n";
  }
}

void DiagnosisService::drain() {
  while (auto job = queue_.pop()) {
    service_metrics().queue_depth.set(
        static_cast<std::int64_t>(queue_.size()));
    service_metrics().queue_wait_ms.observe(ms_since(job->admitted));
    obs::Trace trace;
    Json response;
    try {
      if (job->has_deadline && Clock::now() >= job->deadline) {
        // Expired while queued: answer without burning a worker on it.
        service_metrics().queue_expired.inc();
        response = make_response(job->request, "timeout");
        response.set("where", "queue");
      } else if (job->has_deadline) {
        CancelToken token(job->deadline);
        response = dispatch(job->request, &token, trace, job->emit);
      } else {
        response = dispatch(job->request, nullptr, trace, job->emit);
      }
    } catch (const std::exception& e) {
      response = error_response(job->request, e.what());
    }
    finish_request(job->request, response, trace, ms_since(job->admitted));
    job->done(std::move(response));
  }
}

void DiagnosisService::submit(Json request, std::function<void(Json)> done,
                              Emit emit) {
  Job job;
  job.emit = std::move(emit);
  job.admitted = Clock::now();
  try {
    if (auto budget = deadline_budget(request, options_.default_deadline)) {
      job.has_deadline = true;
      job.deadline = job.admitted + *budget;
    }
  } catch (const std::exception& e) {
    Json response = error_response(request, e.what());
    count_status(response);
    done(std::move(response));
    return;
  }
  job.request = std::move(request);
  job.done = std::move(done);
  if (!queue_.try_push(std::move(job))) {
    // try_push moves from the job only on success; on rejection it is
    // intact and carries the reject reply.
    service_metrics().queue_rejects.inc();
    Json response = make_response(job.request, "overloaded");
    count_status(response);
    job.done(std::move(response));
  }
}

Json DiagnosisService::handle(const Json& request, const CancelToken* cancel,
                              const Emit& emit) {
  const auto t0 = Clock::now();
  obs::Trace trace;
  Json r;
  try {
    std::optional<CancelToken> own_token;
    if (cancel == nullptr) {
      if (auto budget = deadline_budget(request)) {
        own_token.emplace(t0 + *budget);
        cancel = &*own_token;
      }
    }
    r = dispatch(request, cancel, trace, emit);
  } catch (const std::exception& e) {
    r = error_response(request, e.what());
  }
  finish_request(request, r, trace, ms_since(t0));
  return r;
}

Json DiagnosisService::dispatch(const Json& request,
                                const CancelToken* cancel,
                                obs::Trace& trace, const Emit& emit) {
  if (!request.is_object())
    return error_response(request, "request must be a JSON object");
  const std::string op = request.get_string("op", "diagnose");
  if (op == "diagnose") return handle_diagnose(request, cancel, trace);
  if (op == "diagnose_batch")
    return handle_diagnose_batch(request, cancel, trace, emit);
  if (op == "sleep") return handle_sleep(request, cancel);
  if (op == "ping") {
    Json r = make_response(request, "ok");
    r.set("op", "ping");
    r.set("version", kVersion);
    r.set("kernel", current_kernel().name);
    Json store;
    store.set("enabled", !options_.store_dir.empty());
    if (!options_.store_dir.empty()) store.set("dir", options_.store_dir);
    store.set("format_version", store::kFormatVersion);
    r.set("store", std::move(store));
    return r;
  }
  if (op == "stats") {
    Json r = make_response(request, "ok");
    r.set("op", "stats");
    r.set("stats", stats_json());
    return r;
  }
  if (op == "metrics") {
    Json r = make_response(request, "ok");
    r.set("op", "metrics");
    r.set("metrics", snapshot_to_json(obs::registry().snapshot()));
    return r;
  }
  if (op == "prometheus") {
    // The text exposition over the protocol socket: how the shard router
    // collects worker registries to aggregate under a `shard` label
    // without every worker burning its own metrics HTTP port.
    Json r = make_response(request, "ok");
    r.set("op", "prometheus");
    r.set("text", obs::render_prometheus(obs::registry().snapshot()));
    return r;
  }
  return error_response(request, "unknown op '" + op + "'");
}

DiagnosisService::DiagnoseOutcome DiagnosisService::diagnose_one(
    const Session& session, const DatalogInput& input,
    const std::string& method, const CancelToken* cancel,
    obs::Trace& trace) {
  DiagnoseOutcome out;
  const auto t1 = Clock::now();
  {
    auto datalog_span = trace.span("datalog");
    if (input.is_file) {
      out.log = read_datalog_file(input.value, session.netlist);
    } else {
      std::istringstream in(input.value);
      out.log = read_datalog(in, session.netlist);
    }
  }

  auto context_span = trace.span("context");
  CandidateOptions candidate_options;
  candidate_options.trace_store = session.traces.get();
  DiagnosisContext ctx(session.netlist, session.patterns, out.log,
                       candidate_options, &session.good, session.baseline,
                       &trace);
  if (session.memo) ctx.attach_solo_store(session.memo.get());
  if (session.composites)
    ctx.attach_composite_memo(session.composites.get());
  context_span.close();
  // Consult the persistent store BEFORE scheduling a PPSFP warm: slots it
  // answers are pure mmap decodes, and when it covers every candidate the
  // parallel warm-up is skipped outright (the store-served cold start).
  std::size_t store_warmed = 0;
  if (ctx.solo_store_attached() && session.memo && session.memo->has_store()) {
    auto span = trace.span("store_warm");
    store_warmed = ctx.warm_solo_from_store();
  }
  if (!options_.exec.is_serial() && store_warmed < ctx.n_candidates()) {
    auto warm_span = trace.span("warm");
    ctx.warm_solo_signatures(options_.exec, cancel);
  }
  out.t_context = ms_since(t1);

  const auto t2 = Clock::now();
  if (method == "multiplet" || method == "all") {
    auto span = trace.span("rank:multiplet");
    MultipletOptions opt;
    opt.cancel = cancel;
    out.reports.push_back(diagnose_multiplet(ctx, opt));
  }
  if (method == "slat" || method == "all") {
    auto span = trace.span("rank:slat");
    SlatOptions opt;
    opt.cancel = cancel;
    out.reports.push_back(diagnose_slat(ctx, opt));
  }
  if (method == "single" || method == "all") {
    auto span = trace.span("rank:single");
    SingleFaultOptions opt;
    opt.cancel = cancel;
    out.reports.push_back(diagnose_single_fault(ctx, opt));
  }
  if (out.reports.empty())
    throw std::invalid_argument("unknown method '" + method + "'");
  out.t_diagnose = ms_since(t2);

  out.timed_out = cancel != nullptr && cancel->cancelled();
  for (const DiagnosisReport& r : out.reports) out.timed_out |= r.timed_out;
  out.n_candidates = ctx.n_candidates();
  out.solo_computes = ctx.solo_compute_count();
  return out;
}

Json DiagnosisService::handle_diagnose(const Json& request,
                                       const CancelToken* cancel,
                                       obs::Trace& trace) {
  const auto t0 = Clock::now();
  auto parse_span = trace.span("parse");
  const std::string netlist_path = request.get_string("netlist");
  const std::string patterns_path = request.get_string("patterns");
  if (netlist_path.empty() || patterns_path.empty())
    return error_response(request,
                          "diagnose needs 'netlist' and 'patterns' paths");
  const Json* inline_log = request.find("datalog");
  const std::string datalog_file = request.get_string("datalog_file");
  if ((inline_log == nullptr) == datalog_file.empty())
    return error_response(
        request, "diagnose needs exactly one of 'datalog' (inline text) or "
                 "'datalog_file' (path)");
  const std::string method = request.get_string("method", "multiplet");
  parse_span.close();

  auto session_span = trace.span("session");
  bool cache_hit = false;
  std::shared_ptr<const Session> session;
  try {
    session = cache_.get(netlist_path, patterns_path, &cache_hit);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
  session_span.close();
  const double t_session = ms_since(t0);

  DatalogInput input;
  if (inline_log != nullptr) {
    input.value = inline_log->as_string();
  } else {
    input.is_file = true;
    input.value = datalog_file;
  }
  DiagnoseOutcome outcome;
  try {
    outcome = diagnose_one(*session, input, method, cancel, trace);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }

  auto serialize_span = trace.span("serialize");
  Json response =
      make_response(request, outcome.timed_out ? "timeout" : "ok");
  response.set("op", "diagnose");
  response.set("method", method);
  response.set("kernel", current_kernel().name);
  response.set("cache", cache_hit ? "hit" : "miss");
  if (outcome.timed_out) response.set("partial", true);
  response.set("reports", reports_to_json(outcome.reports, session->netlist));
  // The store-coverage ledger (mirrors the batch "amortization" object):
  // solo_computes counts candidates every serving tier missed — the gap
  // to n_candidates is what memo + dictionary absorbed.
  response.set("n_candidates", outcome.n_candidates);
  response.set("solo_computes", outcome.solo_computes);
  Json timings;
  timings.set("session", t_session);
  timings.set("context", outcome.t_context);
  timings.set("diagnose", outcome.t_diagnose);
  timings.set("total", ms_since(t0));
  response.set("timings_ms", std::move(timings));
  serialize_span.close();
  return response;
}

Json DiagnosisService::handle_diagnose_batch(const Json& request,
                                             const CancelToken* cancel,
                                             obs::Trace& trace,
                                             const Emit& emit) {
  const auto t0 = Clock::now();
  auto parse_span = trace.span("parse");
  const std::string netlist_path = request.get_string("netlist");
  const std::string patterns_path = request.get_string("patterns");
  if (netlist_path.empty() || patterns_path.empty())
    return error_response(
        request, "diagnose_batch needs 'netlist' and 'patterns' paths");
  const std::string method = request.get_string("method", "multiplet");
  if (method != "multiplet" && method != "slat" && method != "single" &&
      method != "all")
    return error_response(request, "unknown method '" + method + "'");

  // Exactly one input form: inline texts, file list, or a directory.
  const Json* inline_logs = request.find("datalogs");
  const Json* file_list = request.find("datalog_files");
  const std::string dir = request.get_string("datalog_dir");
  const int n_forms = (inline_logs != nullptr ? 1 : 0) +
                      (file_list != nullptr ? 1 : 0) + (dir.empty() ? 0 : 1);
  if (n_forms != 1)
    return error_response(request,
                          "diagnose_batch needs exactly one of 'datalogs' "
                          "(inline texts), 'datalog_files' (paths), or "
                          "'datalog_dir' (directory of *.datalog)");
  std::vector<DatalogInput> inputs;
  if (inline_logs != nullptr) {
    if (!inline_logs->is_array())
      return error_response(request, "'datalogs' must be an array of strings");
    for (const Json& d : inline_logs->as_array()) {
      if (!d.is_string())
        return error_response(request,
                              "'datalogs' must be an array of strings");
      inputs.push_back({false, d.as_string()});
    }
  } else if (file_list != nullptr) {
    if (!file_list->is_array())
      return error_response(request,
                            "'datalog_files' must be an array of paths");
    for (const Json& d : file_list->as_array()) {
      if (!d.is_string())
        return error_response(request,
                              "'datalog_files' must be an array of paths");
      inputs.push_back({true, d.as_string()});
    }
  } else {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
      return error_response(request, "cannot read datalog_dir '" + dir +
                                         "': " + ec.message());
    for (const auto& entry : it)
      if (entry.is_regular_file() && entry.path().extension() == ".datalog")
        inputs.push_back({true, entry.path().string()});
    // Directory order is filesystem-dependent; the batch index order is
    // part of the response (and of the CI byte-identity gate), so fix it
    // byte-wise over unsigned chars — deliberately NOT strcoll or any
    // locale collation, which would order "B2" / "a1" differently across
    // hosts.
    std::sort(inputs.begin(), inputs.end(),
              [](const DatalogInput& a, const DatalogInput& b) {
                return std::lexicographical_compare(
                    a.value.begin(), a.value.end(), b.value.begin(),
                    b.value.end(), [](char x, char y) {
                      return static_cast<unsigned char>(x) <
                             static_cast<unsigned char>(y);
                    });
              });
  }
  if (inputs.empty())
    return error_response(request, "diagnose_batch: no datalogs given");

  const bool stream = emit != nullptr && request.get_bool("stream");
  std::size_t threads =
      static_cast<std::size_t>(std::max(0.0, request.get_number("threads")));
  if (threads == 0) threads = options_.batch_threads;
  if (threads == 0) threads = options_.n_workers;
  threads = std::clamp<std::size_t>(threads, 1, inputs.size());
  parse_span.close();

  // Pin the session for the whole batch: eviction pressure from other
  // traffic must not drop the shared memos mid-stream.
  SessionCache::Pin pin = cache_.pin(netlist_path, patterns_path);
  auto session_span = trace.span("session");
  bool cache_hit = false;
  std::shared_ptr<const Session> session;
  try {
    session = cache_.get(netlist_path, patterns_path, &cache_hit);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
  session_span.close();
  const double t_session = ms_since(t0);

  VolumeOptions vopt;
  vopt.systematic_fraction = std::clamp(
      request.get_number("systematic_fraction", vopt.systematic_fraction),
      0.0, 1.0);
  if (const Json* v = request.find("min_recurrences"))
    vopt.min_recurrences =
        static_cast<std::size_t>(std::max(0.0, v->as_number()));
  if (const Json* v = request.find("top_k"))
    vopt.top_k = static_cast<std::size_t>(std::max(0.0, v->as_number()));
  VolumeAggregator aggregator(inputs.size(), vopt);

  const auto t1 = Clock::now();
  auto diagnose_span = trace.span("diagnose");
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> total_candidates{0};
  std::atomic<std::uint64_t> total_solo_computes{0};
  std::atomic<std::uint64_t> n_item_errors{0};
  // Streamed items go out in index order regardless of which worker
  // finishes first — clients see a deterministic sequence. The buffer's
  // high-water mark records how far completion ran ahead of emission.
  ReorderBuffer reorder(inputs.size(),
                        stream ? ReorderBuffer::Sink(emit) : nullptr);

  const auto worker = [&] {
    for (;;) {
      const std::size_t i =
          next.fetch_add(1, std::memory_order_relaxed);
      if (i >= inputs.size()) return;
      const auto item_t0 = Clock::now();
      Json item;
      if (stream) {
        if (const Json* id = request.find("id")) item.set("id", *id);
        item.set("op", "diagnose_batch_item");
      }
      item.set("index", i);
      if (inputs[i].is_file) item.set("datalog_file", inputs[i].value);
      try {
        obs::Trace item_trace;  // per-item spans stay off the batch trace
        DiagnoseOutcome out =
            diagnose_one(*session, inputs[i], method, cancel, item_trace);
        item.set("status", out.timed_out ? "timeout" : "ok");
        if (out.timed_out) item.set("partial", true);
        item.set("reports", reports_to_json(out.reports, session->netlist));
        aggregator.record(VolumeAggregator::make_record(
            i, out.log, out.reports, out.timed_out));
        total_candidates.fetch_add(out.n_candidates,
                                   std::memory_order_relaxed);
        total_solo_computes.fetch_add(out.solo_computes,
                                      std::memory_order_relaxed);
      } catch (const std::exception& e) {
        item.set("status", "error");
        item.set("error", e.what());
        DatalogVolumeRecord failed;
        failed.index = i;
        aggregator.record(std::move(failed));
        n_item_errors.fetch_add(1, std::memory_order_relaxed);
        volume_metrics().datalog_errors.inc();
      }
      volume_metrics().datalog_ms.observe(ms_since(item_t0));
      reorder.publish(i, std::move(item));
    }
  };

  // The batch occupies ONE queue worker; datalog-level parallelism runs
  // on private threads (the pool's nested-region guard would serialize
  // a parallel_for issued from inside a pool worker).
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> group;
    group.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) group.emplace_back(worker);
    for (std::thread& t : group) t.join();
  }
  diagnose_span.close();
  const double t_diagnose = ms_since(t1);

  auto summarize_span = trace.span("volume");
  const VolumeSummary summary = aggregator.summarize();
  summarize_span.close();

  const bool timed_out = cancel != nullptr && cancel->cancelled();
  Json response = make_response(request, timed_out ? "timeout" : "ok");
  response.set("op", "diagnose_batch");
  response.set("method", method);
  response.set("kernel", current_kernel().name);
  response.set("cache", cache_hit ? "hit" : "miss");
  if (timed_out) response.set("partial", true);
  response.set("n_datalogs", inputs.size());
  response.set("n_errors", n_item_errors.load());
  response.set("threads", threads);
  if (stream) {
    response.set("results_streamed", true);
    response.set("reorder_high_water", reorder.high_water());
    volume_metrics().reorder_high_water.set(
        static_cast<std::int64_t>(reorder.high_water()));
  } else {
    JsonArray results;
    std::vector<Json> items = reorder.take_items();
    results.reserve(items.size());
    for (Json& item : items) results.push_back(std::move(item));
    response.set("results", Json(std::move(results)));
  }
  response.set("volume", volume_to_json(summary, session->netlist));
  // The amortization ledger: with shared memos, solo_computes across the
  // batch approaches the distinct-candidate count of the whole stream
  // instead of the sum of per-datalog candidate counts.
  Json amortization;
  amortization.set("candidates", total_candidates.load());
  amortization.set("solo_computes", total_solo_computes.load());
  response.set("amortization", std::move(amortization));
  Json timings;
  timings.set("session", t_session);
  timings.set("diagnose", t_diagnose);
  timings.set("total", ms_since(t0));
  response.set("timings_ms", std::move(timings));

  volume_metrics().batches.inc();
  volume_metrics().datalogs.inc(inputs.size());
  volume_metrics().candidates.inc(total_candidates.load());
  volume_metrics().solo_computes.inc(total_solo_computes.load());
  volume_metrics().systematic.inc(summary.n_systematic_datalogs);
  volume_metrics().random.inc(summary.n_random_datalogs);
  volume_metrics().batch_ms.observe(ms_since(t0));
  return response;
}

Json DiagnosisService::handle_sleep(const Json& request,
                                    const CancelToken* cancel) {
  // Test / load-shaping aid: occupies a worker for `ms` (capped), honoring
  // the deadline — lets the backpressure and queue-timeout paths be
  // exercised without a heavy circuit.
  const double ms = std::clamp(request.get_number("ms", 0.0), 0.0, 60000.0);
  const auto until = Clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         ms * 1000.0));
  while (Clock::now() < until) {
    if (cancel != nullptr && cancel->cancelled())
      return make_response(request, "timeout");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Json r = make_response(request, "ok");
  r.set("op", "sleep");
  return r;
}

void DiagnosisService::count_status(const Json& response) {
  const std::string status = response.get_string("status");
  if (status == "ok") {
    ++n_ok_;
    service_metrics().ok.inc();
  } else if (status == "timeout") {
    ++n_timeout_;
    service_metrics().timeout.inc();
  } else if (status == "overloaded") {
    ++n_overloaded_;
    service_metrics().overloaded.inc();
  } else {
    ++n_error_;
    service_metrics().error.inc();
  }
}

void DiagnosisService::finish_request(const Json& request, Json& response,
                                      const obs::Trace& trace,
                                      double total_ms) {
  count_status(response);
  service_metrics().request_ms.observe(total_ms);
  if (response.get_bool("partial")) service_metrics().partials.inc();
  if (request.is_object() && request.get_bool("trace"))
    response.set("trace", trace_to_json(trace));
  if (options_.slow_ms > 0.0 && total_ms >= options_.slow_ms) {
    service_metrics().slow_requests.inc();
    Json record;
    record.set("event", "slow_request");
    if (const Json* id = request.find("id")) record.set("id", *id);
    record.set("op", request.get_string("op", "diagnose"));
    const std::string method = request.get_string("method");
    if (!method.empty()) record.set("method", method);
    record.set("status", response.get_string("status"));
    record.set("total_ms", total_ms);
    Json stages;
    for (const obs::Trace::SpanRecord& s : trace.spans())
      if (s.depth == 0) stages.set(s.stage, s.ms);
    record.set("stages_ms", std::move(stages));
    std::ostream& out =
        options_.slow_log != nullptr ? *options_.slow_log : std::cerr;
    std::lock_guard<std::mutex> lock(slow_log_mutex_);
    out << record.dump() << "\n";
    out.flush();
  }
}

Json DiagnosisService::stats_json() const {
  Json s;
  s.set("version", kVersion);
  s.set("kernel", current_kernel().name);
  s.set("workers", options_.n_workers);
  const SessionCacheStats cs = cache_.stats();
  Json cache;
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  cache.set("max_bytes", cs.max_bytes);
  s.set("cache", std::move(cache));
  const auto qs = queue_.stats();
  Json queue;
  queue.set("accepted", qs.accepted);
  queue.set("rejected", qs.rejected);
  queue.set("high_water", qs.high_water);
  queue.set("depth", qs.depth);
  queue.set("capacity", qs.capacity);
  s.set("queue", std::move(queue));
  Json requests;
  requests.set("ok", n_ok_.load());
  requests.set("error", n_error_.load());
  requests.set("timeout", n_timeout_.load());
  requests.set("overloaded", n_overloaded_.load());
  s.set("requests", std::move(requests));

  // Per-session memo layers, aggregated across resident sessions with one
  // uniform shape per layer (hits/misses/evictions/entries/bytes).
  const MemoLayerStats ls = cache_.layer_stats();
  const auto memo_json = [](std::uint64_t hits, std::uint64_t misses,
                            std::uint64_t evictions, std::size_t entries,
                            std::size_t bytes) {
    Json m;
    m.set("hits", hits);
    m.set("misses", misses);
    m.set("evictions", evictions);
    m.set("entries", entries);
    m.set("bytes", bytes);
    return m;
  };
  Json memos;
  Json signature =
      memo_json(ls.signature.hits, ls.signature.misses,
                ls.signature.evictions, ls.signature.entries,
                ls.signature.approx_bytes);
  signature.set("store_hits", ls.signature.store_hits);
  signature.set("store_misses", ls.signature.store_misses);
  memos.set("signature", std::move(signature));
  memos.set("trace", memo_json(ls.traces.hits, ls.traces.misses,
                               ls.traces.evictions, ls.traces.entries,
                               ls.traces.approx_bytes));
  Json composite =
      memo_json(ls.composites.hits, ls.composites.misses,
                ls.composites.evictions, ls.composites.entries,
                ls.composites.approx_bytes);
  composite.set("spill_hits", ls.composites.spill_hits);
  composite.set("spill_misses", ls.composites.spill_misses);
  memos.set("composite", std::move(composite));
  s.set("memos", std::move(memos));

  Json store;
  store.set("enabled", !options_.store_dir.empty());
  if (!options_.store_dir.empty()) store.set("dir", options_.store_dir);
  store.set("format_version", store::kFormatVersion);
  store.set("sessions", ls.store_sessions);
  store.set("entries", ls.store_entries);
  store.set("bytes_mapped", ls.store_bytes_mapped);
  store.set("hits", ls.signature.store_hits);
  store.set("misses", ls.signature.store_misses);
  store.set("refresh_threshold", options_.store_refresh_threshold);
  store.set("refreshes", refreshes_.load());
  store.set("refresh_failures", refresh_failures_.load());
  Json journal;
  journal.set("sessions", ls.journal_sessions);
  journal.set("pending", ls.journal_pending);
  store.set("journal", std::move(journal));
  Json spill;
  spill.set("sessions", ls.spill_sessions);
  spill.set("entries", ls.spill_entries);
  spill.set("bytes", ls.spill_bytes);
  store.set("spill", std::move(spill));
  s.set("store", std::move(store));
  return s;
}

}  // namespace mdd::server
