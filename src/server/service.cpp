#include "server/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/version.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "server/result_json.hpp"
#include "workload/textio.hpp"

namespace mdd::server {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Echoes the request id (verbatim, any JSON type) into a fresh response.
Json make_response(const Json& request, std::string_view status) {
  Json r;
  if (const Json* id = request.find("id")) r.set("id", *id);
  r.set("status", std::string(status));
  return r;
}

Json error_response(const Json& request, const std::string& what) {
  Json r = make_response(request, "error");
  r.set("error", what);
  return r;
}

}  // namespace

DiagnosisService::DiagnosisService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_bytes, options.memo_bytes),
      queue_(options.queue_depth),
      pool_(std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options.n_workers))) {
  pump_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { drain(); });
  });
}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::shutdown() {
  queue_.close();
  if (!joined_ && pump_.joinable()) {
    pump_.join();
    joined_ = true;
  }
}

void DiagnosisService::drain() {
  while (auto job = queue_.pop()) {
    Json response;
    try {
      if (job->has_deadline && Clock::now() >= job->deadline) {
        // Expired while queued: answer without burning a worker on it.
        response = make_response(job->request, "timeout");
        response.set("where", "queue");
      } else if (job->has_deadline) {
        CancelToken token(job->deadline);
        response = dispatch(job->request, &token);
      } else {
        response = dispatch(job->request, nullptr);
      }
    } catch (const std::exception& e) {
      response = error_response(job->request, e.what());
    }
    count_status(response);
    job->done(std::move(response));
  }
}

void DiagnosisService::submit(Json request, std::function<void(Json)> done) {
  Job job;
  job.has_deadline = false;
  double deadline_ms = request.get_number("deadline_ms", 0.0);
  if (deadline_ms <= 0.0 && options_.default_deadline.count() > 0)
    deadline_ms = static_cast<double>(options_.default_deadline.count());
  if (deadline_ms > 0.0) {
    job.has_deadline = true;
    job.deadline = Clock::now() + std::chrono::microseconds(static_cast<
                                      std::int64_t>(deadline_ms * 1000.0));
  }
  job.request = std::move(request);
  job.done = std::move(done);
  if (!queue_.try_push(std::move(job))) {
    // try_push moves from the job only on success; on rejection it is
    // intact and carries the reject reply.
    Json response = make_response(job.request, "overloaded");
    count_status(response);
    job.done(std::move(response));
  }
}

Json DiagnosisService::handle(const Json& request, const CancelToken* cancel) {
  try {
    if (cancel == nullptr) {
      const double deadline_ms = request.get_number("deadline_ms", 0.0);
      if (deadline_ms > 0.0) {
        CancelToken token = CancelToken::after(
            std::chrono::milliseconds(static_cast<long>(deadline_ms)));
        Json r = dispatch(request, &token);
        count_status(r);
        return r;
      }
    }
    Json r = dispatch(request, cancel);
    count_status(r);
    return r;
  } catch (const std::exception& e) {
    Json r = error_response(request, e.what());
    count_status(r);
    return r;
  }
}

Json DiagnosisService::dispatch(const Json& request,
                                const CancelToken* cancel) {
  if (!request.is_object())
    return error_response(request, "request must be a JSON object");
  const std::string op = request.get_string("op", "diagnose");
  if (op == "diagnose") return handle_diagnose(request, cancel);
  if (op == "sleep") return handle_sleep(request, cancel);
  if (op == "ping") {
    Json r = make_response(request, "ok");
    r.set("op", "ping");
    r.set("version", kVersion);
    return r;
  }
  if (op == "stats") {
    Json r = make_response(request, "ok");
    r.set("op", "stats");
    r.set("stats", stats_json());
    return r;
  }
  return error_response(request, "unknown op '" + op + "'");
}

Json DiagnosisService::handle_diagnose(const Json& request,
                                       const CancelToken* cancel) {
  const auto t0 = Clock::now();
  const std::string netlist_path = request.get_string("netlist");
  const std::string patterns_path = request.get_string("patterns");
  if (netlist_path.empty() || patterns_path.empty())
    return error_response(request,
                          "diagnose needs 'netlist' and 'patterns' paths");
  const Json* inline_log = request.find("datalog");
  const std::string datalog_file = request.get_string("datalog_file");
  if ((inline_log == nullptr) == datalog_file.empty())
    return error_response(
        request, "diagnose needs exactly one of 'datalog' (inline text) or "
                 "'datalog_file' (path)");
  const std::string method = request.get_string("method", "multiplet");

  bool cache_hit = false;
  std::shared_ptr<const Session> session;
  try {
    session = cache_.get(netlist_path, patterns_path, &cache_hit);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
  const double t_session = ms_since(t0);

  const auto t1 = Clock::now();
  Datalog log;
  try {
    if (inline_log != nullptr) {
      std::istringstream in(inline_log->as_string());
      log = read_datalog(in, session->netlist);
    } else {
      log = read_datalog_file(datalog_file, session->netlist);
    }
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }

  CandidateOptions candidate_options;
  candidate_options.trace_store = session->traces.get();
  DiagnosisContext ctx(session->netlist, session->patterns, log,
                       candidate_options, &session->good, session->baseline);
  if (session->memo) ctx.attach_solo_store(session->memo.get());
  if (!options_.exec.is_serial())
    ctx.warm_solo_signatures(options_.exec, cancel);
  const double t_context = ms_since(t1);

  const auto t2 = Clock::now();
  std::vector<DiagnosisReport> reports;
  if (method == "multiplet" || method == "all") {
    MultipletOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_multiplet(ctx, opt));
  }
  if (method == "slat" || method == "all") {
    SlatOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_slat(ctx, opt));
  }
  if (method == "single" || method == "all") {
    SingleFaultOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_single_fault(ctx, opt));
  }
  if (reports.empty())
    return error_response(request, "unknown method '" + method + "'");
  const double t_diagnose = ms_since(t2);

  bool timed_out = cancel != nullptr && cancel->cancelled();
  for (const DiagnosisReport& r : reports) timed_out |= r.timed_out;

  Json response = make_response(request, timed_out ? "timeout" : "ok");
  response.set("op", "diagnose");
  response.set("method", method);
  response.set("cache", cache_hit ? "hit" : "miss");
  if (timed_out) response.set("partial", true);
  response.set("reports", reports_to_json(reports, session->netlist));
  Json timings;
  timings.set("session", t_session);
  timings.set("context", t_context);
  timings.set("diagnose", t_diagnose);
  timings.set("total", ms_since(t0));
  response.set("timings_ms", std::move(timings));
  return response;
}

Json DiagnosisService::handle_sleep(const Json& request,
                                    const CancelToken* cancel) {
  // Test / load-shaping aid: occupies a worker for `ms` (capped), honoring
  // the deadline — lets the backpressure and queue-timeout paths be
  // exercised without a heavy circuit.
  const double ms = std::clamp(request.get_number("ms", 0.0), 0.0, 60000.0);
  const auto until = Clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         ms * 1000.0));
  while (Clock::now() < until) {
    if (cancel != nullptr && cancel->cancelled())
      return make_response(request, "timeout");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Json r = make_response(request, "ok");
  r.set("op", "sleep");
  return r;
}

void DiagnosisService::count_status(const Json& response) {
  const std::string status = response.get_string("status");
  if (status == "ok") ++n_ok_;
  else if (status == "timeout") ++n_timeout_;
  else if (status == "overloaded") ++n_overloaded_;
  else ++n_error_;
}

Json DiagnosisService::stats_json() const {
  Json s;
  s.set("version", kVersion);
  s.set("workers", options_.n_workers);
  const SessionCacheStats cs = cache_.stats();
  Json cache;
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  cache.set("max_bytes", cs.max_bytes);
  s.set("cache", std::move(cache));
  const auto qs = queue_.stats();
  Json queue;
  queue.set("accepted", qs.accepted);
  queue.set("rejected", qs.rejected);
  queue.set("high_water", qs.high_water);
  queue.set("depth", qs.depth);
  queue.set("capacity", qs.capacity);
  s.set("queue", std::move(queue));
  Json requests;
  requests.set("ok", n_ok_.load());
  requests.set("error", n_error_.load());
  requests.set("timeout", n_timeout_.load());
  requests.set("overloaded", n_overloaded_.load());
  s.set("requests", std::move(requests));
  return s;
}

}  // namespace mdd::server
