// openmdd — circuit session cache for the diagnosis daemon.
//
// The unit of volume diagnosis is one circuit × thousands of tester
// datalogs; the session cache makes the circuit-level work pay once. A
// session holds the parsed netlist, the parsed pattern set, and the
// good-machine response (simulated once, reused by every per-request
// DiagnosisContext through the precomputed-good path). Sessions are keyed
// by (netlist path, patterns path), LRU-evicted against a byte budget,
// and handed out as shared_ptr — eviction drops the cache's reference,
// in-flight requests keep theirs.
//
// Concurrency: a global mutex guards the index and LRU list only; loading
// (parse + simulate, the slow part) happens under a per-entry mutex, so
// two clients asking for *different* circuits load in parallel while two
// asking for the *same* circuit share one load.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "diag/composite_memo.hpp"
#include "fsim/propagate.hpp"
#include "netlist/netlist.hpp"
#include "server/signature_memo.hpp"
#include "server/trace_memo.hpp"
#include "sim/patterns.hpp"
#include "store/reader.hpp"

namespace mdd::server {

struct Session {
  Netlist netlist;
  PatternSet patterns;
  /// Good-machine response over the full pattern set (simulate() output).
  PatternSet good;
  /// Cross-request solo-signature memo (full-window datalogs only);
  /// thread-safe, so it lives happily inside a shared const Session.
  std::unique_ptr<SignatureMemo> memo;
  /// Cross-request critical-path-trace memo (thread-safe, like `memo`).
  std::unique_ptr<TraceMemo> traces;
  /// Cross-request composite-signature memo for the multiplet search
  /// (full-window datalogs only; thread-safe, like `memo`).
  std::unique_ptr<CompositeMemo> composites;
  /// Shared propagator good-machine state ([block][net] values + PO
  /// response); read-only after load, reused by every full-window context
  /// so requests skip the per-request whole-circuit good simulation.
  std::shared_ptr<const PropagatorBaseline> baseline;
  /// Persistent dictionary store for this exact (netlist, patterns), if
  /// the cache's store directory held a matching valid file; also wired
  /// into `memo` as its disk tier. mmapped bytes are NOT charged against
  /// the cache budget — they live in the page cache, not the heap. This
  /// member is the reader attached at LOAD time; a background refresh may
  /// swap a newer one into the memo (memo->store_reader() is current).
  std::shared_ptr<const store::DictReader> dict;
  /// Store-miss journal (workload-learned universes), present iff the
  /// cache has a store directory; wired into `memo` so every simulated
  /// signature is recorded for the next refresh. Fail-open.
  std::shared_ptr<store::FaultJournal> journal;
  /// Composite-signature disk tier, present iff the cache has a store
  /// directory; wired into `composites`. Fail-open.
  std::shared_ptr<store::CompositeSpill> spill;
  std::size_t approx_bytes = 0;
};

/// Rough in-memory footprint used for the cache budget (bit-matrix
/// payloads exactly, netlist structures by a per-net constant).
std::size_t approx_session_bytes(const Session& session);

struct SessionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< calls that performed (or joined) a load
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t max_bytes = 0;
};

/// Aggregated per-session memo/store accounting across every resident
/// session (op=stats reporting; see DESIGN.md §12).
struct MemoLayerStats {
  SignatureMemoStats signature;
  TraceMemoStats traces;
  CompositeMemoStats composites;
  std::size_t store_sessions = 0;  ///< resident sessions with a store
  std::size_t store_entries = 0;   ///< summed store fault records
  std::size_t store_bytes_mapped = 0;
  std::size_t journal_sessions = 0;  ///< sessions with a live journal
  std::size_t journal_pending = 0;   ///< summed unfolded journal faults
  std::size_t spill_sessions = 0;    ///< sessions with a live spill
  std::size_t spill_entries = 0;     ///< summed spilled composites
  std::size_t spill_bytes = 0;       ///< summed spill file bytes
};

class SessionCache {
 public:
  /// `max_bytes` bounds resident sessions; a single session larger than
  /// the budget is still admitted (then evicted by the next load).
  /// `memo_bytes` is the per-session solo-signature memo budget;
  /// `composite_bytes` the per-session composite-signature memo budget.
  /// A non-empty `store_dir` makes every load look for a prebuilt
  /// dictionary store matching the session's content hashes; a valid
  /// match becomes the memo's disk tier. A corrupt or mismatched file is
  /// logged + counted and the session loads storeless — never an error.
  explicit SessionCache(std::size_t max_bytes,
                        std::size_t memo_bytes = 256ull << 20,
                        std::size_t composite_bytes = 64ull << 20,
                        std::string store_dir = {});

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// Returns the session for (netlist_path, patterns_path), loading it on
  /// miss. Throws std::runtime_error on unreadable/malformed files (the
  /// failed entry is not cached). `was_hit`, if non-null, reports whether
  /// the session was already resident.
  std::shared_ptr<const Session> get(const std::string& netlist_path,
                                     const std::string& patterns_path,
                                     bool* was_hit = nullptr);

  /// RAII eviction pin: while alive, the pinned key is skipped by the LRU
  /// sweep, so a long-running batch keeps its session's memos resident no
  /// matter what other traffic loads. Pinning does NOT load the session
  /// or extend the shared_ptr lifetime — it only vetoes eviction of the
  /// cache's reference. Movable, shareable (counted per key).
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : cache_(std::exchange(other.cache_, nullptr)),
          key_(std::move(other.key_)) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        cache_ = std::exchange(other.cache_, nullptr);
        key_ = std::move(other.key_);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    void release();

   private:
    friend class SessionCache;
    Pin(SessionCache* cache, std::string key)
        : cache_(cache), key_(std::move(key)) {}
    SessionCache* cache_ = nullptr;
    std::string key_;
  };

  /// Pins (netlist_path, patterns_path) against eviction for the pin's
  /// lifetime. Valid before the session is loaded (the pin applies the
  /// moment it is admitted).
  Pin pin(const std::string& netlist_path, const std::string& patterns_path);

  SessionCacheStats stats() const;

  /// Byte-accounting invariant for tests: recomputes the resident total
  /// from the loaded entries and cross-checks the LRU index bookkeeping
  /// (every LRU key resolves to a loaded entry, `lru_pos_` points at its
  /// node, pins never hold negative counts). `detail` names the first
  /// violated invariant. Meaningful at quiescent points — an entry whose
  /// load is mid-flight is admitted to the LRU only after its bytes are
  /// accounted, but the check itself takes the cache lock, not the
  /// per-entry load locks.
  struct AccountingCheck {
    bool ok = true;
    std::size_t accounted = 0;   ///< the running `bytes_` total
    std::size_t recomputed = 0;  ///< sum of resident approx_bytes
    std::string detail;
  };
  AccountingCheck check_accounting() const;

  /// Sums the memo/store stats of every loaded resident session.
  MemoLayerStats layer_stats() const;

  /// Snapshot of every fully loaded resident session (the background
  /// store-refresh thread walks these looking for journal backlog).
  std::vector<std::shared_ptr<const Session>> resident_sessions() const;

  const std::string& store_dir() const { return store_dir_; }

 private:
  struct Entry {
    std::mutex load_mutex;
    std::shared_ptr<const Session> session;  // null until loaded
  };
  using Key = std::string;  // netlist_path + '\n' + patterns_path

  void evict_over_budget_locked();

  const std::size_t max_bytes_;
  const std::size_t memo_bytes_;
  const std::size_t composite_bytes_;
  const std::string store_dir_;  ///< empty = no persistent store
  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<Entry>> entries_;
  std::list<Key> lru_;  ///< front = most recent; loaded entries only
  std::unordered_map<Key, std::list<Key>::iterator> lru_pos_;
  std::unordered_map<Key, std::size_t> pins_;  ///< eviction vetoes per key
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mdd::server
