#include "server/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/version.hpp"
#include "obs/metrics.hpp"
#include "server/serve.hpp"

namespace mdd::server {

namespace {

struct RouterMetrics {
  obs::Counter& connections = obs::registry().counter("router.connections");
  obs::Counter& requests_routed =
      obs::registry().counter("router.requests_routed");
  /// Typed shard_failed responses synthesized for requests whose worker
  /// died (or never came back) — the lines a hung connection would have
  /// swallowed.
  obs::Counter& shard_failures =
      obs::registry().counter("router.shard_failures");
  obs::Counter& respawns = obs::registry().counter("router.respawns");
  obs::Counter& heartbeat_kills =
      obs::registry().counter("router.heartbeat_kills");
  obs::Counter& parse_errors = obs::registry().counter("router.parse_errors");
};

RouterMetrics& router_metrics() {
  static RouterMetrics m;
  return m;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: the bit mixer behind the rendezvous weights.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool blank(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

const char* state_name(int state) {
  switch (state) {
    case 0: return "down";
    case 1: return "starting";
    default: return "live";
  }
}

std::string shard_failed_line(const Json* id, std::size_t shard) {
  Json r;
  if (id != nullptr) r.set("id", *id);
  r.set("status", "error");
  r.set("error", "shard_failed");
  r.set("shard", shard);
  return r.dump();
}

Json local_error(const Json& request, const std::string& what) {
  Json r;
  if (const Json* id = request.find("id")) r.set("id", *id);
  r.set("status", "error");
  r.set("error", what);
  return r;
}

/// Field-wise sum of worker stats objects: numbers add, objects recurse
/// (union, first-seen key order), everything else keeps the first shard's
/// value (version strings, store dirs, bools).
void merge_sum(Json& acc, const Json& add) {
  if (acc.is_null()) {  // first shard seeds the aggregate
    acc = add;
    return;
  }
  if (acc.is_number() && add.is_number()) {
    acc = Json(acc.as_number() + add.as_number());
    return;
  }
  if (acc.is_object() && add.is_object()) {
    for (const auto& [key, value] : add.as_object()) {
      if (const Json* have = acc.find(key)) {
        Json merged = *have;
        merge_sum(merged, value);
        acc.set(key, std::move(merged));
      } else {
        acc.set(key, value);
      }
    }
  }
}

/// One ping over a fresh connection: true iff the worker answered within
/// `reply_ms`. Workers answer pings on their reader thread, so a shard
/// that is merely saturated with diagnosis work still passes.
bool probe_shard(const std::string& path, int connect_ms, int reply_ms) {
  try {
    UdsLineClient probe(path, connect_ms);
    probe.send_line("{\"op\":\"ping\"}");
    return probe.recv_line_for(reply_ms).has_value();
  } catch (const std::exception&) {
    return false;
  }
}

/// The router side of one client connection: serialized verbatim writes
/// with a sticky failure latch (a client that hung up stops costing us
/// write attempts but never throws into a pump thread).
struct ClientConn {
  explicit ClientConn(int fd) : link(fd) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (write_failed) return;
    try {
      link.send_line(line);
    } catch (const std::exception&) {
      write_failed = true;
    }
  }

  LineClient link;
  std::mutex write_mutex;
  bool write_failed = false;
};

struct InflightEntry {
  Json id;            ///< the request's `id` value, echoed in failures
  bool has_id = false;
  std::size_t count = 0;  ///< same id may be in flight more than once
};

/// One upstream worker connection owned by one client connection; the
/// pump thread forwards worker lines verbatim and synthesizes typed
/// shard_failed responses if the worker dies with requests in flight.
struct Upstream {
  std::size_t shard = 0;
  std::uint64_t generation = 0;
  std::unique_ptr<LineClient> link;
  std::mutex send_mutex;

  std::mutex inflight_mutex;
  std::unordered_map<std::string, InflightEntry> inflight;  ///< key=id dump
  bool drained = false;  ///< pump exited; no further registrations
  std::thread pump;
};

constexpr char kAnonKey[] = "\x01anon";  ///< requests without an `id`

void pump_main(Upstream* up, ClientConn* conn) {
  for (;;) {
    std::string line;
    try {
      line = up->link->recv_line();
    } catch (const std::exception&) {
      break;  // worker hung up (exit, kill, or shutdown)
    }
    // A line is FINAL for its id unless it is a streamed batch item; the
    // line itself is forwarded untouched either way (byte identity).
    bool is_final = true;
    std::string key = kAnonKey;
    try {
      const Json response = Json::parse(line);
      is_final = response.get_string("op") != "diagnose_batch_item";
      if (const Json* id = response.find("id")) key = id->dump();
    } catch (const std::exception&) {
    }
    conn->write_line(line);
    if (is_final) {
      std::lock_guard<std::mutex> lock(up->inflight_mutex);
      const auto it = up->inflight.find(key);
      if (it != up->inflight.end() && --it->second.count == 0)
        up->inflight.erase(it);
    }
  }
  // Worker gone: every request still in flight gets a typed error line
  // instead of a hung connection.
  std::vector<std::string> failures;
  {
    std::lock_guard<std::mutex> lock(up->inflight_mutex);
    up->drained = true;
    for (const auto& [key, entry] : up->inflight)
      for (std::size_t k = 0; k < entry.count; ++k)
        failures.push_back(shard_failed_line(
            entry.has_id ? &entry.id : nullptr, up->shard));
    up->inflight.clear();
  }
  for (const std::string& failure : failures) {
    router_metrics().shard_failures.inc();
    conn->write_line(failure);
  }
}

/// Wakes the pump (shutdown unblocks a blocked read) and joins it.
void retire_upstream(std::unique_ptr<Upstream> up) {
  if (up->link) ::shutdown(up->link->fd(), SHUT_RDWR);
  if (up->pump.joinable()) up->pump.join();
}

}  // namespace

std::size_t pick_shard(std::string_view key, std::size_t n_shards) {
  if (n_shards <= 1) return 0;
  const std::uint64_t key_hash = fnv1a64(key);
  std::size_t best = 0;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < n_shards; ++i) {
    const std::uint64_t weight =
        mix64(key_hash ^ mix64(static_cast<std::uint64_t>(i) + 1));
    if (i == 0 || weight > best_weight) {
      best = i;
      best_weight = weight;
    }
  }
  return best;
}

ShardRouter::ShardRouter(RouterOptions options, std::ostream& log)
    : options_(std::move(options)), log_(log) {}

ShardRouter::~ShardRouter() { shutdown_workers(); }

void ShardRouter::log_event(const Json& record) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_ << record.dump() << "\n";
  log_.flush();
}

void ShardRouter::spawn_locked(Shard& shard) {
  std::vector<std::string> args = options_.worker_argv;
  args.push_back("--uds");
  args.push_back(shard.socket_path);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const auto now = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child of a threaded parent: only async-signal-safe calls before
    // exec. Every daemon fd is CLOEXEC, so the worker starts clean.
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  if (pid < 0) {
    shard.state = Shard::State::down;
    shard.respawn_after =
        now + std::chrono::milliseconds(shard.backoff_ms);
    Json record;
    record.set("event", "shard_spawn_failed");
    record.set("shard", shard.index);
    record.set("error", std::strerror(errno));
    log_event(record);
    return;
  }
  ++shard.generation;
  if (shard.generation > 1) {
    ++shard.respawns;
    router_metrics().respawns.inc();
  }
  shard.pid = pid;
  shard.state = Shard::State::starting;
  shard.spawned_at = now;
  shard.missed_beats = 0;
  Json record;
  record.set("event", "shard_spawn");
  record.set("shard", shard.index);
  record.set("pid", pid);
  record.set("generation", shard.generation);
  log_event(record);
}

void ShardRouter::start() {
  if (options_.n_shards == 0)
    throw std::runtime_error("router: need at least one shard");
  if (options_.worker_argv.empty())
    throw std::runtime_error("router: empty worker command line");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.resize(options_.n_shards);
    for (std::size_t i = 0; i < options_.n_shards; ++i) {
      Shard& shard = shards_[i];
      shard.index = i;
      shard.socket_path =
          options_.socket_dir + "/shard-" + std::to_string(i) + ".sock";
      if (shard.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw std::runtime_error("router: socket path too long: " +
                                 shard.socket_path);
      shard.backoff_ms = options_.respawn_backoff_ms;
      spawn_locked(shard);
    }
  }
  supervisor_ = std::thread([this] { supervise(); });

  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.ready_timeout_ms + 5000);
  const auto all_live = [this] {
    return std::all_of(shards_.begin(), shards_.end(), [](const Shard& s) {
      return s.state == Shard::State::live;
    });
  };
  state_cv_.wait_until(lock, deadline,
                       [&] { return stopping_ || all_live(); });
  if (!all_live())
    throw std::runtime_error("router: shard workers failed to become ready");
}

void ShardRouter::supervise() {
  using Clock = std::chrono::steady_clock;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto now = Clock::now();

    // Reap exits. A worker that died is respawned after its backoff;
    // crash-looping (death within 2s of readiness, or before it) doubles
    // the backoff up to 5s so a broken binary cannot busy-spin the box.
    for (Shard& shard : shards_) {
      if (shard.pid <= 0) continue;
      int status = 0;
      if (::waitpid(shard.pid, &status, WNOHANG) != shard.pid) continue;
      const bool early_death =
          shard.state != Shard::State::live ||
          now - shard.ready_at < std::chrono::seconds(2);
      shard.backoff_ms =
          early_death ? std::min(shard.backoff_ms * 2, 5000)
                      : options_.respawn_backoff_ms;
      Json record;
      record.set("event", "shard_exit");
      record.set("shard", shard.index);
      record.set("pid", shard.pid);
      record.set("exit_status", status);
      record.set("backoff_ms", shard.backoff_ms);
      log_event(record);
      shard.pid = -1;
      shard.state = Shard::State::down;
      shard.respawn_after =
          now + std::chrono::milliseconds(shard.backoff_ms);
      state_cv_.notify_all();
    }

    for (Shard& shard : shards_)
      if (shard.state == Shard::State::down && shard.pid < 0 &&
          now >= shard.respawn_after)
        spawn_locked(shard);

    // Probes run outside the lock (they block on sockets). Results are
    // applied only if the shard's generation is unchanged — a shard that
    // died and respawned mid-probe must not inherit a stale verdict.
    struct Probe {
      std::size_t index;
      std::string path;
      std::uint64_t generation;
      pid_t pid;
      bool readiness;  ///< else heartbeat
    };
    std::vector<Probe> probes;
    for (Shard& shard : shards_) {
      if (shard.state == Shard::State::starting) {
        probes.push_back({shard.index, shard.socket_path, shard.generation,
                          shard.pid, true});
      } else if (shard.state == Shard::State::live &&
                 options_.heartbeat_ms > 0 && now >= shard.next_beat) {
        probes.push_back({shard.index, shard.socket_path, shard.generation,
                          shard.pid, false});
      }
    }
    lock.unlock();
    std::vector<std::pair<Probe, bool>> verdicts;
    verdicts.reserve(probes.size());
    for (const Probe& probe : probes) {
      const bool ok =
          probe.readiness
              ? probe_shard(probe.path, /*connect_ms=*/100, /*reply_ms=*/1000)
              : probe_shard(probe.path, /*connect_ms=*/1000,
                            std::max(1000, options_.heartbeat_ms));
      verdicts.emplace_back(probe, ok);
    }
    lock.lock();
    const auto after = Clock::now();
    for (const auto& [probe, ok] : verdicts) {
      Shard& shard = shards_[probe.index];
      if (shard.generation != probe.generation) continue;
      if (probe.readiness) {
        if (shard.state != Shard::State::starting) continue;
        if (ok) {
          shard.state = Shard::State::live;
          shard.ready_at = after;
          shard.missed_beats = 0;
          shard.next_beat =
              after + std::chrono::milliseconds(options_.heartbeat_ms);
          state_cv_.notify_all();
          Json record;
          record.set("event", "shard_ready");
          record.set("shard", shard.index);
          record.set("pid", shard.pid);
          record.set("generation", shard.generation);
          log_event(record);
        } else if (after - shard.spawned_at >
                   std::chrono::milliseconds(options_.ready_timeout_ms)) {
          ::kill(probe.pid, SIGKILL);  // reaped (and respawned) next tick
          Json record;
          record.set("event", "shard_ready_timeout");
          record.set("shard", shard.index);
          record.set("pid", probe.pid);
          log_event(record);
        }
      } else {
        if (shard.state != Shard::State::live) continue;
        if (ok) {
          shard.missed_beats = 0;
          shard.next_beat =
              after + std::chrono::milliseconds(options_.heartbeat_ms);
        } else if (++shard.missed_beats >= 2) {
          // Two silent heartbeats: the process is wedged (pings bypass
          // the work queue, so load alone cannot trip this).
          router_metrics().heartbeat_kills.inc();
          ::kill(probe.pid, SIGKILL);
          Json record;
          record.set("event", "shard_heartbeat_kill");
          record.set("shard", shard.index);
          record.set("pid", probe.pid);
          log_event(record);
        } else {
          shard.next_beat = after;  // re-probe on the next tick
        }
      }
    }
    state_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

std::optional<std::uint64_t> ShardRouter::wait_live(std::size_t shard) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.route_wait_ms);
  Shard& s = shards_[shard];
  for (;;) {
    if (s.state == Shard::State::live) return s.generation;
    if (stopping_) return std::nullopt;
    if (state_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (s.state == Shard::State::live) return s.generation;
      return std::nullopt;
    }
  }
}

Json ShardRouter::aggregate_stats() {
  struct ShardView {
    std::size_t index;
    std::string path;
    int state;
    pid_t pid;
    std::uint64_t generation;
    std::uint64_t respawns;
  };
  std::vector<ShardView> views;
  std::uint64_t total_respawns = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Shard& s : shards_) {
      views.push_back({s.index, s.socket_path, static_cast<int>(s.state),
                       s.pid, s.generation, s.respawns});
      total_respawns += s.respawns;
    }
  }

  Json aggregate;
  JsonArray per_shard;
  std::size_t live = 0;
  for (const ShardView& view : views) {
    Json entry;
    entry.set("shard", view.index);
    entry.set("state", state_name(view.state));
    entry.set("pid", view.pid);
    entry.set("generation", view.generation);
    entry.set("respawns", view.respawns);
    if (view.state == 2) {
      ++live;
      try {
        UdsLineClient client(view.path, 1000);
        client.send_line("{\"op\":\"stats\"}");
        if (const auto line = client.recv_line_for(10000)) {
          const Json response = Json::parse(*line);
          if (const Json* stats = response.find("stats")) {
            merge_sum(aggregate, *stats);
            entry.set("stats", *stats);
          }
        }
      } catch (const std::exception&) {
        // Worker died between the snapshot and the scrape: the shards
        // array still reports it, minus a stats object.
      }
    }
    per_shard.push_back(std::move(entry));
  }

  Json router;
  router.set("shards", views.size());
  router.set("live", live);
  router.set("respawns", total_respawns);
  router.set("heartbeat_kills", router_metrics().heartbeat_kills.value());
  router.set("shard_failures", router_metrics().shard_failures.value());
  aggregate.set("shards", std::move(per_shard));
  aggregate.set("router", std::move(router));
  return aggregate;
}

std::string ShardRouter::prometheus_text() {
  std::vector<std::pair<std::size_t, std::string>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Shard& s : shards_)
      if (s.state == Shard::State::live)
        live.emplace_back(s.index, s.socket_path);
  }
  std::vector<std::pair<std::string, std::string>> labeled;
  for (const auto& [index, path] : live) {
    try {
      UdsLineClient client(path, 1000);
      client.send_line("{\"op\":\"prometheus\"}");
      if (const auto line = client.recv_line_for(10000)) {
        const Json response = Json::parse(*line);
        labeled.emplace_back(std::to_string(index),
                             response.get_string("text"));
      }
    } catch (const std::exception&) {
    }
  }
  labeled.emplace_back("router",
                       obs::render_prometheus(obs::registry().snapshot()));
  return obs::merge_prometheus(labeled, "shard");
}

void ShardRouter::shutdown_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workers_down_) return;
    workers_down_ = true;
    stopping_ = true;
    state_cv_.notify_all();
  }
  if (supervisor_.joinable()) supervisor_.join();

  struct Target {
    pid_t pid;
    std::string path;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard& s : shards_) {
      if (s.pid > 0) targets.push_back({s.pid, s.socket_path});
      s.pid = -1;
      s.state = Shard::State::down;
    }
  }
  for (const Target& target : targets) {
    try {
      // Graceful first: the worker drains its queue and acknowledges.
      UdsLineClient client(target.path, 500);
      client.send_line("{\"op\":\"shutdown\"}");
      client.recv_line_for(5000);
    } catch (const std::exception&) {
    }
    bool reaped = false;
    for (int i = 0; i < 100 && !reaped; ++i) {
      if (::waitpid(target.pid, nullptr, WNOHANG) == target.pid)
        reaped = true;
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!reaped) {
      ::kill(target.pid, SIGKILL);
      ::waitpid(target.pid, nullptr, 0);
    }
    ::unlink(target.path.c_str());
  }
}

void ShardRouter::handle_connection(int fd, std::atomic<bool>& stop) {
  router_metrics().connections.inc();
  ClientConn conn(fd);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.insert(fd);
  }
  // Upstream worker connections, one per shard this client has touched.
  // Owned (created, replaced, retired) by this reader thread only; pump
  // threads hold raw pointers that stay valid until the retire join.
  std::map<std::size_t, std::unique_ptr<Upstream>> upstreams;

  const auto route = [&](const std::string& raw, const Json& request,
                         std::size_t shard) {
    const Json* id = request.find("id");
    const auto fail = [&] {
      router_metrics().shard_failures.inc();
      conn.write_line(shard_failed_line(id, shard));
    };
    const std::optional<std::uint64_t> generation = wait_live(shard);
    if (!generation) {
      fail();
      return;
    }
    auto it = upstreams.find(shard);
    if (it != upstreams.end()) {
      bool stale = it->second->generation != *generation;
      if (!stale) {
        std::lock_guard<std::mutex> lock(it->second->inflight_mutex);
        stale = it->second->drained;
      }
      if (stale) {
        retire_upstream(std::move(it->second));
        upstreams.erase(it);
        it = upstreams.end();
      }
    }
    if (it == upstreams.end()) {
      std::string path;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        path = shards_[shard].socket_path;
      }
      auto up = std::make_unique<Upstream>();
      up->shard = shard;
      up->generation = *generation;
      try {
        up->link = std::make_unique<LineClient>(connect_uds_fd(path, 2000));
      } catch (const std::exception&) {
        fail();
        return;
      }
      Upstream* raw_up = up.get();
      up->pump = std::thread([raw_up, &conn] { pump_main(raw_up, &conn); });
      it = upstreams.emplace(shard, std::move(up)).first;
    }
    Upstream* up = it->second.get();
    {
      std::lock_guard<std::mutex> lock(up->inflight_mutex);
      if (up->drained) {
        fail();
        return;
      }
      InflightEntry& entry =
          up->inflight[id != nullptr ? id->dump() : kAnonKey];
      if (entry.count == 0 && id != nullptr) {
        entry.id = *id;
        entry.has_id = true;
      }
      ++entry.count;
    }
    try {
      std::lock_guard<std::mutex> lock(up->send_mutex);
      up->link->send_line(raw);
      router_metrics().requests_routed.inc();
    } catch (const std::exception&) {
      // Worker died mid-send: the pump's EOF path answers the id.
    }
  };

  bool shutdown_server = false;
  for (;;) {
    std::string line;
    try {
      line = conn.link.recv_line();
    } catch (const std::exception&) {
      break;  // client hung up (or a shutdown elsewhere woke us)
    }
    if (blank(line)) continue;
    Json request;
    try {
      request = Json::parse(line);
    } catch (const std::exception& e) {
      router_metrics().parse_errors.inc();
      Json r;
      r.set("status", "error");
      r.set("error", e.what());
      conn.write_line(r.dump());
      continue;
    }
    const std::string op = request.get_string("op", "diagnose");

    if (op == "shutdown") {
      // Drain this connection's in-flight work (matching single-process
      // semantics: shutdown answers after outstanding requests do).
      const auto drain_deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(30);
      for (auto& [shard, up] : upstreams) {
        for (;;) {
          {
            std::lock_guard<std::mutex> lock(up->inflight_mutex);
            if (up->inflight.empty() || up->drained) break;
          }
          if (std::chrono::steady_clock::now() >= drain_deadline) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      for (auto& [shard, up] : upstreams) retire_upstream(std::move(up));
      upstreams.clear();
      // Wake every other client connection so its upstreams close —
      // workers join their connection threads before exiting.
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const int other : conn_fds_)
          if (other != fd) ::shutdown(other, SHUT_RD);
      }
      {
        std::unique_lock<std::mutex> lock(conns_mutex_);
        conns_cv_.wait_for(lock, std::chrono::seconds(10),
                           [&] { return conn_fds_.size() <= 1; });
      }
      shutdown_workers();
      Json ack;
      if (const Json* id = request.find("id")) ack.set("id", *id);
      ack.set("status", "ok");
      ack.set("op", "shutdown");
      conn.write_line(ack.dump());
      shutdown_server = true;
      break;
    }
    if (op == "ping") {
      Json r;
      if (const Json* id = request.find("id")) r.set("id", *id);
      r.set("status", "ok");
      r.set("op", "ping");
      r.set("version", kVersion);
      Json router;
      std::size_t live = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Shard& s : shards_)
          if (s.state == Shard::State::live) ++live;
      }
      router.set("shards", options_.n_shards);
      router.set("live", live);
      r.set("router", std::move(router));
      conn.write_line(r.dump());
      continue;
    }
    if (op == "stats") {
      Json r;
      if (const Json* id = request.find("id")) r.set("id", *id);
      r.set("status", "ok");
      r.set("op", "stats");
      r.set("stats", aggregate_stats());
      conn.write_line(r.dump());
      continue;
    }
    if (op == "prometheus") {
      Json r;
      if (const Json* id = request.find("id")) r.set("id", *id);
      r.set("status", "ok");
      r.set("op", "prometheus");
      r.set("text", prometheus_text());
      conn.write_line(r.dump());
      continue;
    }
    if (op == "shard_of") {
      const std::string netlist = request.get_string("netlist");
      const std::string patterns = request.get_string("patterns");
      if (netlist.empty() || patterns.empty()) {
        conn.write_line(
            local_error(request, "shard_of requires netlist and patterns")
                .dump());
        continue;
      }
      const std::size_t shard =
          pick_shard(netlist + "\n" + patterns, options_.n_shards);
      Json r;
      if (const Json* id = request.find("id")) r.set("id", *id);
      r.set("status", "ok");
      r.set("op", "shard_of");
      r.set("shard", shard);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const Shard& s = shards_[shard];
        r.set("pid", s.pid);
        r.set("state", state_name(static_cast<int>(s.state)));
        r.set("generation", s.generation);
      }
      conn.write_line(r.dump());
      continue;
    }

    // Everything else rides the session placement: requests that name a
    // (netlist, patterns) pair go to their session's shard; keyless ones
    // (sleep without paths, metrics, unknown ops) round-robin.
    const std::string netlist = request.get_string("netlist");
    const std::string patterns = request.get_string("patterns");
    const std::size_t shard =
        (!netlist.empty() && !patterns.empty())
            ? pick_shard(netlist + "\n" + patterns, options_.n_shards)
            : rr_next_.fetch_add(1, std::memory_order_relaxed) %
                  options_.n_shards;
    route(line, request, shard);
  }

  for (auto& [shard, up] : upstreams) retire_upstream(std::move(up));
  upstreams.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.erase(fd);
  }
  conns_cv_.notify_all();
  if (shutdown_server) {
    stop.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
}

int ShardRouter::serve_tcp(
    std::uint16_t port, const std::function<void(std::uint16_t)>& on_listening) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    log_ << "openmdd_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    log_ << "openmdd_serve: bind/listen: " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  listen_fd_ = listen_fd;
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const std::uint16_t bound_port = ntohs(addr.sin_port);
  {
    Json record;
    record.set("event", "router_listening");
    record.set("port", bound_port);
    record.set("shards", options_.n_shards);
    log_event(record);
  }
  if (on_listening) on_listening(bound_port);

  std::atomic<bool> stop{false};
  std::mutex threads_mutex;
  std::vector<std::thread> threads;
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or fatal
    }
    if (stop.load()) {
      ::close(fd);
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex);
    threads.emplace_back(
        [this, &stop](int cfd) {
          try {
            handle_connection(cfd, stop);
          } catch (const std::exception& e) {
            Json record;
            record.set("event", "router_connection_error");
            record.set("fd", cfd);
            record.set("error", e.what());
            log_event(record);
            // The fd itself was closed by ClientConn's unwind; only the
            // registry entry may be left behind.
            {
              std::lock_guard<std::mutex> conns_lock(conns_mutex_);
              conn_fds_.erase(cfd);
            }
            conns_cv_.notify_all();
          }
        },
        fd);
  }
  ::close(listen_fd);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(threads_mutex);
    for (std::thread& t : threads) t.join();
    threads.clear();
  }
  shutdown_workers();
  log_ << "openmdd_serve: router shut down\n";
  return 0;
}

}  // namespace mdd::server
