// openmdd — cross-request critical-path-trace memo for cached sessions.
//
// Companion to SignatureMemo on the candidate-extraction side: the
// critical fault set of a failing (pattern, output) pair is a pure
// function of (netlist, patterns), so datalogs that report overlapping
// failures — repeats, or distinct dies failing the same way — share their
// back-traces. `TraceMemo` is the session-scoped `CptTraceStore`
// implementation: a bounded (pattern, output) → fault-vector map; once
// full, new traces are declined and existing entries keep serving hits.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "diag/candidates.hpp"

namespace mdd::server {

struct TraceMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Always 0 today: a full TraceMemo declines new entries instead of
  /// evicting. Present so op=stats reports every memo layer with one
  /// uniform shape (hits/misses/evictions/entries/bytes).
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t approx_bytes = 0;
};

class TraceMemo final : public CptTraceStore {
 public:
  explicit TraceMemo(std::size_t max_bytes = 64ull << 20)
      : max_bytes_(max_bytes) {}

  std::shared_ptr<const std::vector<Fault>> lookup(std::uint32_t pattern,
                                                   std::uint32_t po) override;
  void store(std::uint32_t pattern, std::uint32_t po,
             std::shared_ptr<const std::vector<Fault>> faults) override;

  TraceMemoStats stats() const;

 private:
  static std::uint64_t key(std::uint32_t pattern, std::uint32_t po) {
    return (std::uint64_t{pattern} << 32) | po;
  }

  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<Fault>>>
      entries_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mdd::server
