// openmdd — cross-request solo-signature memo for cached sessions.
//
// The expensive part of a steady-state diagnosis request is not loading
// the circuit (the session cache already amortizes that) but simulating
// the solo signature of every candidate in the datalog's suspect cone.
// Those signatures depend only on (netlist, applied window): two datalogs
// for the same circuit that apply the full pattern set share them
// exactly. `SignatureMemo` is the session-scoped `SoloSignatureStore`
// implementation — a bounded fault→signature map that turns the second
// and later requests touching a cone into lookups instead of event-driven
// simulations. Contexts for truncated datalogs never attach it (see
// DiagnosisContext::attach_solo_store), so it can never serve a stale
// window.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "diag/diagnosis.hpp"

namespace mdd::server {

struct SignatureMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  std::size_t approx_bytes = 0;
};

class SignatureMemo final : public SoloSignatureStore {
 public:
  /// `max_bytes` bounds the memo's approximate footprint; once full, new
  /// signatures are declined (existing entries keep serving hits) — the
  /// popular cones of a corpus are cached early, so a simple high-water
  /// cap captures nearly all of an LRU's benefit without its bookkeeping.
  explicit SignatureMemo(std::size_t max_bytes = 256ull << 20)
      : max_bytes_(max_bytes) {}

  std::shared_ptr<const ErrorSignature> lookup(const Fault& f) override;
  void store(const Fault& f,
             std::shared_ptr<const ErrorSignature> sig) override;

  SignatureMemoStats stats() const;

 private:
  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<Fault, std::shared_ptr<const ErrorSignature>, FaultHash>
      entries_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mdd::server
