// openmdd — cross-request solo-signature memo for cached sessions.
//
// The expensive part of a steady-state diagnosis request is not loading
// the circuit (the session cache already amortizes that) but simulating
// the solo signature of every candidate in the datalog's suspect cone.
// Those signatures depend only on (netlist, applied window): two datalogs
// for the same circuit that apply the same window share them exactly.
// `SignatureMemo` is the session-scoped `SoloSignatureStore`
// implementation — a bounded (fault, window)→signature map that turns the
// second and later requests touching a cone into lookups instead of
// event-driven simulations. Entries hold PRE-masking truth (contexts
// subtract their own X-mask after lookup), so ATE-truncated and X-masked
// datalogs amortize too. A truncated-window lookup that misses its exact
// key is served by restricting the full-window entry (memory tier or the
// mmap dictionary) — a full window contains every shorter one.
//
// Admission under pressure is second-chance (clock) eviction: lookups
// mark an entry referenced, and a store that would exceed the budget
// sweeps the clock hand — clearing referenced bits, evicting cold
// entries — until the newcomer fits. Hot faults that first appear after
// warm-up therefore still get memoized; a fixed first-come set can no
// longer squat the budget forever. Byte accounting is exact against the
// per-entry cost function.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "diag/diagnosis.hpp"
#include "store/journal.hpp"
#include "store/reader.hpp"

namespace mdd::server {

struct SignatureMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t approx_bytes = 0;
  /// Disk-tier traffic (zero unless a store is attached). A store hit is
  /// NOT a miss: the signature was served without simulation, just from
  /// the mmap instead of the heap.
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  /// Lookups answered by restricting a full-window signature to a
  /// shorter applied window (counted inside hits/store_hits too).
  std::uint64_t window_restricts = 0;
};

class SignatureMemo final : public SoloSignatureStore {
 public:
  /// `max_bytes` bounds the memo's approximate footprint; stores beyond
  /// it evict cold (second-chance) entries to make room. A single
  /// signature larger than the whole budget is declined outright.
  /// `full_window` is the session pattern count — the window over which
  /// the persistent dictionary (if any) and untruncated requests
  /// simulate; it lets shorter-window lookups fall back to restricting a
  /// full-window entry. 0 means unknown (exact-key and dict-derived
  /// serving only).
  explicit SignatureMemo(std::size_t max_bytes = 256ull << 20,
                         std::size_t full_window = 0)
      : max_bytes_(max_bytes), full_window_(full_window) {}

  std::shared_ptr<const ErrorSignature> lookup(
      const Fault& f, std::size_t window_patterns) override;
  void store(const Fault& f, std::size_t window_patterns,
             std::shared_ptr<const ErrorSignature> sig) override;

  /// Attaches a persistent dictionary as the warm tier below memory:
  /// lookup order becomes memory → mmap store → (caller simulates). The
  /// reader must have been validated against this session's (netlist,
  /// patterns) — the memo trusts it. Decoded store answers are admitted
  /// into the memory tier so repeat lookups are pointer copies. A decode
  /// error (corrupt postings that survived open-time hashing — near
  /// impossible, but cheap to handle) detaches the store and falls back
  /// to simulation for good.
  void set_store(std::shared_ptr<const store::DictReader> dict);
  bool has_store() const;
  std::shared_ptr<const store::DictReader> store_reader() const;

  /// Attaches the store-miss journal. store() is called exactly when a
  /// context had to simulate a signature — i.e. every tier (memory,
  /// window restriction, mmap dictionary) missed — so each such fault is
  /// recorded for the next refresh to fold into the dictionary. The
  /// journal itself dedups and never throws.
  void set_journal(std::shared_ptr<store::FaultJournal> journal);
  std::shared_ptr<store::FaultJournal> journal() const;

  SignatureMemoStats stats() const;

 private:
  struct Key {
    Fault fault{};
    std::size_t window = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return (FaultHash{}(k.fault) ^ k.window * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Entry {
    std::shared_ptr<const ErrorSignature> sig;
    std::size_t cost = 0;
    bool referenced = false;  ///< set on hit, cleared by the clock hand
  };

  /// Evicts until `need` more bytes fit (caller holds the lock).
  void make_room(std::size_t need);
  /// Admits `sig` under `key` if it fits (caller holds the lock).
  void admit(const Key& key, std::shared_ptr<const ErrorSignature> sig);

  const std::size_t max_bytes_;
  std::size_t full_window_ = 0;  ///< session pattern count; 0 = unknown
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::vector<Key> ring_;  ///< clock order (swap-with-back on evict)
  std::size_t hand_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t window_restricts_ = 0;
  std::shared_ptr<const store::DictReader> dict_;  ///< warm tier, may be null
  std::shared_ptr<store::FaultJournal> journal_;  ///< miss ledger, may be null
  std::uint64_t store_hits_ = 0;
  std::uint64_t store_misses_ = 0;
};

}  // namespace mdd::server
