#include "server/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mdd::server {

namespace {

struct ServeMetrics {
  obs::Counter& connections =
      obs::registry().counter("server.connections");
  /// Failed response writes (client hung up mid-request). These used to
  /// be swallowed silently; now each one is counted and logged.
  obs::Counter& connection_errors =
      obs::registry().counter("server.connection_errors");
  obs::Counter& parse_errors = obs::registry().counter("server.parse_errors");
  /// Writes that hit a full socket buffer and had to wait for POLLOUT —
  /// a slow reader behind a multi-KB response (streamed batches, big
  /// reports). Waiting is fine; only a stall past the write deadline
  /// fails the connection.
  obs::Counter& write_stalls = obs::registry().counter("server.write_stalls");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

bool blank(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

/// Tracks in-flight requests so shutdown/EOF can drain before returning.
class Outstanding {
 public:
  void add() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }
  void done() {
    // Notify under the lock: wait_idle()'s waker may destroy this object
    // the moment it returns, so the last touch here must happen before
    // the waiter can reacquire the mutex.
    std::lock_guard<std::mutex> lock(mutex_);
    --count_;
    idle_.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t count_ = 0;
};

Json parse_error_response(const std::string& what) {
  Json r;
  r.set("status", "error");
  r.set("error", what);
  return r;
}

/// How long one response write may make zero progress before the
/// connection is declared dead. Generous: a scraper or batch client that
/// stops reading for 30s has effectively hung up.
constexpr int kWriteStallTimeoutMs = 30000;

// MSG_NOSIGNAL: a client that disconnects mid-response must surface as
// EPIPE here, not as a process-killing SIGPIPE. A short write is never
// dropped: the loop resumes at the unwritten tail, and a full socket
// buffer (EAGAIN — possible under SO_SNDTIMEO or a nonblocking fd) waits
// for POLLOUT instead of discarding the remainder.
void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        serve_metrics().write_stalls.inc();
        pollfd p{fd, POLLOUT, 0};
        const int ready = ::poll(&p, 1, kWriteStallTimeoutMs);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0)
          throw std::runtime_error("write: receiver stalled past deadline");
        continue;
      }
      throw std::runtime_error(std::string("write: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// The accept loop shared by the TCP and Unix-domain transports: one
/// reader thread per connection, all feeding the shared service queue; a
/// shutdown op drains, acknowledges, and closes the listener.
int serve_on_listener(DiagnosisService& service, int listen_fd,
                      std::ostream& log) {
  std::atomic<bool> stop{false};
  std::mutex threads_mutex;
  std::vector<std::thread> threads;
  std::mutex log_mutex;  // connection threads share `log`

  const auto connection_main = [&](int fd) {
    serve_metrics().connections.inc();
    std::mutex write_mutex;
    Outstanding outstanding;
    // One log line per connection, not per failed write: once the client
    // is gone every queued response for it fails the same way.
    bool write_failed = false;
    const auto respond = [&](const Json& response) {
      const std::string line = response.dump() + "\n";
      std::lock_guard<std::mutex> lock(write_mutex);
      if (write_failed) return;
      try {
        write_all(fd, line.data(), line.size());
      } catch (const std::exception& e) {
        // Client went away; outstanding work still drains harmlessly —
        // but the event is counted and logged, not swallowed.
        write_failed = true;
        serve_metrics().connection_errors.inc();
        Json record;
        record.set("event", "connection_error");
        record.set("fd", fd);
        record.set("error", e.what());
        std::lock_guard<std::mutex> log_lock(log_mutex);
        log << record.dump() << "\n";
        log.flush();
      }
    };

    std::string buffer;
    char chunk[4096];
    bool shutdown_server = false;
    for (;;) {
      const ssize_t r = ::read(fd, chunk, sizeof chunk);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(r));
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (blank(line)) continue;
        Json request;
        try {
          request = Json::parse(line);
        } catch (const std::exception& e) {
          serve_metrics().parse_errors.inc();
          respond(parse_error_response(e.what()));
          continue;
        }
        if (request.get_string("op") == "shutdown") {
          outstanding.wait_idle();
          Json ack;
          if (const Json* id = request.find("id")) ack.set("id", *id);
          ack.set("status", "ok");
          ack.set("op", "shutdown");
          respond(ack);
          shutdown_server = true;
          break;
        }
        if (request.get_string("op") == "ping") {
          // Answered on the reader thread, ahead of the queue: the
          // router's heartbeat must measure process liveness, not queue
          // depth (a shard deep into a batch is busy, not hung).
          respond(service.handle(request));
          continue;
        }
        outstanding.add();
        service.submit(
            std::move(request),
            [&](Json response) {
              respond(response);
              outstanding.done();
            },
            [&](const Json& streamed) { respond(streamed); });
      }
      if (shutdown_server) break;
    }
    outstanding.wait_idle();
    ::close(fd);
    if (shutdown_server) {
      stop.store(true);
      ::shutdown(listen_fd, SHUT_RDWR);  // unblocks accept()
    }
  };

  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or fatal
    }
    if (stop.load()) {
      ::close(fd);
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex);
    // An exception escaping a thread entry would std::terminate the whole
    // daemon; downgrade to one logged, counted connection error.
    threads.emplace_back(
        [&](int cfd) {
          try {
            connection_main(cfd);
          } catch (const std::exception& e) {
            serve_metrics().connection_errors.inc();
            Json record;
            record.set("event", "connection_thread_error");
            record.set("fd", cfd);
            record.set("error", e.what());
            std::lock_guard<std::mutex> log_lock(log_mutex);
            log << record.dump() << "\n";
            log.flush();
            ::close(cfd);
          }
        },
        fd);
  }
  ::close(listen_fd);
  {
    std::lock_guard<std::mutex> lock(threads_mutex);
    for (std::thread& t : threads) t.join();
    threads.clear();
  }
  log << "openmdd_serve: shut down\n";
  return 0;
}

}  // namespace

int serve_stdio(DiagnosisService& service, std::istream& in,
                std::ostream& out) {
  std::mutex out_mutex;
  Outstanding outstanding;
  const auto respond = [&](const Json& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response.dump() << "\n";
    out.flush();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (blank(line)) continue;
    Json request;
    try {
      request = Json::parse(line);
    } catch (const std::exception& e) {
      serve_metrics().parse_errors.inc();
      respond(parse_error_response(e.what()));
      continue;
    }
    if (request.get_string("op") == "shutdown") {
      outstanding.wait_idle();
      Json ack;
      if (const Json* id = request.find("id")) ack.set("id", *id);
      ack.set("status", "ok");
      ack.set("op", "shutdown");
      respond(ack);
      return 0;
    }
    if (request.get_string("op") == "ping") {
      respond(service.handle(request));  // liveness probe: jumps the queue
      continue;
    }
    outstanding.add();
    service.submit(
        std::move(request),
        [&](Json response) {
          respond(response);
          outstanding.done();
        },
        [&](const Json& streamed) { respond(streamed); });
  }
  outstanding.wait_idle();
  return 0;
}

int serve_tcp(DiagnosisService& service, std::uint16_t port,
              std::ostream& log,
              const std::function<void(std::uint16_t)>& on_listening) {
  const int listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    log << "openmdd_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    log << "openmdd_serve: bind/listen: " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const std::uint16_t bound_port = ntohs(addr.sin_port);
  log << "openmdd_serve: listening on 127.0.0.1:" << bound_port << "\n";
  log.flush();
  if (on_listening) on_listening(bound_port);
  return serve_on_listener(service, listen_fd, log);
}

int serve_uds(DiagnosisService& service, const std::string& path,
              std::ostream& log,
              const std::function<void(const std::string&)>& on_listening) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    log << "openmdd_serve: socket path too long: " << path << "\n";
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    log << "openmdd_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  // A respawned worker reclaims its shard's address: the stale socket
  // file of a crashed predecessor must not fail the bind.
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    log << "openmdd_serve: bind/listen " << path << ": "
        << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  log << "openmdd_serve: listening on " << path << "\n";
  log.flush();
  if (on_listening) on_listening(path);
  const int rc = serve_on_listener(service, listen_fd, log);
  ::unlink(path.c_str());
  return rc;
}

int connect_tcp_fd(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("bad host address: " + host);
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(connect_timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up)
      throw std::runtime_error("cannot connect to " + host + ":" +
                               std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int connect_uds_fd(const std::string& path, int connect_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(connect_timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up)
      throw std::runtime_error("cannot connect to " + path);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

void LineClient::send_line(const std::string& line) {
  const std::string framed = line + "\n";
  write_all(fd_, framed.data(), framed.size());
}

std::string LineClient::recv_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) throw std::runtime_error("connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(r));
  }
}

std::optional<std::string> LineClient::recv_line_for(int timeout_ms) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        give_up - std::chrono::steady_clock::now());
    if (left.count() <= 0) return std::nullopt;
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, static_cast<int>(left.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready == 0) return std::nullopt;
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) throw std::runtime_error("connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(r));
  }
}

std::string LineClient::roundtrip(const std::string& line) {
  send_line(line);
  return recv_line();
}

}  // namespace mdd::server
