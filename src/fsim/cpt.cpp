#include "fsim/cpt.hpp"

#include <algorithm>
#include <stdexcept>

namespace mdd {

CriticalPathTracer::CriticalPathTracer(const Netlist& netlist)
    : netlist_(&netlist), visited_(netlist.n_nets(), false) {
  if (!netlist.finalized())
    throw std::logic_error("CriticalPathTracer: netlist not finalized");
}

CriticalPathTracer::Trace CriticalPathTracer::trace(EventSim& sim,
                                                    std::uint32_t po_index,
                                                    bool want_faults) {
  const Netlist& nl = *netlist_;
  Trace result;
  std::vector<NetId> touched;
  std::vector<NetId> stack;

  auto push_stem = [&](NetId n) {
    if (!visited_[n]) {
      visited_[n] = true;
      touched.push_back(n);
      stack.push_back(n);
    }
  };

  push_stem(nl.outputs()[po_index]);

  std::vector<std::uint32_t> critical_pins;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    result.stems.push_back(n);
    if (want_faults)
      result.faults.push_back(Fault::stem_sa(n, !sim.value(n)));

    const GateKind k = nl.kind(n);
    const auto fi = nl.fanins(n);
    if (fi.empty()) continue;  // Input / Const

    critical_pins.clear();
    switch (k) {
      case GateKind::Buf:
      case GateKind::Not:
        critical_pins.push_back(0);
        break;
      case GateKind::Xor:
      case GateKind::Xnor:
        for (std::uint32_t p = 0; p < fi.size(); ++p)
          critical_pins.push_back(p);
        break;
      case GateKind::And:
      case GateKind::Nand:
      case GateKind::Or:
      case GateKind::Nor: {
        const bool c = controlling_value(k);
        std::uint32_t n_controlling = 0;
        std::uint32_t controlling_pin = 0;
        for (std::uint32_t p = 0; p < fi.size(); ++p) {
          if (sim.value(fi[p]) == c) {
            ++n_controlling;
            controlling_pin = p;
          }
        }
        if (n_controlling == 1) {
          critical_pins.push_back(controlling_pin);
        } else if (n_controlling == 0) {
          for (std::uint32_t p = 0; p < fi.size(); ++p)
            critical_pins.push_back(p);
        }
        // >= 2 controlling inputs: classical CPT rule — no single input
        // critical (simultaneous multi-branch effects are not traced).
        break;
      }
      default:
        break;
    }

    for (std::uint32_t p : critical_pins) {
      const NetId src = fi[p];
      if (nl.fanouts(src).size() == 1) {
        push_stem(src);  // branch == stem
        continue;
      }
      if (want_faults)
        result.faults.push_back(Fault::branch_sa(n, p, !sim.value(src)));
      if (!visited_[src]) {
        // Exact stem analysis: does flipping the stem flip this PO?
        const auto observed = sim.flip_observed_outputs(src);
        if (std::binary_search(observed.begin(), observed.end(), po_index))
          push_stem(src);
        else {
          // Not critical; mark visited so the (possibly expensive) flip
          // check runs at most once per stem per trace.
          visited_[src] = true;
          touched.push_back(src);
        }
      }
    }
  }

  for (NetId n : touched) visited_[n] = false;
  std::sort(result.stems.begin(), result.stems.end());
  result.stems.erase(std::unique(result.stems.begin(), result.stems.end()),
                     result.stems.end());
  std::sort(result.faults.begin(), result.faults.end());
  result.faults.erase(std::unique(result.faults.begin(), result.faults.end()),
                      result.faults.end());
  return result;
}

std::vector<NetId> CriticalPathTracer::critical_nets(EventSim& sim,
                                                     std::uint32_t po_index) {
  return trace(sim, po_index, false).stems;
}

std::vector<Fault> CriticalPathTracer::critical_faults(EventSim& sim,
                                                       std::uint32_t po_index) {
  return trace(sim, po_index, true).faults;
}

}  // namespace mdd
