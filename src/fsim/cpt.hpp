// openmdd — gate-level critical path tracing (CPT).
//
// A net is *critical* for (pattern, PO) if flipping its value flips that
// PO. CPT computes the critical set by backward tracing from the failing
// PO: within fanout-free regions the classic per-gate rules are exact
// (unique controlling input critical; no controlling input => all inputs
// critical; two or more controlling inputs => none); at fanout stems, where
// reconvergence makes the rules unsound, criticality is decided exactly by
// a localized forward flip re-simulation (EventSim).
//
// The tracer is the candidate-extraction front-end of the diagnosis core:
// every critical net, with its good value, yields a stuck-at candidate that
// could explain the observed failure of that PO under that pattern.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "sim/event_sim.hpp"

namespace mdd {

class CriticalPathTracer {
 public:
  explicit CriticalPathTracer(const Netlist& netlist);

  /// Critical *nets* (stems) for PO `po_index` under the pattern committed
  /// in `sim`, sorted ascending. Includes the PO net itself.
  std::vector<NetId> critical_nets(EventSim& sim, std::uint32_t po_index);

  /// Stuck-at candidate faults implied by the critical set: for every
  /// critical stem a stem fault at the opposite of its good value; for
  /// every critical branch whose source net has multiple fanouts, the
  /// corresponding branch fault. Sorted, unique.
  std::vector<Fault> critical_faults(EventSim& sim, std::uint32_t po_index);

 private:
  struct Trace {
    std::vector<NetId> stems;
    std::vector<Fault> faults;
  };
  Trace trace(EventSim& sim, std::uint32_t po_index, bool want_faults);

  const Netlist* netlist_;
  std::vector<bool> visited_;  // per-net scratch
};

}  // namespace mdd
