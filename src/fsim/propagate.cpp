#include "fsim/propagate.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/metrics.hpp"
#include "sim/sim2.hpp"

namespace mdd {

namespace {

struct PropagateMetrics {
  obs::Counter& queries = obs::registry().counter("propagate.queries");
  obs::Counter& patterns_simulated =
      obs::registry().counter("propagate.patterns_simulated");
  /// Feedback bridges that fell back to the exact fixpoint machine.
  obs::Counter& fallbacks = obs::registry().counter("propagate.fallbacks");
  obs::Counter& composite_queries =
      obs::registry().counter("propagate.composite_queries");
  /// Composite queries whose bridge couplings could cycle (or whose sweep
  /// cap tripped) and ran on the exact fixpoint machine instead.
  obs::Counter& composite_fallbacks =
      obs::registry().counter("propagate.composite_fallbacks");
};

PropagateMetrics& propagate_metrics() {
  static PropagateMetrics m;
  return m;
}

// Constant operand rows for pin overrides (see FaultyMachine).
constexpr Word kZeroLanes[kMaxKernelLanes] = {};
constexpr Word kOneLanes[kMaxKernelLanes] = {kAllOne, kAllOne, kAllOne,
                                             kAllOne, kAllOne, kAllOne,
                                             kAllOne, kAllOne};

}  // namespace

std::shared_ptr<const PropagatorBaseline>
SingleFaultPropagator::make_baseline(const Netlist& netlist,
                                     const PatternSet& patterns) {
  auto baseline = std::make_shared<PropagatorBaseline>();
  BlockSim sim(netlist);
  baseline->values.resize(patterns.n_blocks());
  baseline->good = PatternSet(patterns.n_patterns(), netlist.n_outputs());
  for (std::size_t b = 0; b < patterns.n_blocks();) {
    const std::size_t m = sim.run_wide(patterns, b);
    for (std::size_t l = 0; l < m; ++l) {
      auto& blk = baseline->values[b + l];
      blk.resize(netlist.n_nets());
      for (NetId n = 0; n < netlist.n_nets(); ++n) blk[n] = sim.value(n, l);
      const Word mask = patterns.valid_mask(b + l);
      for (std::size_t o = 0; o < netlist.n_outputs(); ++o)
        baseline->good.word(b + l, o) =
            sim.value(netlist.outputs()[o], l) & mask;
    }
    b += m;
  }
  return baseline;
}

SingleFaultPropagator::SingleFaultPropagator(
    const Netlist& netlist, const PatternSet& patterns,
    std::shared_ptr<const PropagatorBaseline> baseline,
    const SimKernel& kernel)
    : netlist_(&netlist),
      kernel_(&kernel),
      lanes_(kernel.lanes),
      patterns_(&patterns),
      baseline_(std::move(baseline)),
      scratch_(netlist.n_nets() * kernel.lanes, kAllZero),
      touched_(netlist.n_nets(), false),
      level_queue_(netlist.depth() + 1),
      queued_(netlist.n_nets(), false),
      po_mask_buf_((netlist.n_outputs() + 63) / 64, kAllZero),
      fallback_(netlist, kernel) {
  assert(baseline_ != nullptr &&
         baseline_->values.size() == patterns.n_blocks() &&
         baseline_->good.n_patterns() == patterns.n_patterns());
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_lanes_.resize(max_fanin * kMaxKernelLanes);
  fanin_ptrs_.resize(max_fanin);
}

SingleFaultPropagator::SingleFaultPropagator(const Netlist& netlist,
                                             const PatternSet& patterns,
                                             const SimKernel& kernel)
    : SingleFaultPropagator(netlist, patterns,
                            make_baseline(netlist, patterns), kernel) {}

SingleFaultPropagator::SingleFaultPropagator(const Netlist& netlist,
                                             const PatternSet& launch,
                                             const PatternSet& capture,
                                             const SimKernel& kernel)
    : SingleFaultPropagator(netlist, capture, kernel) {
  launch_ = &launch;
  BlockSim sim(netlist, kernel);
  launch_values_.resize(launch.n_blocks());
  for (std::size_t b = 0; b < launch.n_blocks();) {
    const std::size_t m = sim.run_wide(launch, b);
    for (std::size_t l = 0; l < m; ++l) {
      auto& blk = launch_values_[b + l];
      blk.resize(netlist.n_nets());
      for (NetId n = 0; n < netlist.n_nets(); ++n) blk[n] = sim.value(n, l);
    }
    b += m;
  }
}

void SingleFaultPropagator::gather_row(const Frames& vals, NetId n,
                                       std::size_t b0, std::size_t m,
                                       Word* out) const {
  // Padding lanes replicate the last valid block, matching BlockSim /
  // FaultyMachine; only lanes < m are ever read out.
  for (std::size_t l = 0; l < lanes_; ++l)
    out[l] = vals[b0 + std::min(l, m - 1)][n];
}

const Word* SingleFaultPropagator::read_row(const Frames& vals, NetId n,
                                            std::size_t b0, std::size_t m,
                                            Word* buf) const {
  if (touched_[n]) return scratch_.data() + n * lanes_;
  gather_row(vals, n, b0, m, buf);
  return buf;
}

void SingleFaultPropagator::seed_site(NetId net, const Word* value,
                                      const Word* good) {
  if (!touched_[net] && std::equal(value, value + lanes_, good))
    return;  // fault not excited here
  std::copy(value, value + lanes_, scratch_.begin() + net * lanes_);
  if (touched_[net]) return;
  touched_[net] = true;
  touched_list_.push_back(net);
  for (NetId s : netlist_->fanouts(net)) {
    if (!queued_[s]) {
      queued_[s] = true;
      level_queue_[netlist_->level(s)].push_back(s);
    }
  }
}

void SingleFaultPropagator::seed_fault(const Fault& fault, std::size_t b0,
                                       std::size_t m) {
  const Frames& vals = baseline_->values;
  Word good_row[kMaxKernelLanes];
  Word val_row[kMaxKernelLanes];
  Word other_row[kMaxKernelLanes];
  switch (fault.kind) {
    case FaultKind::StuckAt0:
    case FaultKind::StuckAt1: {
      const Word forced = fault.stuck_value() ? kAllOne : kAllZero;
      gather_row(vals, fault.net, b0, m, good_row);
      if (fault.pin == kStemPin) {
        std::fill(val_row, val_row + lanes_, forced);
        seed_site(fault.net, val_row, good_row);
      } else {
        // Branch fault: recompute the gate with the forced pin.
        const auto fi = netlist_->fanins(fault.net);
        for (std::size_t j = 0; j < fi.size(); ++j) {
          Word* row = fanin_lanes_.data() + j * kMaxKernelLanes;
          gather_row(vals, fi[j], b0, m, row);
          fanin_ptrs_[j] = row;
        }
        fanin_ptrs_[fault.pin] = fault.stuck_value() ? kOneLanes : kZeroLanes;
        kernel_->eval_gate(netlist_->kind(fault.net), fanin_ptrs_.data(),
                           fi.size(), val_row);
        seed_site(fault.net, val_row, good_row);
      }
      return;
    }
    case FaultKind::BridgeDom: {
      // Optimistic non-feedback assumption: the aggressor is unaffected,
      // so the victim simply takes the aggressor's good value. propagate()
      // watches the aggressor and triggers the fixpoint fallback if the
      // wave ever reaches it.
      gather_row(vals, fault.net, b0, m, good_row);
      gather_row(vals, fault.bridge_net, b0, m, other_row);
      seed_site(fault.net, other_row, good_row);
      return;
    }
    case FaultKind::BridgeWAnd:
    case FaultKind::BridgeWOr: {
      gather_row(vals, fault.net, b0, m, good_row);
      gather_row(vals, fault.bridge_net, b0, m, other_row);
      for (std::size_t l = 0; l < lanes_; ++l)
        val_row[l] = fault.kind == FaultKind::BridgeWAnd
                         ? (good_row[l] & other_row[l])
                         : (good_row[l] | other_row[l]);
      seed_site(fault.net, val_row, good_row);
      seed_site(fault.bridge_net, val_row, other_row);
      return;
    }
    case FaultKind::SlowToRise:
    case FaultKind::SlowToFall: {
      if (launch_ == nullptr) return;  // inert in single-frame mode
      gather_row(launch_values_, fault.net, b0, m, other_row);
      gather_row(vals, fault.net, b0, m, good_row);
      for (std::size_t l = 0; l < lanes_; ++l) {
        const Word moved = fault.kind == FaultKind::SlowToRise
                               ? (~other_row[l] & good_row[l])
                               : (other_row[l] & ~good_row[l]);
        val_row[l] =
            (good_row[l] & ~moved) | (other_row[l] & moved);
      }
      seed_site(fault.net, val_row, good_row);
      return;
    }
  }
}

bool SingleFaultPropagator::propagate(std::size_t b0, std::size_t m,
                                      ErrorSignature& sig, NetId watch) {
  const Frames& vals = baseline_->values;
  Word vbuf[kMaxKernelLanes];
  Word cur_buf[kMaxKernelLanes];

  for (std::uint32_t lv = 0; lv < level_queue_.size(); ++lv) {
    for (std::size_t idx = 0; idx < level_queue_[lv].size(); ++idx) {
      const NetId g = level_queue_[lv][idx];
      queued_[g] = false;
      const auto fi = netlist_->fanins(g);
      for (std::size_t j = 0; j < fi.size(); ++j)
        fanin_ptrs_[j] = read_row(vals, fi[j], b0, m,
                                  fanin_lanes_.data() + j * kMaxKernelLanes);
      kernel_->eval_gate(netlist_->kind(g), fanin_ptrs_.data(), fi.size(),
                         vbuf);
      const Word* cur = read_row(vals, g, b0, m, cur_buf);
      if (!std::equal(vbuf, vbuf + lanes_, cur)) {
        std::copy(vbuf, vbuf + lanes_, scratch_.begin() + g * lanes_);
        if (!touched_[g]) {
          touched_[g] = true;
          touched_list_.push_back(g);
        }
        for (NetId s : netlist_->fanouts(g)) {
          if (!queued_[s]) {
            queued_[s] = true;
            level_queue_[netlist_->level(s)].push_back(s);
          }
        }
      }
    }
    level_queue_[lv].clear();
  }

  // Collect PO differences lane by lane (touched POs gathered once per
  // lane; the per-failing-bit loop then only walks that short list).
  struct PoDiff {
    std::uint32_t po;
    Word diff;
  };
  std::vector<PoDiff> po_diffs;
  for (std::size_t l = 0; l < m; ++l) {
    const Word valid = patterns_->valid_mask(b0 + l);
    Word any = kAllZero;
    po_diffs.clear();
    for (NetId t : touched_list_) {
      if (auto idx = netlist_->output_index(t)) {
        const Word diff =
            (scratch_[t * lanes_ + l] ^ vals[b0 + l][t]) & valid;
        if (diff) {
          po_diffs.push_back({*idx, diff});
          any |= diff;
        }
      }
    }
    while (any) {
      const int bit = std::countr_zero(any);
      any &= any - 1;
      std::fill(po_mask_buf_.begin(), po_mask_buf_.end(), kAllZero);
      for (const PoDiff& pd : po_diffs) {
        if ((pd.diff >> bit) & 1u)
          po_mask_buf_[pd.po / 64] |= Word{1} << (pd.po % 64);
      }
      sig.append(static_cast<std::uint32_t>((b0 + l) * 64 +
                                            static_cast<std::size_t>(bit)),
                 po_mask_buf_);
    }
  }

  bool watch_touched = false;
  for (NetId t : touched_list_) {
    // Seeding marks the watched net itself; only a *recomputed* watch net
    // indicates feedback, which seed values never are (the watch net is
    // never a seed site for dominant bridges, and wired bridges watch
    // nothing).
    watch_touched = watch_touched || (t == watch);
    touched_[t] = false;
  }
  touched_list_.clear();
  return watch_touched;
}

ErrorSignature SingleFaultPropagator::signature(const Fault& fault) {
  validate_fault(fault, *netlist_);
  propagate_metrics().queries.inc();
  propagate_metrics().patterns_simulated.inc(patterns_->n_patterns());
  ErrorSignature sig(patterns_->n_patterns(), netlist_->n_outputs());

  // Dominant bridges are propagated optimistically assuming the aggressor
  // is not downstream of the victim; watching the aggressor detects the
  // rare feedback pair, which then reruns on the exact fixpoint machine.
  // (Wired bridges seed the resolved value on both nets; if either net is
  // downstream of the other the wave reaches it as a recomputation, so
  // watch the higher-level net.)
  NetId watch = kNoNet;
  if (fault.kind == FaultKind::BridgeDom) {
    watch = fault.bridge_net;
  } else if (fault.kind == FaultKind::BridgeWAnd ||
             fault.kind == FaultKind::BridgeWOr) {
    if (is_feedback_pair(*netlist_, fault.net, fault.bridge_net))
      watch = fault.net;  // force the fallback below via first group
  }

  for (std::size_t b = 0; b < patterns_->n_blocks();) {
    const std::size_t m = std::min(lanes_, patterns_->n_blocks() - b);
    seed_fault(fault, b, m);
    const bool feedback =
        propagate(b, m, sig, watch) ||
        (watch == fault.net && fault.kind != FaultKind::BridgeDom);
    if (feedback) {
      propagate_metrics().fallbacks.inc();
      fallback_.set_faults({&fault, 1});
      const PatternSet faulty =
          launch_ ? fallback_.simulate_pair(*launch_, *patterns_)
                  : fallback_.simulate(*patterns_);
      return ErrorSignature::diff(baseline_->good, faulty);
    }
    b += m;
  }
  return sig;
}

bool SingleFaultPropagator::reaches(NetId from, NetId to) {
  if (from == to) return false;
  if (netlist_->level(from) >= netlist_->level(to)) return false;
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  if (auto it = reach_cache_.find(key); it != reach_cache_.end())
    return it->second;
  // Level-pruned DFS over fanouts (the is_feedback_pair approach, made
  // directional); memoized — the netlist never changes under a propagator.
  const std::uint32_t limit = netlist_->level(to);
  std::vector<bool> seen(netlist_->n_nets(), false);
  std::vector<NetId> stack{from};
  seen[from] = true;
  bool found = false;
  while (!stack.empty() && !found) {
    const NetId n = stack.back();
    stack.pop_back();
    for (NetId s : netlist_->fanouts(n)) {
      if (s == to) {
        found = true;
        break;
      }
      if (!seen[s] && netlist_->level(s) < limit) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  reach_cache_.emplace(key, found);
  return found;
}

bool SingleFaultPropagator::prepare_composite(
    std::span<const Fault> multiplet) {
  comp_stems_.clear();
  comp_pins_.clear();
  comp_bridges_.clear();
  comp_transitions_.clear();
  for (const Fault& f : multiplet) {
    validate_fault(f, *netlist_);
    if (f.is_stuck_at()) {
      if (f.pin == kStemPin)
        comp_stems_.push_back({f.net, f.stuck_value()});
      else
        comp_pins_.push_back({f.net, f.pin, f.stuck_value()});
    } else if (f.is_transition()) {
      comp_transitions_.push_back({f.net, f.kind == FaultKind::SlowToRise});
    } else {
      comp_bridges_.push_back({f.kind, f.net, f.bridge_net});
    }
  }
  const std::size_t nb = comp_bridges_.size();
  if (nb == 0) return true;
  if (raw_scratch_.size() != netlist_->n_nets() * lanes_) {
    raw_scratch_.assign(netlist_->n_nets() * lanes_, kAllZero);
    raw_touched_.assign(netlist_->n_nets(), false);
  }

  // A bridge reads inputs (dom: the aggressor's final net value; wired:
  // both raw driver values) and writes outputs (dom: the victim; wired:
  // both nets). If any bridge output can feed one of its own inputs —
  // through the netlist or through a chain of other bridges — the
  // fixpoint is schedule-dependent and only the exact machine's pass
  // discipline reproduces the reference bits: detect any cycle over the
  // bridge influence graph and report it to the caller (conservative —
  // influence is over-approximated, a cycle is never missed).
  auto put_nets = [](const CompBridge& br, bool outputs, NetId out[2]) {
    out[0] = br.a;
    out[1] = br.kind == FaultKind::BridgeDom ? (outputs ? kNoNet : br.b)
                                             : br.b;
    if (br.kind == FaultKind::BridgeDom && !outputs) out[0] = kNoNet;
  };
  std::vector<char> edge(nb * nb, 0);
  for (std::size_t i = 0; i < nb; ++i) {
    NetId outs[2];
    put_nets(comp_bridges_[i], /*outputs=*/true, outs);
    for (std::size_t j = 0; j < nb; ++j) {
      NetId ins[2];
      put_nets(comp_bridges_[j], /*outputs=*/false, ins);
      for (NetId out : outs) {
        if (out == kNoNet) continue;
        for (NetId in : ins) {
          if (in == kNoNet) continue;
          if ((i != j && out == in) || reaches(out, in)) edge[i * nb + j] = 1;
        }
      }
    }
  }
  for (std::size_t k = 0; k < nb; ++k)
    for (std::size_t i = 0; i < nb; ++i)
      for (std::size_t j = 0; j < nb; ++j)
        if (edge[i * nb + k] && edge[k * nb + j]) edge[i * nb + j] = 1;
  for (std::size_t i = 0; i < nb; ++i)
    if (edge[i * nb + i]) return false;
  return true;
}

void SingleFaultPropagator::enqueue_net(NetId n) {
  if (queued_[n]) return;
  queued_[n] = true;
  level_queue_[netlist_->level(n)].push_back(n);
  ++pending_;
}

void SingleFaultPropagator::seed_composite(bool apply_transitions) {
  // Seeds are just "re-evaluate this net": eval_composite decides whether
  // the fault set actually changes anything for this group.
  for (const CompStem& s : comp_stems_) enqueue_net(s.net);
  for (const CompPin& p : comp_pins_) enqueue_net(p.gate);
  for (const CompBridge& br : comp_bridges_) {
    enqueue_net(br.a);
    if (br.kind != FaultKind::BridgeDom) enqueue_net(br.b);
  }
  if (apply_transitions)
    for (const CompTransition& t : comp_transitions_) enqueue_net(t.net);
}

bool SingleFaultPropagator::is_wired_member(NetId g) const {
  for (const CompBridge& br : comp_bridges_)
    if (br.kind != FaultKind::BridgeDom && (br.a == g || br.b == g))
      return true;
  return false;
}

void SingleFaultPropagator::eval_composite(NetId g, const Frames& vals,
                                           std::size_t b0, std::size_t m,
                                           bool apply_transitions, Word* out,
                                           Word* raw) {
  if (netlist_->kind(g) == GateKind::Input) {
    gather_row(vals, g, b0, m, raw);  // the stimulus row; nothing
                                      // upstream to fault
  } else {
    const auto fi = netlist_->fanins(g);
    for (std::size_t j = 0; j < fi.size(); ++j)
      fanin_ptrs_[j] = read_row(vals, fi[j], b0, m,
                                fanin_lanes_.data() + j * kMaxKernelLanes);
    for (const CompPin& po : comp_pins_)
      if (po.gate == g) fanin_ptrs_[po.pin] = po.value ? kOneLanes : kZeroLanes;
    kernel_->eval_gate(netlist_->kind(g), fanin_ptrs_.data(), fi.size(),
                       raw);
  }
  // Identical transform order to FaultyMachine::run_frame: bridges in
  // declaration order (dom copies the aggressor's *net* value, wired
  // resolves the two *driver* values), then the transition hold, then
  // stem overrides (a hard stuck-at wins over coupling).
  std::copy(raw, raw + lanes_, out);
  Word row_buf[kMaxKernelLanes];
  for (const CompBridge& br : comp_bridges_) {
    if (br.kind == FaultKind::BridgeDom) {
      if (br.a == g) {
        const Word* other = read_row(vals, br.b, b0, m, row_buf);
        std::copy(other, other + lanes_, out);
      }
    } else if (br.a == g || br.b == g) {
      const NetId other = (br.a == g) ? br.b : br.a;
      const Word* other_raw;
      if (raw_touched_[other]) {
        other_raw = raw_scratch_.data() + other * lanes_;
      } else {
        gather_row(vals, other, b0, m, row_buf);
        other_raw = row_buf;
      }
      if (br.kind == FaultKind::BridgeWAnd) {
        for (std::size_t l = 0; l < lanes_; ++l)
          out[l] = raw[l] & other_raw[l];
      } else {
        for (std::size_t l = 0; l < lanes_; ++l)
          out[l] = raw[l] | other_raw[l];
      }
    }
  }
  if (apply_transitions) {
    for (const CompTransition& t : comp_transitions_) {
      if (t.net != g) continue;
      const Word* f1 = kZeroLanes;
      for (const LaunchRow& lr : launch_faulty_) {
        if (lr.net == g) {
          f1 = lr.lanes;
          break;
        }
      }
      for (std::size_t l = 0; l < lanes_; ++l) {
        const Word moved = t.rise ? (~f1[l] & out[l]) : (f1[l] & ~out[l]);
        out[l] = (out[l] & ~moved) | (f1[l] & moved);
      }
    }
  }
  for (const CompStem& so : comp_stems_)
    if (so.net == g)
      std::fill(out, out + lanes_, so.value ? kAllOne : kAllZero);
}

bool SingleFaultPropagator::propagate_composite(const Frames& vals,
                                                std::size_t b0,
                                                std::size_t m,
                                                bool apply_transitions) {
  Word vbuf[kMaxKernelLanes];
  Word raw_buf[kMaxKernelLanes];
  Word cur_buf[kMaxKernelLanes];
  Word prev_raw_buf[kMaxKernelLanes];
  // Bridge couplings can enqueue backwards in level order; those events
  // survive into the next sweep. Any acyclic coupling chain settles
  // within n_bridges+1 sweeps, so the cap is pure safety (callers fall
  // back to the exact machine if it ever trips).
  const std::size_t max_sweeps = comp_bridges_.size() + 2;
  for (std::size_t sweep = 0; pending_ > 0; ++sweep) {
    if (sweep >= max_sweeps) return false;
    for (std::uint32_t lv = 0; lv < level_queue_.size(); ++lv) {
      auto& bucket = level_queue_[lv];
      for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
        const NetId g = bucket[idx];
        queued_[g] = false;
        --pending_;
        eval_composite(g, vals, b0, m, apply_transitions, vbuf, raw_buf);
        if (is_wired_member(g)) {
          const Word* prev_raw;
          if (raw_touched_[g]) {
            prev_raw = raw_scratch_.data() + g * lanes_;
          } else {
            gather_row(vals, g, b0, m, prev_raw_buf);
            prev_raw = prev_raw_buf;
          }
          if (!std::equal(raw_buf, raw_buf + lanes_, prev_raw)) {
            std::copy(raw_buf, raw_buf + lanes_,
                      raw_scratch_.begin() + g * lanes_);
            if (!raw_touched_[g]) {
              raw_touched_[g] = true;
              raw_touched_list_.push_back(g);
            }
            // The partner resolves against this driver value: re-resolve
            // it even if this net's own final value did not move.
            for (const CompBridge& br : comp_bridges_)
              if (br.kind != FaultKind::BridgeDom &&
                  (br.a == g || br.b == g))
                enqueue_net(br.a == g ? br.b : br.a);
          }
        }
        const Word* cur = read_row(vals, g, b0, m, cur_buf);
        if (!std::equal(vbuf, vbuf + lanes_, cur)) {
          std::copy(vbuf, vbuf + lanes_, scratch_.begin() + g * lanes_);
          if (!touched_[g]) {
            touched_[g] = true;
            touched_list_.push_back(g);
          }
          for (NetId s : netlist_->fanouts(g)) enqueue_net(s);
          // A dominant bridge's victim copies this net's final value.
          for (const CompBridge& br : comp_bridges_)
            if (br.kind == FaultKind::BridgeDom && br.b == g)
              enqueue_net(br.a);
        }
      }
      bucket.clear();
    }
  }
  return true;
}

void SingleFaultPropagator::collect_composite(std::size_t b0, std::size_t m,
                                              ErrorSignature& sig) {
  const Frames& vals = baseline_->values;
  struct PoDiff {
    std::uint32_t po;
    Word diff;
  };
  std::vector<PoDiff> po_diffs;
  for (std::size_t l = 0; l < m; ++l) {
    const Word valid = patterns_->valid_mask(b0 + l);
    Word any = kAllZero;
    po_diffs.clear();
    for (NetId t : touched_list_) {
      if (auto idx = netlist_->output_index(t)) {
        const Word diff =
            (scratch_[t * lanes_ + l] ^ vals[b0 + l][t]) & valid;
        if (diff) {
          po_diffs.push_back({*idx, diff});
          any |= diff;
        }
      }
    }
    while (any) {
      const int bit = std::countr_zero(any);
      any &= any - 1;
      std::fill(po_mask_buf_.begin(), po_mask_buf_.end(), kAllZero);
      for (const PoDiff& pd : po_diffs) {
        if ((pd.diff >> bit) & 1u)
          po_mask_buf_[pd.po / 64] |= Word{1} << (pd.po % 64);
      }
      sig.append(static_cast<std::uint32_t>((b0 + l) * 64 +
                                            static_cast<std::size_t>(bit)),
                 po_mask_buf_);
    }
  }
}

void SingleFaultPropagator::reset_composite() {
  for (NetId t : touched_list_) touched_[t] = false;
  touched_list_.clear();
  for (NetId t : raw_touched_list_) raw_touched_[t] = false;
  raw_touched_list_.clear();
  for (auto& bucket : level_queue_) {
    for (NetId g : bucket) queued_[g] = false;
    bucket.clear();
  }
  pending_ = 0;
}

ErrorSignature SingleFaultPropagator::composite_fallback(
    std::span<const Fault> multiplet) {
  propagate_metrics().composite_fallbacks.inc();
  fallback_.set_faults(multiplet);
  const PatternSet faulty =
      launch_ ? fallback_.simulate_pair(*launch_, *patterns_)
              : fallback_.simulate(*patterns_);
  return ErrorSignature::diff(baseline_->good, faulty);
}

ErrorSignature SingleFaultPropagator::signature(
    std::span<const Fault> multiplet) {
  propagate_metrics().composite_queries.inc();
  if (!prepare_composite(multiplet)) return composite_fallback(multiplet);
  propagate_metrics().patterns_simulated.inc(patterns_->n_patterns());
  ErrorSignature sig(patterns_->n_patterns(), netlist_->n_outputs());
  for (std::size_t b = 0; b < patterns_->n_blocks();) {
    const std::size_t m = std::min(lanes_, patterns_->n_blocks() - b);
    if (launch_ != nullptr && !comp_transitions_.empty()) {
      // Frame 1 (launch) under the static members only — run purely to
      // harvest the faulty launch rows the transition hold consumes in
      // frame 2 (the capture frame reads no other frame-1 state).
      seed_composite(/*apply_transitions=*/false);
      if (!propagate_composite(launch_values_, b, m,
                               /*apply_transitions=*/false)) {
        reset_composite();
        return composite_fallback(multiplet);
      }
      launch_faulty_.clear();
      for (const CompTransition& t : comp_transitions_) {
        LaunchRow row;
        row.net = t.net;
        gather_row(launch_values_, t.net, b, m, row.lanes);
        if (touched_[t.net])
          std::copy(scratch_.begin() + t.net * lanes_,
                    scratch_.begin() + t.net * lanes_ + lanes_, row.lanes);
        launch_faulty_.push_back(row);
      }
      reset_composite();
    }
    seed_composite(/*apply_transitions=*/launch_ != nullptr);
    if (!propagate_composite(baseline_->values, b, m,
                             /*apply_transitions=*/launch_ != nullptr)) {
      reset_composite();
      return composite_fallback(multiplet);
    }
    collect_composite(b, m, sig);
    reset_composite();
    b += m;
  }
  return sig;
}

}  // namespace mdd
