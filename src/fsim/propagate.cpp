#include "fsim/propagate.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/metrics.hpp"
#include "sim/sim2.hpp"

namespace mdd {

namespace {

struct PropagateMetrics {
  obs::Counter& queries = obs::registry().counter("propagate.queries");
  obs::Counter& patterns_simulated =
      obs::registry().counter("propagate.patterns_simulated");
  /// Feedback bridges that fell back to the exact fixpoint machine.
  obs::Counter& fallbacks = obs::registry().counter("propagate.fallbacks");
};

PropagateMetrics& propagate_metrics() {
  static PropagateMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const PropagatorBaseline>
SingleFaultPropagator::make_baseline(const Netlist& netlist,
                                     const PatternSet& patterns) {
  auto baseline = std::make_shared<PropagatorBaseline>();
  BlockSim sim(netlist);
  baseline->values.resize(patterns.n_blocks());
  baseline->good = PatternSet(patterns.n_patterns(), netlist.n_outputs());
  for (std::size_t b = 0; b < patterns.n_blocks(); ++b) {
    sim.run(patterns, b);
    baseline->values[b].assign(sim.values().begin(), sim.values().end());
    const Word mask = patterns.valid_mask(b);
    for (std::size_t o = 0; o < netlist.n_outputs(); ++o)
      baseline->good.word(b, o) = sim.value(netlist.outputs()[o]) & mask;
  }
  return baseline;
}

SingleFaultPropagator::SingleFaultPropagator(
    const Netlist& netlist, const PatternSet& patterns,
    std::shared_ptr<const PropagatorBaseline> baseline)
    : netlist_(&netlist),
      patterns_(&patterns),
      baseline_(std::move(baseline)),
      scratch_(netlist.n_nets(), kAllZero),
      touched_(netlist.n_nets(), false),
      level_queue_(netlist.depth() + 1),
      queued_(netlist.n_nets(), false),
      po_mask_buf_((netlist.n_outputs() + 63) / 64, kAllZero),
      fallback_(netlist) {
  assert(baseline_ != nullptr &&
         baseline_->values.size() == patterns.n_blocks() &&
         baseline_->good.n_patterns() == patterns.n_patterns());
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_buf_.resize(max_fanin);
}

SingleFaultPropagator::SingleFaultPropagator(const Netlist& netlist,
                                             const PatternSet& patterns)
    : SingleFaultPropagator(netlist, patterns,
                            make_baseline(netlist, patterns)) {}

SingleFaultPropagator::SingleFaultPropagator(const Netlist& netlist,
                                             const PatternSet& launch,
                                             const PatternSet& capture)
    : SingleFaultPropagator(netlist, capture) {
  launch_ = &launch;
  BlockSim sim(netlist);
  launch_values_.resize(launch.n_blocks());
  for (std::size_t b = 0; b < launch.n_blocks(); ++b) {
    sim.run(launch, b);
    launch_values_[b].assign(sim.values().begin(), sim.values().end());
  }
}

void SingleFaultPropagator::seed_site(NetId net, Word value, Word good) {
  if (value == good && !touched_[net]) return;  // fault not excited here
  if (touched_[net]) {
    scratch_[net] = value;
    return;
  }
  scratch_[net] = value;
  touched_[net] = true;
  touched_list_.push_back(net);
  for (NetId s : netlist_->fanouts(net)) {
    if (!queued_[s]) {
      queued_[s] = true;
      level_queue_[netlist_->level(s)].push_back(s);
    }
  }
}

void SingleFaultPropagator::seed_fault(const Fault& fault, std::size_t b) {
  const auto& good = baseline_->values[b];
  switch (fault.kind) {
    case FaultKind::StuckAt0:
    case FaultKind::StuckAt1: {
      const Word forced = fault.stuck_value() ? kAllOne : kAllZero;
      if (fault.pin == kStemPin) {
        seed_site(fault.net, forced, good[fault.net]);
      } else {
        // Branch fault: recompute the gate with the forced pin.
        const auto fi = netlist_->fanins(fault.net);
        for (std::size_t j = 0; j < fi.size(); ++j)
          fanin_buf_[j] = good[fi[j]];
        fanin_buf_[fault.pin] = forced;
        seed_site(fault.net,
                  eval_gate_word(netlist_->kind(fault.net),
                                 fanin_buf_.data(), fi.size()),
                  good[fault.net]);
      }
      return;
    }
    case FaultKind::BridgeDom: {
      // Optimistic non-feedback assumption: the aggressor is unaffected,
      // so the victim simply takes the aggressor's good value. propagate()
      // watches the aggressor and triggers the fixpoint fallback if the
      // wave ever reaches it.
      seed_site(fault.net, good[fault.bridge_net], good[fault.net]);
      return;
    }
    case FaultKind::BridgeWAnd:
    case FaultKind::BridgeWOr: {
      const Word resolved = fault.kind == FaultKind::BridgeWAnd
                                ? (good[fault.net] & good[fault.bridge_net])
                                : (good[fault.net] | good[fault.bridge_net]);
      seed_site(fault.net, resolved, good[fault.net]);
      seed_site(fault.bridge_net, resolved, good[fault.bridge_net]);
      return;
    }
    case FaultKind::SlowToRise:
    case FaultKind::SlowToFall: {
      if (launch_ == nullptr) return;  // inert in single-frame mode
      const Word l = launch_values_[b][fault.net];
      const Word c = good[fault.net];
      const Word moved =
          fault.kind == FaultKind::SlowToRise ? (~l & c) : (l & ~c);
      seed_site(fault.net, (c & ~moved) | (l & moved), c);
      return;
    }
  }
}

bool SingleFaultPropagator::propagate(std::size_t b, ErrorSignature& sig,
                                      NetId watch) {
  const auto& good = baseline_->values[b];
  auto read = [&](NetId x) { return touched_[x] ? scratch_[x] : good[x]; };

  for (std::uint32_t lv = 0; lv < level_queue_.size(); ++lv) {
    for (std::size_t idx = 0; idx < level_queue_[lv].size(); ++idx) {
      const NetId g = level_queue_[lv][idx];
      queued_[g] = false;
      const auto fi = netlist_->fanins(g);
      for (std::size_t j = 0; j < fi.size(); ++j)
        fanin_buf_[j] = read(fi[j]);
      const Word v =
          eval_gate_word(netlist_->kind(g), fanin_buf_.data(), fi.size());
      if (v != read(g)) {
        scratch_[g] = v;
        if (!touched_[g]) {
          touched_[g] = true;
          touched_list_.push_back(g);
        }
        for (NetId s : netlist_->fanouts(g)) {
          if (!queued_[s]) {
            queued_[s] = true;
            level_queue_[netlist_->level(s)].push_back(s);
          }
        }
      }
    }
    level_queue_[lv].clear();
  }

  // Collect PO differences for this block (touched POs gathered once; the
  // per-failing-bit loop then only walks that short list).
  const Word valid = patterns_->valid_mask(b);
  Word any = kAllZero;
  struct PoDiff {
    std::uint32_t po;
    Word diff;
  };
  std::vector<PoDiff> po_diffs;
  for (NetId t : touched_list_) {
    if (auto idx = netlist_->output_index(t)) {
      const Word diff = (scratch_[t] ^ good[t]) & valid;
      if (diff) {
        po_diffs.push_back({*idx, diff});
        any |= diff;
      }
    }
  }
  while (any) {
    const int bit = std::countr_zero(any);
    any &= any - 1;
    std::fill(po_mask_buf_.begin(), po_mask_buf_.end(), kAllZero);
    for (const PoDiff& pd : po_diffs) {
      if ((pd.diff >> bit) & 1u)
        po_mask_buf_[pd.po / 64] |= Word{1} << (pd.po % 64);
    }
    sig.append(
        static_cast<std::uint32_t>(b * 64 + static_cast<std::size_t>(bit)),
        po_mask_buf_);
  }

  bool watch_touched = false;
  for (NetId t : touched_list_) {
    // Seeding marks the watched net itself; only a *recomputed* watch net
    // indicates feedback, which seed values never are (the watch net is
    // never a seed site for dominant bridges, and wired bridges watch
    // nothing).
    watch_touched = watch_touched || (t == watch);
    touched_[t] = false;
  }
  touched_list_.clear();
  return watch_touched;
}

ErrorSignature SingleFaultPropagator::signature(const Fault& fault) {
  validate_fault(fault, *netlist_);
  propagate_metrics().queries.inc();
  propagate_metrics().patterns_simulated.inc(patterns_->n_patterns());
  ErrorSignature sig(patterns_->n_patterns(), netlist_->n_outputs());

  // Dominant bridges are propagated optimistically assuming the aggressor
  // is not downstream of the victim; watching the aggressor detects the
  // rare feedback pair, which then reruns on the exact fixpoint machine.
  // (Wired bridges seed the resolved value on both nets; if either net is
  // downstream of the other the wave reaches it as a recomputation, so
  // watch the higher-level net.)
  NetId watch = kNoNet;
  if (fault.kind == FaultKind::BridgeDom) {
    watch = fault.bridge_net;
  } else if (fault.kind == FaultKind::BridgeWAnd ||
             fault.kind == FaultKind::BridgeWOr) {
    if (is_feedback_pair(*netlist_, fault.net, fault.bridge_net))
      watch = fault.net;  // force the fallback below via first block
  }

  for (std::size_t b = 0; b < patterns_->n_blocks(); ++b) {
    seed_fault(fault, b);
    const bool feedback =
        propagate(b, sig, watch) ||
        (watch == fault.net && fault.kind != FaultKind::BridgeDom);
    if (feedback) {
      propagate_metrics().fallbacks.inc();
      fallback_.set_faults({&fault, 1});
      const PatternSet faulty =
          launch_ ? fallback_.simulate_pair(*launch_, *patterns_)
                  : fallback_.simulate(*patterns_);
      return ErrorSignature::diff(baseline_->good, faulty);
    }
  }
  return sig;
}

}  // namespace mdd
