// openmdd — fault simulation.
//
// `ErrorSignature` is the sparse set of (pattern, output) *error bits* a
// fault (or fault multiplet) produces relative to the good machine — the
// currency of the diagnosis core. `FaultSimulator` computes signatures and
// detection/coverage via FaultyMachine, evaluating one kernel lane group
// (kernel.lanes x 64 patterns) per pass; results are bit-identical for
// every kernel (tests/test_kernel_equiv.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/exec.hpp"
#include "fault/inject.hpp"
#include "sim/sim2.hpp"

namespace mdd {

/// Sparse (pattern, output) error-bit set, sorted by pattern. Output masks
/// are fixed-width bit vectors of n_outputs bits (n_po_words words each).
class ErrorSignature {
 public:
  ErrorSignature() = default;
  ErrorSignature(std::size_t n_patterns, std::size_t n_outputs);

  /// Error bits of `faulty` relative to `good` (same shape required).
  static ErrorSignature diff(const PatternSet& good, const PatternSet& faulty);

  std::size_t n_patterns() const { return n_patterns_; }
  std::size_t n_outputs() const { return n_outputs_; }
  std::size_t n_po_words() const { return n_po_words_; }

  bool empty() const { return patterns_.empty(); }
  std::size_t n_failing_patterns() const { return patterns_.size(); }
  std::size_t n_error_bits() const;

  /// Sorted failing pattern indices.
  const std::vector<std::uint32_t>& failing_patterns() const {
    return patterns_;
  }

  /// PO error mask of the i-th failing pattern (n_po_words words).
  std::span<const Word> mask(std::size_t i) const;

  /// PO error mask of pattern `p`, or empty span if `p` does not fail.
  std::span<const Word> mask_of_pattern(std::uint32_t p) const;

  /// Appends a failing pattern (must be > all current patterns).
  void append(std::uint32_t pattern, std::span<const Word> po_mask);

  /// Failing output indices of the i-th failing pattern.
  std::vector<std::uint32_t> failing_outputs(std::size_t i) const;

  bool operator==(const ErrorSignature&) const = default;

 private:
  std::size_t n_patterns_ = 0;
  std::size_t n_outputs_ = 0;
  std::size_t n_po_words_ = 0;
  std::vector<std::uint32_t> patterns_;
  std::vector<Word> masks_;  // patterns_.size() * n_po_words_
};

/// Per-bit match counts between an observed signature (tester) and a
/// simulated candidate signature.
struct MatchCounts {
  std::size_t tfsf = 0;  ///< tester fail & sim fail (same bit)
  std::size_t tfsp = 0;  ///< tester fail, sim pass (unexplained)
  std::size_t tpsf = 0;  ///< tester pass, sim fail (misprediction)
};

/// Computes per-bit match counts between two signatures of the same shape.
MatchCounts match(const ErrorSignature& observed, const ErrorSignature& sim);

/// Repeated-matching accelerator: expands the observed signature into a
/// dense per-pattern bitmap once, then scores each candidate signature by
/// direct indexing — O(candidate entries) instead of a branchy sorted
/// merge. Produces exactly match(observed, sim) for every sim of the same
/// shape (property-tested); use it wherever one observed signature is
/// matched against many candidates.
class SignatureMatcher {
 public:
  explicit SignatureMatcher(const ErrorSignature& observed);
  SignatureMatcher(const ErrorSignature& observed, const SimKernel& kernel);

  MatchCounts match(const ErrorSignature& sim) const;

 private:
  const SimKernel* kernel_;
  std::size_t n_po_words_ = 0;
  std::size_t observed_bits_ = 0;
  std::vector<Word> dense_;  // n_patterns * n_po_words
};

/// Error bits of `a` not present in `b` (same shape): the residual failures
/// left unexplained by `b`.
ErrorSignature signature_difference(const ErrorSignature& a,
                                    const ErrorSignature& b);

/// Drops failing patterns with index >= `n_patterns` (ATE applied-window
/// restriction).
ErrorSignature restrict_signature(const ErrorSignature& sig,
                                  std::size_t n_patterns);

class FaultSimulator {
 public:
  /// Precomputes the good-machine response for `patterns`. The kernel
  /// (default: the process-wide current kernel) is snapshotted for the
  /// simulator's lifetime, including batch workers.
  FaultSimulator(const Netlist& netlist, const PatternSet& patterns);
  FaultSimulator(const Netlist& netlist, const PatternSet& patterns,
                 const SimKernel& kernel);

  /// Reuses an already-simulated good response instead of recomputing it
  /// (the serving session cache amortizes one good simulation across many
  /// datalogs). `good` must be exactly simulate(netlist, patterns); shape
  /// mismatches throw std::invalid_argument.
  FaultSimulator(const Netlist& netlist, const PatternSet& patterns,
                 PatternSet good);
  FaultSimulator(const Netlist& netlist, const PatternSet& patterns,
                 PatternSet good, const SimKernel& kernel);

  const SimKernel& kernel() const { return machine_.kernel(); }
  const Netlist& netlist() const { return *netlist_; }
  const PatternSet& patterns() const { return *patterns_; }
  const PatternSet& good_response() const { return good_; }

  /// Error signature of one fault.
  ErrorSignature signature(const Fault& fault);

  /// Error signature of a multiplet simulated *simultaneously*.
  ErrorSignature signature(std::span<const Fault> multiplet);

  /// True if the fault produces any error bit (early-exits per block).
  bool detects(const Fault& fault);

  /// Lowest pattern index whose response differs under `fault`, if any.
  std::optional<std::uint32_t> first_detecting_pattern(const Fault& fault);

  /// Detection flags for a fault list (serial, with early exit per fault).
  std::vector<bool> detected(std::span<const Fault> faults);

  /// Fraction of `faults` detected by the pattern set.
  double coverage(std::span<const Fault> faults);

  /// Solo signatures of every fault, fault-parallel under `policy` with
  /// per-worker FaultyMachine scratch. Result order matches `faults` and
  /// each entry is byte-identical to `signature(faults[i])` for any thread
  /// count.
  std::vector<ErrorSignature> signatures(std::span<const Fault> faults,
                                         const ExecPolicy& policy) const;

  /// Fault-parallel `detected` (same early exit per fault, identical
  /// output for any thread count).
  std::vector<bool> detected(std::span<const Fault> faults,
                             const ExecPolicy& policy) const;

  /// Fault-parallel coverage.
  double coverage(std::span<const Fault> faults,
                  const ExecPolicy& policy) const;

 private:
  const Netlist* netlist_;
  const PatternSet* patterns_;
  PatternSet good_;
  FaultyMachine machine_;
};

/// Fault simulation over launch/capture pattern *pairs* (transition-fault
/// testing). Pattern index i refers to the pair (launch[i], capture[i]);
/// responses and signatures are capture-frame. Handles any fault mix —
/// static faults corrupt both frames, transition faults activate only on
/// launch->capture transitions.
class PairFaultSimulator {
 public:
  PairFaultSimulator(const Netlist& netlist, const PatternSet& launch,
                     const PatternSet& capture);
  PairFaultSimulator(const Netlist& netlist, const PatternSet& launch,
                     const PatternSet& capture, const SimKernel& kernel);

  const SimKernel& kernel() const { return machine_.kernel(); }
  const Netlist& netlist() const { return *netlist_; }
  const PatternSet& launch() const { return *launch_; }
  const PatternSet& capture() const { return *capture_; }
  std::size_t n_pairs() const { return capture_->n_patterns(); }
  /// Good-machine capture responses.
  const PatternSet& good_response() const { return good_; }

  ErrorSignature signature(const Fault& fault);
  ErrorSignature signature(std::span<const Fault> multiplet);
  bool detects(const Fault& fault);
  std::optional<std::uint32_t> first_detecting_pair(const Fault& fault);
  double coverage(std::span<const Fault> faults);

  /// Pair-parallel batch APIs, mirroring FaultSimulator: output is
  /// byte-identical to the per-fault serial calls for any thread count.
  std::vector<ErrorSignature> signatures(std::span<const Fault> faults,
                                         const ExecPolicy& policy) const;
  std::vector<bool> detected(std::span<const Fault> faults,
                             const ExecPolicy& policy) const;
  double coverage(std::span<const Fault> faults,
                  const ExecPolicy& policy) const;

 private:
  const Netlist* netlist_;
  const PatternSet* launch_;
  const PatternSet* capture_;
  PatternSet good_;
  FaultyMachine machine_;
};

}  // namespace mdd
