// openmdd — event-driven fault signature extraction (PPSFP).
//
// `SingleFaultPropagator` precomputes the good-machine value of every net
// for every 64-pattern block, then answers signature queries by seeding
// the fault sites' faulty words and propagating only through the affected
// cone with a levelized event queue — the classic parallel-pattern fault
// propagation that makes per-candidate simulation proportional to the
// fault's influence cone instead of the whole netlist. Queries evaluate
// one simulation-kernel lane group (kernel.lanes consecutive 64-pattern
// blocks) per wave; results are bit-identical for every kernel.
//
// Two query shapes share the machinery:
//  * signature(const Fault&) — single-fault queries (solo signatures);
//  * signature(span<const Fault>) — an entire multiplet injected at once
//    (composite evaluation), propagating through the union of the
//    members' fan-out cones with the same bridge-fixpoint and two-frame
//    transition semantics as FaultyMachine. Multiplets whose bridge
//    couplings could interact cyclically (feedback pairs, bridge chains
//    that close a loop through the netlist) fall back to the exact
//    fixpoint machine, so results are bit-identical to the reference
//    simulators in every case (verified by property tests).
//
// Used by DiagnosisContext for candidate solo signatures and for the
// greedy multiplet search's composite scores, where thousands of queries
// per case make full re-simulation the dominant cost.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/inject.hpp"
#include "fsim/fsim.hpp"

namespace mdd {

/// The propagator's precomputed good-machine state: every net's value for
/// every 64-pattern block, plus the PO response. It depends only on
/// (netlist, patterns) and is read-only during queries, so propagators for
/// the same pair — across threads or across requests in the serving layer
/// — can share one copy instead of re-simulating the whole circuit each
/// (including propagators running different kernels: the layout is
/// block-major, kernel-independent).
struct PropagatorBaseline {
  std::vector<std::vector<Word>> values;  ///< [block][net]
  PatternSet good;                        ///< PO response (masked to valid)
};

class SingleFaultPropagator {
 public:
  /// Single-frame (static test) mode.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& patterns,
                        const SimKernel& kernel = current_kernel());

  /// Single-frame mode reusing a shared baseline (must have been built by
  /// make_baseline for this exact netlist + patterns pair); skips the
  /// full-circuit good simulation.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& patterns,
                        std::shared_ptr<const PropagatorBaseline> baseline,
                        const SimKernel& kernel = current_kernel());

  /// Two-frame (launch/capture) mode: signatures are capture-frame and
  /// transition faults are supported.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& launch,
                        const PatternSet& capture,
                        const SimKernel& kernel = current_kernel());

  /// Computes the shareable good-machine state for (netlist, patterns).
  static std::shared_ptr<const PropagatorBaseline> make_baseline(
      const Netlist& netlist, const PatternSet& patterns);

  const SimKernel& kernel() const { return *kernel_; }

  /// Error signature of one fault; equals FaultyMachine-based signatures
  /// for non-feedback faults. Feedback bridges fall back to the exact
  /// fixpoint machine.
  ErrorSignature signature(const Fault& fault);

  /// Error signature of an entire multiplet injected simultaneously
  /// (composite evaluation). Bit-identical to
  /// FaultSimulator/PairFaultSimulator::signature(multiplet) for any fault
  /// mix: multiplets whose bridges could couple cyclically are detected up
  /// front and run on the exact fixpoint machine instead.
  ErrorSignature signature(std::span<const Fault> multiplet);

  const Netlist& netlist() const { return *netlist_; }
  const PatternSet& good_response() const { return baseline_->good; }

 private:
  using Frames = std::vector<std::vector<Word>>;  // [block][net]

  /// Gathers net `n`'s lane row for the group at `b0` (m valid blocks;
  /// padding lanes replicate the last valid block) into `out`.
  void gather_row(const Frames& vals, NetId n, std::size_t b0, std::size_t m,
                  Word* out) const;
  /// Lane row of net `n`: the scratch overlay if touched, else the good
  /// row gathered into `buf`.
  const Word* read_row(const Frames& vals, NetId n, std::size_t b0,
                       std::size_t m, Word* buf) const;

  void seed_fault(const Fault& fault, std::size_t b0, std::size_t m);
  /// Propagates the seeded wave; returns true if `watch` was touched
  /// (feedback-bridge detection — the optimistic result is then invalid).
  bool propagate(std::size_t b0, std::size_t m, ErrorSignature& sig,
                 NetId watch);
  void seed_site(NetId net, const Word* value, const Word* good);

  // Composite (multi-fault) machinery. The multiplet is partitioned like
  // FaultyMachine::set_faults; every dequeued net is re-evaluated through
  // the identical per-net transform stack (pin overrides -> gate -> bridge
  // couplings -> transition hold -> stem overrides), so the converged
  // overlay matches the exact machine's fixpoint bit for bit.
  struct CompStem {
    NetId net;
    bool value;
  };
  struct CompPin {
    NetId gate;
    std::uint32_t pin;
    bool value;
  };
  struct CompBridge {
    FaultKind kind;
    NetId a;  ///< victim (dom) / first net (wired)
    NetId b;  ///< aggressor (dom) / second net (wired)
  };
  struct CompTransition {
    NetId net;
    bool rise;
  };
  /// Faulty launch-frame lane row of one transition net (pair mode).
  struct LaunchRow {
    NetId net;
    Word lanes[kMaxKernelLanes];
  };

  /// Partitions the multiplet; false when the bridge couplings could form
  /// a cycle (the event fixpoint would be schedule-dependent there — use
  /// the exact machine).
  bool prepare_composite(std::span<const Fault> multiplet);
  /// True if `to` lies in the strict fan-out cone of `from` (cached; the
  /// netlist is fixed for the propagator's lifetime).
  bool reaches(NetId from, NetId to);
  void enqueue_net(NetId n);
  void seed_composite(bool apply_transitions);
  /// Re-evaluates net `g` under the composite fault set against the
  /// frame's committed `vals`; writes the final lane row to `out` and the
  /// pre-transform driver row (wired-bridge input) to `raw`.
  void eval_composite(NetId g, const Frames& vals, std::size_t b0,
                      std::size_t m, bool apply_transitions, Word* out,
                      Word* raw);
  /// Runs the seeded wave to quiescence (multi-sweep: bridge couplings may
  /// enqueue backwards in level order). False if the sweep cap was hit.
  bool propagate_composite(const Frames& vals, std::size_t b0, std::size_t m,
                           bool apply_transitions);
  /// Appends this group's PO differences to `sig`.
  void collect_composite(std::size_t b0, std::size_t m, ErrorSignature& sig);
  void reset_composite();
  /// Exact-machine path (cyclic couplings / sweep-cap safety).
  ErrorSignature composite_fallback(std::span<const Fault> multiplet);
  bool is_wired_member(NetId g) const;

  const Netlist* netlist_;
  const SimKernel* kernel_;
  std::size_t lanes_;
  const PatternSet* patterns_;  // capture frame in pair mode
  const PatternSet* launch_ = nullptr;

  /// Committed good values + PO response (owned or shared; never written
  /// after construction).
  std::shared_ptr<const PropagatorBaseline> baseline_;
  Frames launch_values_;  // pair mode

  // Per-query scratch.
  std::vector<Word> scratch_;  ///< [net][lane] faulty overlay
  std::vector<bool> touched_;
  std::vector<NetId> touched_list_;
  std::vector<std::vector<NetId>> level_queue_;
  std::vector<bool> queued_;
  std::vector<Word> fanin_lanes_;  ///< [fanin slot][lane] gather buffer
  std::vector<const Word*> fanin_ptrs_;
  std::vector<Word> po_mask_buf_;

  // Composite-query scratch (allocated on first composite query).
  std::vector<CompStem> comp_stems_;
  std::vector<CompPin> comp_pins_;
  std::vector<CompBridge> comp_bridges_;
  std::vector<CompTransition> comp_transitions_;
  std::vector<Word> raw_scratch_;  ///< pre-transform rows, wired members
  std::vector<bool> raw_touched_;
  std::vector<NetId> raw_touched_list_;
  /// Faulty launch-frame rows at the transition nets (pair mode; the only
  /// frame-1 state the capture frame consumes).
  std::vector<LaunchRow> launch_faulty_;
  std::size_t pending_ = 0;  ///< enqueued, not yet re-evaluated
  std::unordered_map<std::uint64_t, bool> reach_cache_;

  FaultyMachine fallback_;
};

}  // namespace mdd
