// openmdd — event-driven single-fault signature extraction (PPSFP).
//
// `SingleFaultPropagator` precomputes the good-machine value of every net
// for every 64-pattern block, then answers signature queries for a single
// fault by seeding the fault site's faulty word and propagating only
// through the affected cone with a levelized event queue — the classic
// parallel-pattern single-fault propagation that makes per-candidate
// simulation proportional to the fault's influence cone instead of the
// whole netlist. Results are bit-identical to FaultyMachine for every
// non-feedback single fault (verified by property tests).
//
// Used by DiagnosisContext for candidate solo signatures, where thousands
// of queries per case make full re-simulation the dominant cost.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fault/inject.hpp"
#include "fsim/fsim.hpp"

namespace mdd {

/// The propagator's precomputed good-machine state: every net's value for
/// every 64-pattern block, plus the PO response. It depends only on
/// (netlist, patterns) and is read-only during queries, so propagators for
/// the same pair — across threads or across requests in the serving layer
/// — can share one copy instead of re-simulating the whole circuit each.
struct PropagatorBaseline {
  std::vector<std::vector<Word>> values;  ///< [block][net]
  PatternSet good;                        ///< PO response (masked to valid)
};

class SingleFaultPropagator {
 public:
  /// Single-frame (static test) mode.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& patterns);

  /// Single-frame mode reusing a shared baseline (must have been built by
  /// make_baseline for this exact netlist + patterns pair); skips the
  /// full-circuit good simulation.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& patterns,
                        std::shared_ptr<const PropagatorBaseline> baseline);

  /// Two-frame (launch/capture) mode: signatures are capture-frame and
  /// transition faults are supported.
  SingleFaultPropagator(const Netlist& netlist, const PatternSet& launch,
                        const PatternSet& capture);

  /// Computes the shareable good-machine state for (netlist, patterns).
  static std::shared_ptr<const PropagatorBaseline> make_baseline(
      const Netlist& netlist, const PatternSet& patterns);

  /// Error signature of one fault; equals FaultyMachine-based signatures
  /// for non-feedback faults. Feedback bridges fall back to the exact
  /// fixpoint machine.
  ErrorSignature signature(const Fault& fault);

  const Netlist& netlist() const { return *netlist_; }
  const PatternSet& good_response() const { return baseline_->good; }

 private:
  void seed_fault(const Fault& fault, std::size_t b);
  /// Propagates the seeded wave; returns true if `watch` was touched
  /// (feedback-bridge detection — the optimistic result is then invalid).
  bool propagate(std::size_t b, ErrorSignature& sig, NetId watch);
  void seed_site(NetId net, Word value, Word good);

  const Netlist* netlist_;
  const PatternSet* patterns_;  // capture frame in pair mode
  const PatternSet* launch_ = nullptr;

  /// Committed good values + PO response (owned or shared; never written
  /// after construction).
  std::shared_ptr<const PropagatorBaseline> baseline_;
  std::vector<std::vector<Word>> launch_values_;  // pair mode

  // Per-query scratch.
  std::vector<Word> scratch_;
  std::vector<bool> touched_;
  std::vector<NetId> touched_list_;
  std::vector<std::vector<NetId>> level_queue_;
  std::vector<bool> queued_;
  std::vector<Word> fanin_buf_;
  std::vector<Word> po_mask_buf_;

  FaultyMachine fallback_;
};

}  // namespace mdd
