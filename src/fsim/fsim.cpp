#include "fsim/fsim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mdd {

ErrorSignature::ErrorSignature(std::size_t n_patterns, std::size_t n_outputs)
    : n_patterns_(n_patterns),
      n_outputs_(n_outputs),
      n_po_words_((n_outputs + 63) / 64) {}

ErrorSignature ErrorSignature::diff(const PatternSet& good,
                                    const PatternSet& faulty) {
  if (good.n_patterns() != faulty.n_patterns() ||
      good.n_signals() != faulty.n_signals())
    throw std::invalid_argument("ErrorSignature::diff: shape mismatch");
  ErrorSignature sig(good.n_patterns(), good.n_signals());
  std::vector<Word> mask(sig.n_po_words_);
  // Word-wise: one XOR sweep finds the failing patterns of each block,
  // then only those extract per-output masks.
  for (std::size_t b = 0; b < good.n_blocks(); ++b) {
    const Word valid = good.valid_mask(b);
    Word any_diff = kAllZero;
    for (std::size_t o = 0; o < good.n_signals(); ++o)
      any_diff |= (good.word(b, o) ^ faulty.word(b, o)) & valid;
    while (any_diff) {
      const int bit = std::countr_zero(any_diff);
      any_diff &= any_diff - 1;
      std::fill(mask.begin(), mask.end(), kAllZero);
      for (std::size_t o = 0; o < good.n_signals(); ++o) {
        const Word d = good.word(b, o) ^ faulty.word(b, o);
        if ((d >> bit) & 1u) mask[o / 64] |= Word{1} << (o % 64);
      }
      sig.append(static_cast<std::uint32_t>(b * 64 + bit), mask);
    }
  }
  return sig;
}

std::size_t ErrorSignature::n_error_bits() const {
  std::size_t n = 0;
  for (Word w : masks_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::span<const Word> ErrorSignature::mask(std::size_t i) const {
  assert(i < patterns_.size());
  return {masks_.data() + i * n_po_words_, n_po_words_};
}

std::span<const Word> ErrorSignature::mask_of_pattern(std::uint32_t p) const {
  auto it = std::lower_bound(patterns_.begin(), patterns_.end(), p);
  if (it == patterns_.end() || *it != p) return {};
  return mask(static_cast<std::size_t>(it - patterns_.begin()));
}

void ErrorSignature::append(std::uint32_t pattern,
                            std::span<const Word> po_mask) {
  assert(po_mask.size() == n_po_words_);
  assert(patterns_.empty() || patterns_.back() < pattern);
  patterns_.push_back(pattern);
  masks_.insert(masks_.end(), po_mask.begin(), po_mask.end());
}

std::vector<std::uint32_t> ErrorSignature::failing_outputs(
    std::size_t i) const {
  std::vector<std::uint32_t> outs;
  const auto m = mask(i);
  for (std::size_t w = 0; w < m.size(); ++w) {
    Word bits = m[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      outs.push_back(static_cast<std::uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  return outs;
}

MatchCounts match(const ErrorSignature& observed, const ErrorSignature& sim) {
  assert(observed.n_po_words() == sim.n_po_words());
  MatchCounts mc;
  const auto& op = observed.failing_patterns();
  const auto& sp = sim.failing_patterns();
  std::size_t i = 0, j = 0;
  const std::size_t nw = observed.n_po_words();
  while (i < op.size() || j < sp.size()) {
    if (j >= sp.size() || (i < op.size() && op[i] < sp[j])) {
      for (Word w : observed.mask(i))
        mc.tfsp += static_cast<std::size_t>(std::popcount(w));
      ++i;
    } else if (i >= op.size() || sp[j] < op[i]) {
      for (Word w : sim.mask(j))
        mc.tpsf += static_cast<std::size_t>(std::popcount(w));
      ++j;
    } else {
      const auto om = observed.mask(i);
      const auto sm = sim.mask(j);
      for (std::size_t w = 0; w < nw; ++w) {
        mc.tfsf += static_cast<std::size_t>(std::popcount(om[w] & sm[w]));
        mc.tfsp += static_cast<std::size_t>(std::popcount(om[w] & ~sm[w]));
        mc.tpsf += static_cast<std::size_t>(std::popcount(~om[w] & sm[w]));
      }
      ++i;
      ++j;
    }
  }
  return mc;
}

SignatureMatcher::SignatureMatcher(const ErrorSignature& observed)
    : SignatureMatcher(observed, current_kernel()) {}

SignatureMatcher::SignatureMatcher(const ErrorSignature& observed,
                                   const SimKernel& kernel)
    : kernel_(&kernel),
      n_po_words_(observed.n_po_words()),
      dense_(observed.n_patterns() * observed.n_po_words(), kAllZero) {
  for (std::size_t i = 0; i < observed.n_failing_patterns(); ++i) {
    const std::uint32_t p = observed.failing_patterns()[i];
    const auto m = observed.mask(i);
    for (std::size_t w = 0; w < n_po_words_; ++w) {
      dense_[p * n_po_words_ + w] = m[w];
      observed_bits_ += static_cast<std::size_t>(std::popcount(m[w]));
    }
  }
}

MatchCounts SignatureMatcher::match(const ErrorSignature& sim) const {
  assert(sim.n_po_words() == n_po_words_);
  // tfsp and tpsf follow from the totals: every observed bit is either
  // explained (tfsf) or not (tfsp), every simulated bit either observed
  // (tfsf) or a misprediction (tpsf).
  std::size_t tfsf = 0, sim_bits = 0;
  const auto& sp = sim.failing_patterns();
  for (std::size_t j = 0; j < sp.size(); ++j) {
    const Word* obs = dense_.data() + std::size_t{sp[j]} * n_po_words_;
    const auto m = sim.mask(j);
    tfsf += kernel_->popcount_and(obs, m.data(), n_po_words_);
    sim_bits += kernel_->popcount(m.data(), n_po_words_);
  }
  MatchCounts mc;
  mc.tfsf = tfsf;
  mc.tfsp = observed_bits_ - tfsf;
  mc.tpsf = sim_bits - tfsf;
  return mc;
}

ErrorSignature signature_difference(const ErrorSignature& a,
                                    const ErrorSignature& b) {
  assert(a.n_po_words() == b.n_po_words());
  ErrorSignature out(a.n_patterns(), a.n_outputs());
  std::vector<Word> mask(a.n_po_words());
  for (std::size_t i = 0; i < a.n_failing_patterns(); ++i) {
    const std::uint32_t p = a.failing_patterns()[i];
    const auto am = a.mask(i);
    const auto bm = b.mask_of_pattern(p);
    bool any = false;
    for (std::size_t w = 0; w < mask.size(); ++w) {
      mask[w] = am[w] & ~(bm.empty() ? kAllZero : bm[w]);
      any = any || mask[w] != kAllZero;
    }
    if (any) out.append(p, mask);
  }
  return out;
}

ErrorSignature restrict_signature(const ErrorSignature& sig,
                                  std::size_t n_patterns) {
  ErrorSignature out(sig.n_patterns(), sig.n_outputs());
  for (std::size_t i = 0; i < sig.n_failing_patterns(); ++i) {
    const std::uint32_t p = sig.failing_patterns()[i];
    if (p >= n_patterns) break;
    out.append(p, sig.mask(i));
  }
  return out;
}

namespace {

/// Whole-machine simulation volume, for the obs layer: every signature /
/// detection kernel call lands here. Relaxed atomic adds on cached
/// handles — safe and cheap from any worker thread.
struct FsimMetrics {
  obs::Counter& signatures = obs::registry().counter("fsim.signatures");
  obs::Counter& detect_queries =
      obs::registry().counter("fsim.detect_queries");
  obs::Counter& patterns_simulated =
      obs::registry().counter("fsim.patterns_simulated");
};

FsimMetrics& fsim_metrics() {
  static FsimMetrics m;
  return m;
}

/// Single-frame signature kernel on an explicit machine — shared by the
/// serial member and the fault-parallel batch (one machine per worker).
ErrorSignature signature_on(FaultyMachine& machine, const Netlist& netlist,
                            const PatternSet& patterns,
                            const PatternSet& good,
                            std::span<const Fault> multiplet) {
  fsim_metrics().signatures.inc();
  fsim_metrics().patterns_simulated.inc(patterns.n_patterns());
  machine.set_faults(multiplet);
  ErrorSignature sig(patterns.n_patterns(), netlist.n_outputs());
  std::vector<Word> mask(sig.n_po_words());
  const auto& pos = netlist.outputs();
  for (std::size_t b = 0; b < patterns.n_blocks();) {
    const std::size_t m = machine.run_wide(patterns, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = patterns.valid_mask(b + l);
      // Which patterns in this block show any PO difference?
      Word any_diff = kAllZero;
      for (std::size_t o = 0; o < pos.size(); ++o)
        any_diff |= (machine.value(pos[o], l) ^ good.word(b + l, o)) & valid;
      while (any_diff) {
        const int bit = std::countr_zero(any_diff);
        any_diff &= any_diff - 1;
        const std::size_t p = (b + l) * 64 + static_cast<std::size_t>(bit);
        std::fill(mask.begin(), mask.end(), kAllZero);
        for (std::size_t o = 0; o < pos.size(); ++o) {
          const Word d = machine.value(pos[o], l) ^ good.word(b + l, o);
          if ((d >> bit) & 1u) mask[o / 64] |= Word{1} << (o % 64);
        }
        sig.append(static_cast<std::uint32_t>(p), mask);
      }
    }
    b += m;
  }
  return sig;
}

bool detects_on(FaultyMachine& machine, const Netlist& netlist,
                const PatternSet& patterns, const PatternSet& good,
                const Fault& fault) {
  fsim_metrics().detect_queries.inc();
  machine.set_faults({&fault, 1});
  const auto& pos = netlist.outputs();
  for (std::size_t b = 0; b < patterns.n_blocks();) {
    const std::size_t m = machine.run_wide(patterns, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = patterns.valid_mask(b + l);
      for (std::size_t o = 0; o < pos.size(); ++o)
        if ((machine.value(pos[o], l) ^ good.word(b + l, o)) & valid)
          return true;
    }
    b += m;
  }
  return false;
}

/// Two-frame (launch/capture) signature kernel on an explicit machine.
ErrorSignature pair_signature_on(FaultyMachine& machine,
                                 const Netlist& netlist,
                                 const PatternSet& launch,
                                 const PatternSet& capture,
                                 const PatternSet& good,
                                 std::span<const Fault> multiplet) {
  fsim_metrics().signatures.inc();
  fsim_metrics().patterns_simulated.inc(capture.n_patterns());
  machine.set_faults(multiplet);
  ErrorSignature sig(capture.n_patterns(), netlist.n_outputs());
  std::vector<Word> mask(sig.n_po_words());
  const auto& pos = netlist.outputs();
  for (std::size_t b = 0; b < capture.n_blocks();) {
    const std::size_t m = machine.run_pair_wide(launch, capture, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = capture.valid_mask(b + l);
      Word any_diff = kAllZero;
      for (std::size_t o = 0; o < pos.size(); ++o)
        any_diff |= (machine.value(pos[o], l) ^ good.word(b + l, o)) & valid;
      while (any_diff) {
        const int bit = std::countr_zero(any_diff);
        any_diff &= any_diff - 1;
        const std::size_t p = (b + l) * 64 + static_cast<std::size_t>(bit);
        std::fill(mask.begin(), mask.end(), kAllZero);
        for (std::size_t o = 0; o < pos.size(); ++o) {
          const Word d = machine.value(pos[o], l) ^ good.word(b + l, o);
          if ((d >> bit) & 1u) mask[o / 64] |= Word{1} << (o % 64);
        }
        sig.append(static_cast<std::uint32_t>(p), mask);
      }
    }
    b += m;
  }
  return sig;
}

bool pair_detects_on(FaultyMachine& machine, const Netlist& netlist,
                     const PatternSet& launch, const PatternSet& capture,
                     const PatternSet& good, const Fault& fault) {
  fsim_metrics().detect_queries.inc();
  machine.set_faults({&fault, 1});
  const auto& pos = netlist.outputs();
  for (std::size_t b = 0; b < capture.n_blocks();) {
    const std::size_t m = machine.run_pair_wide(launch, capture, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = capture.valid_mask(b + l);
      for (std::size_t o = 0; o < pos.size(); ++o)
        if ((machine.value(pos[o], l) ^ good.word(b + l, o)) & valid)
          return true;
    }
    b += m;
  }
  return false;
}

}  // namespace

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const PatternSet& patterns)
    : FaultSimulator(netlist, patterns, current_kernel()) {}

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const PatternSet& patterns,
                               const SimKernel& kernel)
    : netlist_(&netlist),
      patterns_(&patterns),
      good_(simulate(netlist, patterns, kernel)),
      machine_(netlist, kernel) {}

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const PatternSet& patterns, PatternSet good)
    : FaultSimulator(netlist, patterns, std::move(good), current_kernel()) {}

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const PatternSet& patterns, PatternSet good,
                               const SimKernel& kernel)
    : netlist_(&netlist),
      patterns_(&patterns),
      good_(std::move(good)),
      machine_(netlist, kernel) {
  if (good_.n_patterns() != patterns.n_patterns() ||
      good_.n_signals() != netlist.n_outputs())
    throw std::invalid_argument(
        "FaultSimulator: precomputed good response shape mismatch");
}

ErrorSignature FaultSimulator::signature(const Fault& fault) {
  return signature(std::span<const Fault>(&fault, 1));
}

ErrorSignature FaultSimulator::signature(std::span<const Fault> multiplet) {
  return signature_on(machine_, *netlist_, *patterns_, good_, multiplet);
}

bool FaultSimulator::detects(const Fault& fault) {
  return detects_on(machine_, *netlist_, *patterns_, good_, fault);
}

std::optional<std::uint32_t> FaultSimulator::first_detecting_pattern(
    const Fault& fault) {
  machine_.set_faults({&fault, 1});
  const auto& pos = netlist_->outputs();
  for (std::size_t b = 0; b < patterns_->n_blocks();) {
    const std::size_t m = machine_.run_wide(*patterns_, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = patterns_->valid_mask(b + l);
      Word any = kAllZero;
      for (std::size_t o = 0; o < pos.size(); ++o)
        any |= (machine_.value(pos[o], l) ^ good_.word(b + l, o)) & valid;
      if (any)
        return static_cast<std::uint32_t>((b + l) * 64 +
                                          std::countr_zero(any));
    }
    b += m;
  }
  return std::nullopt;
}

std::vector<bool> FaultSimulator::detected(std::span<const Fault> faults) {
  std::vector<bool> out(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) out[i] = detects(faults[i]);
  return out;
}

double FaultSimulator::coverage(std::span<const Fault> faults) {
  if (faults.empty()) return 1.0;
  const auto det = detected(faults);
  std::size_t n = 0;
  for (bool d : det) n += d;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

std::vector<ErrorSignature> FaultSimulator::signatures(
    std::span<const Fault> faults, const ExecPolicy& policy) const {
  std::vector<ErrorSignature> out(faults.size());
  parallel_for_ranges(policy, faults.size(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        FaultyMachine machine(*netlist_, machine_.kernel());
                        for (std::size_t i = begin; i < end; ++i)
                          out[i] = signature_on(machine, *netlist_,
                                                *patterns_, good_,
                                                {&faults[i], 1});
                      });
  return out;
}

std::vector<bool> FaultSimulator::detected(std::span<const Fault> faults,
                                           const ExecPolicy& policy) const {
  std::vector<bool> out(faults.size());
  // std::vector<bool> packs bits — adjacent slots share a word, so each
  // worker writes a private buffer and the caller stitches ranges back in
  // index order.
  std::vector<std::vector<bool>> parts;
  std::vector<std::size_t> offsets;
  std::mutex mu;
  parallel_for_ranges(
      policy, faults.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        FaultyMachine machine(*netlist_, machine_.kernel());
        std::vector<bool> part(end - begin);
        for (std::size_t i = begin; i < end; ++i)
          part[i - begin] =
              detects_on(machine, *netlist_, *patterns_, good_, faults[i]);
        std::lock_guard<std::mutex> lock(mu);
        parts.push_back(std::move(part));
        offsets.push_back(begin);
      });
  for (std::size_t k = 0; k < parts.size(); ++k)
    for (std::size_t i = 0; i < parts[k].size(); ++i)
      out[offsets[k] + i] = parts[k][i];
  return out;
}

double FaultSimulator::coverage(std::span<const Fault> faults,
                                const ExecPolicy& policy) const {
  if (faults.empty()) return 1.0;
  const auto det = detected(faults, policy);
  std::size_t n = 0;
  for (bool d : det) n += d;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

PairFaultSimulator::PairFaultSimulator(const Netlist& netlist,
                                       const PatternSet& launch,
                                       const PatternSet& capture)
    : PairFaultSimulator(netlist, launch, capture, current_kernel()) {}

PairFaultSimulator::PairFaultSimulator(const Netlist& netlist,
                                       const PatternSet& launch,
                                       const PatternSet& capture,
                                       const SimKernel& kernel)
    : netlist_(&netlist),
      launch_(&launch),
      capture_(&capture),
      machine_(netlist, kernel) {
  if (launch.n_patterns() != capture.n_patterns())
    throw std::invalid_argument("PairFaultSimulator: pair count mismatch");
  machine_.set_faults({});
  good_ = machine_.simulate_pair(launch, capture);
}

ErrorSignature PairFaultSimulator::signature(const Fault& fault) {
  return signature(std::span<const Fault>(&fault, 1));
}

ErrorSignature PairFaultSimulator::signature(std::span<const Fault> multiplet) {
  return pair_signature_on(machine_, *netlist_, *launch_, *capture_, good_,
                           multiplet);
}

bool PairFaultSimulator::detects(const Fault& fault) {
  return pair_detects_on(machine_, *netlist_, *launch_, *capture_, good_,
                         fault);
}

std::optional<std::uint32_t> PairFaultSimulator::first_detecting_pair(
    const Fault& fault) {
  machine_.set_faults({&fault, 1});
  const auto& pos = netlist_->outputs();
  for (std::size_t b = 0; b < capture_->n_blocks();) {
    const std::size_t m = machine_.run_pair_wide(*launch_, *capture_, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word valid = capture_->valid_mask(b + l);
      Word any = kAllZero;
      for (std::size_t o = 0; o < pos.size(); ++o)
        any |= (machine_.value(pos[o], l) ^ good_.word(b + l, o)) & valid;
      if (any)
        return static_cast<std::uint32_t>((b + l) * 64 +
                                          std::countr_zero(any));
    }
    b += m;
  }
  return std::nullopt;
}

double PairFaultSimulator::coverage(std::span<const Fault> faults) {
  if (faults.empty()) return 1.0;
  std::size_t n = 0;
  for (const Fault& f : faults) n += detects(f);
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

std::vector<ErrorSignature> PairFaultSimulator::signatures(
    std::span<const Fault> faults, const ExecPolicy& policy) const {
  std::vector<ErrorSignature> out(faults.size());
  parallel_for_ranges(policy, faults.size(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        FaultyMachine machine(*netlist_, machine_.kernel());
                        for (std::size_t i = begin; i < end; ++i)
                          out[i] = pair_signature_on(machine, *netlist_,
                                                     *launch_, *capture_,
                                                     good_, {&faults[i], 1});
                      });
  return out;
}

std::vector<bool> PairFaultSimulator::detected(
    std::span<const Fault> faults, const ExecPolicy& policy) const {
  std::vector<bool> out(faults.size());
  std::vector<std::vector<bool>> parts;
  std::vector<std::size_t> offsets;
  std::mutex mu;
  parallel_for_ranges(
      policy, faults.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        FaultyMachine machine(*netlist_, machine_.kernel());
        std::vector<bool> part(end - begin);
        for (std::size_t i = begin; i < end; ++i)
          part[i - begin] = pair_detects_on(machine, *netlist_, *launch_,
                                            *capture_, good_, faults[i]);
        std::lock_guard<std::mutex> lock(mu);
        parts.push_back(std::move(part));
        offsets.push_back(begin);
      });
  for (std::size_t k = 0; k < parts.size(); ++k)
    for (std::size_t i = 0; i < parts[k].size(); ++i)
      out[offsets[k] + i] = parts[k][i];
  return out;
}

double PairFaultSimulator::coverage(std::span<const Fault> faults,
                                    const ExecPolicy& policy) const {
  if (faults.empty()) return 1.0;
  const auto det = detected(faults, policy);
  std::size_t n = 0;
  for (bool d : det) n += d;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

}  // namespace mdd
