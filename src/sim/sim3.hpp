// openmdd — three-valued (0/1/X) simulation.
//
// Two entry points:
//  * `Scalar3Sim` — one pattern at a time with Val3 values; the workhorse
//    of PODEM (supports partial input assignments, X elsewhere).
//  * `simulate3` — dual-rail word-parallel batch simulation for pattern
//    sets that contain unknowns.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace mdd {

/// Scalar three-valued full-pass simulator with an optional single
/// stuck-value override on any net (used by ATPG's faulty machine).
class Scalar3Sim {
 public:
  explicit Scalar3Sim(const Netlist& netlist);

  /// Clears all PI assignments to X.
  void reset();

  /// Assigns a PI (by PI index, i.e. position in netlist.inputs()).
  void set_input(std::size_t pi_index, Val3 v);
  Val3 input(std::size_t pi_index) const { return pi_vals_[pi_index]; }

  /// Forces net `n` to `v` regardless of its driver ("stuck" override);
  /// pass kNoNet to clear.
  void set_override(NetId n, Val3 v);

  /// Forces fanin pin `pin` of gate `gate` to read `v` (branch fault);
  /// pass kNoNet to clear.
  void set_pin_override(NetId gate, std::uint32_t pin, Val3 v);

  /// Full-pass evaluation from the current PI assignment.
  void run();

  Val3 value(NetId n) const { return values_[n]; }
  const Netlist& netlist() const { return *netlist_; }

 private:
  const Netlist* netlist_;
  std::vector<Val3> pi_vals_;
  std::vector<Val3> values_;
  NetId override_net_ = kNoNet;
  Val3 override_val_ = Val3::X;
  NetId pin_override_gate_ = kNoNet;
  std::uint32_t pin_override_pin_ = 0;
  Val3 pin_override_val_ = Val3::X;
};

/// A pattern set over {0,1,X}: value planes for packed 3-valued stimuli.
struct Pattern3Set {
  PatternSet is0;  ///< bit set => signal is 0
  PatternSet is1;  ///< bit set => signal is 1 (neither => X)

  static Pattern3Set from_binary(const PatternSet& ps);
  std::size_t n_patterns() const { return is0.n_patterns(); }
  std::size_t n_signals() const { return is0.n_signals(); }
  Val3 get(std::size_t pattern, std::size_t signal) const;
  void set(std::size_t pattern, std::size_t signal, Val3 v);
};

/// Word-parallel dual-rail batch simulation; X-in propagates conservatively.
Pattern3Set simulate3(const Netlist& netlist, const Pattern3Set& stimuli);

}  // namespace mdd
