#include "sim/sim2.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

BlockSim::BlockSim(const Netlist& netlist)
    : BlockSim(netlist, current_kernel()) {}

BlockSim::BlockSim(const Netlist& netlist, const SimKernel& kernel)
    : netlist_(&netlist),
      kernel_(&kernel),
      lanes_(kernel.lanes),
      values_(netlist.n_nets() * kernel.lanes, kAllZero) {
  if (!netlist.finalized())
    throw std::logic_error("BlockSim: netlist not finalized");
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_ptrs_.resize(max_fanin);
}

void BlockSim::eval_topo() {
  for (NetId g : netlist_->topo_order()) {
    const GateKind k = netlist_->kind(g);
    if (k == GateKind::Input) continue;
    const auto fi = netlist_->fanins(g);
    for (std::size_t j = 0; j < fi.size(); ++j)
      fanin_ptrs_[j] = values_.data() + fi[j] * lanes_;
    kernel_->eval_gate(k, fanin_ptrs_.data(), fi.size(),
                       values_.data() + g * lanes_);
  }
}

std::size_t BlockSim::run_wide(const PatternSet& stimuli, std::size_t block) {
  const auto& inputs = netlist_->inputs();
  assert(stimuli.n_signals() == inputs.size());
  assert(block < stimuli.n_blocks());
  const std::size_t m = std::min(lanes_, stimuli.n_blocks() - block);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Word* v = values_.data() + inputs[i] * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l)
      v[l] = stimuli.word(block + std::min(l, m - 1), i);
  }
  eval_topo();
  return m;
}

void BlockSim::run(std::span<const Word> pi_words) {
  const auto& inputs = netlist_->inputs();
  assert(pi_words.size() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Word* v = values_.data() + inputs[i] * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) v[l] = pi_words[i];
  }
  eval_topo();
}

void BlockSim::outputs(std::span<Word> out) const {
  const auto& pos = netlist_->outputs();
  assert(out.size() == pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) out[i] = value(pos[i]);
}

PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli,
                    const SimKernel& kernel) {
  PatternSet responses(stimuli.n_patterns(), netlist.n_outputs());
  BlockSim sim(netlist, kernel);
  for (std::size_t b = 0; b < stimuli.n_blocks();) {
    const std::size_t m = sim.run_wide(stimuli, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word mask = stimuli.valid_mask(b + l);
      for (std::size_t o = 0; o < netlist.n_outputs(); ++o)
        responses.word(b + l, o) = sim.value(netlist.outputs()[o], l) & mask;
    }
    b += m;
  }
  return responses;
}

PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli) {
  return simulate(netlist, stimuli, current_kernel());
}

}  // namespace mdd
