#include "sim/sim2.hpp"

#include <cassert>
#include <stdexcept>

namespace mdd {

BlockSim::BlockSim(const Netlist& netlist)
    : netlist_(&netlist), values_(netlist.n_nets(), kAllZero) {
  if (!netlist.finalized())
    throw std::logic_error("BlockSim: netlist not finalized");
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_buf_.resize(max_fanin);
}

void BlockSim::run(const PatternSet& stimuli, std::size_t block) {
  const auto& inputs = netlist_->inputs();
  assert(stimuli.n_signals() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = stimuli.word(block, i);
  for (NetId g : netlist_->topo_order()) {
    const GateKind k = netlist_->kind(g);
    if (k == GateKind::Input) continue;
    const auto fi = netlist_->fanins(g);
    for (std::size_t j = 0; j < fi.size(); ++j)
      fanin_buf_[j] = values_[fi[j]];
    values_[g] = eval_gate_word(k, fanin_buf_.data(), fi.size());
  }
}

void BlockSim::run(std::span<const Word> pi_words) {
  const auto& inputs = netlist_->inputs();
  assert(pi_words.size() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = pi_words[i];
  for (NetId g : netlist_->topo_order()) {
    const GateKind k = netlist_->kind(g);
    if (k == GateKind::Input) continue;
    const auto fi = netlist_->fanins(g);
    for (std::size_t j = 0; j < fi.size(); ++j)
      fanin_buf_[j] = values_[fi[j]];
    values_[g] = eval_gate_word(k, fanin_buf_.data(), fi.size());
  }
}

void BlockSim::outputs(std::span<Word> out) const {
  const auto& pos = netlist_->outputs();
  assert(out.size() == pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) out[i] = values_[pos[i]];
}

PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli) {
  PatternSet responses(stimuli.n_patterns(), netlist.n_outputs());
  BlockSim sim(netlist);
  for (std::size_t b = 0; b < stimuli.n_blocks(); ++b) {
    sim.run(stimuli, b);
    const Word mask = stimuli.valid_mask(b);
    for (std::size_t o = 0; o < netlist.n_outputs(); ++o)
      responses.word(b, o) = sim.value(netlist.outputs()[o]) & mask;
  }
  return responses;
}

}  // namespace mdd
