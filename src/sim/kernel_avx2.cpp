// AVX2 simulation kernel: 4 pattern-words (256 patterns) per pass. The
// whole TU is compiled with -mavx2 (see src/sim/CMakeLists.txt), so the
// generic lane loops in kernel_ops.inl vectorize to 256-bit ops; when the
// toolchain cannot target AVX2 or -DMDD_DISABLE_SIMD=ON, the table is
// absent and dispatch stays on narrower kernels.
#include "sim/kernel.hpp"

#include <bit>

namespace mdd::detail {

#if defined(MDD_KERNEL_AVX2)

namespace {
#include "sim/kernel_ops.inl"

constexpr SimKernel kAvx2Kernel = {
    "avx2", 4, &eval_gate_lanes<4>, &popcount_words, &popcount_and_words};
}  // namespace

const SimKernel* avx2_kernel_table() { return &kAvx2Kernel; }

#else

const SimKernel* avx2_kernel_table() { return nullptr; }

#endif

}  // namespace mdd::detail
