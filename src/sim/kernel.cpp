#include "sim/kernel.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>

namespace mdd {

namespace detail {
// Defined in kernel_avx2.cpp / kernel_avx512.cpp; nullptr when the build
// excluded the variant (-DMDD_DISABLE_SIMD=ON or an unsupporting
// compiler). CPUID gating happens here, not in the variant TUs.
const SimKernel* avx2_kernel_table();
const SimKernel* avx512_kernel_table();
}  // namespace detail

namespace {

#include "sim/kernel_ops.inl"

constexpr SimKernel kScalarKernel = {
    "scalar", 1, &eval_gate_lanes<1>, &popcount_words, &popcount_and_words};

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // Must cover every ISA extension the avx512 TU is compiled with.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

std::vector<const SimKernel*> probe_kernels() {
  std::vector<const SimKernel*> out{&kScalarKernel};
  if (const SimKernel* k = detail::avx2_kernel_table(); k && cpu_has_avx2())
    out.push_back(k);
  if (const SimKernel* k = detail::avx512_kernel_table();
      k && cpu_has_avx512())
    out.push_back(k);
  return out;
}

std::atomic<const SimKernel*> g_current{nullptr};

const SimKernel* resolve_default() {
  if (const char* env = std::getenv("MDD_KERNEL"); env && *env) {
    if (const SimKernel* k = find_kernel(env)) return k;
    std::fprintf(stderr,
                 "openmdd: MDD_KERNEL=%s is not an available kernel "
                 "(available: %s); falling back to %s\n",
                 env, kernel_names().c_str(), best_kernel().name);
  }
  return &best_kernel();
}

}  // namespace

const SimKernel& scalar_kernel() { return kScalarKernel; }

const std::vector<const SimKernel*>& available_kernels() {
  static const std::vector<const SimKernel*> kernels = probe_kernels();
  return kernels;
}

const SimKernel* find_kernel(std::string_view name) {
  for (const SimKernel* k : available_kernels())
    if (name == k->name) return k;
  return nullptr;
}

const SimKernel& best_kernel() { return *available_kernels().back(); }

std::string kernel_names() {
  std::string out;
  for (const SimKernel* k : available_kernels()) {
    if (!out.empty()) out += ' ';
    out += k->name;
  }
  return out;
}

const SimKernel& current_kernel() {
  const SimKernel* k = g_current.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: every thread resolves the same default.
    k = resolve_default();
    g_current.store(k, std::memory_order_release);
  }
  return *k;
}

void set_current_kernel(const SimKernel& kernel) {
  g_current.store(&kernel, std::memory_order_release);
}

bool set_current_kernel(std::string_view name) {
  const SimKernel* k = find_kernel(name);
  if (k == nullptr) return false;
  set_current_kernel(*k);
  return true;
}

}  // namespace mdd
