#include "sim/patterns.hpp"

#include <cassert>
#include <stdexcept>

namespace mdd {

PatternSet::PatternSet(std::size_t n_patterns, std::size_t n_signals)
    : n_patterns_(n_patterns),
      n_signals_(n_signals),
      n_blocks_((n_patterns + 63) / 64),
      bits_(n_blocks_ * n_signals, kAllZero) {}

bool PatternSet::get(std::size_t pattern, std::size_t signal) const {
  assert(pattern < n_patterns_ && signal < n_signals_);
  return (word(pattern / 64, signal) >> (pattern % 64)) & 1u;
}

void PatternSet::set(std::size_t pattern, std::size_t signal, bool value) {
  assert(pattern < n_patterns_ && signal < n_signals_);
  Word& w = word(pattern / 64, signal);
  const Word m = Word{1} << (pattern % 64);
  if (value)
    w |= m;
  else
    w &= ~m;
}

std::vector<bool> PatternSet::pattern(std::size_t p) const {
  std::vector<bool> out(n_signals_);
  for (std::size_t s = 0; s < n_signals_; ++s) out[s] = get(p, s);
  return out;
}

void PatternSet::append(const std::vector<bool>& values) {
  if (values.size() != n_signals_)
    throw std::invalid_argument("PatternSet::append: width mismatch");
  ++n_patterns_;
  const std::size_t need_blocks = (n_patterns_ + 63) / 64;
  if (need_blocks > n_blocks_) {
    n_blocks_ = need_blocks;
    bits_.resize(n_blocks_ * n_signals_, kAllZero);
  }
  for (std::size_t s = 0; s < n_signals_; ++s)
    set(n_patterns_ - 1, s, values[s]);
}

Word PatternSet::valid_mask(std::size_t block) const {
  assert(block < n_blocks_);
  if (block + 1 < n_blocks_ || n_patterns_ % 64 == 0) return kAllOne;
  return (Word{1} << (n_patterns_ % 64)) - 1;
}

PatternSet PatternSet::random(std::size_t n_patterns, std::size_t n_signals,
                              std::uint64_t seed) {
  PatternSet ps(n_patterns, n_signals);
  std::mt19937_64 rng(seed);
  for (std::size_t b = 0; b < ps.n_blocks(); ++b) {
    const Word mask = ps.valid_mask(b);
    for (std::size_t s = 0; s < n_signals; ++s)
      ps.word(b, s) = rng() & mask;
  }
  return ps;
}

PatternSet PatternSet::exhaustive(std::size_t n_signals) {
  if (n_signals > 20)
    throw std::invalid_argument("PatternSet::exhaustive: too many signals");
  const std::size_t n = std::size_t{1} << n_signals;
  PatternSet ps(n, n_signals);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t s = 0; s < n_signals; ++s)
      ps.set(p, s, (p >> s) & 1u);
  return ps;
}

std::string PatternSet::to_string(std::size_t pattern) const {
  std::string s(n_signals_, '0');
  for (std::size_t i = 0; i < n_signals_; ++i)
    if (get(pattern, i)) s[i] = '1';
  return s;
}

}  // namespace mdd
