// AVX-512 simulation kernel: 8 pattern-words (512 patterns) per pass.
// Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq (see
// src/sim/CMakeLists.txt); kernel.cpp's CPUID probe requires the same
// feature set before ever dispatching here, so the binary stays safe on
// AVX2-only hosts. Absent entirely under -DMDD_DISABLE_SIMD=ON.
#include "sim/kernel.hpp"

#include <bit>

namespace mdd::detail {

#if defined(MDD_KERNEL_AVX512)

namespace {
#include "sim/kernel_ops.inl"

constexpr SimKernel kAvx512Kernel = {
    "avx512", 8, &eval_gate_lanes<8>, &popcount_words, &popcount_and_words};
}  // namespace

const SimKernel* avx512_kernel_table() { return &kAvx512Kernel; }

#else

const SimKernel* avx512_kernel_table() { return nullptr; }

#endif

}  // namespace mdd::detail
