// openmdd — event-driven single-pattern simulator.
//
// Holds one committed good-machine state and answers "what changes if this
// net flips?" by levelized event propagation on a scratch overlay, leaving
// the committed state untouched. This is the exact-observability primitive
// behind critical path tracing stem analysis; it is also used by the serial
// fault simulator for spot checks.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace mdd {

class EventSim {
 public:
  explicit EventSim(const Netlist& netlist);

  /// Full evaluation of pattern `p` of `stimuli`; commits the state.
  void apply(const PatternSet& stimuli, std::size_t p);

  /// Full evaluation from explicit PI values; commits the state.
  void apply(const std::vector<bool>& pi_values);

  /// Committed good value of net `n`.
  bool value(NetId n) const { return values_[n]; }

  /// Flips net `n` (as if a fault forced the opposite value) and
  /// propagates events forward. Returns the PO indices whose value
  /// changed. The committed state is restored before returning.
  std::vector<std::uint32_t> flip_observed_outputs(NetId n);

  /// As above but reports every net whose value changed (including `n`).
  std::vector<NetId> flip_changed_nets(NetId n);

  const Netlist& netlist() const { return *netlist_; }

 private:
  void propagate_flip(NetId n);

  const Netlist* netlist_;
  std::vector<bool> values_;         // committed
  std::vector<bool> scratch_;        // overlay values during a flip
  std::vector<bool> touched_;        // net has a scratch value
  std::vector<NetId> touched_list_;  // for O(changed) cleanup
  std::vector<std::vector<NetId>> level_queue_;
  std::vector<bool> queued_;
};

}  // namespace mdd
