// openmdd — bit-parallel two-valued good-machine simulation.
//
// `BlockSim` evaluates a *group* of pattern blocks over the whole netlist
// in topological order through a simulation kernel (sim/kernel.hpp): the
// scalar kernel processes one 64-pattern block per pass, AVX2/AVX-512
// kernels 4/8 blocks, leaving every net's lane words accessible — the
// faulty machine (fault/inject.hpp) and critical path tracing build on
// this buffer. `simulate` is the batch convenience wrapper producing PO
// responses for a full pattern set. Results are bit-identical for every
// kernel (tests/test_kernel_equiv.cpp).
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/kernel.hpp"
#include "sim/patterns.hpp"

namespace mdd {

/// Reusable per-netlist simulation buffer for one lane group (up to
/// kernel.lanes consecutive 64-pattern blocks).
class BlockSim {
 public:
  explicit BlockSim(const Netlist& netlist);
  BlockSim(const Netlist& netlist, const SimKernel& kernel);

  const SimKernel& kernel() const { return *kernel_; }
  std::size_t lanes() const { return lanes_; }

  /// Evaluates all nets for the lane group starting at pattern block
  /// `block` of `stimuli` (stimuli.n_signals() must equal
  /// netlist.n_inputs()). Processes min(lanes(), n_blocks - block) blocks
  /// — the returned count; padding lanes replicate the last valid block.
  std::size_t run_wide(const PatternSet& stimuli, std::size_t block);

  /// Single-block compatibility shim: lane 0 is exactly `block`
  /// (value(n) reads it); wider kernels fill the remaining lanes with the
  /// following blocks as run_wide does.
  void run(const PatternSet& stimuli, std::size_t block) {
    run_wide(stimuli, block);
  }

  /// Evaluates with explicit PI words (one per PI, in inputs() order),
  /// replicated across lanes; lane 0 carries the result.
  void run(std::span<const Word> pi_words);

  const Netlist& netlist() const { return *netlist_; }

  /// Value word of net `n` (lane 0) after run().
  Word value(NetId n) const { return values_[n * lanes_]; }

  /// Value word of net `n` for lane `lane` of the last run_wide() group.
  Word value(NetId n, std::size_t lane) const {
    return values_[n * lanes_ + lane];
  }

  /// All lane words of net `n` (lanes() words, contiguous).
  std::span<const Word> lane_values(NetId n) const {
    return {values_.data() + n * lanes_, lanes_};
  }

  /// Copies lane-0 PO words (outputs() order) into `out`.
  void outputs(std::span<Word> out) const;

 private:
  void eval_topo();

  const Netlist* netlist_;
  const SimKernel* kernel_;
  std::size_t lanes_;
  std::vector<Word> values_;  ///< [net][lane]
  std::vector<const Word*> fanin_ptrs_;
};

/// Full-set good-machine simulation: returns the (patterns x POs)
/// response. Uses `kernel` (default: the process-wide current kernel).
PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli);
PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli,
                    const SimKernel& kernel);

}  // namespace mdd
