// openmdd — bit-parallel two-valued good-machine simulation.
//
// `BlockSim` evaluates one 64-pattern block over the whole netlist in
// topological order, leaving every net's word accessible — the faulty
// machine (fault/inject.hpp) and critical path tracing both build on this
// buffer. `simulate` is the batch convenience wrapper producing PO
// responses for a full pattern set.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace mdd {

/// Reusable per-netlist simulation buffer for one block of 64 patterns.
class BlockSim {
 public:
  explicit BlockSim(const Netlist& netlist);

  /// Evaluates all nets for pattern block `block` of `stimuli`
  /// (stimuli.n_signals() must equal netlist.n_inputs()).
  void run(const PatternSet& stimuli, std::size_t block);

  /// Evaluates with explicit PI words (one per PI, in inputs() order).
  void run(std::span<const Word> pi_words);

  const Netlist& netlist() const { return *netlist_; }

  /// Value word of net `n` after run().
  Word value(NetId n) const { return values_[n]; }
  std::span<const Word> values() const { return values_; }

  /// Copies PO words (outputs() order) into `out`.
  void outputs(std::span<Word> out) const;

 private:
  const Netlist* netlist_;
  std::vector<Word> values_;
  std::vector<Word> fanin_buf_;
};

/// Full-set good-machine simulation: returns the (patterns x POs) response.
PatternSet simulate(const Netlist& netlist, const PatternSet& stimuli);

}  // namespace mdd
