// openmdd — runtime-dispatched simulation kernels.
//
// A `SimKernel` is the narrow waist every bit-parallel simulator evaluates
// through: packed pattern-word lanes in, pattern-word lanes out. The
// pattern dimension is widened from one 64-bit word to `lanes` consecutive
// words (lanes * 64 patterns per pass); the scalar kernel (lanes = 1)
// reproduces the original one-word-at-a-time loops and is the reference
// every wider variant is differentially tested against
// (tests/test_kernel_equiv.cpp — byte-identical signatures, detect sets
// and coverage for every kernel, fault mix and thread count).
//
// Variants are compiled in their own translation units with the matching
// target flags (AVX2: 4 lanes, AVX-512: 8 lanes) and selected at runtime
// by CPUID, so one binary runs correctly on any x86-64 host and a
// non-SIMD build (-DMDD_DISABLE_SIMD=ON) degrades to the scalar kernel.
// The process-wide choice is overridable with the MDD_KERNEL environment
// variable or the --kernel flag on the CLI/daemon; simulators snapshot
// the kernel at construction, so the override must happen before sessions
// are built (the tools do it first thing in main).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/logic.hpp"

namespace mdd {

/// Upper bound on SimKernel::lanes across all variants; fixed-size lane
/// scratch buffers (stack arrays in the simulators) are sized with it.
inline constexpr std::size_t kMaxKernelLanes = 8;

/// A simulation-kernel vtable. All operations are pure bit-parallel word
/// transforms: results are identical across kernels by construction, only
/// the number of words processed per pass (`lanes`) and the instruction
/// set differ.
struct SimKernel {
  const char* name;   ///< "scalar", "avx2", "avx512"
  std::size_t lanes;  ///< pattern-words per evaluation pass (<= kMaxKernelLanes)

  /// out[0..lanes) = primitive `kind` applied lane-wise over `n_fanins`
  /// operands; each fanins[j] points at `lanes` contiguous words. `out`
  /// must not alias any operand.
  void (*eval_gate)(GateKind kind, const Word* const* fanins,
                    std::size_t n_fanins, Word* out);

  /// Total set bits over `n` words (SignatureMatcher scoring).
  std::size_t (*popcount)(const Word* a, std::size_t n);

  /// Total set bits of a[i] & b[i] over `n` words.
  std::size_t (*popcount_and)(const Word* a, const Word* b, std::size_t n);
};

/// The reference kernel (lanes = 1); always available.
const SimKernel& scalar_kernel();

/// Kernels usable on this machine (compiled in AND supported by CPUID),
/// scalar first, then in increasing width.
const std::vector<const SimKernel*>& available_kernels();

/// Looks an *available* kernel up by name; nullptr if unknown or not
/// usable on this machine.
const SimKernel* find_kernel(std::string_view name);

/// Widest available kernel (CPUID dispatch result).
const SimKernel& best_kernel();

/// Space-separated names of the available kernels (diagnostics / usage).
std::string kernel_names();

/// The process-wide kernel new simulators pick up by default. Resolved
/// lazily on first use: MDD_KERNEL if set and available (an unavailable
/// name warns once on stderr and falls through), else best_kernel().
const SimKernel& current_kernel();

/// Overrides the process-wide kernel. The string form returns false (and
/// changes nothing) if `name` is not an available kernel.
void set_current_kernel(const SimKernel& kernel);
bool set_current_kernel(std::string_view name);

}  // namespace mdd
