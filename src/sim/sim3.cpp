#include "sim/sim3.hpp"

#include <cassert>
#include <stdexcept>

namespace mdd {

Scalar3Sim::Scalar3Sim(const Netlist& netlist)
    : netlist_(&netlist),
      pi_vals_(netlist.n_inputs(), Val3::X),
      values_(netlist.n_nets(), Val3::X) {
  if (!netlist.finalized())
    throw std::logic_error("Scalar3Sim: netlist not finalized");
}

void Scalar3Sim::reset() {
  pi_vals_.assign(pi_vals_.size(), Val3::X);
  override_net_ = kNoNet;
  pin_override_gate_ = kNoNet;
}

void Scalar3Sim::set_input(std::size_t pi_index, Val3 v) {
  pi_vals_.at(pi_index) = v;
}

void Scalar3Sim::set_override(NetId n, Val3 v) {
  override_net_ = n;
  override_val_ = v;
}

void Scalar3Sim::set_pin_override(NetId gate, std::uint32_t pin, Val3 v) {
  pin_override_gate_ = gate;
  pin_override_pin_ = pin;
  pin_override_val_ = v;
}

void Scalar3Sim::run() {
  const auto& inputs = netlist_->inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = pi_vals_[i];
  if (override_net_ != kNoNet && netlist_->is_input(override_net_))
    values_[override_net_] = override_val_;

  for (NetId g : netlist_->topo_order()) {
    const GateKind k = netlist_->kind(g);
    if (k == GateKind::Input) continue;
    const auto fi = netlist_->fanins(g);
    auto in = [&](std::size_t idx) {
      if (g == pin_override_gate_ && idx == pin_override_pin_)
        return pin_override_val_;
      return values_[fi[idx]];
    };
    Val3 v;
    switch (k) {
      case GateKind::Const0: v = Val3::Zero; break;
      case GateKind::Const1: v = Val3::One; break;
      case GateKind::Buf: v = in(0); break;
      case GateKind::Not: v = v3_not(in(0)); break;
      case GateKind::And:
      case GateKind::Nand: {
        v = Val3::One;
        for (std::size_t j = 0; j < fi.size(); ++j) v = v3_and(v, in(j));
        if (k == GateKind::Nand) v = v3_not(v);
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        v = Val3::Zero;
        for (std::size_t j = 0; j < fi.size(); ++j) v = v3_or(v, in(j));
        if (k == GateKind::Nor) v = v3_not(v);
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        v = Val3::Zero;
        for (std::size_t j = 0; j < fi.size(); ++j) v = v3_xor(v, in(j));
        if (k == GateKind::Xnor) v = v3_not(v);
        break;
      }
      default:
        v = Val3::X;
    }
    values_[g] = (g == override_net_) ? override_val_ : v;
  }
}

Pattern3Set Pattern3Set::from_binary(const PatternSet& ps) {
  Pattern3Set out;
  out.is1 = ps;
  out.is0 = PatternSet(ps.n_patterns(), ps.n_signals());
  for (std::size_t b = 0; b < ps.n_blocks(); ++b) {
    const Word mask = ps.valid_mask(b);
    for (std::size_t s = 0; s < ps.n_signals(); ++s)
      out.is0.word(b, s) = ~ps.word(b, s) & mask;
  }
  return out;
}

Val3 Pattern3Set::get(std::size_t pattern, std::size_t signal) const {
  if (is0.get(pattern, signal)) return Val3::Zero;
  if (is1.get(pattern, signal)) return Val3::One;
  return Val3::X;
}

void Pattern3Set::set(std::size_t pattern, std::size_t signal, Val3 v) {
  is0.set(pattern, signal, v == Val3::Zero);
  is1.set(pattern, signal, v == Val3::One);
}

Pattern3Set simulate3(const Netlist& netlist, const Pattern3Set& stimuli) {
  assert(stimuli.n_signals() == netlist.n_inputs());
  const std::size_t n_blocks = stimuli.is0.n_blocks();
  Pattern3Set out;
  out.is0 = PatternSet(stimuli.n_patterns(), netlist.n_outputs());
  out.is1 = PatternSet(stimuli.n_patterns(), netlist.n_outputs());

  std::vector<DualWord> values(netlist.n_nets());
  std::vector<DualWord> fanin_buf;
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_buf.resize(max_fanin);

  for (std::size_t b = 0; b < n_blocks; ++b) {
    const auto& inputs = netlist.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      values[inputs[i]] = DualWord{stimuli.is0.word(b, i),
                                   stimuli.is1.word(b, i)};
    for (NetId g : netlist.topo_order()) {
      const GateKind k = netlist.kind(g);
      if (k == GateKind::Input) continue;
      const auto fi = netlist.fanins(g);
      for (std::size_t j = 0; j < fi.size(); ++j)
        fanin_buf[j] = values[fi[j]];
      values[g] = eval_gate_dual(k, fanin_buf.data(), fi.size());
    }
    const Word mask = stimuli.is0.valid_mask(b);
    for (std::size_t o = 0; o < netlist.n_outputs(); ++o) {
      const DualWord w = values[netlist.outputs()[o]];
      out.is0.word(b, o) = w.is0 & mask;
      out.is1.word(b, o) = w.is1 & mask;
    }
  }
  return out;
}

}  // namespace mdd
