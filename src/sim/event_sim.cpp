#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

EventSim::EventSim(const Netlist& netlist)
    : netlist_(&netlist),
      values_(netlist.n_nets(), false),
      scratch_(netlist.n_nets(), false),
      touched_(netlist.n_nets(), false),
      level_queue_(netlist.depth() + 1),
      queued_(netlist.n_nets(), false) {
  if (!netlist.finalized())
    throw std::logic_error("EventSim: netlist not finalized");
}

void EventSim::apply(const PatternSet& stimuli, std::size_t p) {
  apply(stimuli.pattern(p));
}

void EventSim::apply(const std::vector<bool>& pi_values) {
  const auto& inputs = netlist_->inputs();
  if (pi_values.size() != inputs.size())
    throw std::invalid_argument("EventSim::apply: PI count mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = pi_values[i];
  std::vector<bool> ins;
  for (NetId g : netlist_->topo_order()) {
    const GateKind k = netlist_->kind(g);
    if (k == GateKind::Input) continue;
    ins.clear();
    for (NetId f : netlist_->fanins(g)) ins.push_back(values_[f]);
    values_[g] = eval_gate(k, ins);
  }
}

void EventSim::propagate_flip(NetId n) {
  // Seed: net n takes the opposite of its committed value.
  scratch_[n] = !values_[n];
  touched_[n] = true;
  touched_list_.push_back(n);

  auto read = [&](NetId x) { return touched_[x] ? scratch_[x] : values_[x]; };

  for (NetId s : netlist_->fanouts(n)) {
    if (!queued_[s]) {
      queued_[s] = true;
      level_queue_[netlist_->level(s)].push_back(s);
    }
  }
  std::vector<bool> ins;
  for (std::uint32_t lv = 0; lv < level_queue_.size(); ++lv) {
    for (std::size_t idx = 0; idx < level_queue_[lv].size(); ++idx) {
      const NetId g = level_queue_[lv][idx];
      queued_[g] = false;
      ins.clear();
      for (NetId f : netlist_->fanins(g)) ins.push_back(read(f));
      const bool v = eval_gate(netlist_->kind(g), ins);
      if (v != read(g)) {
        scratch_[g] = v;
        if (!touched_[g]) {
          touched_[g] = true;
          touched_list_.push_back(g);
        }
        for (NetId s : netlist_->fanouts(g)) {
          if (!queued_[s]) {
            queued_[s] = true;
            level_queue_[netlist_->level(s)].push_back(s);
          }
        }
      }
    }
    level_queue_[lv].clear();
  }
}

std::vector<std::uint32_t> EventSim::flip_observed_outputs(NetId n) {
  propagate_flip(n);
  std::vector<std::uint32_t> observed;
  for (NetId t : touched_list_) {
    if (scratch_[t] != values_[t]) {
      if (auto idx = netlist_->output_index(t)) observed.push_back(*idx);
    }
    touched_[t] = false;
  }
  touched_list_.clear();
  std::sort(observed.begin(), observed.end());
  return observed;
}

std::vector<NetId> EventSim::flip_changed_nets(NetId n) {
  propagate_flip(n);
  std::vector<NetId> changed;
  for (NetId t : touched_list_) {
    if (scratch_[t] != values_[t]) changed.push_back(t);
    touched_[t] = false;
  }
  touched_list_.clear();
  std::sort(changed.begin(), changed.end());
  return changed;
}

}  // namespace mdd
