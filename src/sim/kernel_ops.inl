// openmdd — lane-generic simulation-kernel operations.
//
// Included (inside an anonymous namespace) by each kernel translation
// unit, which compiles this one implementation with its own target flags:
// kernel.cpp plain (scalar, L = 1), kernel_avx2.cpp with -mavx2 (L = 4),
// kernel_avx512.cpp with -mavx512* (L = 8). The loops are written so the
// vectorizer collapses each lane loop into one (or two) vector ops; no
// intrinsics, so every variant computes bit-identical results and the
// scalar instantiation is exactly the original word-at-a-time code.
//
// This file must only be included from a .cpp after "sim/kernel.hpp" and
// <bit> (no includes here: the include site sits inside a namespace).

template <std::size_t L>
void eval_gate_lanes(mdd::GateKind kind, const mdd::Word* const* ins,
                     std::size_t n, mdd::Word* out) {
  using mdd::kAllOne;
  using mdd::kAllZero;
  using mdd::Word;
  switch (kind) {
    case mdd::GateKind::Input:  // inputs are loaded, never evaluated
    case mdd::GateKind::Const0:
      for (std::size_t i = 0; i < L; ++i) out[i] = kAllZero;
      return;
    case mdd::GateKind::Const1:
      for (std::size_t i = 0; i < L; ++i) out[i] = kAllOne;
      return;
    case mdd::GateKind::Buf:
      for (std::size_t i = 0; i < L; ++i) out[i] = ins[0][i];
      return;
    case mdd::GateKind::Not:
      for (std::size_t i = 0; i < L; ++i) out[i] = ~ins[0][i];
      return;
    case mdd::GateKind::And:
    case mdd::GateKind::Nand: {
      for (std::size_t i = 0; i < L; ++i) out[i] = kAllOne;
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < L; ++i) out[i] &= ins[j][i];
      if (kind == mdd::GateKind::Nand)
        for (std::size_t i = 0; i < L; ++i) out[i] = ~out[i];
      return;
    }
    case mdd::GateKind::Or:
    case mdd::GateKind::Nor: {
      for (std::size_t i = 0; i < L; ++i) out[i] = kAllZero;
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < L; ++i) out[i] |= ins[j][i];
      if (kind == mdd::GateKind::Nor)
        for (std::size_t i = 0; i < L; ++i) out[i] = ~out[i];
      return;
    }
    case mdd::GateKind::Xor:
    case mdd::GateKind::Xnor: {
      for (std::size_t i = 0; i < L; ++i) out[i] = kAllZero;
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < L; ++i) out[i] ^= ins[j][i];
      if (kind == mdd::GateKind::Xnor)
        for (std::size_t i = 0; i < L; ++i) out[i] = ~out[i];
      return;
    }
  }
  for (std::size_t i = 0; i < L; ++i) out[i] = kAllZero;  // unreachable
}

inline std::size_t popcount_words(const mdd::Word* a, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i]));
  return c;
}

inline std::size_t popcount_and_words(const mdd::Word* a, const mdd::Word* b,
                                      std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return c;
}
