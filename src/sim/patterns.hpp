// openmdd — test pattern and response containers.
//
// `PatternSet` is a bit-packed (patterns x signals) matrix stored
// block-major: patterns are grouped into blocks of 64 so each (block,
// signal) cell is one machine word holding the signal's value across 64
// consecutive patterns — the native layout of the bit-parallel simulators.
// The same container holds input stimuli (signals = PIs) and output
// responses (signals = POs).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "netlist/logic.hpp"

namespace mdd {

class PatternSet {
 public:
  PatternSet() = default;
  PatternSet(std::size_t n_patterns, std::size_t n_signals);

  std::size_t n_patterns() const { return n_patterns_; }
  std::size_t n_signals() const { return n_signals_; }
  std::size_t n_blocks() const { return n_blocks_; }

  /// Word holding patterns [64*block, 64*block+63] of `signal`.
  Word word(std::size_t block, std::size_t signal) const {
    return bits_[block * n_signals_ + signal];
  }
  Word& word(std::size_t block, std::size_t signal) {
    return bits_[block * n_signals_ + signal];
  }

  bool get(std::size_t pattern, std::size_t signal) const;
  void set(std::size_t pattern, std::size_t signal, bool value);

  /// All signal values of one pattern.
  std::vector<bool> pattern(std::size_t p) const;

  /// Appends one pattern (values.size() == n_signals). Grows blocks as
  /// needed.
  void append(const std::vector<bool>& values);

  /// Mask with a 1 for every valid pattern position inside `block`
  /// (the last block may be partial).
  Word valid_mask(std::size_t block) const;

  /// Uniform random fill, deterministic in `seed`.
  static PatternSet random(std::size_t n_patterns, std::size_t n_signals,
                           std::uint64_t seed);

  /// All 2^n_signals input combinations (n_signals <= 20).
  static PatternSet exhaustive(std::size_t n_signals);

  /// Compact "010X..."-free binary string of one pattern (debug aid).
  std::string to_string(std::size_t pattern) const;

  bool operator==(const PatternSet&) const = default;

 private:
  std::size_t n_patterns_ = 0;
  std::size_t n_signals_ = 0;
  std::size_t n_blocks_ = 0;
  std::vector<Word> bits_;  // [block][signal]
};

}  // namespace mdd
