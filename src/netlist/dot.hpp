// openmdd — Graphviz DOT export for netlist visualization and debugging
// diagnosis results (suspect nets can be highlighted).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace mdd {

struct DotOptions {
  /// Nets drawn highlighted (e.g. diagnosis suspects).
  std::vector<NetId> highlight;
  /// Rank nets left-to-right by level (matches schematic reading order).
  bool ranked = true;
  /// Include net names on edges (noisy for large circuits).
  bool edge_labels = false;
};

/// Writes `netlist` as a DOT digraph: one node per gate/PI, one edge per
/// connection, POs drawn as double circles.
void write_dot(std::ostream& out, const Netlist& netlist,
               const DotOptions& options = {});
std::string write_dot_string(const Netlist& netlist,
                             const DotOptions& options = {});

}  // namespace mdd
