// openmdd — logic value algebra.
//
// Two value systems are used throughout the library:
//   * 2-valued logic packed 64 patterns per machine word (`Word`), used by
//     the bit-parallel good-machine and faulty-machine simulators.
//   * 3-valued logic (0 / 1 / X) as scalar `Val3` and as dual-rail packed
//     words (`DualWord`), used by ATPG and by simulations that must be
//     conservative about unknowns.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace mdd {

/// 64 two-valued signal samples, one bit per test pattern.
using Word = std::uint64_t;

inline constexpr Word kAllZero = 0x0000000000000000ULL;
inline constexpr Word kAllOne = 0xFFFFFFFFFFFFFFFFULL;

/// Three-valued scalar logic value. `X` is "unknown / unassigned".
enum class Val3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Negation in 3-valued logic (X stays X).
constexpr Val3 v3_not(Val3 a) {
  switch (a) {
    case Val3::Zero: return Val3::One;
    case Val3::One: return Val3::Zero;
    default: return Val3::X;
  }
}

/// Kleene AND: 0 dominates, X otherwise unless both 1.
constexpr Val3 v3_and(Val3 a, Val3 b) {
  if (a == Val3::Zero || b == Val3::Zero) return Val3::Zero;
  if (a == Val3::One && b == Val3::One) return Val3::One;
  return Val3::X;
}

/// Kleene OR: 1 dominates, X otherwise unless both 0.
constexpr Val3 v3_or(Val3 a, Val3 b) {
  if (a == Val3::One || b == Val3::One) return Val3::One;
  if (a == Val3::Zero && b == Val3::Zero) return Val3::Zero;
  return Val3::X;
}

/// XOR; any X operand yields X.
constexpr Val3 v3_xor(Val3 a, Val3 b) {
  if (a == Val3::X || b == Val3::X) return Val3::X;
  return (a == b) ? Val3::Zero : Val3::One;
}

constexpr bool v3_is_binary(Val3 a) { return a != Val3::X; }

/// Converts a binary Val3 to bool. Precondition: `a` is not X.
constexpr bool v3_to_bool(Val3 a) { return a == Val3::One; }

constexpr Val3 v3_from_bool(bool b) { return b ? Val3::One : Val3::Zero; }

constexpr char v3_to_char(Val3 a) {
  switch (a) {
    case Val3::Zero: return '0';
    case Val3::One: return '1';
    default: return 'X';
  }
}

inline std::ostream& operator<<(std::ostream& os, Val3 v) {
  return os << v3_to_char(v);
}

/// Dual-rail encoding of 64 three-valued samples.
///
/// For bit position i:
///   is0 bit set, is1 clear  -> value 0
///   is1 bit set, is0 clear  -> value 1
///   both clear              -> value X
///   both set                -> invalid (never produced by the simulators)
struct DualWord {
  Word is0 = kAllZero;
  Word is1 = kAllZero;

  static constexpr DualWord all_x() { return {kAllZero, kAllZero}; }
  static constexpr DualWord all0() { return {kAllOne, kAllZero}; }
  static constexpr DualWord all1() { return {kAllZero, kAllOne}; }

  /// Bits where the value is binary (0 or 1).
  constexpr Word known() const { return is0 | is1; }

  constexpr bool operator==(const DualWord&) const = default;
};

constexpr DualWord dw_not(DualWord a) { return {a.is1, a.is0}; }

constexpr DualWord dw_and(DualWord a, DualWord b) {
  return {a.is0 | b.is0, a.is1 & b.is1};
}

constexpr DualWord dw_or(DualWord a, DualWord b) {
  return {a.is0 & b.is0, a.is1 | b.is1};
}

constexpr DualWord dw_xor(DualWord a, DualWord b) {
  const Word known = a.known() & b.known();
  const Word ones = (a.is1 ^ b.is1) & known;
  return {known & ~ones, ones};
}

/// Extracts the 3-valued sample at bit position `bit`.
constexpr Val3 dw_get(DualWord w, unsigned bit) {
  const Word m = Word{1} << bit;
  if (w.is0 & m) return Val3::Zero;
  if (w.is1 & m) return Val3::One;
  return Val3::X;
}

/// Sets the 3-valued sample at bit position `bit`.
constexpr void dw_set(DualWord& w, unsigned bit, Val3 v) {
  const Word m = Word{1} << bit;
  w.is0 &= ~m;
  w.is1 &= ~m;
  if (v == Val3::Zero) w.is0 |= m;
  if (v == Val3::One) w.is1 |= m;
}

}  // namespace mdd
