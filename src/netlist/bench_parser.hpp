// openmdd — ISCAS `.bench` format reader/writer.
//
// Supports the combinational ISCAS-85 subset plus DFFs (ISCAS-89 style).
// Under the full-scan assumption, each DFF is converted at parse time:
// its output becomes a pseudo primary input and its data input is marked
// as a pseudo primary output. The number of converted state elements is
// reported in ParseInfo.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace mdd {

struct BenchParseResult {
  Netlist netlist;
  std::size_t n_dff = 0;  ///< state elements converted to pseudo PI/PO pairs
};

/// Parses `.bench` text. Throws std::runtime_error with a line-numbered
/// message on malformed input or combinational loops.
BenchParseResult parse_bench(std::istream& in, std::string top_name = "top");
BenchParseResult parse_bench_string(std::string_view text,
                                    std::string top_name = "top");
BenchParseResult parse_bench_file(const std::string& path);

/// Writes the (combinational) netlist in `.bench` syntax. Gates with more
/// than one fanout or complex kinds are emitted with their primitive names;
/// cell-instance grouping is not preserved (the format has no syntax for it).
void write_bench(std::ostream& out, const Netlist& netlist);
std::string write_bench_string(const Netlist& netlist);

}  // namespace mdd
