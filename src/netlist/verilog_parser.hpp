// openmdd — structural Verilog subset reader/writer.
//
// Supported subset (sufficient for gate-level netlists written by synthesis
// flows and by this library):
//
//   module NAME (port, port, ...);
//     input  a, b;       // or: input [3:0] bus;  (bus expands to bus_3..bus_0)
//     output z;
//     wire   w1, w2;
//     nand g1 (out, in1, in2);        // primitive, output first, name optional
//     AOI21 u7 (.Y(z), .A(w1), .B(w2), .C(a));  // library cell, named ports
//     NAND2 u8 (z2, w1, w2);                    // library cell, positional
//   endmodule
//
// Named ports: output pin is Y, Z, OUT or Q; input pins A..H map to cell
// pin indices 0..7. Positional cell ports are output-first followed by the
// cell's inputs in pin order. `1'b0`/`1'b1` literals are allowed as input
// connections and become tie cells.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace mdd {

struct VerilogParseResult {
  Netlist netlist;
  std::size_t n_cells = 0;  ///< complex library cell instances expanded
};

/// Parses the structural subset. `lib` resolves non-primitive instance
/// types. Throws std::runtime_error with a line-numbered message on errors.
VerilogParseResult parse_verilog(std::istream& in, const CellLibrary& lib);
VerilogParseResult parse_verilog_string(std::string_view text,
                                        const CellLibrary& lib);
VerilogParseResult parse_verilog_file(const std::string& path,
                                      const CellLibrary& lib);

/// Writes the netlist as structural Verilog using gate primitives.
void write_verilog(std::ostream& out, const Netlist& netlist);
std::string write_verilog_string(const Netlist& netlist);

}  // namespace mdd
