#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mdd {

namespace {

struct BenchStmt {
  std::string out;
  std::string func;  // upper-cased
  std::vector<std::string> args;
  std::size_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("bench:" + std::to_string(line) + ": " + msg);
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

BenchParseResult parse_bench(std::istream& in, std::string top_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<BenchStmt> stmts;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t lp = line.find('(');
      const std::size_t rp = line.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        fail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment");
      const std::string head = upper(trim(line.substr(0, lp)));
      const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
      if (arg.empty()) fail(line_no, "empty signal name");
      if (head == "INPUT") {
        input_names.push_back(arg);
      } else if (head == "OUTPUT") {
        output_names.push_back(arg);
      } else {
        fail(line_no, "unknown directive '" + head + "'");
      }
      continue;
    }

    BenchStmt st;
    st.line = line_no;
    st.out = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t lp = rhs.find('(');
    const std::size_t rp = rhs.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
      fail(line_no, "expected FUNC(args)");
    st.func = upper(trim(rhs.substr(0, lp)));
    std::string args = rhs.substr(lp + 1, rp - lp - 1);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      tok = trim(tok);
      if (tok.empty()) fail(line_no, "empty argument");
      st.args.push_back(tok);
    }
    if (st.out.empty()) fail(line_no, "empty lhs");
    stmts.push_back(std::move(st));
  }

  BenchParseResult result{Netlist(std::move(top_name)), 0};
  Netlist& nl = result.netlist;

  // Pass 1: primary inputs and DFF outputs become Input nets.
  for (const std::string& name : input_names) nl.add_input(name);
  std::vector<std::pair<std::string, std::string>> dff_pairs;  // q -> d
  for (const BenchStmt& st : stmts) {
    if (st.func == "DFF" || st.func == "DFFSR" || st.func == "FF") {
      if (st.args.size() != 1) fail(st.line, "DFF needs exactly one input");
      nl.add_input(st.out);  // pseudo-PI (scan cell output)
      dff_pairs.emplace_back(st.out, st.args[0]);
      ++result.n_dff;
    }
  }
  result.n_dff = dff_pairs.size();

  // Pass 2: statements may reference signals defined later; resolve with a
  // worklist (Kahn over names).
  std::vector<BenchStmt> pending;
  for (BenchStmt& st : stmts) {
    if (st.func == "DFF" || st.func == "DFFSR" || st.func == "FF") continue;
    pending.push_back(std::move(st));
  }
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    std::vector<BenchStmt> next;
    for (BenchStmt& st : pending) {
      bool ready = true;
      std::vector<NetId> fanins;
      fanins.reserve(st.args.size());
      for (const std::string& a : st.args) {
        const NetId f = nl.find_net(a);
        if (f == kNoNet) {
          ready = false;
          break;
        }
        fanins.push_back(f);
      }
      if (!ready) {
        next.push_back(std::move(st));
        continue;
      }
      auto kind = gate_kind_from_string(st.func);
      if (!kind || *kind == GateKind::Input)
        fail(st.line, "unknown function '" + st.func + "'");
      nl.add_gate(*kind, std::move(fanins), st.out);
      progress = true;
    }
    pending = std::move(next);
  }
  if (!pending.empty())
    fail(pending.front().line,
         "unresolvable signal (undefined input or combinational loop) in "
         "definition of '" +
             pending.front().out + "'");

  for (const std::string& name : output_names) {
    const NetId n = nl.find_net(name);
    if (n == kNoNet)
      throw std::runtime_error("bench: OUTPUT(" + name + ") never defined");
    nl.mark_output(n);
  }
  // Scan conversion: DFF data inputs become pseudo-POs.
  for (const auto& [q, d] : dff_pairs) {
    const NetId n = nl.find_net(d);
    if (n == kNoNet)
      throw std::runtime_error("bench: DFF input '" + d + "' never defined");
    // (finalize() has not run yet, so query the raw output list.)
    if (std::find(nl.outputs().begin(), nl.outputs().end(), n) ==
        nl.outputs().end()) {
      nl.mark_output(n);
    }
  }

  nl.finalize();
  return result;
}

BenchParseResult parse_bench_string(std::string_view text,
                                    std::string top_name) {
  std::istringstream ss{std::string(text)};
  return parse_bench(ss, std::move(top_name));
}

BenchParseResult parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench: cannot open " + path);
  return parse_bench(in, path);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by openmdd\n";
  for (NetId i : nl.inputs()) out << "INPUT(" << nl.net_name(i) << ")\n";
  for (NetId o : nl.outputs()) out << "OUTPUT(" << nl.net_name(o) << ")\n";
  for (NetId g : nl.topo_order()) {
    const GateKind k = nl.kind(g);
    if (k == GateKind::Input) continue;
    out << nl.net_name(g) << " = " << to_string(k) << "(";
    bool first = true;
    for (NetId f : nl.fanins(g)) {
      if (!first) out << ", ";
      first = false;
      out << nl.net_name(f);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream ss;
  write_bench(ss, nl);
  return ss.str();
}

}  // namespace mdd
