#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

namespace {

void check_arity(GateKind kind, std::size_t n) {
  switch (kind) {
    case GateKind::Input:
    case GateKind::Const0:
    case GateKind::Const1:
      if (n != 0) throw std::runtime_error("netlist: source gate with fanins");
      break;
    case GateKind::Buf:
    case GateKind::Not:
      if (n != 1) throw std::runtime_error("netlist: BUF/NOT needs 1 fanin");
      break;
    case GateKind::Xor:
    case GateKind::Xnor:
      if (n < 2) throw std::runtime_error("netlist: XOR/XNOR needs >=2 fanins");
      break;
    default:
      if (n < 1) throw std::runtime_error("netlist: gate needs >=1 fanin");
      break;
  }
}

}  // namespace

NetId Netlist::new_net(GateKind kind, std::string name) {
  const NetId id = static_cast<NetId>(kinds_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  if (by_name_.contains(name))
    throw std::runtime_error("netlist: duplicate net name '" + name + "'");
  kinds_.push_back(kind);
  fanin_lists_.emplace_back();
  names_.push_back(name);
  owner_.push_back(0);
  by_name_.emplace(std::move(name), id);
  finalized_ = false;
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId id = new_net(GateKind::Input, std::move(name));
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_gate(GateKind kind, std::vector<NetId> fanins,
                        std::string name) {
  if (kind == GateKind::Input)
    throw std::runtime_error("netlist: use add_input for INPUT");
  check_arity(kind, fanins.size());
  for (NetId f : fanins) check_built(f);
  const NetId id = new_net(kind, std::move(name));
  fanin_lists_[id] = std::move(fanins);
  return id;
}

NetId Netlist::add_cell(const CellModel& cell, const std::vector<NetId>& pins,
                        std::string instance_name, std::string output_name) {
  if (pins.size() != cell.n_inputs())
    throw std::runtime_error("netlist: cell '" + cell.name() +
                             "' pin count mismatch");
  CellInstance inst;
  inst.cell_name = cell.name();
  inst.instance_name = instance_name;
  inst.pins = pins;

  // Expand the decomposition; step outputs become internal nets.
  std::vector<NetId> values = pins;
  const std::size_t n_ops = cell.ops().size();
  for (std::size_t k = 0; k < n_ops; ++k) {
    const CellOp& op = cell.ops()[k];
    std::vector<NetId> fanins;
    fanins.reserve(op.operands.size());
    for (std::uint32_t o : op.operands) fanins.push_back(values[o]);
    const bool last = (k + 1 == n_ops);
    std::string net_name;
    if (last && !output_name.empty()) {
      net_name = output_name;
    } else if (!instance_name.empty()) {
      net_name = instance_name + "." + std::to_string(k);
    }
    const NetId out = add_gate(op.kind, std::move(fanins), std::move(net_name));
    values.push_back(out);
    if (last) {
      inst.output = out;
    } else {
      inst.internal.push_back(out);
    }
  }
  const std::uint32_t cell_index = static_cast<std::uint32_t>(cells_.size());
  for (NetId n : inst.internal) owner_[n] = cell_index + 1;
  owner_[inst.output] = cell_index + 1;
  cells_.push_back(std::move(inst));
  return cells_.back().output;
}

void Netlist::mark_output(NetId net) {
  check_built(net);
  if (std::find(outputs_.begin(), outputs_.end(), net) != outputs_.end())
    throw std::runtime_error("netlist: net marked output twice: " +
                             names_[net]);
  outputs_.push_back(net);
  finalized_ = false;
}

void Netlist::check_built(NetId n) const {
  if (n >= kinds_.size()) throw std::runtime_error("netlist: bad net id");
}

void Netlist::finalize() {
  if (finalized_) return;
  const std::size_t n = kinds_.size();
  if (outputs_.empty()) throw std::runtime_error("netlist: no outputs");

  fanout_lists_.assign(n, {});
  for (NetId g = 0; g < n; ++g)
    for (NetId f : fanin_lists_[g]) fanout_lists_[f].push_back(g);

  // Kahn levelization; detects cycles (impossible via the builder API but
  // guards against future mutation paths).
  levels_.assign(n, 0);
  std::vector<std::uint32_t> pending(n);
  topo_.clear();
  topo_.reserve(n);
  for (NetId g = 0; g < n; ++g) {
    pending[g] = static_cast<std::uint32_t>(fanin_lists_[g].size());
    if (pending[g] == 0) topo_.push_back(g);
  }
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    const NetId g = topo_[head];
    for (NetId s : fanout_lists_[g]) {
      levels_[s] = std::max(levels_[s], levels_[g] + 1);
      if (--pending[s] == 0) topo_.push_back(s);
    }
  }
  if (topo_.size() != n) throw std::runtime_error("netlist: cyclic");
  depth_ = 0;
  for (std::uint32_t lv : levels_) depth_ = std::max(depth_, lv);

  output_index_.assign(n, 0);
  for (std::uint32_t i = 0; i < outputs_.size(); ++i)
    output_index_[outputs_[i]] = i + 1;

  finalized_ = true;
}

std::span<const NetId> Netlist::fanins(NetId n) const {
  return fanin_lists_[n];
}

std::span<const NetId> Netlist::fanouts(NetId n) const {
  assert(finalized_);
  return fanout_lists_[n];
}

std::optional<std::uint32_t> Netlist::output_index(NetId n) const {
  assert(finalized_);
  if (output_index_[n] == 0) return std::nullopt;
  return output_index_[n] - 1;
}

NetId Netlist::find_net(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoNet : it->second;
}

std::vector<NetId> Netlist::fanin_cone(std::span<const NetId> roots) const {
  assert(finalized_);
  std::vector<bool> seen(n_nets(), false);
  std::vector<NetId> stack(roots.begin(), roots.end());
  for (NetId r : stack) seen[r] = true;
  while (!stack.empty()) {
    const NetId g = stack.back();
    stack.pop_back();
    for (NetId f : fanin_lists_[g]) {
      if (!seen[f]) {
        seen[f] = true;
        stack.push_back(f);
      }
    }
  }
  std::vector<NetId> cone;
  for (NetId g : topo_)
    if (seen[g]) cone.push_back(g);
  return cone;
}

std::vector<NetId> Netlist::fanin_cone(NetId root) const {
  return fanin_cone(std::span<const NetId>(&root, 1));
}

std::vector<NetId> Netlist::fanout_cone(NetId root) const {
  assert(finalized_);
  std::vector<bool> seen(n_nets(), false);
  std::vector<NetId> stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    const NetId g = stack.back();
    stack.pop_back();
    for (NetId s : fanout_lists_[g]) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  std::vector<NetId> cone;
  for (NetId g : topo_)
    if (seen[g]) cone.push_back(g);
  return cone;
}

std::vector<std::uint32_t> Netlist::reachable_outputs(NetId root) const {
  std::vector<std::uint32_t> pos;
  for (NetId g : fanout_cone(root)) {
    if (auto idx = output_index(g)) pos.push_back(*idx);
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

std::optional<std::uint32_t> Netlist::owning_cell(NetId n) const {
  if (owner_[n] == 0) return std::nullopt;
  return owner_[n] - 1;
}

Netlist::Stats Netlist::stats() const {
  assert(finalized_);
  Stats s;
  s.n_inputs = inputs_.size();
  s.n_outputs = outputs_.size();
  s.n_gates = n_gates();
  s.n_nets = n_nets();
  s.depth = depth_;
  for (NetId g = 0; g < n_nets(); ++g) {
    s.max_fanin = std::max(s.max_fanin, fanin_lists_[g].size());
    s.max_fanout = std::max(s.max_fanout, fanout_lists_[g].size());
    if (fanout_lists_[g].size() > 1) ++s.n_fanout_stems;
  }
  return s;
}

}  // namespace mdd
