// openmdd — gate-level netlist core.
//
// Representation: single-driver form. Every signal (net) is identified by a
// dense `NetId` and carries the gate that drives it (`GateKind` + fanin
// list); primary inputs are nets of kind `Input`. Primary outputs are an
// ordered list of observed nets. Full-scan sequential circuits are handled
// by the parsers, which convert state elements into pseudo-PI/PO pairs.
//
// A netlist is built incrementally (`add_input` / `add_gate` / `add_cell`)
// and then `finalize()`d, which validates the structure, computes fanout
// lists, levelizes, and freezes a topological evaluation order. All
// simulators require a finalized netlist.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"

namespace mdd {

/// Dense net identifier; also identifies the driving gate.
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = UINT32_MAX;

/// A complex-cell instance that was expanded into primitives. Kept for
/// reporting: diagnosis can map an internal suspect net back to the cell.
struct CellInstance {
  std::string cell_name;       ///< library cell name, e.g. "AOI21"
  std::string instance_name;   ///< instance name from the source netlist
  std::vector<NetId> pins;     ///< cell input nets, pin order
  std::vector<NetId> internal; ///< nets created by the expansion
  NetId output = kNoNet;       ///< cell output net
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------

  /// Adds a primary input net.
  NetId add_input(std::string name);

  /// Adds a gate driving a fresh net. `Buf`/`Not` take exactly one fanin;
  /// `And`/`Nand`/`Or`/`Nor` take >= 1; `Xor`/`Xnor` take >= 2;
  /// `Const0`/`Const1` take none.
  NetId add_gate(GateKind kind, std::vector<NetId> fanins,
                 std::string name = "");

  /// Expands a library cell into primitives; returns the cell output net.
  /// Records a CellInstance for reporting.
  NetId add_cell(const CellModel& cell, const std::vector<NetId>& pins,
                 std::string instance_name, std::string output_name = "");

  /// Marks a net as a primary output (a net may be marked at most once).
  void mark_output(NetId net);

  /// Validates, computes fanouts/levels/topological order. Throws
  /// std::runtime_error on structural errors. Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- topology -----------------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t n_nets() const { return kinds_.size(); }
  std::size_t n_inputs() const { return inputs_.size(); }
  std::size_t n_outputs() const { return outputs_.size(); }
  /// Number of logic gates (excludes Input nets).
  std::size_t n_gates() const { return kinds_.size() - inputs_.size(); }

  GateKind kind(NetId n) const { return kinds_[n]; }
  std::span<const NetId> fanins(NetId n) const;
  std::span<const NetId> fanouts(NetId n) const;

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }

  /// Gate evaluation order (inputs first). Valid after finalize().
  const std::vector<NetId>& topo_order() const { return topo_; }
  std::uint32_t level(NetId n) const { return levels_[n]; }
  std::uint32_t depth() const { return depth_; }

  /// Position of `n` in the PO list if it is a PO.
  std::optional<std::uint32_t> output_index(NetId n) const;

  /// True if `n` is a primary input.
  bool is_input(NetId n) const { return kinds_[n] == GateKind::Input; }

  // ---- names --------------------------------------------------------------

  const std::string& net_name(NetId n) const { return names_[n]; }
  /// Finds a net by name; kNoNet if absent.
  NetId find_net(std::string_view name) const;

  // ---- cones (require finalize) -------------------------------------------

  /// Transitive fan-in of `roots` (includes the roots), topological order.
  std::vector<NetId> fanin_cone(std::span<const NetId> roots) const;
  std::vector<NetId> fanin_cone(NetId root) const;

  /// Transitive fan-out of `root` (includes the root).
  std::vector<NetId> fanout_cone(NetId root) const;

  /// Indices (into outputs()) of POs reachable from `root`.
  std::vector<std::uint32_t> reachable_outputs(NetId root) const;

  // ---- cell instances ------------------------------------------------------

  const std::vector<CellInstance>& cell_instances() const { return cells_; }
  /// Index of the cell instance owning net `n` (as an internal or output
  /// net), if any.
  std::optional<std::uint32_t> owning_cell(NetId n) const;

  // ---- stats ---------------------------------------------------------------

  struct Stats {
    std::size_t n_inputs = 0;
    std::size_t n_outputs = 0;
    std::size_t n_gates = 0;
    std::size_t n_nets = 0;
    std::uint32_t depth = 0;
    std::size_t max_fanin = 0;
    std::size_t max_fanout = 0;
    std::size_t n_fanout_stems = 0;  ///< nets with >1 fanout branch
  };
  Stats stats() const;

 private:
  void check_built(NetId n) const;
  NetId new_net(GateKind kind, std::string name);

  std::string name_;
  std::vector<GateKind> kinds_;
  std::vector<std::vector<NetId>> fanin_lists_;
  std::vector<std::string> names_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::unordered_map<std::string, NetId> by_name_;
  std::vector<CellInstance> cells_;
  std::vector<std::uint32_t> owner_;  // cell index + 1, 0 = none

  // Derived by finalize():
  bool finalized_ = false;
  std::vector<std::vector<NetId>> fanout_lists_;
  std::vector<std::uint32_t> levels_;
  std::vector<NetId> topo_;
  std::uint32_t depth_ = 0;
  std::vector<std::uint32_t> output_index_;  // PO index + 1, 0 = none
};

}  // namespace mdd
