#include "netlist/generator.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace mdd {

Netlist make_c17() {
  Netlist nl("c17");
  const NetId i1 = nl.add_input("1");
  const NetId i2 = nl.add_input("2");
  const NetId i3 = nl.add_input("3");
  const NetId i6 = nl.add_input("6");
  const NetId i7 = nl.add_input("7");
  const NetId g10 = nl.add_gate(GateKind::Nand, {i1, i3}, "10");
  const NetId g11 = nl.add_gate(GateKind::Nand, {i3, i6}, "11");
  const NetId g16 = nl.add_gate(GateKind::Nand, {i2, g11}, "16");
  const NetId g19 = nl.add_gate(GateKind::Nand, {g11, i7}, "19");
  const NetId g22 = nl.add_gate(GateKind::Nand, {g10, g16}, "22");
  const NetId g23 = nl.add_gate(GateKind::Nand, {g16, g19}, "23");
  nl.mark_output(g22);
  nl.mark_output(g23);
  nl.finalize();
  return nl;
}

Netlist make_ripple_adder(unsigned n_bits) {
  if (n_bits == 0) throw std::invalid_argument("adder: n_bits == 0");
  static const CellLibrary lib;
  const CellModel& xor2 = *lib.find("XOR2");
  const CellModel& maj3 = *lib.find("MAJ3");

  Netlist nl("add" + std::to_string(n_bits));
  std::vector<NetId> a(n_bits), b(n_bits);
  for (unsigned i = 0; i < n_bits; ++i)
    a[i] = nl.add_input("a_" + std::to_string(i));
  for (unsigned i = 0; i < n_bits; ++i)
    b[i] = nl.add_input("b_" + std::to_string(i));
  NetId carry = nl.add_input("cin");
  for (unsigned i = 0; i < n_bits; ++i) {
    const std::string bit = std::to_string(i);
    const NetId axb =
        nl.add_cell(xor2, {a[i], b[i]}, "u_axb_" + bit, "axb_" + bit);
    const NetId sum =
        nl.add_cell(xor2, {axb, carry}, "u_sum_" + bit, "s_" + bit);
    const NetId cout =
        nl.add_cell(maj3, {a[i], b[i], carry}, "u_cy_" + bit, "cy_" + bit);
    nl.mark_output(sum);
    carry = cout;
  }
  nl.mark_output(carry);
  nl.finalize();
  return nl;
}

Netlist make_parity_tree(unsigned n_inputs) {
  if (n_inputs < 2) throw std::invalid_argument("parity: n_inputs < 2");
  Netlist nl("par" + std::to_string(n_inputs));
  std::vector<NetId> layer;
  for (unsigned i = 0; i < n_inputs; ++i)
    layer.push_back(nl.add_input("i_" + std::to_string(i)));
  unsigned counter = 0;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.add_gate(GateKind::Xor, {layer[i], layer[i + 1]},
                                 "x_" + std::to_string(counter++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  nl.mark_output(layer.front());
  nl.finalize();
  return nl;
}

Netlist make_mux_tree(unsigned n_select) {
  if (n_select == 0 || n_select > 8)
    throw std::invalid_argument("mux: n_select out of range");
  static const CellLibrary lib;
  const CellModel& mux2 = *lib.find("MUX2");

  Netlist nl("mux" + std::to_string(1u << n_select));
  std::vector<NetId> sel(n_select);
  for (unsigned i = 0; i < n_select; ++i)
    sel[i] = nl.add_input("s_" + std::to_string(i));
  std::vector<NetId> layer(1u << n_select);
  for (unsigned i = 0; i < layer.size(); ++i)
    layer[i] = nl.add_input("d_" + std::to_string(i));
  unsigned counter = 0;
  for (unsigned s = 0; s < n_select; ++s) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      next.push_back(nl.add_cell(mux2, {layer[i], layer[i + 1], sel[s]},
                                 "u_m" + std::to_string(counter++)));
    }
    layer = std::move(next);
  }
  nl.mark_output(layer.front());
  nl.finalize();
  return nl;
}

Netlist make_random_circuit(const RandomCircuitConfig& config) {
  if (config.n_inputs < 2 || config.n_gates == 0 || config.n_outputs == 0)
    throw std::invalid_argument("random circuit: degenerate config");
  if (config.max_fanin < 2)
    throw std::invalid_argument("random circuit: max_fanin < 2");

  std::mt19937_64 rng(config.seed);
  auto uniform = [&](std::size_t lo, std::size_t hi) {  // inclusive
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
  };
  auto chance = [&](double f) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < f;
  };

  Netlist nl(config.name);
  std::vector<NetId> nets;
  for (unsigned i = 0; i < config.n_inputs; ++i)
    nets.push_back(nl.add_input("pi_" + std::to_string(i)));

  std::vector<std::uint32_t> use_count(config.n_inputs, 0);
  static constexpr GateKind kBinaryKinds[] = {GateKind::And, GateKind::Nand,
                                              GateKind::Or, GateKind::Nor};

  for (unsigned g = 0; g < config.n_gates; ++g) {
    // Fanins drawn from a sliding locality window; an unused PI is forced in
    // occasionally so every input ends up observable.
    const std::size_t window_lo =
        nets.size() > config.locality ? nets.size() - config.locality : 0;
    GateKind kind;
    std::size_t n_fanin;
    if (chance(config.inverter_fraction)) {
      kind = GateKind::Not;
      n_fanin = 1;
    } else if (chance(config.xor_fraction)) {
      kind = chance(0.5) ? GateKind::Xor : GateKind::Xnor;
      n_fanin = 2;
    } else {
      kind = kBinaryKinds[uniform(0, 3)];
      n_fanin = uniform(2, config.max_fanin);
    }
    std::vector<NetId> fanins;
    while (fanins.size() < n_fanin) {
      NetId cand = nets[uniform(window_lo, nets.size() - 1)];
      // Give unused PIs priority every few gates.
      if (fanins.empty() && g % 7 == 0) {
        for (unsigned i = 0; i < config.n_inputs; ++i) {
          if (use_count[i] == 0) {
            cand = nets[i];
            break;
          }
        }
      }
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
      if (fanins.size() < n_fanin && nets.size() < n_fanin) break;
    }
    if (fanins.size() < (kind == GateKind::Not ? 1u : 2u)) continue;
    for (NetId f : fanins)
      if (f < config.n_inputs) ++use_count[f];
    nets.push_back(nl.add_gate(kind, std::move(fanins),
                               "g_" + std::to_string(g)));
  }

  // Outputs: prefer nets with no fanout so no logic dangles.
  std::vector<std::uint32_t> fanout(nl.n_nets(), 0);
  for (NetId n = 0; n < nl.n_nets(); ++n)
    for (NetId f : nl.fanins(n)) ++fanout[f];
  std::vector<NetId> sinks;
  for (NetId n = config.n_inputs; n < nl.n_nets(); ++n)
    if (fanout[n] == 0) sinks.push_back(n);
  std::vector<NetId> chosen;
  for (NetId s : sinks) chosen.push_back(s);
  const std::size_t n_gate_nets = nets.size() - config.n_inputs;
  while (chosen.size() < config.n_outputs && chosen.size() < n_gate_nets) {
    const NetId cand = nets[uniform(config.n_inputs, nets.size() - 1)];
    if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end())
      chosen.push_back(cand);
  }
  for (NetId o : chosen) nl.mark_output(o);
  nl.finalize();
  return nl;
}

Netlist make_named_circuit(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "add8") return make_ripple_adder(8);
  if (name == "add32") return make_ripple_adder(32);
  if (name == "par64") return make_parity_tree(64);
  if (name == "mux16") return make_mux_tree(4);
  RandomCircuitConfig cfg;
  cfg.name = name;
  // The benchmark substitutes carry a raised XOR fraction: random DAGs of
  // AND/OR-family gates alone are pathologically redundant (30%+ provably
  // untestable faults), while mixing in XOR restores the ~90%+ stuck-at
  // testability that real synthesized designs show.
  cfg.xor_fraction = 0.35;
  if (name == "g200") {
    cfg.n_inputs = 24;
    cfg.n_gates = 200;
    cfg.n_outputs = 12;
    cfg.locality = 96;
    cfg.seed = 0xC200;
  } else if (name == "g1k") {
    cfg.n_inputs = 48;
    cfg.n_gates = 1000;
    cfg.n_outputs = 32;
    cfg.locality = 256;
    cfg.seed = 0xC1000;
  } else if (name == "g5k") {
    cfg.n_inputs = 96;
    cfg.n_gates = 5000;
    cfg.n_outputs = 64;
    cfg.locality = 768;
    cfg.seed = 0xC5000;
  } else if (name == "g20k") {
    cfg.n_inputs = 160;
    cfg.n_gates = 20000;
    cfg.n_outputs = 128;
    cfg.locality = 2048;
    cfg.seed = 0xC20000;
  } else {
    throw std::invalid_argument("unknown circuit '" + name + "'");
  }
  return make_random_circuit(cfg);
}

}  // namespace mdd
