#include "netlist/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mdd {

void write_dot(std::ostream& out, const Netlist& nl,
               const DotOptions& options) {
  std::vector<bool> highlighted(nl.n_nets(), false);
  for (NetId n : options.highlight)
    if (n < nl.n_nets()) highlighted[n] = true;

  out << "digraph \"" << nl.name() << "\" {\n";
  if (options.ranked) out << "  rankdir=LR;\n";
  out << "  node [fontname=\"monospace\"];\n";

  for (NetId n = 0; n < nl.n_nets(); ++n) {
    out << "  n" << n << " [label=\"" << nl.net_name(n);
    if (nl.kind(n) != GateKind::Input)
      out << "\\n" << to_string(nl.kind(n));
    out << "\"";
    if (nl.is_input(n)) out << ", shape=triangle";
    else if (nl.output_index(n).has_value()) out << ", shape=doublecircle";
    else out << ", shape=box";
    if (highlighted[n]) out << ", style=filled, fillcolor=orange";
    out << "];\n";
  }
  for (NetId g = 0; g < nl.n_nets(); ++g) {
    for (NetId f : nl.fanins(g)) {
      out << "  n" << f << " -> n" << g;
      if (options.edge_labels)
        out << " [label=\"" << nl.net_name(f) << "\"]";
      out << ";\n";
    }
  }
  // Level-based ranking keeps the drawing topological.
  if (options.ranked) {
    for (std::uint32_t lv = 0; lv <= nl.depth(); ++lv) {
      bool any = false;
      std::ostringstream rank;
      rank << "  { rank=same;";
      for (NetId n = 0; n < nl.n_nets(); ++n) {
        if (nl.level(n) == lv) {
          rank << " n" << n << ";";
          any = true;
        }
      }
      rank << " }\n";
      if (any) out << rank.str();
    }
  }
  out << "}\n";
}

std::string write_dot_string(const Netlist& nl, const DotOptions& options) {
  std::ostringstream ss;
  write_dot(ss, nl, options);
  return ss.str();
}

}  // namespace mdd
