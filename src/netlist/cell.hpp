// openmdd — standard-cell library with truth-table models.
//
// The netlist core stores only *primitive* gates (see GateKind): this keeps
// every simulator a tight word-parallel loop. Complex library cells
// (AOI/OAI/MUX/...) are described here as a `CellModel`: a truth table plus
// a decomposition into primitives. Parsers expand cell instances into their
// decomposition while recording the instance so that diagnosis can report
// suspects at cell granularity.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/logic.hpp"

namespace mdd {

/// Primitive gate kinds stored in a Netlist. `Input` marks primary-input
/// nets (no fanin); `Const0`/`Const1` are tie cells.
enum class GateKind : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
};

std::string_view to_string(GateKind kind);

/// Parses a primitive gate name (case-insensitive); empty if unknown.
std::optional<GateKind> gate_kind_from_string(std::string_view name);

/// True if the gate kind has a controlling input value (AND/NAND -> 0,
/// OR/NOR -> 1). XOR-family and single-input gates have none.
bool has_controlling_value(GateKind kind);

/// Controlling input value for AND/NAND (false) and OR/NOR (true).
/// Precondition: has_controlling_value(kind).
bool controlling_value(GateKind kind);

/// True if the output inverts relative to the gate's base function
/// (NAND/NOR/XNOR/NOT).
bool is_inverting(GateKind kind);

/// Evaluates a primitive over scalar booleans.
bool eval_gate(GateKind kind, const std::vector<bool>& ins);

/// Evaluates a primitive over 64-pattern words.
Word eval_gate_word(GateKind kind, const Word* ins, std::size_t n);

/// Evaluates a primitive over 3-valued dual-rail words.
DualWord eval_gate_dual(GateKind kind, const DualWord* ins, std::size_t n);

/// One step of a cell decomposition. Operand indices < n_inputs refer to
/// the cell's input pins; operand index (n_inputs + k) refers to the output
/// of decomposition step k. The final step drives the cell output.
struct CellOp {
  GateKind kind;
  std::vector<std::uint32_t> operands;
};

/// A library cell: single-output combinational function of up to 8 inputs.
///
/// Invariant: `truth` always equals the function computed by `ops` (checked
/// at registration); bit m of the table is the output for input minterm m
/// (input 0 = least-significant bit of m).
class CellModel {
 public:
  /// Builds a model from a decomposition; derives the truth table.
  CellModel(std::string name, std::uint32_t n_inputs, std::vector<CellOp> ops);

  /// Builds a model from a truth table; synthesizes a sum-of-minterms
  /// decomposition. `truth` must have 2^n_inputs meaningful bits.
  static CellModel from_truth_table(std::string name, std::uint32_t n_inputs,
                                    std::uint64_t truth_low,
                                    std::uint64_t truth_high = 0,
                                    std::uint64_t truth_w2 = 0,
                                    std::uint64_t truth_w3 = 0);

  const std::string& name() const { return name_; }
  std::uint32_t n_inputs() const { return n_inputs_; }
  const std::vector<CellOp>& ops() const { return ops_; }

  /// Output value for the input minterm `m` (bit i of m = input pin i).
  bool eval_minterm(std::uint32_t m) const;

  /// Scalar evaluation.
  bool eval(const std::vector<bool>& ins) const;

  /// Raw truth table, 256 bits (unused high bits are zero).
  const std::array<std::uint64_t, 4>& truth() const { return truth_; }

 private:
  CellModel() = default;

  std::string name_;
  std::uint32_t n_inputs_ = 0;
  std::vector<CellOp> ops_;
  std::array<std::uint64_t, 4> truth_{};
};

/// Registry of cell models. Construction installs a default library of
/// common CMOS standard cells (INV/BUF, AND/NAND/OR/NOR 2-4, XOR2/XNOR2,
/// MUX2, AOI21/22, OAI21/22, AO21, OA21, MAJ3).
class CellLibrary {
 public:
  CellLibrary();

  /// Registers (or replaces) a cell. Returns the stored model.
  const CellModel& add(CellModel model);

  /// Looks a cell up by name (case-sensitive); nullptr if absent.
  const CellModel* find(std::string_view name) const;

  /// Names of all registered cells, in registration order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, CellModel> cells_;
  std::vector<std::string> names_;
};

}  // namespace mdd
