#include "netlist/cell.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <stdexcept>

namespace mdd {

std::string_view to_string(GateKind kind) {
  switch (kind) {
    case GateKind::Input: return "INPUT";
    case GateKind::Const0: return "CONST0";
    case GateKind::Const1: return "CONST1";
    case GateKind::Buf: return "BUF";
    case GateKind::Not: return "NOT";
    case GateKind::And: return "AND";
    case GateKind::Nand: return "NAND";
    case GateKind::Or: return "OR";
    case GateKind::Nor: return "NOR";
    case GateKind::Xor: return "XOR";
    case GateKind::Xnor: return "XNOR";
  }
  return "?";
}

std::optional<GateKind> gate_kind_from_string(std::string_view name) {
  std::string up(name);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (up == "INPUT") return GateKind::Input;
  if (up == "CONST0" || up == "TIE0") return GateKind::Const0;
  if (up == "CONST1" || up == "TIE1") return GateKind::Const1;
  if (up == "BUF" || up == "BUFF") return GateKind::Buf;
  if (up == "NOT" || up == "INV") return GateKind::Not;
  if (up == "AND") return GateKind::And;
  if (up == "NAND") return GateKind::Nand;
  if (up == "OR") return GateKind::Or;
  if (up == "NOR") return GateKind::Nor;
  if (up == "XOR") return GateKind::Xor;
  if (up == "XNOR") return GateKind::Xnor;
  return std::nullopt;
}

bool has_controlling_value(GateKind kind) {
  switch (kind) {
    case GateKind::And:
    case GateKind::Nand:
    case GateKind::Or:
    case GateKind::Nor:
      return true;
    default:
      return false;
  }
}

bool controlling_value(GateKind kind) {
  assert(has_controlling_value(kind));
  return kind == GateKind::Or || kind == GateKind::Nor;
}

bool is_inverting(GateKind kind) {
  switch (kind) {
    case GateKind::Not:
    case GateKind::Nand:
    case GateKind::Nor:
    case GateKind::Xnor:
      return true;
    default:
      return false;
  }
}

bool eval_gate(GateKind kind, const std::vector<bool>& ins) {
  switch (kind) {
    case GateKind::Input:
      throw std::logic_error("eval_gate: INPUT has no function");
    case GateKind::Const0: return false;
    case GateKind::Const1: return true;
    case GateKind::Buf: return ins.at(0);
    case GateKind::Not: return !ins.at(0);
    case GateKind::And: {
      for (bool v : ins)
        if (!v) return false;
      return true;
    }
    case GateKind::Nand: {
      for (bool v : ins)
        if (!v) return true;
      return false;
    }
    case GateKind::Or: {
      for (bool v : ins)
        if (v) return true;
      return false;
    }
    case GateKind::Nor: {
      for (bool v : ins)
        if (v) return false;
      return true;
    }
    case GateKind::Xor: {
      bool acc = false;
      for (bool v : ins) acc = acc != v;
      return acc;
    }
    case GateKind::Xnor: {
      bool acc = false;
      for (bool v : ins) acc = acc != v;
      return !acc;
    }
  }
  throw std::logic_error("eval_gate: bad kind");
}

Word eval_gate_word(GateKind kind, const Word* ins, std::size_t n) {
  switch (kind) {
    case GateKind::Input:
      return kAllZero;  // inputs are loaded, never evaluated
    case GateKind::Const0: return kAllZero;
    case GateKind::Const1: return kAllOne;
    case GateKind::Buf: return ins[0];
    case GateKind::Not: return ~ins[0];
    case GateKind::And: {
      Word acc = kAllOne;
      for (std::size_t i = 0; i < n; ++i) acc &= ins[i];
      return acc;
    }
    case GateKind::Nand: {
      Word acc = kAllOne;
      for (std::size_t i = 0; i < n; ++i) acc &= ins[i];
      return ~acc;
    }
    case GateKind::Or: {
      Word acc = kAllZero;
      for (std::size_t i = 0; i < n; ++i) acc |= ins[i];
      return acc;
    }
    case GateKind::Nor: {
      Word acc = kAllZero;
      for (std::size_t i = 0; i < n; ++i) acc |= ins[i];
      return ~acc;
    }
    case GateKind::Xor: {
      Word acc = kAllZero;
      for (std::size_t i = 0; i < n; ++i) acc ^= ins[i];
      return acc;
    }
    case GateKind::Xnor: {
      Word acc = kAllZero;
      for (std::size_t i = 0; i < n; ++i) acc ^= ins[i];
      return ~acc;
    }
  }
  return kAllZero;
}

DualWord eval_gate_dual(GateKind kind, const DualWord* ins, std::size_t n) {
  switch (kind) {
    case GateKind::Input:
      return DualWord::all_x();
    case GateKind::Const0: return DualWord::all0();
    case GateKind::Const1: return DualWord::all1();
    case GateKind::Buf: return ins[0];
    case GateKind::Not: return dw_not(ins[0]);
    case GateKind::And:
    case GateKind::Nand: {
      DualWord acc = DualWord::all1();
      for (std::size_t i = 0; i < n; ++i) acc = dw_and(acc, ins[i]);
      return kind == GateKind::Nand ? dw_not(acc) : acc;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      DualWord acc = DualWord::all0();
      for (std::size_t i = 0; i < n; ++i) acc = dw_or(acc, ins[i]);
      return kind == GateKind::Nor ? dw_not(acc) : acc;
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      DualWord acc = DualWord::all0();
      for (std::size_t i = 0; i < n; ++i) acc = dw_xor(acc, ins[i]);
      return kind == GateKind::Xnor ? dw_not(acc) : acc;
    }
  }
  return DualWord::all_x();
}

CellModel::CellModel(std::string name, std::uint32_t n_inputs,
                     std::vector<CellOp> ops)
    : name_(std::move(name)), n_inputs_(n_inputs), ops_(std::move(ops)) {
  if (n_inputs_ > 8) throw std::invalid_argument("CellModel: >8 inputs");
  if (ops_.empty()) throw std::invalid_argument("CellModel: empty ops");
  for (std::size_t k = 0; k < ops_.size(); ++k) {
    for (std::uint32_t opnd : ops_[k].operands) {
      if (opnd >= n_inputs_ + k)
        throw std::invalid_argument("CellModel: forward operand reference");
    }
  }
  // Derive the truth table by exhaustive evaluation of the decomposition.
  const std::uint32_t n_minterms = 1u << n_inputs_;
  for (std::uint32_t m = 0; m < n_minterms; ++m) {
    std::vector<bool> vals;
    vals.reserve(n_inputs_ + ops_.size());
    for (std::uint32_t i = 0; i < n_inputs_; ++i)
      vals.push_back(((m >> i) & 1u) != 0);
    for (const CellOp& op : ops_) {
      std::vector<bool> ins;
      ins.reserve(op.operands.size());
      for (std::uint32_t o : op.operands) ins.push_back(vals[o]);
      vals.push_back(eval_gate(op.kind, ins));
    }
    if (vals.back()) truth_[m / 64] |= (std::uint64_t{1} << (m % 64));
  }
}

CellModel CellModel::from_truth_table(std::string name, std::uint32_t n_inputs,
                                      std::uint64_t w0, std::uint64_t w1,
                                      std::uint64_t w2, std::uint64_t w3) {
  if (n_inputs > 8)
    throw std::invalid_argument("CellModel::from_truth_table: >8 inputs");
  const std::array<std::uint64_t, 4> truth{w0, w1, w2, w3};
  const std::uint32_t n_minterms = 1u << n_inputs;

  // Synthesize a naive sum-of-minterms network: per minterm an AND of
  // literals, then one OR. Constant functions become tie cells.
  std::vector<CellOp> ops;
  std::vector<std::uint32_t> minterm_outs;
  std::vector<std::uint32_t> inverted_input(n_inputs, UINT32_MAX);

  auto inverted = [&](std::uint32_t pin) {
    if (inverted_input[pin] == UINT32_MAX) {
      ops.push_back({GateKind::Not, {pin}});
      inverted_input[pin] = n_inputs + static_cast<std::uint32_t>(ops.size()) - 1;
    }
    return inverted_input[pin];
  };

  for (std::uint32_t m = 0; m < n_minterms; ++m) {
    if (!((truth[m / 64] >> (m % 64)) & 1u)) continue;
    std::vector<std::uint32_t> literals;
    for (std::uint32_t i = 0; i < n_inputs; ++i)
      literals.push_back(((m >> i) & 1u) ? i : inverted(i));
    ops.push_back({GateKind::And, std::move(literals)});
    minterm_outs.push_back(n_inputs + static_cast<std::uint32_t>(ops.size()) -
                           1);
  }
  if (minterm_outs.empty()) {
    ops.push_back({GateKind::Const0, {}});
  } else if (minterm_outs.size() == 1) {
    ops.push_back({GateKind::Buf, {minterm_outs.front()}});
  } else {
    ops.push_back({GateKind::Or, std::move(minterm_outs)});
  }
  CellModel model(std::move(name), n_inputs, std::move(ops));
  if (model.truth_ != truth)
    throw std::logic_error("CellModel::from_truth_table: synthesis mismatch");
  return model;
}

bool CellModel::eval_minterm(std::uint32_t m) const {
  assert(m < (1u << n_inputs_));
  return ((truth_[m / 64] >> (m % 64)) & 1u) != 0;
}

bool CellModel::eval(const std::vector<bool>& ins) const {
  if (ins.size() != n_inputs_)
    throw std::invalid_argument("CellModel::eval: arity mismatch");
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n_inputs_; ++i)
    if (ins[i]) m |= (1u << i);
  return eval_minterm(m);
}

namespace {

CellModel make_simple(std::string name, GateKind kind, std::uint32_t n) {
  std::vector<std::uint32_t> operands(n);
  for (std::uint32_t i = 0; i < n; ++i) operands[i] = i;
  return CellModel(std::move(name), n, {{kind, std::move(operands)}});
}

}  // namespace

CellLibrary::CellLibrary() {
  add(make_simple("BUF", GateKind::Buf, 1));
  add(make_simple("INV", GateKind::Not, 1));
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const std::string suffix = std::to_string(n);
    add(make_simple("AND" + suffix, GateKind::And, n));
    add(make_simple("NAND" + suffix, GateKind::Nand, n));
    add(make_simple("OR" + suffix, GateKind::Or, n));
    add(make_simple("NOR" + suffix, GateKind::Nor, n));
  }
  add(make_simple("XOR2", GateKind::Xor, 2));
  add(make_simple("XNOR2", GateKind::Xnor, 2));

  // MUX2(d0, d1, s) = s ? d1 : d0.
  add(CellModel("MUX2", 3,
                {{GateKind::Not, {2}},
                 {GateKind::And, {0, 3}},
                 {GateKind::And, {1, 2}},
                 {GateKind::Or, {4, 5}}}));
  // AOI21(a0, a1, b) = !((a0 & a1) | b)
  add(CellModel("AOI21", 3,
                {{GateKind::And, {0, 1}}, {GateKind::Nor, {3, 2}}}));
  // AOI22(a0, a1, b0, b1) = !((a0 & a1) | (b0 & b1))
  add(CellModel("AOI22", 4,
                {{GateKind::And, {0, 1}},
                 {GateKind::And, {2, 3}},
                 {GateKind::Nor, {4, 5}}}));
  // OAI21(a0, a1, b) = !((a0 | a1) & b)
  add(CellModel("OAI21", 3,
                {{GateKind::Or, {0, 1}}, {GateKind::Nand, {3, 2}}}));
  // OAI22(a0, a1, b0, b1) = !((a0 | a1) & (b0 | b1))
  add(CellModel("OAI22", 4,
                {{GateKind::Or, {0, 1}},
                 {GateKind::Or, {2, 3}},
                 {GateKind::Nand, {4, 5}}}));
  // AO21 / OA21: non-inverting variants.
  add(CellModel("AO21", 3,
                {{GateKind::And, {0, 1}}, {GateKind::Or, {3, 2}}}));
  add(CellModel("OA21", 3,
                {{GateKind::Or, {0, 1}}, {GateKind::And, {3, 2}}}));
  // MAJ3: carry function.
  add(CellModel("MAJ3", 3,
                {{GateKind::And, {0, 1}},
                 {GateKind::And, {0, 2}},
                 {GateKind::And, {1, 2}},
                 {GateKind::Or, {3, 4, 5}}}));
}

const CellModel& CellLibrary::add(CellModel model) {
  const std::string name = model.name();
  auto [it, inserted] = cells_.insert_or_assign(name, std::move(model));
  if (inserted) names_.push_back(name);
  return it->second;
}

const CellModel* CellLibrary::find(std::string_view name) const {
  auto it = cells_.find(std::string(name));
  return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace mdd
