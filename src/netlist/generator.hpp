// openmdd — benchmark circuit construction.
//
// Known circuits (c17, ripple-carry adders, parity trees, mux trees) plus a
// deterministic random-DAG generator. The generator is the documented
// substitution for ISCAS-85 / industrial netlists: it produces
// combinational circuits with controllable size, fan-in mix, depth
// (locality window) and reconvergent fan-out — the structural properties
// that drive diagnosis difficulty.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace mdd {

/// The ISCAS-85 c17 benchmark (6 NAND2 gates, 5 PIs, 2 POs).
Netlist make_c17();

/// n-bit ripple-carry adder built from XOR2/MAJ3 library cells
/// (exercises cell expansion). Inputs a_0..a_{n-1}, b_0.., cin;
/// outputs s_0..s_{n-1}, cout.
Netlist make_ripple_adder(unsigned n_bits);

/// Balanced XOR parity tree over n inputs, single output.
Netlist make_parity_tree(unsigned n_inputs);

/// 2^n_select : 1 multiplexer tree built from MUX2 cells.
Netlist make_mux_tree(unsigned n_select);

/// Configuration for the random-DAG generator. All sampling is driven by
/// `seed`; identical configs produce identical netlists on every platform.
struct RandomCircuitConfig {
  std::string name = "rand";
  unsigned n_inputs = 32;
  unsigned n_gates = 200;      ///< logic gates to create (excl. inputs)
  unsigned n_outputs = 16;
  unsigned max_fanin = 4;      ///< fanin sampled uniformly in [2, max_fanin]
  unsigned locality = 64;      ///< fanins drawn from the last `locality` nets
                               ///< (small => deep circuits, more masking)
  double inverter_fraction = 0.10;
  double xor_fraction = 0.10;  ///< XOR/XNOR gates (non-controlled paths)
  std::uint64_t seed = 1;
};

/// Generates a random combinational DAG. Every PI drives at least one gate;
/// POs prefer otherwise-unused nets so no logic dangles.
Netlist make_random_circuit(const RandomCircuitConfig& config);

/// Named standard workloads used across the benchmark harness:
/// "c17", "add8", "add32", "par64", "mux16", "g200", "g1k", "g5k", "g20k".
/// Throws std::invalid_argument for unknown names.
Netlist make_named_circuit(const std::string& name);

}  // namespace mdd
