#include "netlist/verilog_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace mdd {

namespace {

struct Token {
  std::string text;
  std::size_t line;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("verilog:" + std::to_string(line) + ": " + msg);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         c == '\'';  // keeps 1'b0 as one token
}

std::vector<Token> tokenize(std::istream& in) {
  std::vector<Token> toks;
  std::string line;
  std::size_t line_no = 0;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        const std::size_t end = line.find("*/", i);
        if (end == std::string::npos) {
          i = line.size();
        } else {
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < line.size() && ident_char(line[j])) ++j;
        toks.push_back({line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      toks.push_back({std::string(1, c), line_no});
      ++i;
    }
  }
  if (in_block_comment) fail(line_no, "unterminated block comment");
  return toks;
}

struct Connection {
  std::string pin;  // empty for positional
  std::string net;  // identifier or 1'b0 / 1'b1 literal
};

struct Instance {
  std::string type;
  std::string name;
  std::vector<Connection> conns;
  std::size_t line = 0;
};

struct AssignStmt {
  std::string lhs;
  std::string rhs;
  std::size_t line = 0;
};

/// Pin-name to cell-pin-index mapping for named connections.
int named_input_index(const std::string& pin) {
  if (pin.size() == 1 && pin[0] >= 'A' && pin[0] <= 'H') return pin[0] - 'A';
  return -1;
}

bool is_named_output(const std::string& pin) {
  return pin == "Y" || pin == "Z" || pin == "OUT" || pin == "Q";
}

}  // namespace

VerilogParseResult parse_verilog(std::istream& in, const CellLibrary& lib) {
  const std::vector<Token> toks = tokenize(in);
  std::size_t p = 0;

  auto peek = [&]() -> const Token& {
    if (p >= toks.size()) fail(toks.empty() ? 0 : toks.back().line,
                               "unexpected end of file");
    return toks[p];
  };
  auto next = [&]() -> const Token& {
    const Token& t = peek();
    ++p;
    return t;
  };
  auto expect = [&](std::string_view text) {
    const Token& t = next();
    if (t.text != text)
      fail(t.line, "expected '" + std::string(text) + "', got '" + t.text + "'");
  };

  expect("module");
  const std::string module_name = next().text;
  // Skip the port header; directions come from declarations.
  if (peek().text == "(") {
    while (next().text != ")") {
    }
  }
  expect(";");

  std::vector<std::string> input_names, output_names;
  std::unordered_set<std::string> wire_names;
  std::vector<Instance> instances;
  std::vector<AssignStmt> assigns;

  auto parse_decl_names = [&](std::vector<std::string>& out_list) {
    // Optional bus range: [msb:lsb]
    long msb = -1, lsb = -1;
    if (peek().text == "[") {
      next();
      msb = std::stol(next().text);
      expect(":");
      lsb = std::stol(next().text);
      expect("]");
    }
    while (true) {
      const Token& t = next();
      if (msb >= 0) {
        const long lo = std::min(msb, lsb), hi = std::max(msb, lsb);
        for (long b = hi; b >= lo; --b)
          out_list.push_back(t.text + "_" + std::to_string(b));
      } else {
        out_list.push_back(t.text);
      }
      const Token& sep = next();
      if (sep.text == ";") break;
      if (sep.text != ",") fail(sep.line, "expected ',' or ';' in declaration");
    }
  };

  while (true) {
    const Token& t = next();
    if (t.text == "endmodule") break;
    if (t.text == "input") {
      parse_decl_names(input_names);
    } else if (t.text == "output") {
      parse_decl_names(output_names);
    } else if (t.text == "wire") {
      std::vector<std::string> names;
      parse_decl_names(names);
      for (std::string& n : names) wire_names.insert(std::move(n));
    } else if (t.text == "assign") {
      AssignStmt a;
      a.line = t.line;
      a.lhs = next().text;
      expect("=");
      a.rhs = next().text;
      expect(";");
      assigns.push_back(std::move(a));
    } else {
      // Instance: TYPE [name] ( conns ) ;
      Instance inst;
      inst.type = t.text;
      inst.line = t.line;
      if (peek().text != "(") inst.name = next().text;
      expect("(");
      if (peek().text != ")") {
        while (true) {
          Connection c;
          if (peek().text == ".") {
            next();
            c.pin = next().text;
            expect("(");
            c.net = next().text;
            expect(")");
          } else {
            c.net = next().text;
          }
          inst.conns.push_back(std::move(c));
          const Token& sep = next();
          if (sep.text == ")") break;
          if (sep.text != ",") fail(sep.line, "expected ',' or ')'");
        }
      } else {
        next();
      }
      expect(";");
      instances.push_back(std::move(inst));
    }
  }

  VerilogParseResult result{Netlist(module_name), 0};
  Netlist& nl = result.netlist;
  for (const std::string& n : input_names) nl.add_input(n);

  NetId tie0 = kNoNet, tie1 = kNoNet;
  auto resolve = [&](const std::string& name) -> NetId {
    if (name == "1'b0" || name == "1'h0") {
      if (tie0 == kNoNet) tie0 = nl.add_gate(GateKind::Const0, {}, "_tie0");
      return tie0;
    }
    if (name == "1'b1" || name == "1'h1") {
      if (tie1 == kNoNet) tie1 = nl.add_gate(GateKind::Const1, {}, "_tie1");
      return tie1;
    }
    return nl.find_net(name);
  };

  // Normalize each instance/assign into (output name, ready-check, build).
  struct PendingGate {
    std::string out;
    std::string type;  // primitive name, cell name, or "assign"
    std::vector<std::string> in_names;
    std::string inst_name;
    std::size_t line;
  };
  std::vector<PendingGate> pending;

  for (const AssignStmt& a : assigns)
    pending.push_back({a.lhs, "assign", {a.rhs}, "", a.line});

  for (Instance& inst : instances) {
    PendingGate pg;
    pg.type = inst.type;
    pg.inst_name = inst.name;
    pg.line = inst.line;
    const bool named = !inst.conns.empty() && !inst.conns.front().pin.empty();
    auto prim = gate_kind_from_string(inst.type);
    const CellModel* cell = prim ? nullptr : lib.find(inst.type);
    if (!prim && !cell)
      fail(inst.line, "unknown primitive or cell '" + inst.type + "'");
    if (named) {
      std::map<int, std::string> ins;
      for (const Connection& c : inst.conns) {
        if (is_named_output(c.pin)) {
          pg.out = c.net;
        } else {
          const int idx = named_input_index(c.pin);
          if (idx < 0) fail(inst.line, "unknown pin '" + c.pin + "'");
          ins[idx] = c.net;
        }
      }
      if (pg.out.empty()) fail(inst.line, "no output pin connection");
      int expect_idx = 0;
      for (const auto& [idx, netname] : ins) {
        if (idx != expect_idx++) fail(inst.line, "non-contiguous input pins");
        pg.in_names.push_back(netname);
      }
    } else {
      if (inst.conns.empty()) fail(inst.line, "instance with no connections");
      pg.out = inst.conns.front().net;
      for (std::size_t i = 1; i < inst.conns.size(); ++i)
        pg.in_names.push_back(inst.conns[i].net);
    }
    if (cell && pg.in_names.size() != cell->n_inputs())
      fail(inst.line, "cell '" + inst.type + "' expects " +
                          std::to_string(cell->n_inputs()) + " inputs");
    pending.push_back(std::move(pg));
  }

  // Worklist resolution (definitions may appear in any order).
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    std::vector<PendingGate> remaining;
    for (PendingGate& pg : pending) {
      std::vector<NetId> fanins;
      bool ready = true;
      for (const std::string& n : pg.in_names) {
        const NetId f = resolve(n);
        if (f == kNoNet) {
          ready = false;
          break;
        }
        fanins.push_back(f);
      }
      if (!ready) {
        remaining.push_back(std::move(pg));
        continue;
      }
      if (pg.type == "assign") {
        nl.add_gate(GateKind::Buf, std::move(fanins), pg.out);
      } else if (auto prim = gate_kind_from_string(pg.type)) {
        nl.add_gate(*prim, std::move(fanins), pg.out);
      } else {
        const CellModel* cell = lib.find(pg.type);
        nl.add_cell(*cell, fanins, pg.inst_name, pg.out);
        ++result.n_cells;
      }
      progress = true;
    }
    pending = std::move(remaining);
  }
  if (!pending.empty())
    fail(pending.front().line,
         "unresolvable net (undeclared driver or combinational loop) feeding '" +
             pending.front().out + "'");

  for (const std::string& n : output_names) {
    const NetId net = nl.find_net(n);
    if (net == kNoNet)
      throw std::runtime_error("verilog: output '" + n + "' never driven");
    nl.mark_output(net);
  }
  nl.finalize();
  return result;
}

VerilogParseResult parse_verilog_string(std::string_view text,
                                        const CellLibrary& lib) {
  std::istringstream ss{std::string(text)};
  return parse_verilog(ss, lib);
}

VerilogParseResult parse_verilog_file(const std::string& path,
                                      const CellLibrary& lib) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("verilog: cannot open " + path);
  return parse_verilog(in, lib);
}

namespace {

/// Verilog identifiers cannot contain '.' etc.; sanitize and uniquify.
class NameMangler {
 public:
  explicit NameMangler(const Netlist& nl) : names_(nl.n_nets()) {
    for (NetId n = 0; n < nl.n_nets(); ++n) {
      std::string s = nl.net_name(n);
      for (char& c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
      if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
        s = "n_" + s;
      while (used_.contains(s)) s += "_";
      used_.insert(s);
      names_[n] = std::move(s);
    }
  }
  const std::string& operator[](NetId n) const { return names_[n]; }

 private:
  std::vector<std::string> names_;
  std::unordered_set<std::string> used_;
};

std::string_view primitive_name(GateKind k) {
  switch (k) {
    case GateKind::Buf: return "buf";
    case GateKind::Not: return "not";
    case GateKind::And: return "and";
    case GateKind::Nand: return "nand";
    case GateKind::Or: return "or";
    case GateKind::Nor: return "nor";
    case GateKind::Xor: return "xor";
    case GateKind::Xnor: return "xnor";
    default: return "";
  }
}

}  // namespace

void write_verilog(std::ostream& out, const Netlist& nl) {
  const NameMangler name(nl);
  std::string module = nl.name();
  for (char& c : module)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  if (module.empty() || std::isdigit(static_cast<unsigned char>(module[0])))
    module = "m_" + module;
  out << "module " << module << " (";
  bool first = true;
  for (NetId i : nl.inputs()) {
    if (!first) out << ", ";
    first = false;
    out << name[i];
  }
  std::unordered_set<NetId> port_nets(nl.inputs().begin(), nl.inputs().end());
  for (NetId o : nl.outputs()) {
    if (!first) out << ", ";
    first = false;
    out << name[o] << (port_nets.contains(o) ? "_po" : "");
  }
  out << ");\n";
  for (NetId i : nl.inputs()) out << "  input " << name[i] << ";\n";
  for (NetId o : nl.outputs())
    out << "  output " << name[o] << (port_nets.contains(o) ? "_po" : "")
        << ";\n";
  for (NetId g : nl.topo_order()) {
    if (nl.kind(g) == GateKind::Input) continue;
    if (!nl.output_index(g).has_value()) out << "  wire " << name[g] << ";\n";
  }
  for (NetId g : nl.topo_order()) {
    const GateKind k = nl.kind(g);
    if (k == GateKind::Input) continue;
    if (k == GateKind::Const0) {
      out << "  assign " << name[g] << " = 1'b0;\n";
      continue;
    }
    if (k == GateKind::Const1) {
      out << "  assign " << name[g] << " = 1'b1;\n";
      continue;
    }
    out << "  " << primitive_name(k) << " g" << g << " (" << name[g];
    for (NetId f : nl.fanins(g)) out << ", " << name[f];
    out << ");\n";
  }
  // POs that are also PIs need a feed-through alias.
  for (NetId o : nl.outputs())
    if (port_nets.contains(o))
      out << "  assign " << name[o] << "_po = " << name[o] << ";\n";
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& nl) {
  std::ostringstream ss;
  write_verilog(ss, nl);
  return ss.str();
}

}  // namespace mdd
