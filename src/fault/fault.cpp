#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace mdd {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::StuckAt0: return "SA0";
    case FaultKind::StuckAt1: return "SA1";
    case FaultKind::BridgeDom: return "BR-DOM";
    case FaultKind::BridgeWAnd: return "BR-WAND";
    case FaultKind::BridgeWOr: return "BR-WOR";
    case FaultKind::SlowToRise: return "STR";
    case FaultKind::SlowToFall: return "STF";
  }
  return "?";
}

std::string to_string(const Fault& f, const Netlist& nl) {
  std::string s(to_string(f.kind));
  if (f.is_transition()) return s + " " + nl.net_name(f.net);
  if (f.is_stuck_at()) {
    if (f.pin == kStemPin) {
      s += " " + nl.net_name(f.net);
    } else {
      s += " " + nl.net_name(f.net) + ".pin" + std::to_string(f.pin) + "(" +
           nl.net_name(nl.fanins(f.net)[f.pin]) + ")";
    }
  } else if (f.kind == FaultKind::BridgeDom) {
    s += " " + nl.net_name(f.bridge_net) + "->" + nl.net_name(f.net);
  } else {
    s += " " + nl.net_name(f.net) + "~" + nl.net_name(f.bridge_net);
  }
  return s;
}

void validate_fault(const Fault& f, const Netlist& nl) {
  if (f.net >= nl.n_nets())
    throw std::invalid_argument("fault: bad net id");
  if (f.is_stuck_at()) {
    if (f.pin != kStemPin && f.pin >= nl.fanins(f.net).size())
      throw std::invalid_argument("fault: bad pin index");
    return;
  }
  if (f.is_transition()) {
    if (f.pin != kStemPin)
      throw std::invalid_argument("fault: transition fault with pin site");
    return;
  }
  if (f.bridge_net >= nl.n_nets())
    throw std::invalid_argument("fault: bad bridge net id");
  if (f.bridge_net == f.net)
    throw std::invalid_argument("fault: degenerate bridge");
  if (f.pin != kStemPin)
    throw std::invalid_argument("fault: bridge with pin site");
}

std::vector<Fault> all_stuck_at_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  for (NetId n = 0; n < nl.n_nets(); ++n) {
    faults.push_back(Fault::stem_sa(n, false));
    faults.push_back(Fault::stem_sa(n, true));
  }
  for (NetId g = 0; g < nl.n_nets(); ++g) {
    const auto fi = nl.fanins(g);
    for (std::uint32_t p = 0; p < fi.size(); ++p) {
      if (nl.fanouts(fi[p]).size() > 1) {
        faults.push_back(Fault::branch_sa(g, p, false));
        faults.push_back(Fault::branch_sa(g, p, true));
      }
    }
  }
  return faults;
}

std::vector<Fault> all_transition_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  faults.reserve(nl.n_nets() * 2);
  for (NetId n = 0; n < nl.n_nets(); ++n) {
    faults.push_back(Fault::slow_to_rise(n));
    faults.push_back(Fault::slow_to_fall(n));
  }
  return faults;
}

bool is_feedback_pair(const Netlist& nl, NetId a, NetId b) {
  // BFS from the lower-level net only (the other direction cannot reach
  // backwards in a DAG).
  const NetId from = nl.level(a) <= nl.level(b) ? a : b;
  const NetId to = (from == a) ? b : a;
  std::vector<bool> seen(nl.n_nets(), false);
  std::vector<NetId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const NetId g = stack.back();
    stack.pop_back();
    if (g == to) return true;
    for (NetId s : nl.fanouts(g)) {
      if (!seen[s] && nl.level(s) <= nl.level(to)) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

std::vector<Fault> sample_bridge_faults(const Netlist& nl,
                                        const BridgeUniverseConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<NetId> pick(
      0, static_cast<NetId>(nl.n_nets() - 1));
  std::vector<Fault> faults;
  std::unordered_set<std::uint64_t> seen_pairs;
  std::size_t accepted = 0;
  // Bounded rejection sampling: a tiny or bridge-hostile netlist must not
  // hang the generator.
  for (std::size_t tries = 0; accepted < cfg.count && tries < cfg.count * 200;
       ++tries) {
    const NetId a = pick(rng);
    const NetId b = pick(rng);
    if (a == b) continue;
    const NetId lo = std::min(a, b), hi = std::max(a, b);
    const std::uint32_t gap =
        nl.level(lo) > nl.level(hi) ? nl.level(lo) - nl.level(hi)
                                    : nl.level(hi) - nl.level(lo);
    if (gap > cfg.max_level_gap) continue;
    if (is_feedback_pair(nl, lo, hi)) continue;
    const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
    if (!seen_pairs.insert(key).second) continue;
    faults.push_back(Fault::bridge_dom(lo, hi));
    faults.push_back(Fault::bridge_dom(hi, lo));
    if (cfg.include_wired) {
      faults.push_back(Fault::bridge_wand(lo, hi));
      faults.push_back(Fault::bridge_wor(lo, hi));
    }
    ++accepted;
  }
  return faults;
}

}  // namespace mdd
