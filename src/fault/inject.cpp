#include "fault/inject.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

namespace {

// Constant operand rows for pin overrides: an overridden fanin pointer is
// redirected here instead of at the driving net's lanes.
constexpr Word kZeroLanes[kMaxKernelLanes] = {};
constexpr Word kOneLanes[kMaxKernelLanes] = {kAllOne, kAllOne, kAllOne,
                                             kAllOne, kAllOne, kAllOne,
                                             kAllOne, kAllOne};

}  // namespace

FaultyMachine::FaultyMachine(const Netlist& netlist)
    : FaultyMachine(netlist, current_kernel()) {}

FaultyMachine::FaultyMachine(const Netlist& netlist, const SimKernel& kernel)
    : netlist_(&netlist),
      kernel_(&kernel),
      lanes_(kernel.lanes),
      values_(netlist.n_nets() * kernel.lanes, kAllZero),
      raw_values_(netlist.n_nets() * kernel.lanes, kAllZero) {
  if (!netlist.finalized())
    throw std::logic_error("FaultyMachine: netlist not finalized");
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_ptrs_.resize(max_fanin);
  pi_index_.assign(netlist.n_nets(), UINT32_MAX);
  for (std::uint32_t i = 0; i < netlist.inputs().size(); ++i)
    pi_index_[netlist.inputs()[i]] = i;
}

void FaultyMachine::set_faults(std::span<const Fault> faults) {
  faults_.assign(faults.begin(), faults.end());
  stem_overrides_.clear();
  pin_overrides_.clear();
  bridges_.clear();
  transitions_.clear();
  for (const Fault& f : faults_) {
    validate_fault(f, *netlist_);
    if (f.is_stuck_at()) {
      if (f.pin == kStemPin) {
        stem_overrides_.push_back({f.net, f.stuck_value()});
      } else {
        pin_overrides_.push_back({f.net, f.pin, f.stuck_value()});
      }
    } else if (f.is_transition()) {
      transitions_.push_back({f.net, f.kind == FaultKind::SlowToRise});
    } else {
      bridges_.push_back({f.kind, f.net, f.bridge_net});
    }
  }
}

std::size_t FaultyMachine::run_wide(const PatternSet& stimuli,
                                    std::size_t block) {
  return run_frame(stimuli, block, /*apply_transitions=*/false);
}

std::size_t FaultyMachine::run_pair_wide(const PatternSet& launch,
                                         const PatternSet& capture,
                                         std::size_t block) {
  run_frame(launch, block, /*apply_transitions=*/false);
  if (frame1_.size() != values_.size()) frame1_.resize(values_.size());
  std::copy(values_.begin(), values_.end(), frame1_.begin());
  return run_frame(capture, block, /*apply_transitions=*/true);
}

std::size_t FaultyMachine::run_frame(const PatternSet& stimuli,
                                     std::size_t block,
                                     bool apply_transitions) {
  assert(stimuli.n_signals() == netlist_->n_inputs());
  assert(block < stimuli.n_blocks());
  const std::size_t L = lanes_;
  const std::size_t m = std::min(L, stimuli.n_blocks() - block);

  // Pass 0 evaluates everything; later passes re-evaluate to propagate
  // bridge couplings that jump backwards in topological order.
  const std::size_t max_passes = bridges_.size() + 2;
  converged_ = false;

  Word vbuf[kMaxKernelLanes];

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (NetId g : netlist_->topo_order()) {
      const GateKind k = netlist_->kind(g);
      if (k == GateKind::Input) {
        // Padding lanes replicate the last valid block, matching BlockSim.
        for (std::size_t l = 0; l < L; ++l)
          vbuf[l] = stimuli.word(block + std::min(l, m - 1), pi_index_[g]);
      } else {
        const auto fi = netlist_->fanins(g);
        for (std::size_t j = 0; j < fi.size(); ++j)
          fanin_ptrs_[j] = values_.data() + fi[j] * L;
        for (const PinOverride& po : pin_overrides_)
          if (po.gate == g)
            fanin_ptrs_[po.pin] = po.value ? kOneLanes : kZeroLanes;
        kernel_->eval_gate(k, fanin_ptrs_.data(), fi.size(), vbuf);
      }
      std::copy(vbuf, vbuf + L, raw_values_.begin() + g * L);
      // Bridges first, stuck-at last (a hard stuck-at wins over coupling).
      // Dominant bridges copy the aggressor's *net* value; wired bridges
      // resolve the fight between the two *driver* (raw) values.
      for (const Bridge& br : bridges_) {
        if (br.kind == FaultKind::BridgeDom) {
          if (br.a == g) {
            const Word* other = values_.data() + br.b * L;
            std::copy(other, other + L, vbuf);
          }
        } else if (br.a == g || br.b == g) {
          const NetId other = (br.a == g) ? br.b : br.a;
          const Word* self_raw = raw_values_.data() + g * L;
          const Word* other_raw = raw_values_.data() + other * L;
          if (br.kind == FaultKind::BridgeWAnd) {
            for (std::size_t l = 0; l < L; ++l)
              vbuf[l] = self_raw[l] & other_raw[l];
          } else {
            for (std::size_t l = 0; l < L; ++l)
              vbuf[l] = self_raw[l] | other_raw[l];
          }
        }
      }
      if (apply_transitions) {
        // Gross-delay transition semantics: bits where the net moves in
        // the slow direction hold the launch-frame value through capture.
        for (const Transition& t : transitions_) {
          if (t.net != g) continue;
          const Word* f1 = frame1_.data() + g * L;
          for (std::size_t l = 0; l < L; ++l) {
            const Word moved =
                t.rise ? (~f1[l] & vbuf[l]) : (f1[l] & ~vbuf[l]);
            vbuf[l] = (vbuf[l] & ~moved) | (f1[l] & moved);
          }
        }
      }
      for (const StemOverride& so : stem_overrides_)
        if (so.net == g)
          std::fill(vbuf, vbuf + L, so.value ? kAllOne : kAllZero);
      Word* dst = values_.data() + g * L;
      if (!std::equal(vbuf, vbuf + L, dst)) {
        std::copy(vbuf, vbuf + L, dst);
        changed = true;
      }
    }
    if (!changed) {
      converged_ = true;
      break;
    }
    if (bridges_.empty()) {
      // Without bridges a single pass is exact.
      converged_ = true;
      break;
    }
  }
  return m;
}

PatternSet FaultyMachine::simulate_pair(const PatternSet& launch,
                                        const PatternSet& capture) {
  assert(launch.n_patterns() == capture.n_patterns());
  PatternSet responses(capture.n_patterns(), netlist_->n_outputs());
  for (std::size_t b = 0; b < capture.n_blocks();) {
    const std::size_t m = run_pair_wide(launch, capture, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word mask = capture.valid_mask(b + l);
      for (std::size_t o = 0; o < netlist_->n_outputs(); ++o)
        responses.word(b + l, o) = value(netlist_->outputs()[o], l) & mask;
    }
    b += m;
  }
  return responses;
}

PatternSet FaultyMachine::simulate(const PatternSet& stimuli) {
  PatternSet responses(stimuli.n_patterns(), netlist_->n_outputs());
  for (std::size_t b = 0; b < stimuli.n_blocks();) {
    const std::size_t m = run_wide(stimuli, b);
    for (std::size_t l = 0; l < m; ++l) {
      const Word mask = stimuli.valid_mask(b + l);
      for (std::size_t o = 0; o < netlist_->n_outputs(); ++o)
        responses.word(b + l, o) = value(netlist_->outputs()[o], l) & mask;
    }
    b += m;
  }
  return responses;
}

PatternSet simulate_with_faults(const Netlist& netlist,
                                std::span<const Fault> faults,
                                const PatternSet& stimuli) {
  FaultyMachine fm(netlist);
  fm.set_faults(faults);
  return fm.simulate(stimuli);
}

}  // namespace mdd
