#include "fault/inject.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

FaultyMachine::FaultyMachine(const Netlist& netlist)
    : netlist_(&netlist),
      values_(netlist.n_nets(), kAllZero),
      raw_values_(netlist.n_nets(), kAllZero) {
  if (!netlist.finalized())
    throw std::logic_error("FaultyMachine: netlist not finalized");
  std::size_t max_fanin = 0;
  for (NetId n = 0; n < netlist.n_nets(); ++n)
    max_fanin = std::max(max_fanin, netlist.fanins(n).size());
  fanin_buf_.resize(max_fanin);
  pi_index_.assign(netlist.n_nets(), UINT32_MAX);
  for (std::uint32_t i = 0; i < netlist.inputs().size(); ++i)
    pi_index_[netlist.inputs()[i]] = i;
}

void FaultyMachine::set_faults(std::span<const Fault> faults) {
  faults_.assign(faults.begin(), faults.end());
  stem_overrides_.clear();
  pin_overrides_.clear();
  bridges_.clear();
  transitions_.clear();
  for (const Fault& f : faults_) {
    validate_fault(f, *netlist_);
    if (f.is_stuck_at()) {
      if (f.pin == kStemPin) {
        stem_overrides_.push_back({f.net, f.stuck_value()});
      } else {
        pin_overrides_.push_back({f.net, f.pin, f.stuck_value()});
      }
    } else if (f.is_transition()) {
      transitions_.push_back({f.net, f.kind == FaultKind::SlowToRise});
    } else {
      bridges_.push_back({f.kind, f.net, f.bridge_net});
    }
  }
}

void FaultyMachine::run(const PatternSet& stimuli, std::size_t block) {
  run_frame(stimuli, block, /*apply_transitions=*/false);
}

void FaultyMachine::run_pair(const PatternSet& launch,
                             const PatternSet& capture, std::size_t block) {
  run_frame(launch, block, /*apply_transitions=*/false);
  if (frame1_.size() != values_.size()) frame1_.resize(values_.size());
  std::copy(values_.begin(), values_.end(), frame1_.begin());
  run_frame(capture, block, /*apply_transitions=*/true);
}

void FaultyMachine::run_frame(const PatternSet& stimuli, std::size_t block,
                              bool apply_transitions) {
  assert(stimuli.n_signals() == netlist_->n_inputs());

  // Pass 0 evaluates everything; later passes re-evaluate to propagate
  // bridge couplings that jump backwards in topological order.
  const std::size_t max_passes = bridges_.size() + 2;
  converged_ = false;

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (NetId g : netlist_->topo_order()) {
      const GateKind k = netlist_->kind(g);
      Word v;
      if (k == GateKind::Input) {
        v = stimuli.word(block, pi_index_[g]);
      } else {
        const auto fi = netlist_->fanins(g);
        for (std::size_t j = 0; j < fi.size(); ++j)
          fanin_buf_[j] = values_[fi[j]];
        for (const PinOverride& po : pin_overrides_)
          if (po.gate == g) fanin_buf_[po.pin] = po.value ? kAllOne : kAllZero;
        v = eval_gate_word(k, fanin_buf_.data(), fi.size());
      }
      raw_values_[g] = v;
      // Bridges first, stuck-at last (a hard stuck-at wins over coupling).
      // Dominant bridges copy the aggressor's *net* value; wired bridges
      // resolve the fight between the two *driver* (raw) values.
      for (const Bridge& br : bridges_) {
        if (br.kind == FaultKind::BridgeDom) {
          if (br.a == g) v = values_[br.b];
        } else if (br.a == g || br.b == g) {
          const NetId other = (br.a == g) ? br.b : br.a;
          v = (br.kind == FaultKind::BridgeWAnd)
                  ? (raw_values_[g] & raw_values_[other])
                  : (raw_values_[g] | raw_values_[other]);
        }
      }
      if (apply_transitions) {
        // Gross-delay transition semantics: bits where the net moves in
        // the slow direction hold the launch-frame value through capture.
        for (const Transition& t : transitions_) {
          if (t.net != g) continue;
          const Word moved = t.rise ? (~frame1_[g] & v) : (frame1_[g] & ~v);
          v = (v & ~moved) | (frame1_[g] & moved);
        }
      }
      for (const StemOverride& so : stem_overrides_)
        if (so.net == g) v = so.value ? kAllOne : kAllZero;
      if (v != values_[g]) {
        values_[g] = v;
        changed = true;
      }
    }
    if (!changed) {
      converged_ = true;
      break;
    }
    if (bridges_.empty()) {
      // Without bridges a single pass is exact.
      converged_ = true;
      break;
    }
  }
}

PatternSet FaultyMachine::simulate_pair(const PatternSet& launch,
                                        const PatternSet& capture) {
  assert(launch.n_patterns() == capture.n_patterns());
  PatternSet responses(capture.n_patterns(), netlist_->n_outputs());
  for (std::size_t b = 0; b < capture.n_blocks(); ++b) {
    run_pair(launch, capture, b);
    const Word mask = capture.valid_mask(b);
    for (std::size_t o = 0; o < netlist_->n_outputs(); ++o)
      responses.word(b, o) = values_[netlist_->outputs()[o]] & mask;
  }
  return responses;
}

PatternSet FaultyMachine::simulate(const PatternSet& stimuli) {
  PatternSet responses(stimuli.n_patterns(), netlist_->n_outputs());
  for (std::size_t b = 0; b < stimuli.n_blocks(); ++b) {
    run(stimuli, b);
    const Word mask = stimuli.valid_mask(b);
    for (std::size_t o = 0; o < netlist_->n_outputs(); ++o)
      responses.word(b, o) = values_[netlist_->outputs()[o]] & mask;
  }
  return responses;
}

PatternSet simulate_with_faults(const Netlist& netlist,
                                std::span<const Fault> faults,
                                const PatternSet& stimuli) {
  FaultyMachine fm(netlist);
  fm.set_faults(faults);
  return fm.simulate(stimuli);
}

}  // namespace mdd
