// openmdd — composite faulty-machine simulation.
//
// `FaultyMachine` evaluates the netlist with an arbitrary *set* of faults
// injected simultaneously — the primitive that lets the diagnosis core make
// no assumptions about failing-pattern characteristics: candidate multiplets
// are always scored on the true multiple-fault response, so masking and
// reinforcement between defects are modeled exactly.
//
// Evaluation is word-parallel through a simulation kernel (sim/kernel.hpp):
// a lane group of up to kernel.lanes consecutive 64-pattern blocks is
// evaluated per pass (64 patterns with the scalar kernel, 256/512 with
// AVX2/AVX-512 — bit-identical results either way). Bridges couple nets
// that may be far apart in topological order, so the machine iterates full
// passes to a fixpoint; for non-feedback bridge sets this converges in at
// most n_bridges+1 passes (a safety cap plus `converged()` flag guard
// against user-forced feedback bridges).
#pragma once

#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/patterns.hpp"

namespace mdd {

class FaultyMachine {
 public:
  explicit FaultyMachine(const Netlist& netlist);
  FaultyMachine(const Netlist& netlist, const SimKernel& kernel);

  const SimKernel& kernel() const { return *kernel_; }
  std::size_t lanes() const { return lanes_; }

  /// Installs the active fault set (validated). Any number and mix of
  /// faults is allowed, including the empty set (good machine).
  void set_faults(std::span<const Fault> faults);
  const std::vector<Fault>& faults() const { return faults_; }

  /// Evaluates the lane group starting at pattern block `block`:
  /// min(lanes(), n_blocks - block) blocks per pass (the returned count;
  /// padding lanes replicate the last valid block). Lane l holds block
  /// `block + l`. Transition faults in the fault set are inert in
  /// single-frame mode (they require a launch/capture pair).
  std::size_t run_wide(const PatternSet& stimuli, std::size_t block);

  /// Single-block compatibility shim: lane 0 is exactly `block` (value(n)
  /// reads it); wider kernels fill the remaining lanes with the following
  /// blocks as run_wide does.
  void run(const PatternSet& stimuli, std::size_t block) {
    run_wide(stimuli, block);
  }

  /// Two-frame (launch, capture) evaluation of one lane group for
  /// transition testing. Frame 1 is evaluated with the static faults;
  /// frame 2 applies in addition the gross-delay transition semantics: a
  /// slow-to-rise (slow-to-fall) net whose value rises (falls) between the
  /// frames holds its frame-1 value through capture. Values after the call
  /// are the capture-frame values.
  std::size_t run_pair_wide(const PatternSet& launch,
                            const PatternSet& capture, std::size_t block);
  void run_pair(const PatternSet& launch, const PatternSet& capture,
                std::size_t block) {
    run_pair_wide(launch, capture, block);
  }

  /// Frame-1 value of net `n` after run_pair() (lane 0 / lane `lane`).
  Word launch_value(NetId n) const { return frame1_[n * lanes_]; }
  Word launch_value(NetId n, std::size_t lane) const {
    return frame1_[n * lanes_ + lane];
  }

  /// Faulty value word of net `n` after run() (lane 0 / lane `lane`).
  Word value(NetId n) const { return values_[n * lanes_]; }
  Word value(NetId n, std::size_t lane) const {
    return values_[n * lanes_ + lane];
  }

  /// True if the last run() reached a fixpoint (always true for
  /// non-feedback fault sets).
  bool converged() const { return converged_; }

  /// Full-set responses at the POs.
  PatternSet simulate(const PatternSet& stimuli);

  /// Full-set capture-frame responses for launch/capture pairs.
  PatternSet simulate_pair(const PatternSet& launch,
                           const PatternSet& capture);

  const Netlist& netlist() const { return *netlist_; }

 private:
  std::size_t run_frame(const PatternSet& stimuli, std::size_t block,
                        bool apply_transitions);

  struct PinOverride {
    NetId gate;
    std::uint32_t pin;
    bool value;
  };
  struct StemOverride {
    NetId net;
    bool value;
  };
  struct Bridge {
    FaultKind kind;
    NetId a;  ///< victim (dom) / first net (wired)
    NetId b;  ///< aggressor (dom) / second net (wired)
  };
  struct Transition {
    NetId net;
    bool rise;  ///< true = slow-to-rise, false = slow-to-fall
  };

  const Netlist* netlist_;
  const SimKernel* kernel_;
  std::size_t lanes_;
  std::vector<Fault> faults_;
  std::vector<StemOverride> stem_overrides_;
  std::vector<PinOverride> pin_overrides_;
  std::vector<Bridge> bridges_;
  std::vector<Transition> transitions_;
  std::vector<Word> frame1_;  ///< launch-frame values (run_pair only)
  std::vector<Word> values_;      ///< [net][lane]
  std::vector<Word> raw_values_;  ///< driver outputs before bridge/stem
                                  ///< transforms (wired bridges combine
                                  ///< the fighting drivers' raw values)
  std::vector<const Word*> fanin_ptrs_;
  std::vector<std::uint32_t> pi_index_;  // NetId -> PI position
  bool converged_ = true;
};

/// Convenience: simulate `faults` injected together over `stimuli`.
PatternSet simulate_with_faults(const Netlist& netlist,
                                std::span<const Fault> faults,
                                const PatternSet& stimuli);

}  // namespace mdd
