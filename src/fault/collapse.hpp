// openmdd — structural stuck-at fault collapsing.
//
// Classic gate-local equivalence rules applied over the uncollapsed
// universe from all_stuck_at_faults():
//   AND/NAND : every input sa0 ≡ output sa0/sa1
//   OR/NOR   : every input sa1 ≡ output sa1/sa0
//   BUF/NOT  : input sa-v ≡ output sa-v / sa-!v
// "Input" means the branch fault if the source net has multiple fanouts,
// otherwise the source net's stem fault. Classes are closed transitively
// (union-find), so chains of buffers/inverters collapse fully.
#pragma once

#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"

namespace mdd {

class CollapsedFaults {
 public:
  explicit CollapsedFaults(const Netlist& netlist);

  /// Uncollapsed universe (== all_stuck_at_faults order).
  const std::vector<Fault>& universe() const { return universe_; }

  /// Equivalence classes; each class lists its member faults.
  const std::vector<std::vector<Fault>>& classes() const { return classes_; }

  /// One representative per class (the class's minimal fault).
  const std::vector<Fault>& representatives() const { return reps_; }

  /// Class index of `f`. Throws std::out_of_range for faults outside the
  /// stuck-at universe.
  std::size_t class_of(const Fault& f) const;

  bool equivalent(const Fault& a, const Fault& b) const {
    return class_of(a) == class_of(b);
  }

  double collapse_ratio() const {
    return static_cast<double>(classes_.size()) /
           static_cast<double>(universe_.size());
  }

 private:
  std::vector<Fault> universe_;
  std::vector<std::vector<Fault>> classes_;
  std::vector<Fault> reps_;
  std::unordered_map<Fault, std::size_t, FaultHash> class_index_;
};

}  // namespace mdd
