// openmdd — logic-level fault models and fault universe generation.
//
// Supported models (Section 2 of DESIGN.md):
//  * stuck-at 0/1 on a stem (a net) or on a branch (a specific fanin pin of
//    a gate) — also the logic-level model for full opens;
//  * dominant bridging (aggressor forces its value onto the victim net);
//  * wired-AND / wired-OR bridging (both nets take AND/OR of the two
//    driver values).
//
// A `Fault` is a value type usable in hashed containers; rendering needs a
// netlist for names.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace mdd {

enum class FaultKind : std::uint8_t {
  StuckAt0,
  StuckAt1,
  BridgeDom,   ///< `bridge_net` (aggressor) dominates `net` (victim)
  BridgeWAnd,  ///< net and bridge_net both take AND of the two values
  BridgeWOr,   ///< net and bridge_net both take OR of the two values
  SlowToRise,  ///< transition fault: a 0->1 transition between the launch
               ///< and capture frames is not completed (gross-delay model)
  SlowToFall,  ///< transition fault: a 1->0 transition is not completed
};

std::string_view to_string(FaultKind kind);

/// Marks a stem (whole-net) stuck-at site.
inline constexpr std::uint32_t kStemPin = UINT32_MAX;

struct Fault {
  FaultKind kind = FaultKind::StuckAt0;
  /// Stuck-at: the affected net (stem) or the gate whose input branch is
  /// stuck (with `pin`). Bridges: the victim net (BridgeDom) or the
  /// lower-numbered net (wired types, normalized so net < bridge_net).
  NetId net = kNoNet;
  /// kStemPin for stem faults; otherwise the fanin index of `net`'s gate.
  std::uint32_t pin = kStemPin;
  /// Bridges only: the aggressor (BridgeDom) / second net (wired).
  NetId bridge_net = kNoNet;

  bool is_stuck_at() const {
    return kind == FaultKind::StuckAt0 || kind == FaultKind::StuckAt1;
  }
  bool is_transition() const {
    return kind == FaultKind::SlowToRise || kind == FaultKind::SlowToFall;
  }
  bool is_bridge() const { return !is_stuck_at() && !is_transition(); }
  bool stuck_value() const { return kind == FaultKind::StuckAt1; }

  static Fault stem_sa(NetId net, bool value) {
    return {value ? FaultKind::StuckAt1 : FaultKind::StuckAt0, net, kStemPin,
            kNoNet};
  }
  static Fault branch_sa(NetId gate, std::uint32_t pin, bool value) {
    return {value ? FaultKind::StuckAt1 : FaultKind::StuckAt0, gate, pin,
            kNoNet};
  }
  static Fault bridge_dom(NetId victim, NetId aggressor) {
    return {FaultKind::BridgeDom, victim, kStemPin, aggressor};
  }
  static Fault bridge_wand(NetId a, NetId b) {
    return {FaultKind::BridgeWAnd, std::min(a, b), kStemPin, std::max(a, b)};
  }
  static Fault bridge_wor(NetId a, NetId b) {
    return {FaultKind::BridgeWOr, std::min(a, b), kStemPin, std::max(a, b)};
  }
  static Fault slow_to_rise(NetId net) {
    return {FaultKind::SlowToRise, net, kStemPin, kNoNet};
  }
  static Fault slow_to_fall(NetId net) {
    return {FaultKind::SlowToFall, net, kStemPin, kNoNet};
  }

  auto operator<=>(const Fault&) const = default;
};

std::string to_string(const Fault& f, const Netlist& netlist);

struct FaultHash {
  std::size_t operator()(const Fault& f) const {
    std::size_t h = static_cast<std::size_t>(f.kind);
    h = h * 1000003u ^ f.net;
    h = h * 1000003u ^ f.pin;
    h = h * 1000003u ^ f.bridge_net;
    return h;
  }
};

/// Validates that a fault's site references exist in `netlist` and that
/// bridges are non-degenerate. Throws std::invalid_argument otherwise.
void validate_fault(const Fault& f, const Netlist& netlist);

/// Full uncollapsed stuck-at universe: stem faults on every net plus
/// branch faults on every gate input pin whose source net has fanout > 1
/// (single-fanout branches are identical to their stems and omitted).
std::vector<Fault> all_stuck_at_faults(const Netlist& netlist);

/// Transition-fault universe: slow-to-rise / slow-to-fall on every net.
std::vector<Fault> all_transition_faults(const Netlist& netlist);

/// True if dominating/bridging `a` and `b` would create a feedback loop
/// (one net lies in the other's fan-out cone).
bool is_feedback_pair(const Netlist& netlist, NetId a, NetId b);

struct BridgeUniverseConfig {
  std::size_t count = 64;         ///< pairs to sample
  std::uint32_t max_level_gap = 4;///< |level(a)-level(b)| proxy for adjacency
  std::uint64_t seed = 1;
  bool include_wired = true;      ///< also emit WAND/WOR for each pair
};

/// Samples non-feedback bridge fault candidates. For each accepted pair the
/// list gets both dominance orientations (and wired types if configured).
std::vector<Fault> sample_bridge_faults(const Netlist& netlist,
                                        const BridgeUniverseConfig& config);

}  // namespace mdd
