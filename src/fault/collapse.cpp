#include "fault/collapse.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mdd {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CollapsedFaults::CollapsedFaults(const Netlist& nl) {
  universe_ = all_stuck_at_faults(nl);
  std::unordered_map<Fault, std::size_t, FaultHash> index;
  index.reserve(universe_.size());
  for (std::size_t i = 0; i < universe_.size(); ++i)
    index.emplace(universe_[i], i);

  UnionFind uf(universe_.size());

  // The fault representing "input pin p of gate g stuck at v" in the
  // uncollapsed universe.
  auto input_fault = [&](NetId g, std::uint32_t p, bool v) {
    const NetId src = nl.fanins(g)[p];
    return nl.fanouts(src).size() > 1 ? Fault::branch_sa(g, p, v)
                                      : Fault::stem_sa(src, v);
  };

  for (NetId g = 0; g < nl.n_nets(); ++g) {
    const GateKind k = nl.kind(g);
    const auto fi = nl.fanins(g);
    switch (k) {
      case GateKind::Buf:
      case GateKind::Not: {
        const bool inv = (k == GateKind::Not);
        for (bool v : {false, true}) {
          uf.unite(index.at(input_fault(g, 0, v)),
                   index.at(Fault::stem_sa(g, v != inv)));
        }
        break;
      }
      case GateKind::And:
      case GateKind::Nand: {
        const bool out_v = (k == GateKind::Nand);
        for (std::uint32_t p = 0; p < fi.size(); ++p)
          uf.unite(index.at(input_fault(g, p, false)),
                   index.at(Fault::stem_sa(g, out_v)));
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        const bool out_v = (k != GateKind::Nor);
        for (std::uint32_t p = 0; p < fi.size(); ++p)
          uf.unite(index.at(input_fault(g, p, true)),
                   index.at(Fault::stem_sa(g, out_v)));
        break;
      }
      default:
        break;  // XOR/XNOR/Input/Const: no local equivalences
    }
  }

  // Materialize classes with deterministic ordering.
  std::unordered_map<std::size_t, std::size_t> root_to_class;
  for (std::size_t i = 0; i < universe_.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto [it, inserted] = root_to_class.emplace(root, classes_.size());
    if (inserted) classes_.emplace_back();
    classes_[it->second].push_back(universe_[i]);
  }
  reps_.reserve(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    std::sort(classes_[c].begin(), classes_[c].end());
    reps_.push_back(classes_[c].front());
    for (const Fault& f : classes_[c]) class_index_.emplace(f, c);
  }
}

std::size_t CollapsedFaults::class_of(const Fault& f) const {
  auto it = class_index_.find(f);
  if (it == class_index_.end())
    throw std::out_of_range("CollapsedFaults: fault not in universe");
  return it->second;
}

}  // namespace mdd
