#include "diag/dictionary.hpp"

#include <algorithm>
#include <chrono>

#include "fsim/fsim.hpp"

namespace mdd {

std::string FaultDictionary::key_of(const ErrorSignature& sig) {
  // Compact byte key: (pattern, mask words) stream. Signatures are
  // canonical (sorted by pattern), so equal signatures give equal keys.
  std::string key;
  key.reserve(sig.n_failing_patterns() * (4 + sig.n_po_words() * 8));
  for (std::size_t i = 0; i < sig.n_failing_patterns(); ++i) {
    const std::uint32_t p = sig.failing_patterns()[i];
    key.append(reinterpret_cast<const char*>(&p), sizeof(p));
    const auto mask = sig.mask(i);
    key.append(reinterpret_cast<const char*>(mask.data()),
               mask.size() * sizeof(Word));
  }
  return key;
}

FaultDictionary::FaultDictionary(const Netlist& netlist,
                                 const PatternSet& patterns,
                                 const DictionaryOptions& options)
    : netlist_(&netlist), options_(options) {
  const auto t0 = std::chrono::steady_clock::now();
  const CollapsedFaults collapsed(netlist);
  faults_ = collapsed.representatives();
  if (options.include_bridges) {
    BridgeUniverseConfig bc;
    bc.count = options.bridge_pairs;
    bc.seed = options.bridge_seed;
    bc.include_wired = false;
    for (const Fault& f : sample_bridge_faults(netlist, bc))
      faults_.push_back(f);
  }

  FaultSimulator fsim(netlist, patterns);
  signatures_.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    signatures_.push_back(fsim.signature(faults_[i]));
    stored_bits_ += signatures_.back().n_error_bits();
    // Undetected faults (empty signature) are unfindable by definition and
    // would all collide on the empty key.
    if (!signatures_.back().empty())
      by_signature_[key_of(signatures_.back())].push_back(i);
  }
  build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

std::vector<Fault> FaultDictionary::exact_matches(
    const ErrorSignature& observed) const {
  std::vector<Fault> out;
  auto it = by_signature_.find(key_of(observed));
  if (it == by_signature_.end()) return out;
  for (std::size_t i : it->second) out.push_back(faults_[i]);
  return out;
}

DiagnosisReport FaultDictionary::diagnose(const Datalog& datalog) const {
  const auto t0 = std::chrono::steady_clock::now();
  DiagnosisReport report;
  report.method = "dictionary";
  report.n_candidates_scored = faults_.size();

  const ErrorSignature observed =
      restrict_signature(datalog.observed, datalog.n_patterns_applied);

  const std::vector<Fault> exact = exact_matches(observed);
  if (!exact.empty()) {
    ScoredCandidate sc;
    sc.fault = exact.front();
    sc.counts = MatchCounts{observed.n_error_bits(), 0, 0};
    sc.score = score_of(sc.counts, options_.weights);
    sc.alternates.assign(exact.begin() + 1, exact.end());
    report.suspects.push_back(std::move(sc));
    report.explains_all = !observed.empty();
  } else {
    // Fallback: rank all entries (no per-pattern assumption, but also no
    // composite modelling — each entry is a single fault).
    struct Entry {
      std::size_t index;
      MatchCounts counts;
      double score;
    };
    std::vector<Entry> entries;
    entries.reserve(faults_.size());
    const SignatureMatcher matcher(observed);
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      const MatchCounts mc = matcher.match(signatures_[i]);
      entries.push_back({i, mc, score_of(mc, options_.weights)});
    }
    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return faults_[a.index] < faults_[b.index];
              });
    const std::size_t k = std::min(options_.top_k, entries.size());
    for (std::size_t r = 0; r < k; ++r) {
      ScoredCandidate sc;
      sc.fault = faults_[entries[r].index];
      sc.counts = entries[r].counts;
      sc.score = entries[r].score;
      report.suspects.push_back(std::move(sc));
    }
  }
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace mdd
