#include "diag/dictionary.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "fsim/fsim.hpp"
#include "store/reader.hpp"

namespace mdd {

std::string FaultDictionary::key_of(const ErrorSignature& sig) {
  // Compact byte key: (pattern, mask words) stream. Signatures are
  // canonical (sorted by pattern), so equal signatures give equal keys.
  std::string key;
  key.reserve(sig.n_failing_patterns() * (4 + sig.n_po_words() * 8));
  for (std::size_t i = 0; i < sig.n_failing_patterns(); ++i) {
    const std::uint32_t p = sig.failing_patterns()[i];
    key.append(reinterpret_cast<const char*>(&p), sizeof(p));
    const auto mask = sig.mask(i);
    key.append(reinterpret_cast<const char*>(mask.data()),
               mask.size() * sizeof(Word));
  }
  return key;
}

std::vector<Fault> FaultDictionary::build_universe(
    const Netlist& netlist) const {
  const CollapsedFaults collapsed(netlist);
  std::vector<Fault> faults = collapsed.representatives();
  if (options_.include_bridges) {
    BridgeUniverseConfig bc;
    bc.count = options_.bridge_pairs;
    bc.seed = options_.bridge_seed;
    bc.include_wired = false;
    for (const Fault& f : sample_bridge_faults(netlist, bc))
      faults.push_back(f);
  }
  return faults;
}

void FaultDictionary::index_signatures() {
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    stored_bits_ += signatures_[i].n_error_bits();
    // Undetected faults (empty signature) are unfindable by definition and
    // would all collide on the empty key.
    if (!signatures_[i].empty())
      by_signature_[key_of(signatures_[i])].push_back(i);
  }
}

FaultDictionary::FaultDictionary(const Netlist& netlist,
                                 const PatternSet& patterns,
                                 const DictionaryOptions& options)
    : netlist_(&netlist), options_(options) {
  const auto t0 = std::chrono::steady_clock::now();
  faults_ = build_universe(netlist);

  FaultSimulator fsim(netlist, patterns);
  signatures_.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i)
    signatures_.push_back(fsim.signature(faults_[i]));
  index_signatures();
  build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

FaultDictionary::FaultDictionary(const Netlist& netlist,
                                 const PatternSet& patterns,
                                 const store::DictReader& reader,
                                 const DictionaryOptions& options)
    : netlist_(&netlist), options_(options) {
  const auto t0 = std::chrono::steady_clock::now();
  reader.validate_for(netlist, patterns);
  faults_ = build_universe(netlist);

  // Decode stored faults off the mapping; simulate only the stragglers
  // (e.g. a store built without bridges). The simulator is constructed on
  // first fallback — a fully covering store never pays for it.
  std::optional<FaultSimulator> fsim;
  signatures_.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (auto idx = reader.find(faults_[i])) {
      signatures_.push_back(reader.decode(*idx));
      ++store_hits_;
    } else {
      if (!fsim.has_value()) fsim.emplace(netlist, patterns);
      signatures_.push_back(fsim->signature(faults_[i]));
    }
  }
  index_signatures();
  build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

std::vector<Fault> FaultDictionary::exact_matches(
    const ErrorSignature& observed) const {
  std::vector<Fault> out;
  auto it = by_signature_.find(key_of(observed));
  if (it == by_signature_.end()) return out;
  for (std::size_t i : it->second) out.push_back(faults_[i]);
  return out;
}

DiagnosisReport FaultDictionary::diagnose(const Datalog& datalog) const {
  const auto t0 = std::chrono::steady_clock::now();
  DiagnosisReport report;
  report.method = "dictionary";
  report.n_candidates_scored = faults_.size();

  const ErrorSignature observed =
      restrict_signature(datalog.observed, datalog.n_patterns_applied);

  const std::vector<Fault> exact = exact_matches(observed);
  if (!exact.empty()) {
    ScoredCandidate sc;
    sc.fault = exact.front();
    sc.counts = MatchCounts{observed.n_error_bits(), 0, 0};
    sc.score = score_of(sc.counts, options_.weights);
    sc.alternates.assign(exact.begin() + 1, exact.end());
    report.suspects.push_back(std::move(sc));
    report.explains_all = !observed.empty();
  } else {
    // Fallback: rank all entries (no per-pattern assumption, but also no
    // composite modelling — each entry is a single fault).
    struct Entry {
      std::size_t index;
      MatchCounts counts;
      double score;
    };
    std::vector<Entry> entries;
    entries.reserve(faults_.size());
    const SignatureMatcher matcher(observed);
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      const MatchCounts mc = matcher.match(signatures_[i]);
      entries.push_back({i, mc, score_of(mc, options_.weights)});
    }
    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return faults_[a.index] < faults_[b.index];
              });
    const std::size_t k = std::min(options_.top_k, entries.size());
    for (std::size_t r = 0; r < k; ++r) {
      ScoredCandidate sc;
      sc.fault = faults_[entries[r].index];
      sc.counts = entries[r].counts;
      sc.score = entries[r].score;
      report.suspects.push_back(std::move(sc));
    }
  }
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace mdd
