// openmdd — initial candidate extraction.
//
// Builds the candidate fault pool the diagnosers score. Per failing
// pattern, the good machine is simulated and every failing output is
// back-traced with critical path tracing; the union over all failing
// (pattern, output) pairs is kept (union, not intersection — with multiple
// defects different patterns expose different sites, so intersecting would
// assume exactly the failing-pattern property this library avoids).
//
// Bridge candidates are instantiated on top: for each suspect stem, nearby
// non-feedback partner nets give dominant-bridge candidates with the
// suspect as victim. A structural back-cone fallback covers the corner
// where CPT's classical multi-controlling-input rule under-approximates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "diag/datalog.hpp"
#include "fault/fault.hpp"
#include "sim/patterns.hpp"

namespace mdd {

/// Cross-case store for critical-path traces. The critical fault set of a
/// failing (pattern, output) pair depends only on (netlist, patterns) —
/// not on which datalog reported the failure — so a long-lived session can
/// cache traces and answer repeated failures by lookup instead of
/// re-tracing. Implementations must be thread-safe and must return exactly
/// what a fresh trace would produce.
class CptTraceStore {
 public:
  virtual ~CptTraceStore() = default;
  /// Cached critical faults for (pattern, output), or null on miss.
  virtual std::shared_ptr<const std::vector<Fault>> lookup(
      std::uint32_t pattern, std::uint32_t po) = 0;
  /// Offers a freshly traced set; the store may decline (full).
  virtual void store(std::uint32_t pattern, std::uint32_t po,
                     std::shared_ptr<const std::vector<Fault>> faults) = 0;
};

struct CandidateOptions {
  bool include_bridges = true;
  /// Bridge partners per suspect net: nearest-by-id nets whose good values
  /// are behaviour-consistent with the aggressor role.
  std::size_t bridge_partners = 16;
  /// Hard cap on the candidate pool (kept by descending CPT support;
  /// stuck-at candidates survive ties against bridges).
  std::size_t max_candidates = 6000;
  /// Failing patterns traced (all if larger; tracing is cheap but bounded
  /// for pathological logs).
  std::size_t max_traced_patterns = 64;
  /// Add stem stuck-at candidates for the whole fan-in cone of the failing
  /// outputs when CPT support is thin (< this many candidates).
  std::size_t back_cone_threshold = 2;
  /// Optional cross-case trace cache (non-owning; see CptTraceStore).
  /// Static-test extraction only; the pair-mode variant ignores it.
  CptTraceStore* trace_store = nullptr;
};

struct CandidatePool {
  std::vector<Fault> faults;
  /// Per-fault support: in how many traced (pattern, output) failures the
  /// fault appeared as critical (bridges inherit their victim's support).
  std::vector<std::uint32_t> support;
};

CandidatePool extract_candidates(const Netlist& netlist,
                                 const PatternSet& patterns,
                                 const Datalog& datalog,
                                 const CandidateOptions& options = {});

/// Pair-testing (transition) variant: traces capture-frame failures; every
/// critical stem whose value moved between launch and capture additionally
/// yields a slow-to-rise/slow-to-fall candidate in the observed direction.
/// Bridge candidates are not generated in pair mode.
CandidatePool extract_tdf_candidates(const Netlist& netlist,
                                     const PatternSet& launch,
                                     const PatternSet& capture,
                                     const Datalog& datalog,
                                     const CandidateOptions& options = {});

}  // namespace mdd
