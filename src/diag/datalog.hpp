// openmdd — tester datalog.
//
// A datalog is what diagnosis actually gets from the ATE: for each failing
// pattern, the set of failing outputs (scan cells / primary outputs), for a
// known applied-pattern window. Real testers truncate: they stop logging
// after N failing patterns and/or cap the failing pins recorded per
// pattern. Both models are implemented so the truncation experiment
// (Figure 4) can sweep them.
#pragma once

#include <cstdint>
#include <span>

#include "fault/fault.hpp"
#include "fsim/fsim.hpp"

namespace mdd {

struct DatalogOptions {
  /// ATE stops after logging this many failing patterns; later patterns
  /// count as "not applied".
  std::size_t max_failing_patterns = SIZE_MAX;
  /// At most this many failing pins are recorded per failing pattern
  /// (lowest output indices kept, matching scan-out order).
  std::size_t max_failing_pins = SIZE_MAX;
  /// Fraction of (pattern, output) observations that are X-masked — the
  /// tester could not compare them (unknown simulation values, compactor
  /// masking). Masked bits are neither pass nor fail; diagnosis must
  /// ignore them on both sides of the match.
  double x_mask_fraction = 0.0;
  std::uint64_t x_mask_seed = 0x5EED;
};

struct Datalog {
  /// Observed (possibly truncated) error bits; never includes masked bits.
  ErrorSignature observed;
  /// (pattern, output) observations the tester could not compare. Bits
  /// here are unknown: not failures, but not passes either.
  ErrorSignature masked;
  /// Patterns [0, n_patterns_applied) were applied; everything in that
  /// window not listed in `observed` or `masked` passed.
  std::size_t n_patterns_applied = 0;
  bool pattern_truncated = false;  ///< hit max_failing_patterns
  bool pin_truncated = false;      ///< some pattern lost pins

  bool has_failures() const { return !observed.empty(); }
};

/// Applies ATE truncation to a full error signature.
Datalog make_datalog(const ErrorSignature& full, std::size_t n_patterns,
                     const DatalogOptions& options = {});

/// End-to-end helper: simulate `defect` (any multiplet) against `patterns`
/// and log the failures. `good` must be the good-machine response.
Datalog datalog_from_defect(const Netlist& netlist,
                            std::span<const Fault> defect,
                            const PatternSet& patterns,
                            const PatternSet& good,
                            const DatalogOptions& options = {});

/// Pair-testing variant: simulate `defect` under launch/capture pairs and
/// log the capture-frame failures. `good` must be the good capture
/// response (PairFaultSimulator::good_response()).
Datalog datalog_from_defect_pair(const Netlist& netlist,
                                 std::span<const Fault> defect,
                                 const PatternSet& launch,
                                 const PatternSet& capture,
                                 const PatternSet& good,
                                 const DatalogOptions& options = {});

}  // namespace mdd
