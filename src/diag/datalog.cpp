#include "diag/datalog.hpp"

#include <algorithm>
#include <bit>
#include <random>
#include <vector>

namespace mdd {

namespace {

/// Deterministic X-mask: each (pattern, output) observation is masked with
/// probability `fraction`.
ErrorSignature make_x_mask(std::size_t n_patterns, std::size_t n_outputs,
                           double fraction, std::uint64_t seed) {
  ErrorSignature mask_sig(n_patterns, n_outputs);
  if (fraction <= 0.0) return mask_sig;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> chance(0.0, 1.0);
  std::vector<Word> mask(mask_sig.n_po_words());
  for (std::size_t p = 0; p < n_patterns; ++p) {
    bool any = false;
    std::fill(mask.begin(), mask.end(), kAllZero);
    for (std::size_t o = 0; o < n_outputs; ++o) {
      if (chance(rng) < fraction) {
        mask[o / 64] |= Word{1} << (o % 64);
        any = true;
      }
    }
    if (any) mask_sig.append(static_cast<std::uint32_t>(p), mask);
  }
  return mask_sig;
}

}  // namespace

Datalog make_datalog(const ErrorSignature& full, std::size_t n_patterns,
                     const DatalogOptions& options) {
  Datalog log;
  log.observed = ErrorSignature(n_patterns, full.n_outputs());
  log.n_patterns_applied = n_patterns;
  log.masked = make_x_mask(n_patterns, full.n_outputs(),
                           options.x_mask_fraction, options.x_mask_seed);

  std::vector<Word> mask(full.n_po_words());
  std::size_t n_logged = 0;
  std::uint32_t last_logged_pattern = 0;
  for (std::size_t i = 0; i < full.n_failing_patterns(); ++i) {
    if (n_logged >= options.max_failing_patterns) {
      log.pattern_truncated = true;
      // The tester stopped at the last logged failing pattern.
      log.n_patterns_applied = last_logged_pattern + 1;
      break;
    }
    const auto m = full.mask(i);
    std::copy(m.begin(), m.end(), mask.begin());
    // X-masked observations disappear from the log entirely.
    const auto xm = log.masked.mask_of_pattern(full.failing_patterns()[i]);
    if (!xm.empty()) {
      bool any = false;
      for (std::size_t w = 0; w < mask.size(); ++w) {
        mask[w] &= ~xm[w];
        any = any || mask[w] != kAllZero;
      }
      if (!any) continue;  // every failing pin masked: pattern looks passing
    }
    // Per-pattern pin cap: keep the lowest-indexed failing pins.
    std::size_t bits = 0;
    for (Word w : mask) bits += static_cast<std::size_t>(std::popcount(w));
    if (bits > options.max_failing_pins) {
      log.pin_truncated = true;
      std::size_t kept = 0;
      for (std::size_t w = 0; w < mask.size(); ++w) {
        Word out = kAllZero;
        Word in = mask[w];
        while (in && kept < options.max_failing_pins) {
          const Word lowest = in & (~in + 1);
          out |= lowest;
          in ^= lowest;
          ++kept;
        }
        mask[w] = out;
      }
    }
    log.observed.append(full.failing_patterns()[i], mask);
    ++n_logged;
    last_logged_pattern = full.failing_patterns()[i];
  }
  return log;
}

Datalog datalog_from_defect(const Netlist& netlist,
                            std::span<const Fault> defect,
                            const PatternSet& patterns,
                            const PatternSet& good,
                            const DatalogOptions& options) {
  const PatternSet faulty = simulate_with_faults(netlist, defect, patterns);
  const ErrorSignature full = ErrorSignature::diff(good, faulty);
  return make_datalog(full, patterns.n_patterns(), options);
}

Datalog datalog_from_defect_pair(const Netlist& netlist,
                                 std::span<const Fault> defect,
                                 const PatternSet& launch,
                                 const PatternSet& capture,
                                 const PatternSet& good,
                                 const DatalogOptions& options) {
  FaultyMachine machine(netlist);
  machine.set_faults(defect);
  const PatternSet faulty = machine.simulate_pair(launch, capture);
  const ErrorSignature full = ErrorSignature::diff(good, faulty);
  return make_datalog(full, capture.n_patterns(), options);
}

}  // namespace mdd
