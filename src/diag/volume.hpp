// openmdd — cross-datalog aggregation for volume diagnosis.
//
// One failing die is a datalog; production diagnosis is thousands of them
// against one design. Per-datalog reports answer "what is wrong with THIS
// die"; the volume layer answers the yield question: which candidate
// defects recur across die (systematic — a process or design problem) and
// which appear once (random). `VolumeAggregator` collects one compact
// record per diagnosed datalog — from any thread, in any order — and
// `summarize()` reduces them in datalog-index order into deterministic
// recurrence statistics: per-candidate datalog counts, rank-1 counts,
// score totals, a per-net hit histogram (bridge faults count both nets),
// and a failing-pattern-count histogram. The summary is byte-stable for a
// given record set at any thread count (no float-order nondeterminism:
// all reductions run in index order under one lock-free final pass).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "diag/diagnosis.hpp"
#include "fault/fault.hpp"

namespace mdd {

struct VolumeOptions {
  /// A candidate is classified systematic when it is a suspect in at
  /// least `min_recurrences` datalogs AND in at least
  /// `systematic_fraction` of all successfully diagnosed ones. The
  /// fractional floor rounds UP (ceil): at fraction 0.3 over 9 diagnosed
  /// datalogs a candidate needs 3 recurrences, not the truncated 2.
  double systematic_fraction = 0.25;
  std::size_t min_recurrences = 2;
  /// Recurrence rows kept in the summary (most-recurrent first);
  /// 0 = unbounded.
  std::size_t top_k = 50;
};

/// What the volume layer keeps per diagnosed datalog — the suspects of
/// the PRIMARY report (the first one, i.e. the requested method) plus
/// envelope facts. Deliberately small: a million-datalog campaign must
/// aggregate without holding a million full reports.
struct DatalogVolumeRecord {
  std::size_t index = 0;  ///< position in the batch (aggregation order)
  bool ok = false;        ///< diagnosis succeeded (failed logs still count)
  bool explains_all = false;
  bool timed_out = false;
  std::size_t n_failing_patterns = 0;
  std::size_t n_error_bits = 0;
  /// Primary-report suspects with their scores, rank order preserved.
  std::vector<Fault> suspects;
  std::vector<double> scores;
};

struct CandidateRecurrence {
  Fault fault{};
  std::size_t n_datalogs = 0;  ///< datalogs listing it as a suspect
  std::size_t n_rank1 = 0;     ///< datalogs ranking it first
  double total_score = 0.0;
  double best_score = 0.0;
  bool systematic = false;
};

/// One histogram bucket (net hits / failing-pattern counts).
struct VolumeBucket {
  std::string label;
  std::size_t count = 0;
};

struct VolumeSummary {
  std::size_t n_datalogs = 0;
  std::size_t n_diagnosed = 0;  ///< records with ok == true
  std::size_t n_failed = 0;
  std::size_t n_explained = 0;  ///< explains_all among diagnosed
  std::size_t n_timed_out = 0;
  /// Diagnosed datalogs whose top suspect is a systematic candidate /
  /// is not (empty-suspect diagnoses count as neither).
  std::size_t n_systematic_datalogs = 0;
  std::size_t n_random_datalogs = 0;
  std::size_t n_distinct_candidates = 0;  ///< before top_k truncation
  /// Most-recurrent candidates first (ties: higher total score, then
  /// fault identity); truncated to VolumeOptions::top_k.
  std::vector<CandidateRecurrence> recurrences;
  /// Suspect hits per net (NetId, datalog count) — bridge faults count
  /// victim and aggressor; one datalog contributes at most once per net.
  /// Sorted by count desc, then NetId. Same top_k truncation.
  std::vector<std::pair<NetId, std::size_t>> net_hits;
  /// Datalogs by failing-pattern count, power-of-two buckets ("0", "1",
  /// "2", "3-4", "5-8", ...); empty buckets omitted.
  std::vector<VolumeBucket> failing_pattern_hist;
};

/// Thread-safe collector: record() may run concurrently from the batch
/// workers; summarize() reduces the filled slots in index order, so the
/// summary is identical however the records raced in.
class VolumeAggregator {
 public:
  explicit VolumeAggregator(std::size_t n_datalogs,
                            VolumeOptions options = {});

  /// Stores `record` at its index slot (one writer per index).
  void record(DatalogVolumeRecord record);

  /// Builds a record from a finished diagnosis (primary report = first).
  static DatalogVolumeRecord make_record(
      std::size_t index, const Datalog& datalog,
      const std::vector<DiagnosisReport>& reports, bool timed_out);

  VolumeSummary summarize() const;

  const VolumeOptions& options() const { return options_; }

 private:
  VolumeOptions options_;
  std::vector<DatalogVolumeRecord> slots_;
  std::vector<char> filled_;
  mutable std::mutex mutex_;
};

}  // namespace mdd
