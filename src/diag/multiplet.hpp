// openmdd — multiple-defect diagnosis with no assumptions on failing
// pattern characteristics (the reproduced DAC 2008 method).
//
// Greedy incremental multiplet construction where every selection decision
// is scored on the *composite* faulty machine (all tentatively selected
// faults injected simultaneously). Because candidate multiplets are always
// compared to the datalog through true multiple-fault simulation, failing
// patterns never need to be explainable by any single fault: masking and
// reinforcement between defects are part of the predicted response, not a
// violation of an assumption.
//
// Per round: a cheap residual heuristic (solo-signature TFSF against the
// still-unexplained bits) shortlists candidates; each shortlisted extension
// is evaluated exactly by composite simulation; the best committed. Rounds
// stop on exact explanation, score stagnation, or the multiplicity cap. An
// optional refinement pass drops members whose removal does not hurt the
// composite score (resolution recovery).
#pragma once

#include "diag/diagnosis.hpp"

namespace mdd {

struct MultipletOptions {
  std::size_t max_multiplicity = 8;
  /// Exact composite evaluations per round.
  std::size_t shortlist = 32;
  /// Greedy restarts: the continuation runs from each of the best
  /// `restarts` round-1 extensions and the best final multiplet wins —
  /// recovering the classic greedy failure where one wrong first pick
  /// jointly mimics several defects.
  std::size_t restarts = 3;
  /// No-assumptions calibration: mispredicted bits (TPSF) are penalized
  /// mildly — an early member's over-prediction is often masked once the
  /// remaining defects join the composite — and unexplained bits (TFSP)
  /// even less, since later members exist to explain them. (The classic
  /// single-fault weights 10/5/2 would bias round-1 picks toward
  /// conservative per-output faults and fragment real stem defects.)
  ScoreWeights weights{10.0, 2.0, 1.0};
  /// Required score gain to keep adding members (guards against noise
  /// fitting).
  double min_improvement = 1e-9;
  /// Drop-if-no-worse refinement pass.
  bool refine = true;
  bool report_alternates = true;
  /// Cooperative cancellation / deadline (serving). Checked between
  /// candidate scorings, greedy rounds, and refinement passes: once the
  /// token cancels, the search winds down and reports the best multiplet
  /// found so far with `timed_out` set. Null = run to completion.
  const CancelToken* cancel = nullptr;
};

DiagnosisReport diagnose_multiplet(DiagnosisContext& context,
                                   const MultipletOptions& options = {});

}  // namespace mdd
