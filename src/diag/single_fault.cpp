#include "diag/single_fault.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace mdd {

DiagnosisReport diagnose_single_fault(DiagnosisContext& ctx,
                                      const SingleFaultOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  DiagnosisReport report;
  report.method = "single-fault";

  struct Entry {
    std::size_t index;
    MatchCounts counts;
    double score;
  };
  std::vector<Entry> entries;
  entries.reserve(ctx.n_candidates());
  bool timed_out = false;
  {
    const SignatureMatcher matcher(ctx.observed());
    CancelCheckpoint cp(options.cancel, 16);
    for (std::size_t i = 0; i < ctx.n_candidates(); ++i) {
      if (cp()) {
        timed_out = true;
        static obs::Counter& dropped =
            obs::registry().counter("diag.rank_dropped");
        dropped.inc(ctx.n_candidates() - i);
        break;
      }
      const MatchCounts mc = matcher.match(ctx.solo_signature(i));
      entries.push_back({i, mc, score_of(mc, options.weights)});
    }
  }
  report.n_candidates_scored = entries.size();

  std::sort(entries.begin(), entries.end(), [&](const Entry& a,
                                                const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return ctx.candidate(a.index) < ctx.candidate(b.index);
  });

  const std::size_t k = std::min(options.top_k, entries.size());
  for (std::size_t r = 0; r < k; ++r) {
    ScoredCandidate sc;
    sc.fault = ctx.candidate(entries[r].index);
    sc.counts = entries[r].counts;
    sc.score = entries[r].score;
    // Alternate sweeps touch every solo signature — skip on timeout.
    if (options.report_alternates && !timed_out)
      sc.alternates = ctx.indistinguishable_from(entries[r].index);
    report.suspects.push_back(std::move(sc));
  }
  if (!entries.empty()) {
    const Entry& best = entries.front();
    report.explains_all =
        best.counts.tfsp == 0 && best.counts.tpsf == 0 &&
        !ctx.observed().empty();
  }
  report.timed_out = timed_out;
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace mdd
