// openmdd — bounded composite-signature memo for the multiplet search.
//
// The greedy multiplet diagnoser re-evaluates many identical composites:
// restarts replay shared prefixes, the drop pass computes every
// leave-one-out subset the marginal-gain report needs again, and repeated
// requests for the same datalog (or datalogs with overlapping defects)
// walk the same candidate sets. `CompositeMemo` is a bounded
// multiplet→signature map keyed by the *sorted member set* — stable
// across contexts and requests, unlike candidate-pool indexes — so each
// distinct composite is propagated once.
//
// Signatures are stored pre-masking (full-window truth); callers subtract
// their context's masked bits after lookup. Eviction is second-chance
// (clock), mirroring the serving layer's SignatureMemo: hot composites
// that first appear after warm-up still get memoized, and byte accounting
// is exact against the per-entry cost function. Thread-safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "fsim/fsim.hpp"
#include "store/spill.hpp"

namespace mdd {

/// Canonical memo key for a composite: the multiplet's member faults,
/// sorted, plus the applied-window length they were propagated over. Two
/// spans listing the same members in any order map to the same entry; the
/// same member set over a different (e.g. ATE-truncated) window does not.
class CompositeKey {
 public:
  explicit CompositeKey(std::span<const Fault> multiplet,
                        std::size_t window_patterns = 0)
      : members_(multiplet.begin(), multiplet.end()),
        window_patterns_(window_patterns) {
    std::sort(members_.begin(), members_.end());
  }

  const std::vector<Fault>& members() const { return members_; }
  std::size_t window_patterns() const { return window_patterns_; }
  bool operator==(const CompositeKey&) const = default;

 private:
  std::vector<Fault> members_;
  std::size_t window_patterns_ = 0;
};

struct CompositeKeyHash {
  std::size_t operator()(const CompositeKey& key) const {
    // FNV-style fold over the per-member hashes (members are sorted, so
    // the fold order is canonical), then the window length.
    std::size_t h = 0xcbf29ce484222325ull;
    for (const Fault& f : key.members())
      h = (h ^ FaultHash{}(f)) * 0x100000001b3ull;
    h = (h ^ key.window_patterns()) * 0x100000001b3ull;
    return h;
  }
};

struct CompositeMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t approx_bytes = 0;
  /// Disk-tier traffic (zero unless a spill is attached). A spill hit is
  /// NOT a miss: the composite was served without propagation, just from
  /// disk instead of the heap.
  std::uint64_t spill_hits = 0;
  std::uint64_t spill_misses = 0;
};

class CompositeMemo {
 public:
  /// `max_bytes` bounds the memo's approximate footprint; stores beyond
  /// it evict cold (second-chance) entries to make room. A single entry
  /// larger than the whole budget is declined outright.
  explicit CompositeMemo(std::size_t max_bytes = 64ull << 20)
      : max_bytes_(max_bytes) {}

  std::shared_ptr<const ErrorSignature> lookup(const CompositeKey& key);
  void store(const CompositeKey& key,
             std::shared_ptr<const ErrorSignature> sig);

  /// Attaches the disk tier: lookups that miss memory consult the spill
  /// (promoting hits back into the memory tier), and stores write through
  /// to it, so multiplet composites survive eviction AND restarts — the
  /// same memory → disk → compute ladder the SignatureMemo has. The spill
  /// is fail-open by construction; the memo never observes its errors.
  void set_spill(std::shared_ptr<store::CompositeSpill> spill);
  std::shared_ptr<store::CompositeSpill> spill() const;

  CompositeMemoStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const ErrorSignature> sig;
    std::size_t cost = 0;
    bool referenced = false;  ///< set on hit, cleared by the clock hand
  };

  /// Evicts until `need` more bytes fit (caller holds the lock).
  void make_room(std::size_t need);
  /// Inserts into the memory tier if it fits (caller holds the lock).
  void admit_locked(const CompositeKey& key,
                    std::shared_ptr<const ErrorSignature> sig);

  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<CompositeKey, Entry, CompositeKeyHash> entries_;
  std::vector<CompositeKey> ring_;  ///< clock order (swap-with-back)
  std::size_t hand_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::shared_ptr<store::CompositeSpill> spill_;  ///< disk tier, may be null
  std::uint64_t spill_hits_ = 0;
  std::uint64_t spill_misses_ = 0;
};

}  // namespace mdd
