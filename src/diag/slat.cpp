#include "diag/slat.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace mdd {

DiagnosisReport diagnose_slat(DiagnosisContext& ctx,
                              const SlatOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  DiagnosisReport report;
  report.method = "slat";

  const ErrorSignature& obs = ctx.observed();
  const std::size_t n_fail = obs.n_failing_patterns();
  const std::size_t n_cand = ctx.n_candidates();
  report.n_candidates_scored = n_cand;

  // explanations[p] = candidates whose solo response on failing pattern p
  // equals the observed failing-output set exactly.
  bool timed_out = false;
  CancelCheckpoint cp(options.cancel, 16);
  std::vector<std::vector<std::size_t>> explanations(n_fail);
  for (std::size_t c = 0; c < n_cand; ++c) {
    if (cp()) {
      timed_out = true;
      // `obs` names the observed signature here; qualify from the root.
      static ::mdd::obs::Counter& dropped =
          ::mdd::obs::registry().counter("diag.rank_dropped");
      dropped.inc(n_cand - c);
      break;
    }
    const ErrorSignature& sig = ctx.solo_signature(c);
    for (std::size_t i = 0; i < n_fail; ++i) {
      const std::uint32_t p = obs.failing_patterns()[i];
      const auto sim_mask = sig.mask_of_pattern(p);
      if (sim_mask.empty()) continue;
      const auto obs_mask = obs.mask(i);
      if (std::equal(obs_mask.begin(), obs_mask.end(), sim_mask.begin()))
        explanations[i].push_back(c);
    }
  }

  std::vector<bool> is_slat(n_fail);
  std::size_t n_slat = 0;
  for (std::size_t i = 0; i < n_fail; ++i) {
    is_slat[i] = !explanations[i].empty();
    n_slat += is_slat[i];
  }
  report.n_slat_patterns = n_slat;
  report.n_nonslat_patterns = n_fail - n_slat;

  // Greedy set cover over SLAT patterns. Ties broken by fewer
  // mispredicted bits on passing patterns (POIROT-style post-ranking),
  // then by fault order for determinism.
  std::vector<std::size_t> tpsf(n_cand, 0);
  // On timeout only candidates whose signature is already cached matter
  // (uncached ones never made it into an explanation set) — zero
  // tie-break weights for the rest are harmless and avoid lazily
  // computing thousands of signatures past the deadline.
  if (!timed_out)
    for (std::size_t c = 0; c < n_cand; ++c)
      tpsf[c] = match(obs, ctx.solo_signature(c)).tpsf;

  std::vector<bool> covered(n_fail, false);
  std::vector<std::size_t> per_candidate_cover(n_cand, 0);
  std::vector<std::size_t> chosen;
  std::size_t remaining = n_slat;
  while (remaining > 0 && chosen.size() < options.max_multiplicity) {
    std::fill(per_candidate_cover.begin(), per_candidate_cover.end(), 0);
    for (std::size_t i = 0; i < n_fail; ++i) {
      if (!is_slat[i] || covered[i]) continue;
      for (std::size_t c : explanations[i]) ++per_candidate_cover[c];
    }
    std::size_t best = n_cand;
    auto better = [&](std::size_t c, std::size_t incumbent) {
      if (per_candidate_cover[c] != per_candidate_cover[incumbent])
        return per_candidate_cover[c] > per_candidate_cover[incumbent];
      if (tpsf[c] != tpsf[incumbent]) return tpsf[c] < tpsf[incumbent];
      return ctx.candidate(c) < ctx.candidate(incumbent);
    };
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (per_candidate_cover[c] == 0) continue;
      if (best == n_cand || better(c, best)) best = c;
    }
    if (best == n_cand) break;
    chosen.push_back(best);
    for (std::size_t i = 0; i < n_fail; ++i) {
      if (!is_slat[i] || covered[i]) continue;
      if (std::find(explanations[i].begin(), explanations[i].end(), best) !=
          explanations[i].end()) {
        covered[i] = true;
        --remaining;
      }
    }
  }

  for (std::size_t c : chosen) {
    ScoredCandidate sc;
    sc.fault = ctx.candidate(c);
    sc.counts = match(obs, ctx.solo_signature(c));
    sc.score = score_of(sc.counts, options.weights);
    if (options.report_alternates && !timed_out)
      sc.alternates = ctx.indistinguishable_from(c);
    report.suspects.push_back(std::move(sc));
  }

  // SLAT's own success notion: every failing pattern SLAT-explained and
  // covered. (It never checks passing patterns or composite consistency.)
  report.explains_all = (remaining == 0) && (report.n_nonslat_patterns == 0) &&
                        n_fail > 0 && !timed_out;
  report.timed_out = timed_out;
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace mdd
