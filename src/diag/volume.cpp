#include "diag/volume.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mdd {

namespace {

/// Power-of-two bucket label for a failing-pattern count: 0, 1, 2, 3-4,
/// 5-8, 9-16, ... Deterministic and human-scannable in a summary table.
std::string bucket_label(std::size_t n) {
  if (n <= 2) return std::to_string(n);
  std::size_t hi = 4;
  while (hi < n) hi *= 2;
  return std::to_string(hi / 2 + 1) + "-" + std::to_string(hi);
}

}  // namespace

VolumeAggregator::VolumeAggregator(std::size_t n_datalogs,
                                   VolumeOptions options)
    : options_(options), slots_(n_datalogs), filled_(n_datalogs, 0) {}

void VolumeAggregator::record(DatalogVolumeRecord record) {
  const std::size_t i = record.index;
  if (i >= slots_.size())
    throw std::out_of_range("VolumeAggregator: record index out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[i] = std::move(record);
  filled_[i] = 1;
}

DatalogVolumeRecord VolumeAggregator::make_record(
    std::size_t index, const Datalog& datalog,
    const std::vector<DiagnosisReport>& reports, bool timed_out) {
  DatalogVolumeRecord r;
  r.index = index;
  r.ok = true;
  r.timed_out = timed_out;
  r.n_failing_patterns = datalog.observed.n_failing_patterns();
  r.n_error_bits = datalog.observed.n_error_bits();
  if (!reports.empty()) {
    const DiagnosisReport& primary = reports.front();
    r.explains_all = primary.explains_all;
    r.timed_out = r.timed_out || primary.timed_out;
    r.suspects.reserve(primary.suspects.size());
    r.scores.reserve(primary.suspects.size());
    for (const ScoredCandidate& s : primary.suspects) {
      r.suspects.push_back(s.fault);
      r.scores.push_back(s.score);
    }
  }
  return r;
}

VolumeSummary VolumeAggregator::summarize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  VolumeSummary out;
  out.n_datalogs = slots_.size();

  // Ordered maps: the reduction below iterates them for tie-breaking and
  // bucket emission, and the iteration order must not depend on hashing.
  std::map<Fault, CandidateRecurrence> by_fault;
  std::map<NetId, std::size_t> net_hits;
  std::map<std::size_t, std::size_t> pattern_counts;  // n_failing -> logs

  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!filled_[i]) continue;
    const DatalogVolumeRecord& r = slots_[i];
    if (!r.ok) {
      ++out.n_failed;
      continue;
    }
    ++out.n_diagnosed;
    if (r.explains_all) ++out.n_explained;
    if (r.timed_out) ++out.n_timed_out;
    ++pattern_counts[r.n_failing_patterns];

    std::vector<NetId> nets_this_log;
    for (std::size_t s = 0; s < r.suspects.size(); ++s) {
      const Fault& f = r.suspects[s];
      const double score = s < r.scores.size() ? r.scores[s] : 0.0;
      CandidateRecurrence& rec = by_fault[f];
      if (rec.n_datalogs == 0) rec.fault = f;
      ++rec.n_datalogs;
      if (s == 0) ++rec.n_rank1;
      rec.total_score += score;
      rec.best_score =
          rec.n_datalogs == 1 ? score : std::max(rec.best_score, score);
      nets_this_log.push_back(f.net);
      if (f.is_bridge()) nets_this_log.push_back(f.bridge_net);
    }
    // One datalog contributes at most once per net, however many of its
    // suspects share the site.
    std::sort(nets_this_log.begin(), nets_this_log.end());
    nets_this_log.erase(
        std::unique(nets_this_log.begin(), nets_this_log.end()),
        nets_this_log.end());
    for (NetId n : nets_this_log) ++net_hits[n];
  }

  // Classify, then classify the datalogs by their top suspect.
  // Ceil, not truncation: "at least fraction×diagnosed" means a candidate
  // in 2 of 9 datalogs at fraction 0.3 (2 < 2.7) is NOT systematic — a
  // truncating cast would let it through at floor 2.
  const std::size_t systematic_floor = std::max<std::size_t>(
      options_.min_recurrences,
      static_cast<std::size_t>(std::ceil(options_.systematic_fraction *
                                         static_cast<double>(out.n_diagnosed))));
  for (auto& [fault, rec] : by_fault)
    rec.systematic = rec.n_datalogs >= systematic_floor;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!filled_[i] || !slots_[i].ok || slots_[i].suspects.empty()) continue;
    if (by_fault.at(slots_[i].suspects.front()).systematic)
      ++out.n_systematic_datalogs;
    else
      ++out.n_random_datalogs;
  }

  out.n_distinct_candidates = by_fault.size();
  out.recurrences.reserve(by_fault.size());
  for (const auto& [fault, rec] : by_fault) out.recurrences.push_back(rec);
  std::sort(out.recurrences.begin(), out.recurrences.end(),
            [](const CandidateRecurrence& a, const CandidateRecurrence& b) {
              if (a.n_datalogs != b.n_datalogs)
                return a.n_datalogs > b.n_datalogs;
              if (a.total_score != b.total_score)
                return a.total_score > b.total_score;
              return a.fault < b.fault;
            });
  if (options_.top_k != 0 && out.recurrences.size() > options_.top_k)
    out.recurrences.resize(options_.top_k);

  out.net_hits.assign(net_hits.begin(), net_hits.end());
  std::sort(out.net_hits.begin(), out.net_hits.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (options_.top_k != 0 && out.net_hits.size() > options_.top_k)
    out.net_hits.resize(options_.top_k);

  // Pattern-count buckets, ascending; adjacent counts sharing a
  // power-of-two bucket merge.
  for (const auto& [n, count] : pattern_counts) {
    const std::string label = bucket_label(n);
    if (!out.failing_pattern_hist.empty() &&
        out.failing_pattern_hist.back().label == label)
      out.failing_pattern_hist.back().count += count;
    else
      out.failing_pattern_hist.push_back({label, count});
  }
  return out;
}

}  // namespace mdd
