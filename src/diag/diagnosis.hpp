// openmdd — shared diagnosis types and the per-case context.
//
// `DiagnosisContext` packages everything the diagnosers need for one
// failing device: the netlist, the applied pattern window, the observed
// (possibly truncated) error signature, the extracted candidate pool, and
// a cache of per-candidate solo signatures (computed lazily — every
// diagnoser needs most of them, no diagnoser wants to recompute them).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "diag/candidates.hpp"
#include "diag/composite_memo.hpp"
#include "diag/datalog.hpp"
#include "fsim/fsim.hpp"
#include "fsim/propagate.hpp"
#include "obs/trace.hpp"

namespace mdd {

/// Per-bit match weights: reward explained failures, punish mispredictions
/// harder than unexplained failures (another defect may explain those).
struct ScoreWeights {
  double tfsf = 10.0;
  double tpsf = 5.0;
  double tfsp = 2.0;
};

inline double score_of(const MatchCounts& m, const ScoreWeights& w) {
  return w.tfsf * static_cast<double>(m.tfsf) -
         w.tpsf * static_cast<double>(m.tpsf) -
         w.tfsp * static_cast<double>(m.tfsp);
}

struct ScoredCandidate {
  Fault fault{};
  MatchCounts counts{};
  double score = 0.0;
  /// Candidates whose solo signature over the applied window is identical
  /// (logically indistinguishable with this pattern set).
  std::vector<Fault> alternates;
};

struct DiagnosisReport {
  std::string method;
  /// Ranked suspects. For the multiplet diagnosers each entry is one
  /// member of the reported defect multiplet; for single-fault diagnosis
  /// it is the top-k ranking.
  std::vector<ScoredCandidate> suspects;
  /// The reported suspect set reproduces the datalog exactly.
  bool explains_all = false;
  /// The diagnoser hit its cancellation token / deadline and wound down
  /// early; `suspects` holds the best partial answer found so far.
  bool timed_out = false;
  std::size_t n_candidates_scored = 0;
  /// SLAT bookkeeping (filled by the SLAT baseline).
  std::size_t n_slat_patterns = 0;
  std::size_t n_nonslat_patterns = 0;
  double cpu_seconds = 0.0;

  std::vector<Fault> suspect_faults() const {
    std::vector<Fault> out;
    out.reserve(suspects.size());
    for (const ScoredCandidate& s : suspects) out.push_back(s.fault);
    return out;
  }
};

/// Cross-case store for candidate solo signatures. A solo signature
/// depends only on (netlist, applied window) — not on the observed
/// failures or the tester's X-mask — so datalogs for one circuit can
/// share one store and each (candidate, window shape) is simulated once
/// per circuit instead of once per datalog. Entries are keyed by
/// (fault, window length) and hold the PRE-masking truth: contexts with
/// masked bits subtract them after lookup, so ATE-truncated and X-masked
/// datalogs amortize too. Implementations must be thread-safe; lookups
/// must return exactly what a fresh compute over that window would
/// produce (the serving layer's determinism contract rides on it).
class SoloSignatureStore {
 public:
  virtual ~SoloSignatureStore() = default;
  /// Cached pre-masking signature for `f` over the first
  /// `window_patterns` patterns, or null on miss.
  virtual std::shared_ptr<const ErrorSignature> lookup(
      const Fault& f, std::size_t window_patterns) = 0;
  /// Offers a freshly computed pre-masking signature (shared, so neither
  /// side copies); the store may decline (full).
  virtual void store(const Fault& f, std::size_t window_patterns,
                     std::shared_ptr<const ErrorSignature> sig) = 0;
};

class DiagnosisContext {
 public:
  /// Static-test context (single-frame patterns). `precomputed_good`, if
  /// given, must be simulate(netlist, patterns) over the FULL pattern set
  /// (the serving session cache computes it once per circuit); the window
  /// restriction is applied here. Null recomputes it. `baseline`, if
  /// given, must be SingleFaultPropagator::make_baseline(netlist,
  /// patterns) — it is used (shared, not copied) whenever the datalog's
  /// window spans the full pattern set, sparing each context the
  /// full-circuit good simulation; otherwise it is ignored. `trace`, if
  /// non-null, receives nested "extract" / "baseline" spans covering
  /// candidate extraction and simulation-engine setup (the serving layer
  /// threads its per-request trace through here).
  DiagnosisContext(
      const Netlist& netlist, const PatternSet& patterns,
      const Datalog& datalog, const CandidateOptions& candidate_options = {},
      const PatternSet* precomputed_good = nullptr,
      std::shared_ptr<const PropagatorBaseline> baseline = nullptr,
      obs::Trace* trace = nullptr);

  /// Pair-test context (launch/capture pairs, transition-fault capable).
  /// Candidate extraction adds slow-to-rise/fall candidates and every
  /// signature is computed with two-frame simulation — the diagnosers
  /// themselves are unchanged.
  DiagnosisContext(const Netlist& netlist, const PatternSet& launch,
                   const PatternSet& capture, const Datalog& datalog,
                   const CandidateOptions& candidate_options = {});

  // The simulation engines hold pointers into the window members.
  DiagnosisContext(const DiagnosisContext&) = delete;
  DiagnosisContext& operator=(const DiagnosisContext&) = delete;

  const Netlist& netlist() const { return *netlist_; }
  bool pair_mode() const { return pair_fsim_.has_value(); }
  /// Patterns restricted to the datalog's applied window (capture frame in
  /// pair mode).
  const PatternSet& patterns() const { return window_; }
  /// Launch-frame window; pair mode only.
  const PatternSet& launch_patterns() const { return launch_window_; }
  /// Observed error bits within the applied window.
  const ErrorSignature& observed() const { return observed_; }
  const Datalog& datalog() const { return *datalog_; }

  const CandidatePool& pool() const { return pool_; }
  std::size_t n_candidates() const { return pool_.faults.size(); }
  const Fault& candidate(std::size_t i) const { return pool_.faults[i]; }

  /// Solo signature of candidate `i` over the applied window (cached).
  /// Thread-safe: concurrent callers for the same `i` all receive the same
  /// cached object, computed exactly once (per-slot std::once_flag).
  const ErrorSignature& solo_signature(std::size_t i);

  /// Fills the solo-signature cache candidate-parallel under `policy`,
  /// each worker propagating with its own event engine. Slots already
  /// computed are kept; the cached values are byte-identical to the lazy
  /// serial fill for any thread count. A cancelled `cancel` token stops
  /// the warm at the next candidate boundary — remaining slots simply
  /// stay cold and fill lazily on demand.
  void warm_solo_signatures(const ExecPolicy& policy,
                            const CancelToken* cancel = nullptr);

  /// Fills every solo slot the attached store can answer WITHOUT
  /// simulating anything — the store-backed cold-start path: candidates
  /// the persistent dictionary covers become lookups, only the remainder
  /// is worth a parallel PPSFP warm. Returns the number of slots now
  /// filled (store answers plus slots already computed); no-op returning
  /// 0 when no store is attached. Thread-safe, like the other fills.
  std::size_t warm_solo_from_store();

  /// Number of solo signatures computed so far (cache instrumentation;
  /// never exceeds n_candidates()).
  std::size_t solo_compute_count() const {
    return solo_computes_.load(std::memory_order_relaxed);
  }

  /// Attaches a cross-case solo-signature store. Honored for every
  /// static-test context — entries are keyed by (fault, window length)
  /// and hold pre-masking signatures, so truncated and X-masked datalogs
  /// share them too (this context subtracts its own masked bits after
  /// lookup). Pair-mode (transition) contexts never attach: their
  /// signatures depend on the launch frame as well. Call before the
  /// first solo_signature()/warm_solo_signatures() query.
  void attach_solo_store(SoloSignatureStore* store) {
    if (memo_attachable_) solo_store_ = store;
  }
  bool solo_store_attached() const { return solo_store_ != nullptr; }

  /// Signature of an arbitrary multiplet over the applied window
  /// (composite evaluation). Served from the composite memo when this
  /// exact member set was evaluated before (restarts, the drop/swap
  /// refinement, the marginal-gain report, and repeat requests all replay
  /// composites); computed by the event-driven composite propagator
  /// otherwise. Bit-identical to the reference simulators either way.
  ErrorSignature multiplet_signature(std::span<const Fault> multiplet);

  /// Attaches a cross-request composite-signature memo (the serving
  /// session cache owns one per circuit). Like attach_solo_store,
  /// honored for every static context — entries are keyed by
  /// (member set, window length) and stored pre-masking, so they mean
  /// the same thing in every attaching context. Pair-mode contexts keep
  /// their private per-request memo.
  void attach_composite_memo(CompositeMemo* memo) {
    if (memo_attachable_ && memo != nullptr) composites_ = memo;
  }

  /// Routes multiplet_signature through the reference full-circuit
  /// simulator instead of the event engine + memo (A/B benchmarking and
  /// differential tests).
  void use_reference_composites(bool on) { reference_composites_ = on; }

  /// Candidates (other than `i`) with a solo signature identical to
  /// candidate `i`'s — its indistinguishability class.
  std::vector<Fault> indistinguishable_from(std::size_t i);

 private:
  const Netlist* netlist_;
  const Datalog* datalog_;
  PatternSet window_;         // capture window in pair mode
  PatternSet launch_window_;  // pair mode only
  ErrorSignature observed_;
  ErrorSignature masked_;  ///< X-masked bits stripped from every signature
  CandidatePool pool_;
  std::optional<FaultSimulator> fsim_;
  std::optional<PairFaultSimulator> pair_fsim_;
  /// Event-driven PPSFP engine for the thousands of per-candidate solo
  /// signatures (composite multiplet signatures still use the full
  /// machines above).
  std::optional<SingleFaultPropagator> propagator_;

  struct SoloSlot {
    std::once_flag once;
    /// Shared with the attached store when one is in play — a cache hit
    /// is a pointer copy, not a signature copy.
    std::shared_ptr<const ErrorSignature> sig;
  };
  /// Computes slot `i` with `prop` (masked-bit subtraction included);
  /// no-op if already filled.
  void fill_solo(SoloSlot& slot, SingleFaultPropagator& prop, std::size_t i);
  /// Subtracts this context's masked bits from a pre-masking signature
  /// (pointer pass-through when nothing is masked).
  std::shared_ptr<const ErrorSignature> apply_mask(
      std::shared_ptr<const ErrorSignature> pre) const;

  /// deque: slots are neither movable (once_flag) nor relocated.
  std::deque<SoloSlot> solo_cache_;
  std::mutex propagator_mutex_;  ///< guards propagator_'s scratch state
  std::atomic<std::size_t> solo_computes_{0};
  SoloSignatureStore* solo_store_ = nullptr;
  bool memo_attachable_ = false;  ///< static mode (window-keyed memos OK)
  /// Per-context composite memo (intra-request reuse across restarts and
  /// refinement); replaced by the session-wide memo when one is attached.
  CompositeMemo local_composites_{32ull << 20};
  CompositeMemo* composites_ = &local_composites_;
  bool reference_composites_ = false;
  /// Shared good-machine state for the propagators (full-window static
  /// contexts only; null means each propagator computes its own).
  std::shared_ptr<const PropagatorBaseline> baseline_;
};

}  // namespace mdd
