// openmdd — SLAT-style multiple-defect diagnosis (baseline).
//
// POIROT-lineage method built on the Single-Location-At-a-Time assumption:
// a failing pattern is usable only if some single candidate fault's
// simulated response matches the pattern's observed failing outputs
// *exactly*. Such patterns are "SLAT patterns"; each yields a per-pattern
// explanation set, and a greedy minimum set-cover over the SLAT patterns
// produces the reported multiplet. Failing patterns where defects interact
// (masking/reinforcement) match no single fault and are *discarded* — the
// assumption the reproduced paper's method removes.
#pragma once

#include "diag/diagnosis.hpp"

namespace mdd {

struct SlatOptions {
  std::size_t max_multiplicity = 8;
  ScoreWeights weights{};  ///< used only for reporting per-suspect counts
  bool report_alternates = true;
  /// Cooperative cancellation / deadline: stops the explanation sweep at
  /// the next candidate boundary and covers with what was collected so
  /// far (`timed_out` set on the report). Null = run to completion.
  const CancelToken* cancel = nullptr;
};

DiagnosisReport diagnose_slat(DiagnosisContext& context,
                              const SlatOptions& options = {});

}  // namespace mdd
