#include "diag/composite_memo.hpp"

#include "obs/metrics.hpp"

namespace mdd {

namespace {

/// Exact against the accounting tests: the key lives twice (index + clock
/// ring), the signature payload is its sparse entries.
std::size_t approx_entry_bytes(const CompositeKey& key,
                               const ErrorSignature& sig) {
  return 2 * key.members().size() * sizeof(Fault) + sizeof(ErrorSignature) +
         sig.n_failing_patterns() *
             (sizeof(std::uint32_t) + sig.n_po_words() * sizeof(Word));
}

struct CompositeMemoMetrics {
  obs::Counter& hits = obs::registry().counter("memo.composite.hits");
  obs::Counter& misses = obs::registry().counter("memo.composite.misses");
  obs::Counter& evictions =
      obs::registry().counter("memo.composite.evictions");
  obs::Counter& inserts = obs::registry().counter("memo.composite.inserts");
  obs::Counter& declined = obs::registry().counter(
      "memo.composite.declined");  ///< single entry over the whole budget
};

CompositeMemoMetrics& composite_memo_metrics() {
  static CompositeMemoMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const ErrorSignature> CompositeMemo::lookup(
    const CompositeKey& key) {
  std::shared_ptr<store::CompositeSpill> spill;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      composite_memo_metrics().hits.inc();
      it->second.referenced = true;
      return it->second.sig;
    }
    spill = spill_;
    if (spill == nullptr) {
      ++misses_;
      composite_memo_metrics().misses.inc();
      return nullptr;
    }
  }
  // Disk tier, consulted outside the memo lock (the spill does file I/O
  // under its own mutex). A spill hit is served without re-propagation,
  // so it does not count as a memo miss.
  std::optional<ErrorSignature> from_disk =
      spill->get(key.members(), key.window_patterns());
  std::lock_guard<std::mutex> lock(mutex_);
  if (!from_disk) {
    ++spill_misses_;
    ++misses_;
    composite_memo_metrics().misses.inc();
    return nullptr;
  }
  auto sig = std::make_shared<const ErrorSignature>(std::move(*from_disk));
  ++spill_hits_;
  ++hits_;
  composite_memo_metrics().hits.inc();
  // Promote into the memory tier (racing promoters dedup inside admit).
  admit_locked(key, sig);
  return sig;
}

void CompositeMemo::make_room(std::size_t need) {
  // Second chance: a referenced entry survives one hand pass (its bit is
  // cleared); an unreferenced one is evicted. Every full lap either
  // evicts something or clears at least one bit, so the sweep terminates.
  while (bytes_ + need > max_bytes_ && !ring_.empty()) {
    if (hand_ >= ring_.size()) hand_ = 0;
    auto it = entries_.find(ring_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;
      ++hand_;
      continue;
    }
    if (it != entries_.end()) {
      bytes_ -= it->second.cost;
      entries_.erase(it);
      ++evictions_;
      composite_memo_metrics().evictions.inc();
    }
    ring_[hand_] = std::move(ring_.back());
    ring_.pop_back();
  }
}

void CompositeMemo::admit_locked(const CompositeKey& key,
                                 std::shared_ptr<const ErrorSignature> sig) {
  const std::size_t cost = approx_entry_bytes(key, *sig);
  if (cost > max_bytes_) {
    composite_memo_metrics().declined.inc();
    return;
  }
  if (entries_.count(key) != 0) return;  // racing computes, same multiplet
  make_room(cost);
  entries_.emplace(key, Entry{std::move(sig), cost, false});
  ring_.push_back(key);
  bytes_ += cost;
  composite_memo_metrics().inserts.inc();
}

void CompositeMemo::store(const CompositeKey& key,
                          std::shared_ptr<const ErrorSignature> sig) {
  std::shared_ptr<store::CompositeSpill> spill;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admit_locked(key, sig);
    spill = spill_;
  }
  // Write-through outside the memo lock: the composite reaches disk at
  // store time, not eviction time, so it survives a restart even if it
  // stays hot in memory until shutdown. The spill dedups and never throws.
  if (spill != nullptr)
    spill->put(key.members(), key.window_patterns(), *sig);
}

void CompositeMemo::set_spill(std::shared_ptr<store::CompositeSpill> spill) {
  std::lock_guard<std::mutex> lock(mutex_);
  spill_ = std::move(spill);
}

std::shared_ptr<store::CompositeSpill> CompositeMemo::spill() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spill_;
}

CompositeMemoStats CompositeMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CompositeMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  s.spill_hits = spill_hits_;
  s.spill_misses = spill_misses_;
  return s;
}

}  // namespace mdd
