#include "diag/composite_memo.hpp"

#include "obs/metrics.hpp"

namespace mdd {

namespace {

/// Exact against the accounting tests: the key lives twice (index + clock
/// ring), the signature payload is its sparse entries.
std::size_t approx_entry_bytes(const CompositeKey& key,
                               const ErrorSignature& sig) {
  return 2 * key.members().size() * sizeof(Fault) + sizeof(ErrorSignature) +
         sig.n_failing_patterns() *
             (sizeof(std::uint32_t) + sig.n_po_words() * sizeof(Word));
}

struct CompositeMemoMetrics {
  obs::Counter& hits = obs::registry().counter("memo.composite.hits");
  obs::Counter& misses = obs::registry().counter("memo.composite.misses");
  obs::Counter& evictions =
      obs::registry().counter("memo.composite.evictions");
  obs::Counter& inserts = obs::registry().counter("memo.composite.inserts");
  obs::Counter& declined = obs::registry().counter(
      "memo.composite.declined");  ///< single entry over the whole budget
};

CompositeMemoMetrics& composite_memo_metrics() {
  static CompositeMemoMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const ErrorSignature> CompositeMemo::lookup(
    const CompositeKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    composite_memo_metrics().misses.inc();
    return nullptr;
  }
  ++hits_;
  composite_memo_metrics().hits.inc();
  it->second.referenced = true;
  return it->second.sig;
}

void CompositeMemo::make_room(std::size_t need) {
  // Second chance: a referenced entry survives one hand pass (its bit is
  // cleared); an unreferenced one is evicted. Every full lap either
  // evicts something or clears at least one bit, so the sweep terminates.
  while (bytes_ + need > max_bytes_ && !ring_.empty()) {
    if (hand_ >= ring_.size()) hand_ = 0;
    auto it = entries_.find(ring_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;
      ++hand_;
      continue;
    }
    if (it != entries_.end()) {
      bytes_ -= it->second.cost;
      entries_.erase(it);
      ++evictions_;
      composite_memo_metrics().evictions.inc();
    }
    ring_[hand_] = std::move(ring_.back());
    ring_.pop_back();
  }
}

void CompositeMemo::store(const CompositeKey& key,
                          std::shared_ptr<const ErrorSignature> sig) {
  const std::size_t cost = approx_entry_bytes(key, *sig);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cost > max_bytes_) {
    composite_memo_metrics().declined.inc();
    return;
  }
  if (entries_.count(key) != 0) return;  // racing computes, same multiplet
  make_room(cost);
  entries_.emplace(key, Entry{std::move(sig), cost, false});
  ring_.push_back(key);
  bytes_ += cost;
  composite_memo_metrics().inserts.inc();
}

CompositeMemoStats CompositeMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CompositeMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.approx_bytes = bytes_;
  return s;
}

}  // namespace mdd
