// openmdd — classic single-fault effect-cause diagnosis (baseline).
//
// Scores every candidate's solo signature against the datalog and reports
// the top-k ranking. Exact and adequate for single defects; with multiple
// interacting defects no single signature matches well and the ranking
// degrades — the failure mode the multiplet diagnoser exists to fix.
#pragma once

#include "diag/diagnosis.hpp"

namespace mdd {

struct SingleFaultOptions {
  std::size_t top_k = 10;
  ScoreWeights weights{};
  /// Attach indistinguishability classes to reported suspects (costs one
  /// signature comparison sweep per reported suspect).
  bool report_alternates = true;
  /// Cooperative cancellation / deadline: stops scoring at the next
  /// candidate boundary and ranks the candidates scored so far
  /// (`timed_out` set on the report). Null = run to completion.
  const CancelToken* cancel = nullptr;
};

DiagnosisReport diagnose_single_fault(
    DiagnosisContext& context, const SingleFaultOptions& options = {});

}  // namespace mdd
