#include "diag/diagnosis.hpp"

namespace mdd {

namespace {

PatternSet make_window(const PatternSet& patterns, std::size_t n_applied) {
  if (n_applied >= patterns.n_patterns()) return patterns;
  PatternSet window(0, patterns.n_signals());
  for (std::size_t p = 0; p < n_applied; ++p)
    window.append(patterns.pattern(p));
  return window;
}

}  // namespace

DiagnosisContext::DiagnosisContext(const Netlist& netlist,
                                   const PatternSet& patterns,
                                   const Datalog& datalog,
                                   const CandidateOptions& candidate_options)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(patterns, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked, datalog.n_patterns_applied)),
      pool_(extract_candidates(netlist, window_, datalog, candidate_options)),
      fsim_(std::in_place, netlist, window_),
      propagator_(std::in_place, netlist, window_),
      solo_cache_(pool_.faults.size()) {}

DiagnosisContext::DiagnosisContext(const Netlist& netlist,
                                   const PatternSet& launch,
                                   const PatternSet& capture,
                                   const Datalog& datalog,
                                   const CandidateOptions& candidate_options)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(capture, datalog.n_patterns_applied)),
      launch_window_(make_window(launch, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked, datalog.n_patterns_applied)),
      pool_(extract_tdf_candidates(netlist, launch_window_, window_, datalog,
                                   candidate_options)),
      pair_fsim_(std::in_place, netlist, launch_window_, window_),
      propagator_(std::in_place, netlist, launch_window_, window_),
      solo_cache_(pool_.faults.size()) {}

void DiagnosisContext::fill_solo(SoloSlot& slot, SingleFaultPropagator& prop,
                                 std::size_t i) {
  std::call_once(slot.once, [&] {
    ErrorSignature sig = prop.signature(pool_.faults[i]);
    if (!masked_.empty()) sig = signature_difference(sig, masked_);
    slot.sig = std::move(sig);
    solo_computes_.fetch_add(1, std::memory_order_relaxed);
  });
}

const ErrorSignature& DiagnosisContext::solo_signature(std::size_t i) {
  SoloSlot& slot = solo_cache_[i];
  // The shared propagator's scratch state needs exclusive access; the
  // once_flag still guarantees a single compute per slot when readers
  // race.
  std::call_once(slot.once, [&] {
    std::lock_guard<std::mutex> lock(propagator_mutex_);
    ErrorSignature sig = propagator_->signature(pool_.faults[i]);
    if (!masked_.empty()) sig = signature_difference(sig, masked_);
    slot.sig = std::move(sig);
    solo_computes_.fetch_add(1, std::memory_order_relaxed);
  });
  return slot.sig;
}

void DiagnosisContext::warm_solo_signatures(const ExecPolicy& policy) {
  const std::size_t n = pool_.faults.size();
  if (policy.is_serial()) {
    for (std::size_t i = 0; i < n; ++i) solo_signature(i);
    return;
  }
  parallel_for_ranges(policy, n,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        // One private event engine per worker: identical
                        // per-query results, no shared scratch.
                        SingleFaultPropagator prop =
                            pair_mode()
                                ? SingleFaultPropagator(*netlist_,
                                                        launch_window_,
                                                        window_)
                                : SingleFaultPropagator(*netlist_, window_);
                        for (std::size_t i = begin; i < end; ++i)
                          fill_solo(solo_cache_[i], prop, i);
                      });
}

ErrorSignature DiagnosisContext::multiplet_signature(
    std::span<const Fault> multiplet) {
  ErrorSignature sig = pair_mode() ? pair_fsim_->signature(multiplet)
                                   : fsim_->signature(multiplet);
  if (!masked_.empty()) sig = signature_difference(sig, masked_);
  return sig;
}

std::vector<Fault> DiagnosisContext::indistinguishable_from(std::size_t i) {
  std::vector<Fault> out;
  const ErrorSignature& ref = solo_signature(i);
  for (std::size_t j = 0; j < pool_.faults.size(); ++j) {
    if (j == i) continue;
    if (solo_signature(j) == ref) out.push_back(pool_.faults[j]);
  }
  return out;
}

}  // namespace mdd
