#include "diag/diagnosis.hpp"

namespace mdd {

namespace {

PatternSet make_window(const PatternSet& patterns, std::size_t n_applied) {
  if (n_applied >= patterns.n_patterns()) return patterns;
  PatternSet window(0, patterns.n_signals());
  for (std::size_t p = 0; p < n_applied; ++p)
    window.append(patterns.pattern(p));
  return window;
}

}  // namespace

DiagnosisContext::DiagnosisContext(const Netlist& netlist,
                                   const PatternSet& patterns,
                                   const Datalog& datalog,
                                   const CandidateOptions& candidate_options)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(patterns, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked, datalog.n_patterns_applied)),
      pool_(extract_candidates(netlist, window_, datalog, candidate_options)),
      fsim_(std::in_place, netlist, window_),
      propagator_(std::in_place, netlist, window_),
      solo_cache_(pool_.faults.size()) {}

DiagnosisContext::DiagnosisContext(const Netlist& netlist,
                                   const PatternSet& launch,
                                   const PatternSet& capture,
                                   const Datalog& datalog,
                                   const CandidateOptions& candidate_options)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(capture, datalog.n_patterns_applied)),
      launch_window_(make_window(launch, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked, datalog.n_patterns_applied)),
      pool_(extract_tdf_candidates(netlist, launch_window_, window_, datalog,
                                   candidate_options)),
      pair_fsim_(std::in_place, netlist, launch_window_, window_),
      propagator_(std::in_place, netlist, launch_window_, window_),
      solo_cache_(pool_.faults.size()) {}

const ErrorSignature& DiagnosisContext::solo_signature(std::size_t i) {
  if (!solo_cache_[i]) {
    ErrorSignature sig = propagator_->signature(pool_.faults[i]);
    if (!masked_.empty()) sig = signature_difference(sig, masked_);
    solo_cache_[i] = std::move(sig);
  }
  return *solo_cache_[i];
}

ErrorSignature DiagnosisContext::multiplet_signature(
    std::span<const Fault> multiplet) {
  ErrorSignature sig = pair_mode() ? pair_fsim_->signature(multiplet)
                                   : fsim_->signature(multiplet);
  if (!masked_.empty()) sig = signature_difference(sig, masked_);
  return sig;
}

std::vector<Fault> DiagnosisContext::indistinguishable_from(std::size_t i) {
  std::vector<Fault> out;
  const ErrorSignature& ref = solo_signature(i);
  for (std::size_t j = 0; j < pool_.faults.size(); ++j) {
    if (j == i) continue;
    if (solo_signature(j) == ref) out.push_back(pool_.faults[j]);
  }
  return out;
}

}  // namespace mdd
