#include "diag/diagnosis.hpp"

#include <chrono>
#include <optional>

#include "obs/metrics.hpp"

namespace mdd {

namespace {

PatternSet make_window(const PatternSet& patterns, std::size_t n_applied) {
  if (n_applied >= patterns.n_patterns()) return patterns;
  PatternSet window(0, patterns.n_signals());
  for (std::size_t p = 0; p < n_applied; ++p)
    window.append(patterns.pattern(p));
  return window;
}

struct DiagMetrics {
  obs::Counter& contexts = obs::registry().counter("diag.contexts");
  obs::Counter& solo_lookups = obs::registry().counter("diag.solo_lookups");
  obs::Counter& solo_computes =
      obs::registry().counter("diag.solo_computes");
  /// Candidates a cancelled warm left cold (they fill lazily later).
  obs::Counter& warm_dropped = obs::registry().counter("diag.warm_dropped");
  /// Composite (multiplet) signatures actually evaluated...
  obs::Counter& composite_evals =
      obs::registry().counter("diag.composite_evals");
  /// ...and the ones the composite memo answered instead.
  obs::Counter& composite_memo_hits =
      obs::registry().counter("diag.composite_memo_hits");
  /// Wall time of one composite propagation (the multiplet search's
  /// dominant stage).
  obs::Histogram& composite_ms = obs::registry().latency("diag.composite_ms");
};

DiagMetrics& diag_metrics() {
  static DiagMetrics m;
  return m;
}

}  // namespace

DiagnosisContext::DiagnosisContext(
    const Netlist& netlist, const PatternSet& patterns,
    const Datalog& datalog, const CandidateOptions& candidate_options,
    const PatternSet* precomputed_good,
    std::shared_ptr<const PropagatorBaseline> baseline, obs::Trace* trace)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(patterns, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked,
                                 datalog.n_patterns_applied)) {
  diag_metrics().contexts.inc();
  {
    std::optional<obs::Trace::Span> span;
    if (trace != nullptr) span.emplace(trace->span("extract"));
    pool_ = extract_candidates(netlist, window_, datalog, candidate_options);
  }
  for (std::size_t i = 0; i < pool_.faults.size(); ++i)
    solo_cache_.emplace_back();
  {
    std::optional<obs::Trace::Span> span;
    if (trace != nullptr) span.emplace(trace->span("baseline"));
    // The shared baseline was built for the full pattern set; it is only
    // valid when the window is the full set (no truncation).
    if (baseline != nullptr &&
        baseline->values.size() == window_.n_blocks() &&
        baseline->good.n_patterns() == window_.n_patterns())
      baseline_ = std::move(baseline);
    if (baseline_ != nullptr)
      propagator_.emplace(netlist, window_, baseline_);
    else
      propagator_.emplace(netlist, window_);
    if (precomputed_good != nullptr &&
        precomputed_good->n_patterns() >= window_.n_patterns())
      fsim_.emplace(netlist, window_,
                    make_window(*precomputed_good, window_.n_patterns()));
    else
      fsim_.emplace(netlist, window_);
  }
  // Static contexts always admit the cross-case memos: entries are keyed
  // by (fault, window length) and hold pre-masking truth, so truncation
  // and X-masking no longer disqualify a datalog from amortization.
  memo_attachable_ = true;
}

DiagnosisContext::DiagnosisContext(const Netlist& netlist,
                                   const PatternSet& launch,
                                   const PatternSet& capture,
                                   const Datalog& datalog,
                                   const CandidateOptions& candidate_options)
    : netlist_(&netlist),
      datalog_(&datalog),
      window_(make_window(capture, datalog.n_patterns_applied)),
      launch_window_(make_window(launch, datalog.n_patterns_applied)),
      observed_(restrict_signature(datalog.observed,
                                   datalog.n_patterns_applied)),
      masked_(restrict_signature(datalog.masked, datalog.n_patterns_applied)),
      pool_(extract_tdf_candidates(netlist, launch_window_, window_, datalog,
                                   candidate_options)),
      pair_fsim_(std::in_place, netlist, launch_window_, window_),
      propagator_(std::in_place, netlist, launch_window_, window_),
      solo_cache_(pool_.faults.size()) {}

/// The memo speaks pre-masking truth; the slot holds what the diagnosers
/// consume (this context's masked bits already subtracted).
std::shared_ptr<const ErrorSignature> DiagnosisContext::apply_mask(
    std::shared_ptr<const ErrorSignature> pre) const {
  if (masked_.empty()) return pre;
  return std::make_shared<const ErrorSignature>(
      signature_difference(*pre, masked_));
}

void DiagnosisContext::fill_solo(SoloSlot& slot, SingleFaultPropagator& prop,
                                 std::size_t i) {
  std::call_once(slot.once, [&] {
    const std::size_t window = window_.n_patterns();
    if (solo_store_ != nullptr) {
      if (auto hit = solo_store_->lookup(pool_.faults[i], window)) {
        slot.sig = apply_mask(std::move(hit));
        return;
      }
    }
    auto pre = std::make_shared<const ErrorSignature>(
        prop.signature(pool_.faults[i]));
    solo_computes_.fetch_add(1, std::memory_order_relaxed);
    diag_metrics().solo_computes.inc();
    if (solo_store_ != nullptr)
      solo_store_->store(pool_.faults[i], window, pre);
    slot.sig = apply_mask(std::move(pre));
  });
}

const ErrorSignature& DiagnosisContext::solo_signature(std::size_t i) {
  // Lookups minus computes (both exported) is the solo-cache hit count.
  diag_metrics().solo_lookups.inc();
  SoloSlot& slot = solo_cache_[i];
  // The shared propagator's scratch state needs exclusive access; the
  // once_flag still guarantees a single compute per slot when readers
  // race.
  std::call_once(slot.once, [&] {
    const std::size_t window = window_.n_patterns();
    if (solo_store_ != nullptr) {
      if (auto hit = solo_store_->lookup(pool_.faults[i], window)) {
        slot.sig = apply_mask(std::move(hit));
        return;
      }
    }
    std::shared_ptr<const ErrorSignature> pre;
    {
      std::lock_guard<std::mutex> lock(propagator_mutex_);
      pre = std::make_shared<const ErrorSignature>(
          propagator_->signature(pool_.faults[i]));
    }
    solo_computes_.fetch_add(1, std::memory_order_relaxed);
    diag_metrics().solo_computes.inc();
    if (solo_store_ != nullptr)
      solo_store_->store(pool_.faults[i], window, pre);
    slot.sig = apply_mask(std::move(pre));
  });
  return *slot.sig;
}

std::size_t DiagnosisContext::warm_solo_from_store() {
  if (solo_store_ == nullptr) return 0;
  // A store miss must leave the slot cold for the regular warm/lazy fill,
  // so the lookup runs OUTSIDE the call_once and only a hit executes the
  // callable. Nothing may throw through a once_flag here: TSan's
  // pthread_once interceptor never resets an exceptionally-unwound flag
  // (glibc's unwind handler does), so the next call_once on that slot
  // blocks forever under the sanitizer. A losing racer just drops its
  // decoded copy — the winner's signature is byte-identical.
  std::size_t warmed = 0;
  const std::size_t window = window_.n_patterns();
  for (std::size_t i = 0; i < pool_.faults.size(); ++i) {
    SoloSlot& slot = solo_cache_[i];
    auto hit = solo_store_->lookup(pool_.faults[i], window);
    if (hit == nullptr) continue;
    std::call_once(slot.once,
                   [&] { slot.sig = apply_mask(std::move(hit)); });
    if (slot.sig != nullptr) ++warmed;  // includes already-filled slots
  }
  if (warmed > 0) {
    static obs::Counter& c =
        obs::registry().counter("diag.solo_store_warmed");
    c.inc(warmed);
  }
  return warmed;
}

void DiagnosisContext::warm_solo_signatures(const ExecPolicy& policy,
                                            const CancelToken* cancel) {
  const std::size_t n = pool_.faults.size();
  if (policy.is_serial()) {
    CancelCheckpoint cp(cancel, 8);
    for (std::size_t i = 0; i < n; ++i) {
      if (cp()) {
        diag_metrics().warm_dropped.inc(n - i);
        return;
      }
      solo_signature(i);
    }
    return;
  }
  parallel_for_ranges(policy, n,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        // One private event engine per worker: identical
                        // per-query results, no shared scratch. The good
                        // machine is read-only, so workers share it.
                        SingleFaultPropagator prop =
                            pair_mode()
                                ? SingleFaultPropagator(*netlist_,
                                                        launch_window_,
                                                        window_)
                            : baseline_ != nullptr
                                ? SingleFaultPropagator(*netlist_, window_,
                                                        baseline_)
                                : SingleFaultPropagator(*netlist_, window_);
                        CancelCheckpoint cp(cancel, 8);
                        for (std::size_t i = begin; i < end; ++i) {
                          if (cp()) {
                            diag_metrics().warm_dropped.inc(end - i);
                            return;
                          }
                          fill_solo(solo_cache_[i], prop, i);
                        }
                      });
}

ErrorSignature DiagnosisContext::multiplet_signature(
    std::span<const Fault> multiplet) {
  if (reference_composites_) {
    diag_metrics().composite_evals.inc();
    ErrorSignature sig = pair_mode() ? pair_fsim_->signature(multiplet)
                                     : fsim_->signature(multiplet);
    if (!masked_.empty()) sig = signature_difference(sig, masked_);
    return sig;
  }
  // Entries are stored pre-masking: the full-window truth is what is
  // shareable across contexts; this context's masked bits come off after.
  const CompositeKey key(multiplet, window_.n_patterns());
  std::shared_ptr<const ErrorSignature> sig = composites_->lookup(key);
  if (sig != nullptr) {
    diag_metrics().composite_memo_hits.inc();
  } else {
    diag_metrics().composite_evals.inc();
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(propagator_mutex_);
      sig = std::make_shared<const ErrorSignature>(
          propagator_->signature(multiplet));
    }
    diag_metrics().composite_ms.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    composites_->store(key, sig);
  }
  if (masked_.empty()) return *sig;
  return signature_difference(*sig, masked_);
}

std::vector<Fault> DiagnosisContext::indistinguishable_from(std::size_t i) {
  std::vector<Fault> out;
  const ErrorSignature& ref = solo_signature(i);
  for (std::size_t j = 0; j < pool_.faults.size(); ++j) {
    if (j == i) continue;
    if (solo_signature(j) == ref) out.push_back(pool_.faults[j]);
  }
  return out;
}

}  // namespace mdd
