#include "diag/metrics.hpp"

namespace mdd {

bool same_site(const Fault& injected, const Fault& reported,
               const CollapsedFaults& collapsed) {
  if (injected == reported) return true;
  if (injected.is_stuck_at() && reported.is_stuck_at()) {
    // Structural equivalence: indistinguishable by any test.
    try {
      return collapsed.class_of(injected) == collapsed.class_of(reported);
    } catch (const std::out_of_range&) {
      return false;
    }
  }
  if (injected.is_bridge() && reported.is_bridge()) {
    // Same physical pair regardless of model flavour.
    const auto pair_of = [](const Fault& f) {
      return std::pair{std::min(f.net, f.bridge_net),
                       std::max(f.net, f.bridge_net)};
    };
    if (pair_of(injected) == pair_of(reported)) return true;
    // Dominant bridges: the victim is the physically observed faulty net
    // and the location PFA probes; without layout data the aggressor is
    // often ambiguous (several nets explain the datalog exactly), so a
    // victim match names the site.
    if (injected.kind == FaultKind::BridgeDom &&
        reported.kind == FaultKind::BridgeDom)
      return injected.net == reported.net;
    // Mixed dominant/wired flavours: the nets overlap.
    return injected.net == reported.net ||
           injected.net == reported.bridge_net ||
           injected.bridge_net == reported.net ||
           injected.bridge_net == reported.bridge_net;
  }
  return false;
}

TruthEvaluation evaluate_against_truth(const DiagnosisReport& report,
                                       std::span<const Fault> injected,
                                       const CollapsedFaults& collapsed) {
  TruthEvaluation ev;
  ev.n_injected = injected.size();
  ev.n_reported = report.suspects.size();

  auto suspect_names = [&](const ScoredCandidate& sc, const Fault& truth) {
    if (same_site(truth, sc.fault, collapsed)) return true;
    for (const Fault& alt : sc.alternates)
      if (same_site(truth, alt, collapsed)) return true;
    return false;
  };

  std::size_t true_suspects = 0;
  for (const ScoredCandidate& sc : report.suspects) {
    for (const Fault& truth : injected) {
      if (suspect_names(sc, truth)) {
        ++true_suspects;
        break;
      }
    }
  }
  for (const Fault& truth : injected) {
    for (const ScoredCandidate& sc : report.suspects) {
      if (suspect_names(sc, truth)) {
        ++ev.n_hit;
        break;
      }
    }
  }
  ev.all_hit = ev.n_injected > 0 && ev.n_hit == ev.n_injected;
  ev.first_hit = !report.suspects.empty() && !injected.empty() &&
                 [&] {
                   for (const Fault& truth : injected)
                     if (suspect_names(report.suspects.front(), truth))
                       return true;
                   return false;
                 }();
  ev.hit_rate = ev.n_injected == 0
                    ? 0.0
                    : static_cast<double>(ev.n_hit) /
                          static_cast<double>(ev.n_injected);
  ev.precision = ev.n_reported == 0
                     ? 0.0
                     : static_cast<double>(true_suspects) /
                           static_cast<double>(ev.n_reported);
  ev.resolution = ev.n_injected == 0
                      ? 0.0
                      : static_cast<double>(ev.n_reported) /
                            static_cast<double>(ev.n_injected);
  if (!report.suspects.empty()) {
    std::size_t sites = 0;
    for (const ScoredCandidate& sc : report.suspects)
      sites += 1 + sc.alternates.size();
    ev.avg_sites_per_suspect = static_cast<double>(sites) /
                               static_cast<double>(report.suspects.size());
  }
  return ev;
}

}  // namespace mdd
