#include "diag/multiplet.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/metrics.hpp"

namespace mdd {

namespace {

/// Candidates a tripped deadline left unscored (partial-result telemetry).
void count_rank_dropped(std::size_t n) {
  static obs::Counter& dropped =
      obs::registry().counter("diag.rank_dropped");
  dropped.inc(n);
}

}  // namespace

namespace {

bool exact_match(const MatchCounts& m) {
  return m.tfsp == 0 && m.tpsf == 0;
}

}  // namespace

DiagnosisReport diagnose_multiplet(DiagnosisContext& ctx,
                                   const MultipletOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  DiagnosisReport report;
  report.method = "multiplet";

  const ErrorSignature& observed = ctx.observed();
  // One observed signature scored against many composites/solos: expand it
  // once (identical counts to the pairwise match()).
  const SignatureMatcher matcher(observed);

  // Deadline polling: coarse boundaries (rounds, passes) poll the token
  // directly; per-candidate loops go through throttled checkpoints. Once
  // tripped, every stage below winds down and the best multiplet found so
  // far is reported with timed_out set.
  bool timed_out = false;
  auto expired = [&] {
    if (!timed_out && options.cancel != nullptr && options.cancel->cancelled())
      timed_out = true;
    return timed_out;
  };

  // Per-candidate solo error-bit count, for the shortlist's precision
  // tie-break.
  std::vector<std::size_t> solo_bits(ctx.n_candidates(), 0);
  {
    CancelCheckpoint cp(options.cancel, 16);
    for (std::size_t i = 0; i < ctx.n_candidates(); ++i) {
      if (cp()) {
        timed_out = true;
        count_rank_dropped(ctx.n_candidates() - i);
        break;
      }
      solo_bits[i] = ctx.solo_signature(i).n_error_bits();
      ++report.n_candidates_scored;
    }
  }

  struct H {
    std::size_t index;
    std::size_t tfsf;
  };
  // Rank extensions by residual coverage, then by *precision*: among
  // candidates covering the same residual bits prefer the one predicting
  // the fewest bits outside the residual. Big "mimicker" candidates that
  // blanket-cover everything rank below the focused complement that
  // actually corresponds to the remaining defect.
  auto heur_order = [&](const H& a, const H& b) {
    if (a.tfsf != b.tfsf) return a.tfsf > b.tfsf;
    const std::size_t excess_a = solo_bits[a.index] - a.tfsf;
    const std::size_t excess_b = solo_bits[b.index] - b.tfsf;
    if (excess_a != excess_b) return excess_a < excess_b;
    return ctx.candidate(a.index) < ctx.candidate(b.index);
  };

  // Inverted index: failing pattern -> (candidate, PO-mask) entries of the
  // candidates' solo signatures. Shortlisting against a residual then only
  // touches candidates that actually fail on residual patterns, instead of
  // re-matching the whole pool every round.
  struct Posting {
    std::uint32_t candidate;
    const Word* mask;
  };
  std::vector<std::vector<Posting>> postings(observed.n_patterns());
  {
    // A tripped deadline leaves the index partial (or empty): shortlists
    // then surface fewer (or no) extensions and the greedy winds down.
    CancelCheckpoint cp(options.cancel, 16);
    for (std::size_t i = 0; i < ctx.n_candidates(); ++i) {
      if (cp()) {
        timed_out = true;
        count_rank_dropped(ctx.n_candidates() - i);
        break;
      }
      const ErrorSignature& sig = ctx.solo_signature(i);
      for (std::size_t k = 0; k < sig.n_failing_patterns(); ++k) {
        postings[sig.failing_patterns()[k]].push_back(
            {static_cast<std::uint32_t>(i), sig.mask(k).data()});
      }
    }
  }
  std::vector<std::size_t> tfsf_acc(ctx.n_candidates(), 0);
  std::vector<std::uint32_t> touched;
  touched.reserve(ctx.n_candidates());

  /// Candidates (not in `exclude`) ranked by TFSF against `residual` — no
  /// misprediction penalty here: a masked defect legitimately predicts
  /// errors the tester never saw, and only exact composite evaluation can
  /// judge that.
  auto shortlist = [&](const ErrorSignature& residual,
                       const std::vector<char>& exclude,
                       std::size_t limit) {
    const std::size_t nw = residual.n_po_words();
    for (std::size_t k = 0; k < residual.n_failing_patterns(); ++k) {
      const std::uint32_t p = residual.failing_patterns()[k];
      const auto rmask = residual.mask(k);
      for (const Posting& post : postings[p]) {
        std::size_t overlap = 0;
        for (std::size_t w = 0; w < nw; ++w)
          overlap += static_cast<std::size_t>(
              std::popcount(rmask[w] & post.mask[w]));
        if (overlap == 0) continue;
        if (tfsf_acc[post.candidate] == 0) touched.push_back(post.candidate);
        tfsf_acc[post.candidate] += overlap;
      }
    }
    std::vector<H> heur;
    heur.reserve(touched.size());
    for (std::uint32_t i : touched) {
      if (!exclude[i] && tfsf_acc[i] > 0) heur.push_back({i, tfsf_acc[i]});
      tfsf_acc[i] = 0;
    }
    touched.clear();
    std::sort(heur.begin(), heur.end(), heur_order);
    if (heur.size() > limit) heur.resize(limit);
    return heur;
  };

  struct State {
    std::vector<std::size_t> members;
    ErrorSignature composite;
    double score;
  };
  const ErrorSignature empty_sig(observed.n_patterns(), observed.n_outputs());
  const double empty_score =
      score_of(matcher.match(empty_sig), options.weights);

  // Greedy rounds from a given state: per round, shortlist against the
  // residual, evaluate each extension exactly on the composite machine,
  // commit the best strict improvement.
  auto extend_greedy = [&](State state) {
    std::vector<char> in_m(ctx.n_candidates(), 0);
    for (std::size_t m : state.members) in_m[m] = 1;
    while (state.members.size() < options.max_multiplicity) {
      if (expired()) break;
      if (!observed.empty() && exact_match(matcher.match(state.composite)))
        break;
      const ErrorSignature residual =
          signature_difference(observed, state.composite);
      const auto heur = shortlist(residual, in_m, options.shortlist);
      if (heur.empty()) break;

      std::size_t best_index = ctx.n_candidates();
      double best_score = state.score;
      ErrorSignature best_sig;
      std::vector<Fault> faults;
      faults.reserve(state.members.size() + 1);
      for (std::size_t m : state.members)
        faults.push_back(ctx.candidate(m));
      for (const H& h : heur) {
        if (expired()) break;
        faults.push_back(ctx.candidate(h.index));
        ErrorSignature sig = ctx.multiplet_signature(faults);
        faults.pop_back();
        const double s = score_of(matcher.match(sig), options.weights);
        // Strict improvement required; ties resolved by shortlist order
        // (highest residual TFSF first), which is deterministic.
        if (s > best_score) {
          best_index = h.index;
          best_score = s;
          best_sig = std::move(sig);
        }
      }
      if (best_index == ctx.n_candidates() ||
          best_score <= state.score + options.min_improvement)
        break;
      state.members.push_back(best_index);
      in_m[best_index] = 1;
      state.composite = std::move(best_sig);
      state.score = best_score;
    }
    return state;
  };

  // Restart seeding: the dominant greedy failure mode is a wrong first
  // pick that jointly mimics several defects; running the greedy
  // continuation from each of the best few round-1 extensions and keeping
  // the best final multiplet recovers most of those cases.
  State best{{}, empty_sig, empty_score};
  {
    std::vector<char> none(ctx.n_candidates(), 0);
    const auto heur0 = shortlist(observed, none, options.shortlist);
    struct Seed {
      std::size_t index;
      double score;
      ErrorSignature sig;
    };
    std::vector<Seed> seeds;
    for (const H& h : heur0) {
      ErrorSignature sig = ctx.solo_signature(h.index);
      const double s = score_of(matcher.match(sig), options.weights);
      if (s > empty_score + options.min_improvement)
        seeds.push_back({h.index, s, std::move(sig)});
    }
    // Score ties are common (indistinguishable candidates score the same
    // signature); break them by fault identity so the restart set does not
    // depend on std::sort's whims.
    std::sort(seeds.begin(), seeds.end(),
              [&](const Seed& a, const Seed& b) {
                if (a.score != b.score) return a.score > b.score;
                return ctx.candidate(a.index) < ctx.candidate(b.index);
              });
    if (seeds.size() > options.restarts) seeds.resize(options.restarts);

    for (Seed& seed : seeds) {
      if (expired()) break;
      State state{{seed.index}, std::move(seed.sig), seed.score};
      state = extend_greedy(std::move(state));
      const bool better =
          state.score > best.score ||
          (state.score == best.score && !best.members.empty() &&
           state.members.size() < best.members.size());
      if (better) best = std::move(state);
      // A found exact explanation cannot be beaten, only tied.
      if (!observed.empty() && exact_match(matcher.match(best.composite)))
        break;
    }
  }

  std::vector<std::size_t>& members = best.members;
  ErrorSignature& composite = best.composite;
  double& best_score = best.score;
  std::vector<char> in_multiplet(ctx.n_candidates(), 0);
  for (std::size_t m : members) in_multiplet[m] = 1;

  // Refinement: local search around the greedy solution.
  //  * drop — remove members whose removal does not reduce the composite
  //    score (spurious additions or members subsumed by later picks);
  //  * 1-swap — replace a member with a shortlisted alternative when the
  //    swap strictly improves the composite score.
  if (options.refine && !members.empty()) {
    const std::size_t swap_shortlist =
        std::max<std::size_t>(8, options.shortlist / 2);
    bool changed = true;
    std::size_t guard = 0;
    while (changed && guard++ < 16 && !expired()) {
      changed = false;

      // Drop pass.
      for (std::size_t m = 0; m < members.size() && members.size() > 1; ++m) {
        if (expired()) break;
        std::vector<Fault> without;
        for (std::size_t j = 0; j < members.size(); ++j)
          if (j != m) without.push_back(ctx.candidate(members[j]));
        ErrorSignature sig = ctx.multiplet_signature(without);
        const double s = score_of(matcher.match(sig), options.weights);
        if (s >= best_score) {
          in_multiplet[members[m]] = 0;
          members.erase(members.begin() + static_cast<std::ptrdiff_t>(m));
          composite = std::move(sig);
          best_score = s;
          changed = true;
          break;
        }
      }
      if (changed) continue;

      // Swap pass.
      for (std::size_t m = 0; m < members.size() && !changed; ++m) {
        if (expired()) break;
        std::vector<Fault> base;
        for (std::size_t j = 0; j < members.size(); ++j)
          if (j != m) base.push_back(ctx.candidate(members[j]));
        const ErrorSignature base_sig =
            base.empty() ? ErrorSignature(observed.n_patterns(),
                                          observed.n_outputs())
                         : ctx.multiplet_signature(base);
        const ErrorSignature residual =
            signature_difference(observed, base_sig);
        for (const H& h : shortlist(residual, in_multiplet, swap_shortlist)) {
          // Each trial is a full composite evaluation; without this poll a
          // late deadline overshoots by up to a whole shortlist sweep.
          if (expired()) break;
          base.push_back(ctx.candidate(h.index));
          ErrorSignature sig = ctx.multiplet_signature(base);
          base.pop_back();
          const double s = score_of(matcher.match(sig), options.weights);
          if (s > best_score) {
            in_multiplet[members[m]] = 0;
            in_multiplet[h.index] = 1;
            members[m] = h.index;
            composite = std::move(sig);
            best_score = s;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Per-member marginal gain for reporting: score(M) - score(M \ m).
  std::vector<double> member_gain(members.size(), 0.0);
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (expired()) break;
    if (members.size() == 1) {
      member_gain[m] = best_score - empty_score;
      break;
    }
    std::vector<Fault> without;
    for (std::size_t j = 0; j < members.size(); ++j)
      if (j != m) without.push_back(ctx.candidate(members[j]));
    const ErrorSignature sig = ctx.multiplet_signature(without);
    member_gain[m] =
        best_score - score_of(matcher.match(sig), options.weights);
  }

  for (std::size_t m = 0; m < members.size(); ++m) {
    ScoredCandidate sc;
    sc.fault = ctx.candidate(members[m]);
    sc.counts = matcher.match(ctx.solo_signature(members[m]));
    sc.score = member_gain[m];
    // indistinguishable_from sweeps every solo signature — far too heavy
    // for a request that already blew its deadline.
    if (options.report_alternates && !timed_out)
      sc.alternates = ctx.indistinguishable_from(members[m]);
    report.suspects.push_back(std::move(sc));
  }
  report.explains_all =
      !observed.empty() && exact_match(matcher.match(composite));
  report.timed_out = timed_out;
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace mdd
