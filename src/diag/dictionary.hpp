// openmdd — fault-dictionary diagnosis (comparison baseline).
//
// The pre-computed-dictionary approach the effect-cause literature argues
// against: simulate every collapsed stuck-at fault (and, optionally, a
// sampled bridge universe) ahead of time, store signature -> faults, and
// diagnose by exact lookup with single-fault fallback ranking.
//
// Strengths: O(1) per diagnosis after the (expensive) build; exact for
// single defects whose signature is in the dictionary. Weaknesses the
// benches quantify: the build cost scales with the whole fault universe
// rather than the failing cone, storage is proportional to faults x
// failing bits, and multiple interacting defects produce composite
// signatures that match no dictionary entry at all (the no-assumptions
// method's whole point).
#pragma once

#include <unordered_map>

#include "diag/diagnosis.hpp"
#include "fault/collapse.hpp"

namespace mdd {

namespace store {
class DictReader;
}

struct DictionaryOptions {
  /// Also index a sampled bridge universe (adds 4x pairs per sample).
  bool include_bridges = true;
  std::size_t bridge_pairs = 256;
  std::uint64_t bridge_seed = 1;
  /// Suspects returned by rank fallback when no exact entry matches.
  std::size_t top_k = 10;
  ScoreWeights weights{};
};

/// Pre-computed full-response dictionary for one (netlist, pattern set).
class FaultDictionary {
 public:
  FaultDictionary(const Netlist& netlist, const PatternSet& patterns,
                  const DictionaryOptions& options = {});

  /// Builds the same dictionary from a persistent store instead of
  /// simulating: every universe fault found in `reader` is decoded off
  /// the mapping; faults the store lacks fall back to simulation (one
  /// FaultSimulator is constructed lazily, only if needed). The store
  /// must have been built for exactly this (netlist, patterns) —
  /// validated by content hash; a mismatch throws store::StoreError.
  FaultDictionary(const Netlist& netlist, const PatternSet& patterns,
                  const store::DictReader& reader,
                  const DictionaryOptions& options = {});

  /// Faults whose full signature equals `observed` exactly (may be several
  /// — they are indistinguishable under this pattern set).
  std::vector<Fault> exact_matches(const ErrorSignature& observed) const;

  /// Dictionary-based diagnosis: exact lookup first; otherwise rank all
  /// dictionary entries by match score (classic dictionary fallback).
  DiagnosisReport diagnose(const Datalog& datalog) const;

  std::size_t n_entries() const { return faults_.size(); }
  double build_seconds() const { return build_seconds_; }
  /// Total stored error bits (storage-cost proxy).
  std::size_t stored_bits() const { return stored_bits_; }
  /// Entries decoded from a persistent store (from-store builds only;
  /// n_entries() - store_hits() were simulated as fallback).
  std::size_t store_hits() const { return store_hits_; }

 private:
  struct SigKeyHash {
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string>{}(s);
    }
  };

  static std::string key_of(const ErrorSignature& sig);

  const Netlist* netlist_;
  DictionaryOptions options_;
  std::vector<Fault> faults_;
  std::vector<ErrorSignature> signatures_;
  std::unordered_map<std::string, std::vector<std::size_t>, SigKeyHash>
      by_signature_;
  std::size_t stored_bits_ = 0;
  std::size_t store_hits_ = 0;
  double build_seconds_ = 0.0;

  /// Shared by both constructors: the dictionary fault universe.
  std::vector<Fault> build_universe(const Netlist& netlist) const;
  /// Indexes signatures_ / by_signature_ / stored_bits_ (signatures_ and
  /// faults_ must already be parallel).
  void index_signatures();
};

}  // namespace mdd
