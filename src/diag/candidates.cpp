#include "diag/candidates.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "fsim/cpt.hpp"
#include "sim/event_sim.hpp"

namespace mdd {

namespace {

/// Good-machine net values for the traced failing patterns, bit-packed per
/// net (bit i = value under traced pattern i). Used to select
/// behaviour-consistent bridge aggressors.
struct TracedValues {
  std::vector<Word> bits;  // per net, one word (<= 64 traced patterns)
  std::size_t n_traced = 0;

  Word mask() const {
    return n_traced >= 64 ? kAllOne : ((Word{1} << n_traced) - 1);
  }
};

/// Indices (into the failing-pattern list) to trace: all of them when they
/// fit the budget, otherwise an even spread across the whole list — with
/// multiple defects, different regions of the failing list expose
/// different sites, so tracing only a prefix loses candidates.
std::vector<std::size_t> spread_indices(std::size_t n_failing,
                                        std::size_t budget) {
  std::vector<std::size_t> indices;
  if (n_failing <= budget) {
    for (std::size_t i = 0; i < n_failing; ++i) indices.push_back(i);
    return indices;
  }
  for (std::size_t k = 0; k < budget; ++k)
    indices.push_back(k * n_failing / budget);
  return indices;
}

}  // namespace

CandidatePool extract_candidates(const Netlist& netlist,
                                 const PatternSet& patterns,
                                 const Datalog& datalog,
                                 const CandidateOptions& options) {
  std::unordered_map<Fault, std::uint32_t, FaultHash> support;
  EventSim sim(netlist);
  CriticalPathTracer cpt(netlist);

  const ErrorSignature& obs = datalog.observed;
  const std::vector<std::size_t> trace_at = spread_indices(
      obs.n_failing_patterns(),
      std::min(options.max_traced_patterns, std::size_t{64}));

  TracedValues traced;
  traced.bits.assign(netlist.n_nets(), kAllZero);
  traced.n_traced = trace_at.size();

  // Victim support per net: on which traced patterns was the stem critical
  // (its flip explains at least one failing output)?
  std::vector<Word> victim_on(netlist.n_nets(), kAllZero);

  for (std::size_t k = 0; k < trace_at.size(); ++k) {
    const std::size_t i = trace_at[k];
    const std::uint32_t p = obs.failing_patterns()[i];
    sim.apply(patterns, p);
    for (NetId n = 0; n < netlist.n_nets(); ++n)
      if (sim.value(n)) traced.bits[n] |= Word{1} << k;
    for (std::uint32_t po : obs.failing_outputs(i)) {
      // The critical set of (pattern, output) is datalog-independent, so a
      // session-level store can replace the trace with a lookup.
      std::shared_ptr<const std::vector<Fault>> crit;
      if (options.trace_store != nullptr)
        crit = options.trace_store->lookup(p, po);
      if (crit == nullptr) {
        crit = std::make_shared<const std::vector<Fault>>(
            cpt.critical_faults(sim, po));
        if (options.trace_store != nullptr)
          options.trace_store->store(p, po, crit);
      }
      for (const Fault& f : *crit) {
        ++support[f];
        if (f.is_stuck_at() && f.pin == kStemPin)
          victim_on[f.net] |= Word{1} << k;
      }
    }
  }

  // Thin support (e.g. CPT under-approximation or heavy truncation): fall
  // back to stem faults over the union fan-in cone of the failing outputs.
  if (support.size() < options.back_cone_threshold &&
      obs.n_failing_patterns() > 0) {
    std::vector<NetId> roots;
    for (std::size_t i = 0; i < obs.n_failing_patterns(); ++i)
      for (std::uint32_t po : obs.failing_outputs(i))
        roots.push_back(netlist.outputs()[po]);
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    for (NetId n : netlist.fanin_cone(roots)) {
      ++support[Fault::stem_sa(n, false)];
      ++support[Fault::stem_sa(n, true)];
    }
  }

  // Bridge candidates. A dominant bridge shows up in CPT as its *victim*
  // stem being critical with the faulty value equal to the aggressor's good
  // value; the aggressor is therefore any net whose good value is the
  // victim's complement on every traced pattern where the victim was
  // implicated. Those behaviour-consistent partners (nearest by net id as a
  // layout proxy) become candidates.
  if (options.include_bridges) {
    std::vector<std::pair<NetId, std::uint32_t>> stems;
    for (const auto& [f, s] : support)
      if (f.is_stuck_at() && f.pin == kStemPin) stems.emplace_back(f.net, s);
    for (const auto& [victim, s] : stems) {
      const Word active = victim_on[victim];
      if (active == kAllZero) continue;
      const Word victim_vals = traced.bits[victim];
      const int n_active = std::popcount(active);

      // Two consistency tiers, scanned in id-proximity order over the
      // whole netlist:
      //   tier 1 — opposite value on *every* traced pattern where the
      //            victim was implicated (what a real lone aggressor does);
      //   tier 2 — opposite on a majority (tolerates pollution of the
      //            victim's active set by other defects' failures).
      // Tier-1 partners get the cap to themselves first, so near-victim
      // majority-consistent noise cannot crowd out the true aggressor.
      std::vector<NetId> tier1, tier2;
      for (std::uint32_t delta = 1;
           delta < netlist.n_nets() && tier1.size() < options.bridge_partners;
           ++delta) {
        for (int sign : {-1, 1}) {
          const std::int64_t cand = static_cast<std::int64_t>(victim) +
                                    sign * static_cast<std::int64_t>(delta);
          if (cand < 0 || cand >= static_cast<std::int64_t>(netlist.n_nets()))
            continue;
          const NetId a = static_cast<NetId>(cand);
          const int n_opposite =
              std::popcount((traced.bits[a] ^ victim_vals) & active);
          if (n_opposite == n_active) {
            tier1.push_back(a);
          } else if (2 * n_opposite >= n_active + 1 &&
                     tier2.size() < options.bridge_partners) {
            tier2.push_back(a);
          }
        }
      }
      std::size_t added = 0;
      for (const std::vector<NetId>& tier : {tier1, tier2}) {
        for (NetId a : tier) {
          if (added >= options.bridge_partners) break;
          if (is_feedback_pair(netlist, victim, a)) continue;
          const Fault br = Fault::bridge_dom(victim, a);
          if (support.emplace(br, s).second) ++added;
        }
        // Tier 2 only fills what tier 1 left open, and only half of it —
        // majority-consistent partners are speculative.
        if (added * 2 >= options.bridge_partners) break;
      }
    }
  }

  // Rank by support (desc); on ties stuck-at candidates come before
  // bridges (bridges inherit their victim's support, and must not crowd
  // independently-traced stuck-at sites out of a capped pool); then fault
  // order for determinism.
  std::vector<std::pair<Fault, std::uint32_t>> ranked(support.begin(),
                                                      support.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    if (a.first.is_bridge() != b.first.is_bridge())
      return !a.first.is_bridge();
    return a.first < b.first;
  });
  if (ranked.size() > options.max_candidates)
    ranked.resize(options.max_candidates);

  CandidatePool pool;
  pool.faults.reserve(ranked.size());
  pool.support.reserve(ranked.size());
  for (auto& [f, s] : ranked) {
    pool.faults.push_back(f);
    pool.support.push_back(s);
  }
  return pool;
}

CandidatePool extract_tdf_candidates(const Netlist& netlist,
                                     const PatternSet& launch,
                                     const PatternSet& capture,
                                     const Datalog& datalog,
                                     const CandidateOptions& options) {
  std::unordered_map<Fault, std::uint32_t, FaultHash> support;
  EventSim sim_capture(netlist);
  EventSim sim_launch(netlist);
  CriticalPathTracer cpt(netlist);

  const ErrorSignature& obs = datalog.observed;
  for (std::size_t i : spread_indices(obs.n_failing_patterns(),
                                      options.max_traced_patterns)) {
    const std::uint32_t p = obs.failing_patterns()[i];
    sim_capture.apply(capture, p);
    sim_launch.apply(launch, p);
    for (std::uint32_t po : obs.failing_outputs(i)) {
      for (const Fault& f : cpt.critical_faults(sim_capture, po)) {
        ++support[f];
        if (f.pin != kStemPin) continue;
        // A critical stem held at its launch value explains the flip iff
        // the launch value is the complement of the good capture value —
        // i.e. the stem moved in the direction the transition fault slows.
        const bool v2 = sim_capture.value(f.net);
        const bool v1 = sim_launch.value(f.net);
        if (v1 != v2) {
          ++support[v2 ? Fault::slow_to_rise(f.net)
                       : Fault::slow_to_fall(f.net)];
        }
      }
    }
  }

  std::vector<std::pair<Fault, std::uint32_t>> ranked(support.begin(),
                                                      support.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > options.max_candidates)
    ranked.resize(options.max_candidates);

  CandidatePool pool;
  pool.faults.reserve(ranked.size());
  pool.support.reserve(ranked.size());
  for (auto& [f, s] : ranked) {
    pool.faults.push_back(f);
    pool.support.push_back(s);
  }
  return pool;
}

}  // namespace mdd
