// openmdd — diagnosis quality metrics against injected ground truth.
//
// An injected defect counts as *hit* when some reported suspect (or one of
// its indistinguishability alternates) names the same site: exact fault
// equality, stuck-at equivalence-class equality (a diagnoser cannot
// separate structurally equivalent faults), or — for bridges — the same
// victim/aggressor pair.
#pragma once

#include <span>

#include "diag/diagnosis.hpp"
#include "fault/collapse.hpp"

namespace mdd {

struct TruthEvaluation {
  std::size_t n_injected = 0;
  std::size_t n_hit = 0;           ///< injected defects named by the report
  std::size_t n_reported = 0;      ///< suspects in the report
  bool all_hit = false;            ///< every injected defect named
  bool first_hit = false;          ///< top-ranked suspect names a defect
  double hit_rate = 0.0;           ///< n_hit / n_injected
  double precision = 0.0;          ///< suspects naming true defects / reported
  double resolution = 0.0;         ///< n_reported / n_injected (1.0 ideal)

  /// Average per-suspect site count including alternates (PFA effort).
  double avg_sites_per_suspect = 0.0;
};

/// True if `reported` names the same defect site as `injected` (exact,
/// stuck-at-equivalent via `collapsed`, or same bridge pair).
bool same_site(const Fault& injected, const Fault& reported,
               const CollapsedFaults& collapsed);

TruthEvaluation evaluate_against_truth(const DiagnosisReport& report,
                                       std::span<const Fault> injected,
                                       const CollapsedFaults& collapsed);

}  // namespace mdd
