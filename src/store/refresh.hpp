// openmdd — store refresh: folding journaled faults into the `.mdds` file.
//
// A refresh merges workload-learned faults (store/journal.hpp) into the
// persistent dictionary without re-simulating what the store already
// knows: existing records' posting bytes are carried over verbatim from
// the mmap'd file, only genuinely new faults are simulated, and the
// merged store is written with the writer's tmp+rename protocol — readers
// holding the old mapping keep serving it, and the next open (or the
// daemon's reader swap) picks up the grown universe. If the store is
// absent or unreadable, the fold rebuilds it from the default universe
// plus the journaled faults, so `dict refresh` also works as a first
// build.
#pragma once

#include <span>
#include <string>

#include "core/exec.hpp"
#include "fault/fault.hpp"
#include "store/writer.hpp"

namespace mdd::store {

struct RefreshStats {
  std::size_t n_offered = 0;   ///< faults given to the fold
  std::size_t n_new = 0;       ///< simulated and added to the store
  std::size_t n_existing = 0;  ///< records carried over byte-for-byte
  std::size_t n_invalid = 0;   ///< offered faults that failed validation
  bool rebuilt = false;        ///< store was absent/corrupt → fresh build
  bool wrote = false;          ///< a new store file was written
  BuildStats build;            ///< of the written file (empty if !wrote)
};

/// Folds `extra` faults into the store for (netlist, patterns) inside
/// `dir`. Already-present and invalid faults are skipped (counted); if
/// nothing new remains and the store is healthy, no file is written.
/// Throws StoreError on I/O failure writing the merged store.
RefreshStats fold_into_store(const Netlist& netlist,
                             const PatternSet& patterns,
                             const std::string& dir,
                             std::span<const Fault> extra,
                             const ExecPolicy& exec = {});

/// CLI/daemon entry point: reads the journal sidecar, folds its faults
/// into the store, and resets the journal to header-only on success.
/// A malformed or mismatched journal header throws StoreError (the
/// journal must never be folded into the wrong store); a missing journal
/// is a healthy no-op.
RefreshStats refresh_store(const Netlist& netlist, const PatternSet& patterns,
                           const std::string& dir,
                           const ExecPolicy& exec = {});

}  // namespace mdd::store
