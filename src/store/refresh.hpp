// openmdd — store refresh: folding journaled faults into the `.mdds` file.
//
// A refresh merges workload-learned faults (store/journal.hpp) into the
// persistent dictionary without re-simulating what the store already
// knows: existing records' posting bytes are carried over verbatim from
// the mmap'd file, only genuinely new faults are simulated, and the
// merged store is written with the writer's tmp+rename protocol — readers
// holding the old mapping keep serving it, and the next open (or the
// daemon's reader swap) picks up the grown universe. If the store is
// absent or unreadable, the fold rebuilds it from the default universe
// plus the journaled faults, so `dict refresh` also works as a first
// build.
#pragma once

#include <span>
#include <string>
#include <utility>

#include "core/exec.hpp"
#include "fault/fault.hpp"
#include "store/writer.hpp"

namespace mdd::store {

/// Cross-process fold mutex for one (netlist, patterns) store folder.
///
/// Two concurrent folds of the same store are a lost-update race: both
/// read version N, each writes N+{its faults}, and whichever tmp+rename
/// lands last silently drops the other's learned faults — while the
/// loser compacts its journal as if they were folded, losing them for
/// good. With the sharded daemon every worker process runs its own
/// refresh thread against the shared `--store-dir`, so the fold is now
/// guarded by an advisory flock(2) on a `.lock` file beside the `.mdds`:
/// the kernel releases it on process death (no stale-lock recovery
/// needed), and lock-file I/O failure degrades to the old uncoordinated
/// behavior (fail-open: a missing lock must never stop learning).
class RefreshLock {
 public:
  enum class State {
    held,         ///< this process owns the fold
    busy,         ///< another holder owns it — skip or wait and retry
    unavailable,  ///< lock file unusable — proceed unguarded (fail-open)
  };

  RefreshLock() = default;
  RefreshLock(RefreshLock&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), state_(other.state_) {}
  RefreshLock& operator=(RefreshLock&& other) noexcept;
  RefreshLock(const RefreshLock&) = delete;
  RefreshLock& operator=(const RefreshLock&) = delete;
  ~RefreshLock();

  /// Non-blocking: `busy` when another process (or another descriptor in
  /// this one) holds the fold.
  static RefreshLock try_acquire(const std::string& dir,
                                 const Netlist& netlist,
                                 const PatternSet& patterns);
  /// Blocking: waits for the current holder (CLI `dict refresh` path).
  static RefreshLock acquire(const std::string& dir, const Netlist& netlist,
                             const PatternSet& patterns);
  /// Path-level variants (tests, tools that already resolved the path).
  static RefreshLock try_acquire_path(const std::string& lock_path);
  static RefreshLock acquire_path(const std::string& lock_path);

  State state() const { return state_; }
  bool held() const { return state_ == State::held; }
  /// A fold may proceed when the lock is held OR unavailable — only
  /// `busy` means someone else is folding right now.
  bool may_fold() const { return state_ != State::busy; }

  void release();

 private:
  RefreshLock(int fd, State state) : fd_(fd), state_(state) {}
  static RefreshLock acquire_impl(const std::string& lock_path, bool block);
  int fd_ = -1;
  State state_ = State::unavailable;
};

/// The advisory lock file guarding folds of this (netlist, patterns)
/// store: `<store path>.lock`.
std::string refresh_lock_path_for(const std::string& dir,
                                  const Netlist& netlist,
                                  const PatternSet& patterns);

struct RefreshStats {
  std::size_t n_offered = 0;   ///< faults given to the fold
  std::size_t n_new = 0;       ///< simulated and added to the store
  std::size_t n_existing = 0;  ///< records carried over byte-for-byte
  std::size_t n_invalid = 0;   ///< offered faults that failed validation
  bool rebuilt = false;        ///< store was absent/corrupt → fresh build
  bool wrote = false;          ///< a new store file was written
  BuildStats build;            ///< of the written file (empty if !wrote)
};

/// Folds `extra` faults into the store for (netlist, patterns) inside
/// `dir`. Already-present and invalid faults are skipped (counted); if
/// nothing new remains and the store is healthy, no file is written.
/// Throws StoreError on I/O failure writing the merged store.
RefreshStats fold_into_store(const Netlist& netlist,
                             const PatternSet& patterns,
                             const std::string& dir,
                             std::span<const Fault> extra,
                             const ExecPolicy& exec = {});

/// CLI/daemon entry point: reads the journal sidecar, folds its faults
/// into the store, and resets the journal to header-only on success.
/// A malformed or mismatched journal header throws StoreError (the
/// journal must never be folded into the wrong store); a missing journal
/// is a healthy no-op.
RefreshStats refresh_store(const Netlist& netlist, const PatternSet& patterns,
                           const std::string& dir,
                           const ExecPolicy& exec = {});

}  // namespace mdd::store
