#include "store/journal.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace mdd::store {

namespace {

constexpr const char* kJournalMagic = "mddj1";

struct JournalMetrics {
  obs::Counter& appends = obs::registry().counter("store.journal_appends");
  obs::Counter& append_failures =
      obs::registry().counter("store.journal_append_failures");
  obs::Counter& open_failures =
      obs::registry().counter("store.journal_open_failures");
  obs::Counter& skipped_lines =
      obs::registry().counter("store.journal_skipped_lines");
  /// Distinct faults pending across every live journal (fold backlog).
  obs::Gauge& entries = obs::registry().gauge("store.journal_entries");
};

JournalMetrics& journal_metrics() {
  static JournalMetrics m;
  return m;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string header_line(std::uint64_t netlist_hash,
                        std::uint64_t patterns_hash) {
  return std::string(kJournalMagic) + " " + hex16(netlist_hash) + " " +
         hex16(patterns_hash) + "\n";
}

std::string fault_line(const Fault& f) {
  std::ostringstream out;
  out << "f " << static_cast<unsigned>(f.kind) << " " << f.net << " "
      << f.pin << " " << f.bridge_net << "\n";
  return out.str();
}

/// Strict decimal u64 with an upper bound; false on any malformation.
bool parse_field(const std::string& tok, std::uint64_t max,
                 std::uint64_t& out) {
  if (tok.empty() || tok.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    if (v > (max - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// One "f <kind> <net> <pin> <bridge_net>" record; false drops the line.
bool parse_fault_line(const std::string& line, Fault& out) {
  std::istringstream ls(line);
  std::string tag, kind_tok, net_tok, pin_tok, bridge_tok, extra;
  if (!(ls >> tag >> kind_tok >> net_tok >> pin_tok >> bridge_tok) ||
      tag != "f" || (ls >> extra))
    return false;
  std::uint64_t kind = 0, net = 0, pin = 0, bridge = 0;
  constexpr std::uint64_t kU32Max = 0xffffffffull;
  if (!parse_field(kind_tok,
                   static_cast<std::uint64_t>(FaultKind::SlowToFall), kind) ||
      !parse_field(net_tok, kU32Max, net) ||
      !parse_field(pin_tok, kU32Max, pin) ||
      !parse_field(bridge_tok, kU32Max, bridge))
    return false;
  out.kind = static_cast<FaultKind>(kind);
  out.net = static_cast<NetId>(net);
  out.pin = static_cast<std::uint32_t>(pin);
  out.bridge_net = static_cast<NetId>(bridge);
  return true;
}

/// Validates the header of an existing journal. Throws StoreError on a
/// malformed header or a content-hash mismatch.
void check_header(const std::string& line, const std::string& path,
                  std::uint64_t netlist_hash, std::uint64_t patterns_hash) {
  std::istringstream hs(line);
  std::string magic, nh, ph, extra;
  if (!(hs >> magic >> nh >> ph) || (hs >> extra) || magic != kJournalMagic)
    throw StoreError("journal: malformed header in " + path);
  if (nh != hex16(netlist_hash) || ph != hex16(patterns_hash))
    throw StoreError("journal: " + path +
                     " was written for different content hashes");
}

}  // namespace

JournalContents read_journal(const std::string& path,
                             std::uint64_t netlist_hash,
                             std::uint64_t patterns_hash) {
  JournalContents out;
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) return out;  // absent = empty (normal first run)

  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), fp)) > 0;)
    text.append(buf, n);
  std::fclose(fp);
  if (text.empty()) return out;

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line))
    throw StoreError("journal: unreadable header in " + path);
  check_header(line, path, netlist_hash, patterns_hash);

  std::unordered_set<Fault, FaultHash> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++out.n_lines;
    Fault f;
    // A torn final append shows up as a truncated last line (no trailing
    // newline, missing fields) — skip + count, like any stray bytes.
    if (!parse_fault_line(line, f)) {
      ++out.n_skipped;
      journal_metrics().skipped_lines.inc();
      continue;
    }
    if (seen.insert(f).second) out.faults.push_back(f);
  }
  return out;
}

void reset_journal_file(const std::string& path, std::uint64_t netlist_hash,
                        std::uint64_t patterns_hash) {
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw StoreError("journal: cannot create " + tmp);
  const std::string header = header_line(netlist_hash, patterns_hash);
  const bool written =
      std::fwrite(header.data(), 1, header.size(), fp) == header.size() &&
      std::fflush(fp) == 0;
  const bool closed = std::fclose(fp) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    throw StoreError("journal: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StoreError("journal: cannot rename " + tmp + " into place");
  }
}

FaultJournal::FaultJournal(std::string path, std::uint64_t netlist_hash,
                           std::uint64_t patterns_hash)
    : path_(std::move(path)),
      netlist_hash_(netlist_hash),
      patterns_hash_(patterns_hash) {
  try {
    std::error_code ec;
    const bool exists = std::filesystem::exists(path_, ec) && !ec;
    if (exists) {
      // Wrong-hash or malformed headers throw here → detach below.
      JournalContents contents =
          read_journal(path_, netlist_hash_, patterns_hash_);
      pending_ = std::move(contents.faults);
      for (const Fault& f : pending_) seen_.insert(f);
    } else {
      reset_journal_file(path_, netlist_hash_, patterns_hash_);
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr)
      throw StoreError("journal: cannot open " + path_ + " for append");
    journal_metrics().entries.add(static_cast<std::int64_t>(pending_.size()));
  } catch (const std::exception&) {
    journal_metrics().open_failures.inc();
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
    pending_.clear();
    seen_.clear();
  }
}

FaultJournal::~FaultJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_metrics().entries.add(-static_cast<std::int64_t>(pending_.size()));
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void FaultJournal::detach_locked() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  journal_metrics().entries.add(-static_cast<std::int64_t>(pending_.size()));
  pending_.clear();
}

void FaultJournal::record(const Fault& fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // detached: fail-open no-op
  if (!seen_.insert(fault).second) return;
  const std::string line = fault_line(fault);
  // One fwrite per record: a crash tears at most the final line, which
  // read_journal() then skips.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    journal_metrics().append_failures.inc();
    detach_locked();
    return;
  }
  pending_.push_back(fault);
  journal_metrics().appends.inc();
  journal_metrics().entries.add(1);
}

std::vector<Fault> FaultJournal::pending_faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::size_t FaultJournal::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void FaultJournal::compact(const std::vector<Fault>& folded) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::unordered_set<Fault, FaultHash> gone(folded.begin(), folded.end());
  std::vector<Fault> remainder;
  for (const Fault& f : pending_)
    if (gone.count(f) == 0) remainder.push_back(f);
  try {
    std::fclose(file_);
    file_ = nullptr;
    reset_journal_file(path_, netlist_hash_, patterns_hash_);
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr)
      throw StoreError("journal: cannot reopen " + path_);
    for (const Fault& f : remainder) {
      const std::string line = fault_line(f);
      if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
        throw StoreError("journal: short rewrite of " + path_);
    }
    if (std::fflush(file_) != 0)
      throw StoreError("journal: cannot flush " + path_);
  } catch (const std::exception&) {
    journal_metrics().append_failures.inc();
    detach_locked();
    return;
  }
  journal_metrics().entries.add(
      static_cast<std::int64_t>(remainder.size()) -
      static_cast<std::int64_t>(pending_.size()));
  pending_ = std::move(remainder);
}

bool FaultJournal::detached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_ == nullptr;
}

}  // namespace mdd::store
