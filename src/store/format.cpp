#include "store/format.hpp"

#include <span>

namespace mdd::store {

std::uint64_t netlist_content_hash(const Netlist& netlist) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(netlist.n_inputs(), h);
  h = fnv1a_u64(netlist.n_outputs(), h);
  h = fnv1a_u64(netlist.n_nets(), h);
  for (NetId n = 0; n < netlist.n_nets(); ++n) {
    h = fnv1a_u64(static_cast<std::uint64_t>(netlist.kind(n)), h);
    const auto fanins = netlist.fanins(n);
    h = fnv1a_u64(fanins.size(), h);
    for (NetId f : fanins) h = fnv1a_u64(f, h);
  }
  // PO order fixes the bit layout of every signature.
  for (NetId o : netlist.outputs()) h = fnv1a_u64(o, h);
  return h;
}

std::uint64_t patterns_content_hash(const PatternSet& patterns) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(patterns.n_patterns(), h);
  h = fnv1a_u64(patterns.n_signals(), h);
  for (std::size_t b = 0; b < patterns.n_blocks(); ++b) {
    const Word valid = patterns.valid_mask(b);
    for (std::size_t s = 0; s < patterns.n_signals(); ++s)
      h = fnv1a_u64(patterns.word(b, s) & valid, h);
  }
  return h;
}

std::string sidecar_file_name(std::uint64_t netlist_hash,
                              std::uint64_t patterns_hash,
                              std::string_view extension) {
  static const char* hex = "0123456789abcdef";
  std::string name;
  name.reserve(16 + 1 + 16 + extension.size());
  const auto append_hex = [&](std::uint64_t v) {
    for (int i = 15; i >= 0; --i) name.push_back(hex[(v >> (4 * i)) & 0xf]);
  };
  append_hex(netlist_hash);
  name.push_back('-');
  append_hex(patterns_hash);
  name += extension;
  return name;
}

std::string store_file_name(std::uint64_t netlist_hash,
                            std::uint64_t patterns_hash) {
  return sidecar_file_name(netlist_hash, patterns_hash, kStoreExtension);
}

namespace {

std::string sidecar_path(const std::string& dir, const Netlist& netlist,
                         const PatternSet& patterns,
                         std::string_view extension) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  return path + sidecar_file_name(netlist_content_hash(netlist),
                                  patterns_content_hash(patterns), extension);
}

}  // namespace

std::string store_path_for(const std::string& dir, const Netlist& netlist,
                           const PatternSet& patterns) {
  return sidecar_path(dir, netlist, patterns, kStoreExtension);
}

std::string journal_path_for(const std::string& dir, const Netlist& netlist,
                             const PatternSet& patterns) {
  return sidecar_path(dir, netlist, patterns, kJournalExtension);
}

std::string spill_path_for(const std::string& dir, const Netlist& netlist,
                           const PatternSet& patterns) {
  return sidecar_path(dir, netlist, patterns, kSpillExtension);
}

std::size_t encode_postings(const ErrorSignature& sig,
                            std::uint64_t n_outputs,
                            std::vector<std::uint8_t>& out) {
  std::size_t n_positions = 0;
  std::uint64_t prev = 0;
  bool first = true;
  for (std::size_t i = 0; i < sig.n_failing_patterns(); ++i) {
    const std::uint64_t base =
        std::uint64_t{sig.failing_patterns()[i]} * n_outputs;
    for (std::uint32_t po : sig.failing_outputs(i)) {
      const std::uint64_t pos = base + po;
      put_varint(out, first ? pos : pos - prev);
      prev = pos;
      first = false;
      ++n_positions;
    }
  }
  return n_positions;
}

ErrorSignature decode_postings(const std::uint8_t*& p,
                               const std::uint8_t* end,
                               std::uint32_t n_positions,
                               std::uint64_t n_patterns,
                               std::uint64_t n_outputs) {
  ErrorSignature sig(n_patterns, n_outputs);
  const std::uint64_t limit = n_patterns * n_outputs;
  std::vector<Word> mask(sig.n_po_words(), kAllZero);
  std::uint64_t current_pattern = 0;
  bool have_pattern = false;
  std::uint64_t pos = 0;
  for (std::uint32_t k = 0; k < n_positions; ++k) {
    const std::uint64_t delta = get_varint(p, end);
    if (k == 0) {
      pos = delta;
    } else {
      if (delta == 0) throw StoreError("store: zero posting delta");
      if (delta > limit || pos > limit - delta)
        throw StoreError("store: posting position overflow");
      pos += delta;
    }
    if (pos >= limit)
      throw StoreError("store: posting position out of range");
    const std::uint64_t pattern = pos / n_outputs;
    const std::uint64_t po = pos % n_outputs;
    if (have_pattern && pattern != current_pattern) {
      sig.append(static_cast<std::uint32_t>(current_pattern), mask);
      std::fill(mask.begin(), mask.end(), kAllZero);
    }
    current_pattern = pattern;
    have_pattern = true;
    mask[po / 64] |= Word{1} << (po % 64);
  }
  if (have_pattern)
    sig.append(static_cast<std::uint32_t>(current_pattern), mask);
  return sig;
}

void append_header(std::vector<std::uint8_t>& out,
                   const StoreHeader& header) {
  const std::size_t base = out.size();
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u32(out, header.format_version);
  put_u32(out, 0);  // reserved
  put_u64(out, header.netlist_hash);
  put_u64(out, header.patterns_hash);
  put_u64(out, header.n_faults);
  put_u64(out, header.n_patterns);
  put_u64(out, header.n_outputs);
  put_u64(out, header.payload_bytes);
  put_u64(out, header.content_hash);
  put_u64(out, 0);  // reserved
  if (out.size() - base != kHeaderBytes)
    throw StoreError("store: header codec size mismatch");
}

StoreHeader read_header(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes)
    throw StoreError("store: file shorter than the fixed header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    throw StoreError("store: bad magic (not a dictionary store file)");
  StoreHeader h;
  h.format_version = read_u32(data + 8);
  if (h.format_version != kFormatVersion)
    throw StoreError("store: unsupported format version " +
                     std::to_string(h.format_version) + " (expected " +
                     std::to_string(kFormatVersion) + ")");
  h.netlist_hash = read_u64(data + 16);
  h.patterns_hash = read_u64(data + 24);
  h.n_faults = read_u64(data + 32);
  h.n_patterns = read_u64(data + 40);
  h.n_outputs = read_u64(data + 48);
  h.payload_bytes = read_u64(data + 56);
  h.content_hash = read_u64(data + 64);
  // Size accounting must be exact: header + index + postings == file.
  if (h.n_faults > (size - kHeaderBytes) / kRecordBytes)
    throw StoreError("store: fault index exceeds file size");
  const std::uint64_t body = kHeaderBytes + h.n_faults * kRecordBytes;
  if (size - body != h.payload_bytes)
    throw StoreError("store: file size does not match header accounting");
  return h;
}

void append_record(std::vector<std::uint8_t>& out, const FaultRecord& rec) {
  const std::size_t base = out.size();
  out.push_back(static_cast<std::uint8_t>(rec.fault.kind));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, rec.fault.net);
  put_u32(out, rec.fault.pin);
  put_u32(out, rec.fault.bridge_net);
  put_u64(out, rec.offset);
  put_u32(out, rec.n_bytes);
  put_u32(out, rec.n_positions);
  put_u32(out, rec.n_failing);
  put_u32(out, 0);  // reserved
  if (out.size() - base != kRecordBytes)
    throw StoreError("store: record codec size mismatch");
}

FaultRecord read_record(const std::uint8_t* p) {
  FaultRecord rec;
  const std::uint8_t kind = p[0];
  if (kind > static_cast<std::uint8_t>(FaultKind::SlowToFall))
    throw StoreError("store: fault record with unknown fault kind");
  rec.fault.kind = static_cast<FaultKind>(kind);
  rec.fault.net = read_u32(p + 4);
  rec.fault.pin = read_u32(p + 8);
  rec.fault.bridge_net = read_u32(p + 12);
  rec.offset = read_u64(p + 16);
  rec.n_bytes = read_u32(p + 24);
  rec.n_positions = read_u32(p + 28);
  rec.n_failing = read_u32(p + 32);
  return rec;
}

}  // namespace mdd::store
