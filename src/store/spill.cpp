#include "store/spill.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

namespace mdd::store {

namespace {

constexpr char kSpillMagic[8] = {'M', 'D', 'D', 'C', 'S', 'P', 'L', '1'};
constexpr std::uint32_t kSpillVersion = 1;
constexpr std::size_t kSpillHeaderBytes = 48;
/// u32 payload_bytes + u64 fnv1a(payload) before every record payload.
constexpr std::size_t kRecordPrefixBytes = 12;
constexpr std::size_t kMemberBytes = 16;
/// A record longer than this is structurally impossible for any sane
/// composite and rejects hostile length fields before allocation.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

struct SpillMetrics {
  obs::Counter& writes = obs::registry().counter("store.spill_writes");
  obs::Counter& hits = obs::registry().counter("store.spill_hits");
  obs::Counter& misses = obs::registry().counter("store.spill_misses");
  obs::Counter& declined = obs::registry().counter("store.spill_declined");
  obs::Counter& open_failures =
      obs::registry().counter("store.spill_open_failures");
  obs::Counter& decode_failures =
      obs::registry().counter("store.spill_decode_failures");
  obs::Counter& dropped_records =
      obs::registry().counter("store.spill_dropped_records");
  obs::Gauge& entries = obs::registry().gauge("store.spill_entries");
  obs::Gauge& bytes = obs::registry().gauge("store.spill_bytes");
};

SpillMetrics& spill_metrics() {
  static SpillMetrics m;
  return m;
}

std::vector<std::uint8_t> encode_spill_header(std::uint64_t netlist_hash,
                                              std::uint64_t patterns_hash,
                                              std::uint64_t n_outputs) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), std::begin(kSpillMagic), std::end(kSpillMagic));
  put_u32(out, kSpillVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, netlist_hash);
  put_u64(out, patterns_hash);
  put_u64(out, n_outputs);
  put_u64(out, 0);  // reserved
  return out;
}

/// Full pread of [offset, offset+n); false on I/O error or short file.
bool pread_exact(int fd, std::uint8_t* buf, std::size_t n,
                 std::uint64_t offset) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd, buf + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got <= 0) return false;
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, buf + done, n - done);
    if (put <= 0) return false;
    done += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

std::size_t CompositeSpill::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = fnv1a_u64(k.window, kFnvOffset);
  for (const Fault& f : k.members) {
    h = fnv1a_u64(static_cast<std::uint64_t>(f.kind), h);
    h = fnv1a_u64(f.net, h);
    h = fnv1a_u64(f.pin, h);
    h = fnv1a_u64(f.bridge_net, h);
  }
  return static_cast<std::size_t>(h);
}

CompositeSpill::CompositeSpill(std::string path, std::uint64_t netlist_hash,
                               std::uint64_t patterns_hash,
                               std::uint64_t n_patterns,
                               std::uint64_t n_outputs,
                               std::size_t max_bytes)
    : path_(std::move(path)),
      netlist_hash_(netlist_hash),
      patterns_hash_(patterns_hash),
      n_patterns_(n_patterns),
      n_outputs_(n_outputs),
      max_bytes_(max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    spill_metrics().open_failures.inc();
    return;
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0 || st.st_size < 0) {
    spill_metrics().open_failures.inc();
    detach_locked();
    return;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size == 0) {
    const std::vector<std::uint8_t> header =
        encode_spill_header(netlist_hash_, patterns_hash_, n_outputs_);
    if (!write_exact(fd_, header.data(), header.size())) {
      spill_metrics().open_failures.inc();
      detach_locked();
      return;
    }
    bytes_ = header.size();
  } else if (!scan_existing_locked(size)) {
    spill_metrics().open_failures.inc();
    detach_locked();
    return;
  }
  spill_metrics().entries.add(static_cast<std::int64_t>(index_.size()));
  spill_metrics().bytes.add(static_cast<std::int64_t>(bytes_));
}

/// Validates the header and walks the record chain, indexing every record
/// whose checksum and key decode cleanly. A torn/corrupt tail is cut off
/// with ftruncate so subsequent appends land on a record boundary. Returns
/// false only for conditions that make the whole file untrustworthy.
bool CompositeSpill::scan_existing_locked(std::uint64_t file_size) {
  if (file_size < kSpillHeaderBytes) return false;
  std::uint8_t header[kSpillHeaderBytes];
  if (!pread_exact(fd_, header, sizeof(header), 0)) return false;
  if (std::memcmp(header, kSpillMagic, sizeof(kSpillMagic)) != 0) return false;
  if (read_u32(header + 8) != kSpillVersion) return false;
  if (read_u64(header + 16) != netlist_hash_ ||
      read_u64(header + 24) != patterns_hash_ ||
      read_u64(header + 32) != n_outputs_)
    return false;

  std::uint64_t offset = kSpillHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (offset < file_size) {
    std::uint8_t prefix[kRecordPrefixBytes];
    if (offset + kRecordPrefixBytes > file_size ||
        !pread_exact(fd_, prefix, sizeof(prefix), offset))
      break;  // torn tail
    const std::uint32_t payload_bytes = read_u32(prefix);
    const std::uint64_t checksum = read_u64(prefix + 4);
    if (payload_bytes == 0 || payload_bytes > kMaxPayloadBytes ||
        offset + kRecordPrefixBytes + payload_bytes > file_size)
      break;
    payload.resize(payload_bytes);
    if (!pread_exact(fd_, payload.data(), payload_bytes,
                     offset + kRecordPrefixBytes))
      break;
    if (fnv1a(payload.data(), payload.size()) != checksum) break;
    try {
      const std::uint8_t* p = payload.data();
      const std::uint8_t* end = p + payload.size();
      Key key;
      key.window = get_varint(p, end);
      const std::uint64_t n_members = get_varint(p, end);
      if (key.window == 0 || key.window > n_patterns_ || n_members == 0 ||
          n_members > (static_cast<std::uint64_t>(end - p)) / kMemberBytes)
        throw StoreError("spill: implausible record key");
      key.members.reserve(n_members);
      for (std::uint64_t m = 0; m < n_members; ++m) {
        const std::uint8_t kind = p[0];
        if (kind > static_cast<std::uint8_t>(FaultKind::SlowToFall))
          throw StoreError("spill: unknown member fault kind");
        Fault f;
        f.kind = static_cast<FaultKind>(kind);
        f.net = read_u32(p + 4);
        f.pin = read_u32(p + 8);
        f.bridge_net = read_u32(p + 12);
        key.members.push_back(f);
        p += kMemberBytes;
      }
      Extent ext;
      ext.offset = offset + kRecordPrefixBytes;
      ext.payload_bytes = payload_bytes;
      ext.checksum = checksum;
      // Last write wins, though put() never duplicates a key itself.
      index_[std::move(key)] = ext;
    } catch (const StoreError&) {
      // An in-place corrupt record with a valid checksum cannot happen by
      // accident; treat the rest of the file as untrustworthy too.
      break;
    }
    offset += kRecordPrefixBytes + payload_bytes;
  }
  if (offset < file_size) {
    dropped_ = 1;
    spill_metrics().dropped_records.inc();
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) return false;
  }
  bytes_ = offset;
  return true;
}

CompositeSpill::~CompositeSpill() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    spill_metrics().entries.add(-static_cast<std::int64_t>(index_.size()));
    spill_metrics().bytes.add(-static_cast<std::int64_t>(bytes_));
    ::close(fd_);
    fd_ = -1;
  }
}

void CompositeSpill::detach_locked() {
  if (fd_ >= 0) {
    spill_metrics().entries.add(-static_cast<std::int64_t>(index_.size()));
    spill_metrics().bytes.add(-static_cast<std::int64_t>(bytes_));
    ::close(fd_);
    fd_ = -1;
  }
  index_.clear();
}

void CompositeSpill::put(std::span<const Fault> members, std::size_t window,
                         const ErrorSignature& sig) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;  // detached: fail-open no-op
  Key key;
  key.members.assign(members.begin(), members.end());
  key.window = window;
  if (window == 0 || window > n_patterns_ || members.empty() ||
      index_.count(key) != 0) {
    ++declined_;
    spill_metrics().declined.inc();
    return;
  }

  std::vector<std::uint8_t> payload;
  put_varint(payload, key.window);
  put_varint(payload, key.members.size());
  for (const Fault& f : key.members) {
    payload.push_back(static_cast<std::uint8_t>(f.kind));
    payload.push_back(0);
    payload.push_back(0);
    payload.push_back(0);
    put_u32(payload, f.net);
    put_u32(payload, f.pin);
    put_u32(payload, f.bridge_net);
  }
  std::vector<std::uint8_t> postings;
  const std::size_t n_positions = encode_postings(sig, n_outputs_, postings);
  put_varint(payload, n_positions);
  payload.insert(payload.end(), postings.begin(), postings.end());

  std::vector<std::uint8_t> record;
  record.reserve(kRecordPrefixBytes + payload.size());
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, fnv1a(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  if (max_bytes_ != 0 && bytes_ + record.size() > max_bytes_) {
    ++declined_;
    spill_metrics().declined.inc();
    return;
  }
  // One write(2) per record to the O_APPEND descriptor: a crash tears at
  // most this record, and the checksum scan drops it on the next open.
  if (!write_exact(fd_, record.data(), record.size())) {
    spill_metrics().open_failures.inc();
    detach_locked();
    return;
  }
  Extent ext;
  ext.offset = bytes_ + kRecordPrefixBytes;
  ext.payload_bytes = static_cast<std::uint32_t>(payload.size());
  ext.checksum = read_u64(record.data() + 4);
  bytes_ += record.size();
  index_[std::move(key)] = ext;
  ++writes_;
  spill_metrics().writes.inc();
  spill_metrics().entries.add(1);
  spill_metrics().bytes.add(static_cast<std::int64_t>(record.size()));
}

std::optional<ErrorSignature> CompositeSpill::get(
    std::span<const Fault> members, std::size_t window) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return std::nullopt;
  Key key;
  key.members.assign(members.begin(), members.end());
  key.window = window;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    spill_metrics().misses.inc();
    return std::nullopt;
  }
  const Extent ext = it->second;
  std::vector<std::uint8_t> payload(ext.payload_bytes);
  try {
    if (!pread_exact(fd_, payload.data(), payload.size(), ext.offset))
      throw StoreError("spill: cannot read record payload");
    if (fnv1a(payload.data(), payload.size()) != ext.checksum)
      throw StoreError("spill: record checksum mismatch");
    const std::uint8_t* p = payload.data();
    const std::uint8_t* end = p + payload.size();
    const std::uint64_t stored_window = get_varint(p, end);
    const std::uint64_t n_members = get_varint(p, end);
    if (stored_window != window || n_members != key.members.size() ||
        n_members > (static_cast<std::uint64_t>(end - p)) / kMemberBytes)
      throw StoreError("spill: record key mismatch");
    p += n_members * kMemberBytes;  // members were matched via the index
    const std::uint64_t n_positions = get_varint(p, end);
    // Every encoded position is at least one byte.
    if (n_positions > static_cast<std::uint64_t>(end - p))
      throw StoreError("spill: implausible position count");
    ErrorSignature sig = decode_postings(
        p, end, static_cast<std::uint32_t>(n_positions), window, n_outputs_);
    if (p != end) throw StoreError("spill: record has trailing bytes");
    ++hits_;
    spill_metrics().hits.inc();
    return sig;
  } catch (const std::exception&) {
    // The record passed its checksum at open/put time; a failure here
    // means the file changed under us — stop trusting all of it.
    spill_metrics().decode_failures.inc();
    detach_locked();
    return std::nullopt;
  }
}

SpillStats CompositeSpill::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SpillStats s;
  s.entries = index_.size();
  s.bytes = bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.writes = writes_;
  s.declined = declined_;
  s.dropped = dropped_;
  s.detached = fd_ < 0;
  return s;
}

bool CompositeSpill::detached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ < 0;
}

}  // namespace mdd::store
