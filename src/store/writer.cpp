#include "store/writer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "fsim/fsim.hpp"
#include "obs/metrics.hpp"

namespace mdd::store {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::vector<Fault> default_store_universe(const Netlist& netlist,
                                          const StoreUniverseConfig& config) {
  std::vector<Fault> faults = all_stuck_at_faults(netlist);
  if (config.include_bridges) {
    BridgeUniverseConfig bc;
    bc.count = config.bridge_pairs;
    bc.seed = config.bridge_seed;
    bc.include_wired = config.include_wired;
    for (const Fault& f : sample_bridge_faults(netlist, bc))
      faults.push_back(f);
  }
  return faults;
}

DictWriter::DictWriter(const Netlist& netlist, const PatternSet& patterns)
    : netlist_(&netlist),
      patterns_(&patterns),
      netlist_hash_(netlist_content_hash(netlist)),
      patterns_hash_(patterns_content_hash(patterns)) {
  if (patterns.n_signals() != netlist.n_inputs())
    throw std::invalid_argument(
        "DictWriter: pattern width does not match netlist inputs");
}

BuildStats DictWriter::write(const std::string& path,
                             std::span<const Fault> faults,
                             const ExecPolicy& exec) const {
  BuildStats stats;

  std::vector<Fault> sorted(faults.begin(), faults.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const auto t_sim = std::chrono::steady_clock::now();
  const FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<ErrorSignature> signatures = fsim.signatures(sorted, exec);
  stats.simulate_seconds = seconds_since(t_sim);

  const auto t_enc = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> payload;
  std::vector<FaultRecord> records;
  records.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    FaultRecord rec;
    rec.fault = sorted[i];
    rec.offset = payload.size();
    rec.n_positions = static_cast<std::uint32_t>(
        encode_postings(signatures[i], netlist_->n_outputs(), payload));
    rec.n_bytes = static_cast<std::uint32_t>(payload.size() - rec.offset);
    rec.n_failing =
        static_cast<std::uint32_t>(signatures[i].n_failing_patterns());
    stats.n_error_bits += rec.n_positions;
    records.push_back(rec);
  }

  std::vector<std::uint8_t> body;  // index + postings (the hashed part)
  body.reserve(records.size() * kRecordBytes + payload.size());
  for (const FaultRecord& rec : records) append_record(body, rec);
  body.insert(body.end(), payload.begin(), payload.end());

  StoreHeader header;
  header.netlist_hash = netlist_hash_;
  header.patterns_hash = patterns_hash_;
  header.n_faults = records.size();
  header.n_patterns = patterns_->n_patterns();
  header.n_outputs = netlist_->n_outputs();
  header.payload_bytes = payload.size();
  header.content_hash = fnv1a(body.data(), body.size());

  std::vector<std::uint8_t> file;
  file.reserve(kHeaderBytes + body.size());
  append_header(file, header);
  file.insert(file.end(), body.begin(), body.end());
  stats.encode_seconds = seconds_since(t_enc);

  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw StoreError("store: cannot create " + tmp);
  const bool written =
      std::fwrite(file.data(), 1, file.size(), fp) == file.size() &&
      std::fflush(fp) == 0;
  const bool closed = std::fclose(fp) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    throw StoreError("store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StoreError("store: cannot rename " + tmp + " into place");
  }

  stats.n_faults = records.size();
  stats.payload_bytes = payload.size();
  stats.file_bytes = file.size();
  obs::registry().counter("store.builds").inc();
  return stats;
}

}  // namespace mdd::store
