// openmdd — persistent fault-dictionary store: mmap-served reader.
//
// `DictReader` maps a store file read-only and serves signature lookups
// straight off the mapping: fault lookup is a binary search over the
// fixed-width index records in place, and decoding reconstructs an
// `ErrorSignature` from the fault's varint posting list without ever
// materializing the file in heap memory — the OS page cache is the only
// resident copy, shared by every process mapping the same store.
//
// Validation is two-layered. open() proves the file self-consistent:
// magic, format version, exact size accounting, content hash over index +
// postings (catches truncation and bit flips), sorted index, in-bounds
// posting extents. validate_for() then proves it is the *right* store by
// comparing the header's netlist/patterns content hashes against the live
// objects. Decoding re-checks every bound anyway, so even an adversarial
// file degrades to a StoreError, never an out-of-bounds read.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "fsim/fsim.hpp"
#include "store/format.hpp"

namespace mdd::store {

class DictReader {
 public:
  /// Maps and validates `path`. Throws StoreError on any structural
  /// problem (also counted on the `store.open_failures` metric).
  static std::shared_ptr<const DictReader> open(const std::string& path);

  ~DictReader();
  DictReader(const DictReader&) = delete;
  DictReader& operator=(const DictReader&) = delete;

  const std::string& path() const { return path_; }
  const StoreHeader& header() const { return header_; }
  std::size_t n_entries() const { return header_.n_faults; }
  std::size_t bytes_mapped() const { return size_; }
  std::size_t n_patterns() const { return header_.n_patterns; }
  std::size_t n_outputs() const { return header_.n_outputs; }

  /// Total stored error bits (summed over the index; no decoding).
  std::size_t total_error_bits() const;

  /// True if the store was built for exactly this (netlist, patterns).
  bool matches(const Netlist& netlist, const PatternSet& patterns) const;
  /// Throws StoreError (with which hash differs) when !matches().
  void validate_for(const Netlist& netlist,
                    const PatternSet& patterns) const;

  /// Index of `fault`'s record, if the store holds it (binary search).
  std::optional<std::size_t> find(const Fault& fault) const;
  Fault fault_at(std::size_t i) const;

  /// Record `i`'s decoded index entry.
  FaultRecord record_at(std::size_t i) const;
  /// Record `i`'s raw encoded posting bytes, straight off the mapping
  /// (valid while the reader lives). The refresh fold carries these over
  /// verbatim so unchanged faults are never re-simulated or re-encoded.
  std::span<const std::uint8_t> postings_at(std::size_t i) const;

  /// Reconstructs the full-window signature of record `i`. Byte-identical
  /// to what FaultSimulator::signature produced at build time; throws
  /// StoreError on a malformed posting list.
  ErrorSignature decode(std::size_t i) const;

  /// find() + decode() in one step.
  std::optional<ErrorSignature> lookup(const Fault& fault) const;

  /// Decodes every record with full checks (dict verify): returns the
  /// total decoded error bits; throws StoreError on the first problem.
  std::size_t verify_all() const;

 private:
  DictReader() = default;
  const std::uint8_t* record_ptr(std::size_t i) const;
  const std::uint8_t* payload_base() const;

  std::string path_;
  StoreHeader header_{};
  const std::uint8_t* data_ = nullptr;  ///< mmap base
  std::size_t size_ = 0;
  bool gauges_registered_ = false;  ///< bytes/entries gauges bumped
};

}  // namespace mdd::store
