#include "store/refresh.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "fsim/fsim.hpp"
#include "obs/metrics.hpp"
#include "store/journal.hpp"
#include "store/reader.hpp"

namespace mdd::store {

namespace {

struct RefreshMetrics {
  obs::Counter& refreshes = obs::registry().counter("store.refreshes");
  obs::Counter& faults_added =
      obs::registry().counter("store.refresh_faults_added");
};

RefreshMetrics& refresh_metrics() {
  static RefreshMetrics m;
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Same tmp+rename protocol as DictWriter::write.
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw StoreError("store: cannot create " + tmp);
  const bool written =
      std::fwrite(bytes.data(), 1, bytes.size(), fp) == bytes.size() &&
      std::fflush(fp) == 0;
  const bool closed = std::fclose(fp) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    throw StoreError("store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StoreError("store: cannot rename " + tmp + " into place");
  }
}

struct LockMetrics {
  /// try_acquire calls that found another fold in progress (the caller
  /// skipped its round — the holder will fold those faults instead).
  obs::Counter& busy = obs::registry().counter("store.refresh_lock_busy");
  /// Lock files that could not be created/locked at all — folds proceed
  /// unguarded (fail-open), but the condition is worth alerting on.
  obs::Counter& unavailable =
      obs::registry().counter("store.refresh_lock_unavailable");
};

LockMetrics& lock_metrics() {
  static LockMetrics m;
  return m;
}

}  // namespace

RefreshLock RefreshLock::acquire_impl(const std::string& lock_path,
                                      bool block) {
  const int fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    lock_metrics().unavailable.inc();
    return {};
  }
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX | (block ? 0 : LOCK_NB));
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) return RefreshLock(fd, RefreshLock::State::held);
  ::close(fd);
  if (!block && errno == EWOULDBLOCK) {
    lock_metrics().busy.inc();
    return RefreshLock(-1, RefreshLock::State::busy);
  }
  lock_metrics().unavailable.inc();
  return {};
}

RefreshLock& RefreshLock::operator=(RefreshLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
    state_ = other.state_;
  }
  return *this;
}

RefreshLock::~RefreshLock() { release(); }

void RefreshLock::release() {
  if (fd_ >= 0) {
    ::close(fd_);  // closing the descriptor drops the flock
    fd_ = -1;
  }
  state_ = State::unavailable;
}

std::string refresh_lock_path_for(const std::string& dir,
                                  const Netlist& netlist,
                                  const PatternSet& patterns) {
  return store_path_for(dir, netlist, patterns) + ".lock";
}

RefreshLock RefreshLock::try_acquire(const std::string& dir,
                                     const Netlist& netlist,
                                     const PatternSet& patterns) {
  return acquire_impl(refresh_lock_path_for(dir, netlist, patterns), false);
}

RefreshLock RefreshLock::acquire(const std::string& dir,
                                 const Netlist& netlist,
                                 const PatternSet& patterns) {
  return acquire_impl(refresh_lock_path_for(dir, netlist, patterns), true);
}

RefreshLock RefreshLock::try_acquire_path(const std::string& lock_path) {
  return acquire_impl(lock_path, false);
}

RefreshLock RefreshLock::acquire_path(const std::string& lock_path) {
  return acquire_impl(lock_path, true);
}

RefreshStats fold_into_store(const Netlist& netlist,
                             const PatternSet& patterns,
                             const std::string& dir,
                             std::span<const Fault> extra,
                             const ExecPolicy& exec) {
  RefreshStats out;
  out.n_offered = extra.size();
  const std::string path = store_path_for(dir, netlist, patterns);

  std::shared_ptr<const DictReader> existing;
  try {
    auto reader = DictReader::open(path);
    reader->validate_for(netlist, patterns);
    existing = std::move(reader);
  } catch (const StoreError&) {
    existing = nullptr;  // absent or unreadable → rebuild below
  }

  std::vector<Fault> fresh(extra.begin(), extra.end());
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::erase_if(fresh, [&](const Fault& f) {
    try {
      validate_fault(f, netlist);
    } catch (const std::invalid_argument&) {
      ++out.n_invalid;
      return true;
    }
    return existing != nullptr && existing->find(f).has_value();
  });
  out.n_new = fresh.size();

  if (existing == nullptr) {
    // No usable store: first build (or recovery from corruption) — the
    // default universe plus everything the workload taught us.
    out.rebuilt = true;
    std::vector<Fault> universe = default_store_universe(netlist);
    universe.insert(universe.end(), fresh.begin(), fresh.end());
    out.build = DictWriter(netlist, patterns).write(path, universe, exec);
    out.wrote = true;
    refresh_metrics().refreshes.inc();
    refresh_metrics().faults_added.inc(out.n_new);
    return out;
  }

  out.n_existing = existing->n_entries();
  if (fresh.empty()) return out;  // nothing to learn: healthy no-op

  const auto t_sim = std::chrono::steady_clock::now();
  const FaultSimulator fsim(netlist, patterns);
  const std::vector<ErrorSignature> sigs = fsim.signatures(fresh, exec);
  out.build.simulate_seconds = seconds_since(t_sim);

  // Merge the sorted existing index with the sorted fresh faults into a
  // new body. Posting lists are self-contained (deltas never cross a
  // record), so existing ones are copied verbatim off the mapping.
  const auto t_enc = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> payload;
  std::vector<FaultRecord> records;
  records.reserve(out.n_existing + fresh.size());
  std::size_t i = 0, j = 0;
  while (i < out.n_existing || j < fresh.size()) {
    const bool take_existing =
        j >= fresh.size() ||
        (i < out.n_existing && existing->fault_at(i) < fresh[j]);
    FaultRecord rec;
    rec.offset = payload.size();
    if (take_existing) {
      rec = existing->record_at(i);
      rec.offset = payload.size();
      const auto raw = existing->postings_at(i);
      payload.insert(payload.end(), raw.begin(), raw.end());
      ++i;
    } else {
      rec.fault = fresh[j];
      rec.n_positions = static_cast<std::uint32_t>(
          encode_postings(sigs[j], netlist.n_outputs(), payload));
      rec.n_bytes = static_cast<std::uint32_t>(payload.size() - rec.offset);
      rec.n_failing =
          static_cast<std::uint32_t>(sigs[j].n_failing_patterns());
      ++j;
    }
    out.build.n_error_bits += rec.n_positions;
    records.push_back(rec);
  }

  std::vector<std::uint8_t> body;
  body.reserve(records.size() * kRecordBytes + payload.size());
  for (const FaultRecord& rec : records) append_record(body, rec);
  body.insert(body.end(), payload.begin(), payload.end());

  StoreHeader header;
  header.netlist_hash = existing->header().netlist_hash;
  header.patterns_hash = existing->header().patterns_hash;
  header.n_faults = records.size();
  header.n_patterns = patterns.n_patterns();
  header.n_outputs = netlist.n_outputs();
  header.payload_bytes = payload.size();
  header.content_hash = fnv1a(body.data(), body.size());

  std::vector<std::uint8_t> file;
  file.reserve(kHeaderBytes + body.size());
  append_header(file, header);
  file.insert(file.end(), body.begin(), body.end());
  out.build.encode_seconds = seconds_since(t_enc);
  out.build.n_faults = records.size();
  out.build.payload_bytes = payload.size();
  out.build.file_bytes = file.size();

  // The old mapping stays valid for readers that hold it (rename drops
  // the directory entry, not the inode); the next open serves the merge.
  atomic_write_file(path, file);
  out.wrote = true;
  refresh_metrics().refreshes.inc();
  refresh_metrics().faults_added.inc(out.n_new);
  return out;
}

RefreshStats refresh_store(const Netlist& netlist, const PatternSet& patterns,
                           const std::string& dir, const ExecPolicy& exec) {
  // Wait for any in-flight fold (a daemon worker's refresh thread), THEN
  // read the journal: the snapshot must postdate the holder's compact or
  // its folded faults would be folded twice (harmless) and this fold's
  // store read could predate the holder's rename (the lost update).
  const RefreshLock lock = RefreshLock::acquire(dir, netlist, patterns);
  const std::uint64_t nh = netlist_content_hash(netlist);
  const std::uint64_t ph = patterns_content_hash(patterns);
  const std::string journal_path = journal_path_for(dir, netlist, patterns);
  const JournalContents journal = read_journal(journal_path, nh, ph);
  RefreshStats out =
      fold_into_store(netlist, patterns, dir, journal.faults, exec);
  if (!journal.faults.empty() || journal.n_skipped > 0)
    reset_journal_file(journal_path, nh, ph);
  return out;
}

}  // namespace mdd::store
