// openmdd — composite-signature spill (disk tier of the CompositeMemo).
//
// Solo signatures already survive restarts through the mmap'd `.mdds`
// store; composite (multiplet) signatures lived only in the bounded
// in-memory CompositeMemo and evaporated on every restart or eviction.
// The spill closes that gap: a binary append-only sidecar next to the
// store file holds one record per composite — the sorted member set, the
// window it was simulated over, and the delta-varint posting list of its
// failing (pattern, PO) bits — giving composites the same
// memory → disk → simulate ladder the SignatureMemo has.
//
// Layout (all integers little-endian):
//
//   [ 0, 48)  header: magic "MDDCSPL1", u32 version, u32 reserved,
//             u64 netlist_hash, u64 patterns_hash, u64 n_outputs,
//             u64 reserved
//   records:  u32 payload_bytes, u64 fnv1a(payload), payload
//   payload:  varint window_patterns, varint n_members,
//             n_members × (u8 kind, 3×u8 pad, u32 net, u32 pin,
//                          u32 bridge_net),
//             varint n_positions, delta-varint positions
//             (`pattern * n_outputs + po`, strictly increasing)
//
// Records are written with one write(2) each to an O_APPEND descriptor;
// a crash tears at most the final record, which the checksummed
// scan-on-open detects and truncates away. Reads go through pread(2) and
// re-verify the checksum, so a spill can never serve silently corrupted
// bits.
//
// Fail-open contract: like the journal, the spill is an optimization
// tier, never a dependency. Open problems (bad header, wrong hashes,
// I/O errors) detach the instance — puts and gets become counted no-ops;
// a torn tail is truncated; a record that fails its checksum or decode at
// get() time detaches. No spill condition ever fails a diagnosis.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "store/format.hpp"

namespace mdd::store {

/// Aggregate counters of one spill instance (surfaced via /stats).
struct SpillStats {
  std::size_t entries = 0;        ///< indexed composite records
  std::size_t bytes = 0;          ///< current file size
  std::uint64_t hits = 0;         ///< get() served from disk
  std::uint64_t misses = 0;       ///< get() with no such key
  std::uint64_t writes = 0;       ///< put() appended
  std::uint64_t declined = 0;     ///< put() refused (cap / duplicate)
  std::uint64_t dropped = 0;      ///< corrupt records discarded at open
  bool detached = false;
};

/// Disk tier of the CompositeMemo for one (netlist, patterns) pair.
/// Keys are (sorted member faults, window_patterns) — exactly the
/// CompositeKey identity, passed as a span so the store layer stays
/// independent of the diagnosis layer. All methods are thread-safe and
/// never throw.
class CompositeSpill {
 public:
  /// Opens (creating if absent) the spill at `path`. A pre-existing file
  /// is scanned record by record to build the in-memory index; a corrupt
  /// tail is truncated (dropped records counted); a bad header or
  /// mismatched content hashes detach the instance. Never throws.
  CompositeSpill(std::string path, std::uint64_t netlist_hash,
                 std::uint64_t patterns_hash, std::uint64_t n_patterns,
                 std::uint64_t n_outputs, std::size_t max_bytes);
  ~CompositeSpill();

  CompositeSpill(const CompositeSpill&) = delete;
  CompositeSpill& operator=(const CompositeSpill&) = delete;

  /// Appends (members, window) → sig unless the key is already present,
  /// the byte cap would be exceeded, or the spill is detached. `members`
  /// must be sorted (CompositeKey already sorts); `sig` must have shape
  /// (window, n_outputs).
  void put(std::span<const Fault> members, std::size_t window,
           const ErrorSignature& sig);

  /// Reads the signature stored for (members, window), re-verifying the
  /// record checksum and every decode bound. Any corruption detaches the
  /// spill and reports a miss.
  std::optional<ErrorSignature> get(std::span<const Fault> members,
                                    std::size_t window);

  SpillStats stats() const;
  bool detached() const;
  const std::string& path() const { return path_; }

 private:
  struct Extent {
    std::uint64_t offset = 0;  ///< of the payload (past the record prefix)
    std::uint32_t payload_bytes = 0;
    std::uint64_t checksum = 0;
  };
  struct Key {
    std::vector<Fault> members;
    std::uint64_t window = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  void detach_locked();  ///< caller holds mutex_
  bool scan_existing_locked(std::uint64_t file_size);

  const std::string path_;
  const std::uint64_t netlist_hash_;
  const std::uint64_t patterns_hash_;
  const std::uint64_t n_patterns_;
  const std::uint64_t n_outputs_;
  const std::size_t max_bytes_;

  mutable std::mutex mutex_;
  int fd_ = -1;  ///< O_APPEND descriptor; -1 once detached
  std::uint64_t bytes_ = 0;
  std::unordered_map<Key, Extent, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t declined_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mdd::store
