// openmdd — persistent fault-dictionary store: on-disk format (v1).
//
// A store file holds the full-window error signatures of one
// (netlist, pattern set) pair as delta-encoded posting lists — per fault,
// the sorted global bit positions `pattern * n_outputs + po` of its
// failing (pattern, PO) bits — so a daemon restart can serve solo
// signatures by open-mmap-decode instead of simulating the whole fault
// universe again. Layout (all integers little-endian):
//
//   [ 0, 80)   header (fixed size, see StoreHeader)
//   [80, 80 + n_faults*40)   fault index: fixed 40-byte records, sorted
//                            by Fault ordering (binary-searchable in situ)
//   [.., end)  postings region: per fault, varint-encoded position deltas
//
// The header carries content hashes of the netlist (structure + PO order)
// and the pattern set, so a store can never silently serve the wrong
// circuit; `content_hash` covers every byte after the header, so random
// corruption (truncation, bit flips) is detected at open time. Decoding is
// additionally bounds-checked bit by bit — a hostile file can make open()
// or decode() throw StoreError, never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "fsim/fsim.hpp"
#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace mdd::store {

/// Any structural problem with a store file: wrong magic/version/hash,
/// truncation, out-of-bounds offsets, malformed varints. The serving layer
/// catches it, counts a metric, and falls back to simulation.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kMagic[8] = {'M', 'D', 'D', 'S', 'T', 'O', 'R', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 80;
inline constexpr std::size_t kRecordBytes = 40;
/// Store files are named <netlist_hash>-<patterns_hash>.mdds inside the
/// store directory, so one directory serves many circuits.
inline constexpr const char* kStoreExtension = ".mdds";
/// Sidecar of a store: the append-only journal of store-missed faults the
/// serving layer simulated (workload-learned universe; store/journal.hpp).
inline constexpr const char* kJournalExtension = ".journal";
/// Sidecar of a store: the composite-signature spill tier
/// (store/spill.hpp), so evicted multiplet composites survive restarts.
inline constexpr const char* kSpillExtension = ".cspill";

/// Decoded fixed-size header. On disk the fields follow the magic at the
/// offsets documented inline (write_header/read_header are the codec).
struct StoreHeader {
  std::uint32_t format_version = kFormatVersion;  // offset 8
  std::uint64_t netlist_hash = 0;                 // offset 16
  std::uint64_t patterns_hash = 0;                // offset 24
  std::uint64_t n_faults = 0;                     // offset 32
  std::uint64_t n_patterns = 0;                   // offset 40
  std::uint64_t n_outputs = 0;                    // offset 48
  std::uint64_t payload_bytes = 0;                // offset 56 (postings)
  std::uint64_t content_hash = 0;                 // offset 64 (index+postings)
};

/// One fault-index record (40 bytes on disk): the fault identity, where
/// its posting list lives inside the postings region, and the decoded
/// shape (for exact reservation and cheap inspect/verify statistics).
struct FaultRecord {
  Fault fault{};
  std::uint64_t offset = 0;        ///< into the postings region
  std::uint32_t n_bytes = 0;       ///< encoded posting-list bytes
  std::uint32_t n_positions = 0;   ///< error bits
  std::uint32_t n_failing = 0;     ///< failing patterns
};

// ---- little-endian scalar IO ---------------------------------------------

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}
inline std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
inline std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// ---- varint (LEB128, unsigned 64-bit) ------------------------------------

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from [*p, end), advancing *p past it. Throws
/// StoreError on buffer overrun or a value wider than 64 bits.
inline std::uint64_t get_varint(const std::uint8_t*& p,
                                const std::uint8_t* end) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (p >= end) throw StoreError("store: truncated varint");
    const std::uint8_t byte = *p++;
    if (shift == 63 && (byte & 0x7e) != 0)
      throw StoreError("store: varint exceeds 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift > 0 && byte == 0)
        throw StoreError("store: non-canonical varint");
      return v;
    }
  }
  throw StoreError("store: varint exceeds 64 bits");
}

// ---- content hashing (FNV-1a 64) -----------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  return h;
}

/// Structural content hash of a netlist: gate kinds, fanin lists, and the
/// primary-output order — exactly what error signatures depend on. Net
/// names are excluded (renaming does not change responses).
std::uint64_t netlist_content_hash(const Netlist& netlist);

/// Content hash of a pattern set (shape + bits; padding positions in the
/// final block are masked out so equal pattern sets always hash equal).
std::uint64_t patterns_content_hash(const PatternSet& patterns);

/// File name "<netlist_hash>-<patterns_hash>.mdds" (hashes in lowercase
/// hex, zero-padded to 16 digits).
std::string store_file_name(std::uint64_t netlist_hash,
                            std::uint64_t patterns_hash);

/// Full path of the store file for (netlist, patterns) inside `dir`.
std::string store_path_for(const std::string& dir, const Netlist& netlist,
                           const PatternSet& patterns);

/// "<netlist_hash>-<patterns_hash><extension>" — the naming scheme shared
/// by the store file and its sidecars (journal, composite spill).
std::string sidecar_file_name(std::uint64_t netlist_hash,
                              std::uint64_t patterns_hash,
                              std::string_view extension);

/// Full path of the store-miss journal for (netlist, patterns) in `dir`.
std::string journal_path_for(const std::string& dir, const Netlist& netlist,
                             const PatternSet& patterns);

/// Full path of the composite spill for (netlist, patterns) in `dir`.
std::string spill_path_for(const std::string& dir, const Netlist& netlist,
                           const PatternSet& patterns);

// ---- posting-list codec --------------------------------------------------

/// Delta-varint encodes the sorted global bit positions of `sig`
/// (`pattern * n_outputs + po`) into `out`; returns the number of
/// positions written. Shared by the store writer, the refresh fold, and
/// the composite spill tier.
std::size_t encode_postings(const ErrorSignature& sig,
                            std::uint64_t n_outputs,
                            std::vector<std::uint8_t>& out);

/// Reconstructs an ErrorSignature of shape (n_patterns, n_outputs) from
/// `n_positions` delta-varint positions starting at *p, advancing *p past
/// them. Every bound and delta is checked; throws StoreError on malformed
/// input. Byte-identical to what encode_postings consumed.
ErrorSignature decode_postings(const std::uint8_t*& p,
                               const std::uint8_t* end,
                               std::uint32_t n_positions,
                               std::uint64_t n_patterns,
                               std::uint64_t n_outputs);

// ---- record / header codec -----------------------------------------------

void append_header(std::vector<std::uint8_t>& out, const StoreHeader& header);
/// Parses and sanity-checks magic + version; `size` is the full file size.
/// Throws StoreError on malformed input.
StoreHeader read_header(const std::uint8_t* data, std::size_t size);

void append_record(std::vector<std::uint8_t>& out, const FaultRecord& rec);
FaultRecord read_record(const std::uint8_t* p);

}  // namespace mdd::store
