#include "store/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <tuple>
#include <vector>

#include "obs/metrics.hpp"

namespace mdd::store {

namespace {

struct StoreMetrics {
  obs::Counter& opens = obs::registry().counter("store.opens");
  obs::Counter& open_failures =
      obs::registry().counter("store.open_failures");
  obs::Counter& decodes = obs::registry().counter("store.decodes");
  obs::Gauge& bytes_mapped = obs::registry().gauge("store.bytes_mapped");
  obs::Gauge& entries_mapped = obs::registry().gauge("store.entries_mapped");
};

StoreMetrics& store_metrics() {
  static StoreMetrics m;
  return m;
}

auto fault_key(const Fault& f) {
  return std::make_tuple(f.kind, f.net, f.pin, f.bridge_net);
}

}  // namespace

std::shared_ptr<const DictReader> DictReader::open(const std::string& path) {
  // shared_ptr with the private ctor: wrap a raw new.
  std::shared_ptr<DictReader> reader(new DictReader());
  reader->path_ = path;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    store_metrics().open_failures.inc();
    throw StoreError("store: cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    store_metrics().open_failures.inc();
    throw StoreError("store: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* map = size > 0
                  ? ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0)
                  : MAP_FAILED;
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    store_metrics().open_failures.inc();
    throw StoreError("store: cannot mmap " + path);
  }
  reader->data_ = static_cast<const std::uint8_t*>(map);
  reader->size_ = size;
  // From here the reader owns the mapping; a validation throw unmaps via
  // the destructor.
  try {
    reader->header_ = read_header(reader->data_, size);
    // Index invariants: strictly sorted (binary-searchable), extents
    // back-to-back inside the postings region. Back-to-back is stricter
    // than in-bounds but it is what the writer produces, and it leaves an
    // adversarial file no slack space to hide bytes in.
    std::uint64_t expected_offset = 0;
    const std::uint64_t n = reader->header_.n_faults;
    for (std::uint64_t i = 0; i < n; ++i) {
      const FaultRecord rec = read_record(reader->record_ptr(i));
      if (i > 0) {
        const FaultRecord prev = read_record(reader->record_ptr(i - 1));
        if (!(fault_key(prev.fault) < fault_key(rec.fault)))
          throw StoreError("store: fault index not strictly sorted");
      }
      if (rec.offset != expected_offset)
        throw StoreError("store: posting extents not contiguous");
      expected_offset += rec.n_bytes;
      if (expected_offset > reader->header_.payload_bytes)
        throw StoreError("store: posting extent exceeds payload");
      if (rec.n_positions < rec.n_failing)
        throw StoreError("store: record bit count below pattern count");
    }
    if (expected_offset != reader->header_.payload_bytes)
      throw StoreError("store: payload has trailing bytes");
    const std::uint64_t hash =
        fnv1a(reader->data_ + kHeaderBytes, size - kHeaderBytes);
    if (hash != reader->header_.content_hash)
      throw StoreError("store: content hash mismatch (corrupt file): " +
                       path);
  } catch (...) {
    store_metrics().open_failures.inc();
    throw;
  }
  store_metrics().opens.inc();
  store_metrics().bytes_mapped.add(static_cast<std::int64_t>(size));
  store_metrics().entries_mapped.add(
      static_cast<std::int64_t>(reader->header_.n_faults));
  reader->gauges_registered_ = true;
  return reader;
}

DictReader::~DictReader() {
  if (gauges_registered_) {
    store_metrics().bytes_mapped.add(-static_cast<std::int64_t>(size_));
    store_metrics().entries_mapped.add(
        -static_cast<std::int64_t>(header_.n_faults));
  }
  if (data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
}

const std::uint8_t* DictReader::record_ptr(std::size_t i) const {
  return data_ + kHeaderBytes + i * kRecordBytes;
}

const std::uint8_t* DictReader::payload_base() const {
  return data_ + kHeaderBytes + header_.n_faults * kRecordBytes;
}

std::size_t DictReader::total_error_bits() const {
  std::size_t bits = 0;
  for (std::uint64_t i = 0; i < header_.n_faults; ++i)
    bits += read_record(record_ptr(i)).n_positions;
  return bits;
}

bool DictReader::matches(const Netlist& netlist,
                         const PatternSet& patterns) const {
  return header_.netlist_hash == netlist_content_hash(netlist) &&
         header_.patterns_hash == patterns_content_hash(patterns) &&
         header_.n_patterns == patterns.n_patterns() &&
         header_.n_outputs == netlist.n_outputs();
}

void DictReader::validate_for(const Netlist& netlist,
                              const PatternSet& patterns) const {
  if (header_.netlist_hash != netlist_content_hash(netlist))
    throw StoreError("store: netlist content hash mismatch (store built "
                     "for a different circuit): " +
                     path_);
  if (header_.patterns_hash != patterns_content_hash(patterns))
    throw StoreError("store: patterns content hash mismatch (store built "
                     "for a different pattern set): " +
                     path_);
  if (header_.n_patterns != patterns.n_patterns() ||
      header_.n_outputs != netlist.n_outputs())
    throw StoreError("store: signature shape mismatch: " + path_);
}

std::optional<std::size_t> DictReader::find(const Fault& fault) const {
  const auto key = fault_key(fault);
  std::size_t lo = 0, hi = header_.n_faults;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const FaultRecord rec = read_record(record_ptr(mid));
    if (fault_key(rec.fault) < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < header_.n_faults &&
      fault_key(read_record(record_ptr(lo)).fault) == key)
    return lo;
  return std::nullopt;
}

Fault DictReader::fault_at(std::size_t i) const {
  return read_record(record_ptr(i)).fault;
}

FaultRecord DictReader::record_at(std::size_t i) const {
  if (i >= header_.n_faults)
    throw StoreError("store: record index out of range");
  return read_record(record_ptr(i));
}

std::span<const std::uint8_t> DictReader::postings_at(std::size_t i) const {
  const FaultRecord rec = record_at(i);
  return {payload_base() + rec.offset, rec.n_bytes};
}

ErrorSignature DictReader::decode(std::size_t i) const {
  if (i >= header_.n_faults)
    throw StoreError("store: record index out of range");
  const FaultRecord rec = read_record(record_ptr(i));
  const std::uint8_t* p = payload_base() + rec.offset;
  const std::uint8_t* end = p + rec.n_bytes;

  ErrorSignature sig = decode_postings(p, end, rec.n_positions,
                                       header_.n_patterns, header_.n_outputs);
  if (p != end)
    throw StoreError("store: posting list has trailing bytes");
  if (sig.n_failing_patterns() != rec.n_failing)
    throw StoreError("store: decoded pattern count mismatch");
  store_metrics().decodes.inc();
  return sig;
}

std::optional<ErrorSignature> DictReader::lookup(const Fault& fault) const {
  const auto i = find(fault);
  if (!i) return std::nullopt;
  return decode(*i);
}

std::size_t DictReader::verify_all() const {
  std::size_t bits = 0;
  for (std::uint64_t i = 0; i < header_.n_faults; ++i) {
    const ErrorSignature sig = decode(i);
    if (sig.n_error_bits() != read_record(record_ptr(i)).n_positions)
      throw StoreError("store: decoded bit count mismatch at record " +
                       std::to_string(i));
    bits += sig.n_error_bits();
  }
  return bits;
}

}  // namespace mdd::store
