// openmdd — store-miss journal (workload-learned fault universes).
//
// The persistent dictionary's deterministically sampled bridge universe
// cannot anticipate the dominant-bridge candidates the no-assumptions
// extractor invents from observed failing behavior, so a served pass pays
// a simulation for every such miss. The journal closes that gap: the
// serving layer appends the identity of every fault it had to simulate
// (one line per distinct fault) into an append-only text sidecar next to
// the store file, and `openmdd dict refresh` / the daemon's background
// refresh fold those faults into the `.mdds` file — the next cold start
// serves the exact universe the workload shaped.
//
// Format (line-based text, one record per line, trailing '\n' required):
//
//   mddj1 <netlist_hash> <patterns_hash>        header, hashes in hex
//   f <kind> <net> <pin> <bridge_net>           one fault, fields decimal
//
// Fail-open contract: the journal is an optimization ledger, never a
// dependency. A corrupt or mismatched header detaches the writer (appends
// become no-ops, counted); torn or malformed record lines are skipped and
// counted on read; append I/O errors detach. No journal condition ever
// fails a diagnosis or a session load.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/fault.hpp"
#include "store/format.hpp"

namespace mdd::store {

/// What read_journal() recovered from a journal file.
struct JournalContents {
  std::vector<Fault> faults;   ///< well-formed records, deduped, file order
  std::size_t n_lines = 0;     ///< record lines seen (header excluded)
  std::size_t n_skipped = 0;   ///< malformed/torn lines dropped
};

/// Reads the journal at `path` for the given content hashes. A missing or
/// empty file yields empty contents (the normal first-run case); a
/// present file whose header is malformed or names different hashes
/// throws StoreError (a journal must never be folded into the wrong
/// store). Malformed record lines — a torn final append, stray bytes —
/// are skipped and counted, never fatal.
JournalContents read_journal(const std::string& path,
                             std::uint64_t netlist_hash,
                             std::uint64_t patterns_hash);

/// Atomically resets the journal at `path` to a header-only file
/// (tmp + rename). Throws StoreError on I/O failure.
void reset_journal_file(const std::string& path, std::uint64_t netlist_hash,
                        std::uint64_t patterns_hash);

/// Append-side handle used by the serving layer. Opens (creating if
/// absent) the journal for one (netlist, patterns) pair and keeps an
/// in-memory dedup set so each distinct fault is journaled once per
/// process. All methods are thread-safe; none ever throws.
class FaultJournal {
 public:
  /// Never throws: any open/validation problem detaches the journal
  /// (record() becomes a no-op) and bumps `store.journal_open_failures`.
  /// Pre-existing well-formed entries are loaded into the dedup set and
  /// count as pending.
  FaultJournal(std::string path, std::uint64_t netlist_hash,
               std::uint64_t patterns_hash);
  ~FaultJournal();

  FaultJournal(const FaultJournal&) = delete;
  FaultJournal& operator=(const FaultJournal&) = delete;

  /// Appends `fault` unless already journaled (or detached). One full
  /// line per write so a crash can tear at most the final record.
  void record(const Fault& fault);

  /// Distinct faults currently in the file, oldest first — what a refresh
  /// should fold into the store.
  std::vector<Fault> pending_faults() const;
  std::size_t pending() const;

  /// After `folded` were merged into the store: rewrites the file
  /// atomically keeping only the still-pending remainder (faults recorded
  /// between the fold's snapshot and now). The dedup set is kept — folded
  /// faults are served by the store from here on, so re-journaling them
  /// would only re-grow the file. Never throws (failure detaches).
  void compact(const std::vector<Fault>& folded);

  bool detached() const;
  const std::string& path() const { return path_; }

 private:
  void detach_locked();  ///< caller holds mutex_

  const std::string path_;
  const std::uint64_t netlist_hash_;
  const std::uint64_t patterns_hash_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;  ///< append handle; null once detached
  std::vector<Fault> pending_;  ///< in-file faults, append order
  std::unordered_set<Fault, FaultHash> seen_;  ///< ever journaled (process)
};

}  // namespace mdd::store
