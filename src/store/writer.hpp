// openmdd — persistent fault-dictionary store: builder.
//
// `DictWriter` simulates the full-window error signature of every fault in
// a caller-chosen universe (fault-parallel under an ExecPolicy, using the
// same FaultSimulator the diagnosers trust) and writes one store file in
// the v1 format of store/format.hpp. The write is atomic: everything goes
// to "<path>.tmp" first and is renamed into place only after a successful
// flush, so a crashed or interrupted build can never leave a readable but
// half-written store behind.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "fault/fault.hpp"
#include "store/format.hpp"

namespace mdd::store {

struct BuildStats {
  std::size_t n_faults = 0;       ///< records written (after dedup)
  std::size_t n_error_bits = 0;   ///< total encoded positions
  std::size_t file_bytes = 0;
  std::size_t payload_bytes = 0;  ///< postings region only
  double simulate_seconds = 0.0;
  double encode_seconds = 0.0;
};

/// The default persisted fault universe: the full uncollapsed stuck-at
/// set (stems + multi-fanout branches — a superset of every collapsed
/// representative and of all stem candidates extraction produces) plus a
/// sampled bridge universe. With the default config the sampled dominant
/// bridges cover exactly the FaultDictionary build (its sampler runs with
/// the same seed); wired pairs ride along for injection replay.
struct StoreUniverseConfig {
  bool include_bridges = true;
  std::size_t bridge_pairs = 256;
  std::uint64_t bridge_seed = 1;
  bool include_wired = true;
};

std::vector<Fault> default_store_universe(
    const Netlist& netlist, const StoreUniverseConfig& config = {});

class DictWriter {
 public:
  /// `patterns` must match the netlist's input count (throws
  /// std::invalid_argument otherwise).
  DictWriter(const Netlist& netlist, const PatternSet& patterns);

  /// Simulates `faults` (sorted + deduplicated internally) and writes the
  /// store to `path` atomically. Throws StoreError on I/O failure.
  BuildStats write(const std::string& path, std::span<const Fault> faults,
                   const ExecPolicy& exec = {}) const;

  std::uint64_t netlist_hash() const { return netlist_hash_; }
  std::uint64_t patterns_hash() const { return patterns_hash_; }

 private:
  const Netlist* netlist_;
  const PatternSet* patterns_;
  std::uint64_t netlist_hash_;
  std::uint64_t patterns_hash_;
};

}  // namespace mdd::store
