// openmdd — standard benchmark circuits with production-style test sets.
//
// One-stop registry used by the benchmark harness and the examples: each
// named circuit comes with a deterministic ATPG-generated pattern set
// (options scaled to circuit size so the large substitutes stay tractable).
#pragma once

#include <string>
#include <vector>

#include "atpg/tpg.hpp"
#include "netlist/generator.hpp"

namespace mdd {

struct BenchCircuit {
  Netlist netlist;
  PatternSet patterns;
  TpgResult tpg;
};

/// Circuits used across tables/figures, smallest first.
std::vector<std::string> standard_circuit_names();

/// Builds the circuit and its test set (deterministic per name).
BenchCircuit load_bench_circuit(const std::string& name);

}  // namespace mdd
