#include "workload/circuits.hpp"

namespace mdd {

std::vector<std::string> standard_circuit_names() {
  return {"c17", "add8", "add32", "par64", "mux16", "g200", "g1k", "g5k"};
}

BenchCircuit load_bench_circuit(const std::string& name) {
  Netlist netlist = make_named_circuit(name);
  TpgOptions tpg;
  tpg.seed = 0xA77 + netlist.n_nets();
  const std::size_t gates = netlist.n_gates();
  if (gates <= 64) {
    tpg.random_batch = 64;
    tpg.max_random_rounds = 4;
  } else if (gates <= 2000) {
    tpg.random_batch = 256;
    tpg.max_random_rounds = 8;
  } else {
    // Large substitutes: random-only with fault dropping (event-driven
    // PPSFP makes the drop loops cheap). Deterministic PODEM top-up still
    // costs minutes at this size for a few coverage points the diagnosis
    // experiments do not need (defects are sampled detectable).
    tpg.random_batch = 512;
    tpg.max_random_rounds = 10;
    tpg.run_podem = false;
  }
  TpgResult result = generate_tests(netlist, tpg);
  PatternSet patterns = std::move(result.patterns);
  return BenchCircuit{std::move(netlist), std::move(patterns),
                      std::move(result)};
}

}  // namespace mdd
