#include "workload/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "workload/textio.hpp"

namespace mdd {

namespace {

/// Same decorrelated per-case seeding as the campaign driver (splitmix64
/// of seed + index): corpus case i is independent of every other case and
/// reproducible in isolation.
std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<LoadgenCase> make_corpus(const Netlist& netlist,
                                     const PatternSet& patterns,
                                     const PatternSet& good,
                                     const CorpusConfig& config) {
  FaultSimulator fsim(netlist, patterns, good);
  std::vector<LoadgenCase> corpus;
  corpus.reserve(config.n_cases);
  for (std::size_t c = 0; c < config.n_cases; ++c) {
    std::mt19937_64 rng(case_seed(config.seed, c));
    auto defect = sample_defect(netlist, fsim, config.defect, rng);
    if (!defect) continue;
    const Datalog log = datalog_from_defect(netlist, *defect, patterns, good,
                                            config.datalog);
    std::ostringstream text;
    write_datalog(text, log, netlist);
    LoadgenCase lc;
    lc.defect = std::move(*defect);
    lc.datalog_text = text.str();
    lc.n_failing_patterns = log.observed.n_failing_patterns();
    corpus.push_back(std::move(lc));
  }
  return corpus;
}

LatencySummary summarize_latencies(std::vector<double> latencies_ms) {
  LatencySummary s;
  s.n = latencies_ms.size();
  if (s.n == 0) return s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (const double v : latencies_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(s.n);
  // Nearest-rank: the smallest value with at least q*n observations at or
  // below it.
  const auto rank = [&](double q) {
    const std::size_t r = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(s.n)));
    return latencies_ms[std::min(s.n - 1, r == 0 ? 0 : r - 1)];
  };
  s.p50_ms = rank(0.50);
  s.p95_ms = rank(0.95);
  s.p99_ms = rank(0.99);
  s.max_ms = latencies_ms.back();
  return s;
}

}  // namespace mdd
