// openmdd — plain-text table formatting for the benchmark harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mdd {

/// Column-aligned text table with a header row, printed in the style of
/// the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// CSV dump (for plotting the figure benches).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.873").
std::string fmt(double value, int precision = 3);
/// Percentage formatting ("87.3%").
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace mdd
