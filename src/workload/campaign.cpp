#include "workload/campaign.hpp"

#include <algorithm>

namespace mdd {

namespace {

/// Picks a random non-feedback bridge partner for `victim`; kNoNet if none
/// found quickly.
NetId pick_bridge_partner(const Netlist& nl, NetId victim,
                          std::mt19937_64& rng) {
  std::uniform_int_distribution<NetId> pick(
      0, static_cast<NetId>(nl.n_nets() - 1));
  for (int tries = 0; tries < 50; ++tries) {
    const NetId p = pick(rng);
    if (p == victim) continue;
    const std::uint32_t gap = nl.level(p) > nl.level(victim)
                                  ? nl.level(p) - nl.level(victim)
                                  : nl.level(victim) - nl.level(p);
    if (gap > 4) continue;
    if (is_feedback_pair(nl, victim, p)) continue;
    return p;
  }
  return kNoNet;
}

}  // namespace

std::optional<std::vector<Fault>> sample_defect(
    const Netlist& nl, FaultSimulator& fsim, const DefectSampleConfig& cfg,
    std::mt19937_64& rng, std::size_t max_tries) {
  std::uniform_int_distribution<NetId> pick_net(
      0, static_cast<NetId>(nl.n_nets() - 1));
  std::uniform_real_distribution<double> chance(0.0, 1.0);

  std::vector<Fault> multiplet;
  std::vector<bool> po_shared;   // POs reachable from member 1
  std::vector<bool> cone_nets;   // member 1's fan-in + fan-out cone

  auto interacts = [&](NetId site) {
    switch (cfg.interaction) {
      case InteractionLevel::None:
        return true;
      case InteractionLevel::SharedOutputs: {
        for (std::uint32_t po : nl.reachable_outputs(site))
          if (po_shared[po]) return true;
        return false;
      }
      case InteractionLevel::SameCone:
        return static_cast<bool>(cone_nets[site]);
    }
    return true;
  };

  for (std::size_t tries = 0; tries < max_tries; ++tries) {
    if (multiplet.size() == cfg.multiplicity) break;
    const bool first = multiplet.empty();

    Fault f;
    if (chance(rng) < cfg.bridge_fraction) {
      const NetId victim = pick_net(rng);
      const NetId aggressor = pick_bridge_partner(nl, victim, rng);
      if (aggressor == kNoNet) continue;
      f = Fault::bridge_dom(victim, aggressor);
    } else {
      const NetId net = pick_net(rng);
      const bool value = chance(rng) < 0.5;
      if (chance(rng) < cfg.branch_fraction && !nl.fanins(net).empty()) {
        const auto fi = nl.fanins(net);
        const std::uint32_t pin = static_cast<std::uint32_t>(
            std::uniform_int_distribution<std::size_t>(0, fi.size() - 1)(rng));
        if (nl.fanouts(fi[pin]).size() > 1) {
          f = Fault::branch_sa(net, pin, value);
        } else {
          f = Fault::stem_sa(net, value);
        }
      } else {
        f = Fault::stem_sa(net, value);
      }
    }

    // Distinct sites only.
    if (std::find(multiplet.begin(), multiplet.end(), f) != multiplet.end())
      continue;
    bool same_net = false;
    for (const Fault& m : multiplet)
      if (m.net == f.net) same_net = true;
    if (same_net) continue;

    if (!first && !interacts(f.net)) continue;
    if (cfg.require_member_detected && !fsim.detects(f)) continue;

    if (first) {
      if (cfg.interaction == InteractionLevel::SharedOutputs) {
        po_shared.assign(nl.n_outputs(), false);
        for (std::uint32_t po : nl.reachable_outputs(f.net))
          po_shared[po] = true;
      } else if (cfg.interaction == InteractionLevel::SameCone) {
        cone_nets.assign(nl.n_nets(), false);
        for (NetId n : nl.fanin_cone(f.net)) cone_nets[n] = true;
        for (NetId n : nl.fanout_cone(f.net)) cone_nets[n] = true;
        cone_nets[f.net] = false;  // distinct sites enforced separately
      }
    }
    multiplet.push_back(f);
  }
  if (multiplet.size() != cfg.multiplicity) return std::nullopt;
  return multiplet;
}

std::optional<std::vector<Fault>> sample_tdf_defect(
    const Netlist& nl, PairFaultSimulator& fsim,
    const DefectSampleConfig& cfg, std::mt19937_64& rng,
    std::size_t max_tries) {
  std::uniform_int_distribution<NetId> pick_net(
      0, static_cast<NetId>(nl.n_nets() - 1));
  std::uniform_real_distribution<double> chance(0.0, 1.0);

  std::vector<Fault> multiplet;
  for (std::size_t tries = 0; tries < max_tries; ++tries) {
    if (multiplet.size() == cfg.multiplicity) break;
    const NetId net = pick_net(rng);
    Fault f;
    if (chance(rng) < cfg.transition_fraction) {
      f = chance(rng) < 0.5 ? Fault::slow_to_rise(net)
                            : Fault::slow_to_fall(net);
    } else {
      f = Fault::stem_sa(net, chance(rng) < 0.5);
    }
    bool same_net = false;
    for (const Fault& m : multiplet)
      if (m.net == f.net) same_net = true;
    if (same_net) continue;
    if (cfg.require_member_detected && !fsim.detects(f)) continue;
    multiplet.push_back(f);
  }
  if (multiplet.size() != cfg.multiplicity) return std::nullopt;
  return multiplet;
}

void MethodAggregate::add(const TruthEvaluation& ev,
                          const DiagnosisReport& report) {
  ++n_cases;
  sum_hit_rate += ev.hit_rate;
  sum_precision += ev.precision;
  sum_resolution += ev.resolution;
  n_all_hit += ev.all_hit;
  n_first_hit += ev.first_hit;
  n_exact += report.explains_all;
  sum_cpu += report.cpu_seconds;
}

namespace {

/// Decorrelated per-case RNG seed (splitmix64 of seed + case index): each
/// case is an independent stream, which is what makes case-parallel
/// execution bit-identical to the serial loop.
std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Everything one campaign case produces; aggregated in case order.
struct CaseOutcome {
  bool valid = false;
  std::size_t fail_patterns = 0;
  std::size_t fail_bits = 0;
  std::optional<DiagnosisReport> single, slat, multiplet;
  TruthEvaluation single_ev, slat_ev, multiplet_ev;
};

/// Runs the diagnosers on one sampled case (mode-independent tail).
void diagnose_case(DiagnosisContext& ctx, std::span<const Fault> defect,
                   const CollapsedFaults& collapsed,
                   const CampaignConfig& config, CaseOutcome& out) {
  out.fail_patterns = ctx.observed().n_failing_patterns();
  out.fail_bits = ctx.observed().n_error_bits();
  out.valid = true;
  if (config.run_single) {
    out.single = diagnose_single_fault(ctx, config.single);
    out.single_ev = evaluate_against_truth(*out.single, defect, collapsed);
  }
  if (config.run_slat) {
    out.slat = diagnose_slat(ctx, config.slat);
    out.slat_ev = evaluate_against_truth(*out.slat, defect, collapsed);
  }
  if (config.run_multiplet) {
    out.multiplet = diagnose_multiplet(ctx, config.multiplet);
    out.multiplet_ev =
        evaluate_against_truth(*out.multiplet, defect, collapsed);
  }
}

/// Folds per-case outcomes into the aggregate result, in case order.
CampaignResult aggregate(std::span<const CaseOutcome> outcomes) {
  CampaignResult result;
  result.single.method = "single-fault";
  result.slat.method = "slat";
  result.multiplet.method = "multiplet";

  double sum_fail_patterns = 0, sum_fail_bits = 0, sum_slat_fraction = 0;
  std::size_t slat_fraction_cases = 0;

  for (const CaseOutcome& out : outcomes) {
    if (!out.valid) continue;
    sum_fail_patterns += static_cast<double>(out.fail_patterns);
    sum_fail_bits += static_cast<double>(out.fail_bits);
    ++result.n_cases;
    if (out.single) result.single.add(out.single_ev, *out.single);
    if (out.slat) {
      result.slat.add(out.slat_ev, *out.slat);
      const std::size_t total =
          out.slat->n_slat_patterns + out.slat->n_nonslat_patterns;
      if (total > 0) {
        sum_slat_fraction += static_cast<double>(out.slat->n_slat_patterns) /
                             static_cast<double>(total);
        ++slat_fraction_cases;
      }
    }
    if (out.multiplet) result.multiplet.add(out.multiplet_ev, *out.multiplet);
  }

  if (result.n_cases > 0) {
    result.avg_failing_patterns =
        sum_fail_patterns / static_cast<double>(result.n_cases);
    result.avg_failing_bits =
        sum_fail_bits / static_cast<double>(result.n_cases);
  }
  if (slat_fraction_cases > 0)
    result.avg_slat_fraction =
        sum_slat_fraction / static_cast<double>(slat_fraction_cases);
  return result;
}

}  // namespace

CampaignResult run_campaign(const Netlist& netlist, const PatternSet& patterns,
                            const CampaignConfig& config) {
  const CollapsedFaults collapsed(netlist);
  std::vector<CaseOutcome> outcomes(config.n_cases);

  parallel_for_ranges(
      config.exec, config.n_cases,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // One simulator per worker: sampling (detectability checks) and
        // datalog production need mutable machine scratch.
        FaultSimulator fsim(netlist, patterns);
        for (std::size_t c = begin; c < end; ++c) {
          std::mt19937_64 rng(case_seed(config.seed, c));
          const auto defect = sample_defect(netlist, fsim, config.defect, rng);
          if (!defect) continue;
          const Datalog log =
              datalog_from_defect(netlist, *defect, patterns,
                                  fsim.good_response(), config.datalog);
          if (!log.has_failures()) continue;
          DiagnosisContext ctx(netlist, patterns, log, config.candidates);
          diagnose_case(ctx, *defect, collapsed, config, outcomes[c]);
        }
      });

  return aggregate(outcomes);
}

CampaignResult run_tdf_campaign(const Netlist& netlist,
                                const PatternSet& launch,
                                const PatternSet& capture,
                                const CampaignConfig& config) {
  const CollapsedFaults collapsed(netlist);
  std::vector<CaseOutcome> outcomes(config.n_cases);

  parallel_for_ranges(
      config.exec, config.n_cases,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        PairFaultSimulator fsim(netlist, launch, capture);
        for (std::size_t c = begin; c < end; ++c) {
          std::mt19937_64 rng(case_seed(config.seed, c));
          const auto defect =
              sample_tdf_defect(netlist, fsim, config.defect, rng);
          if (!defect) continue;
          const Datalog log = datalog_from_defect_pair(
              netlist, *defect, launch, capture, fsim.good_response(),
              config.datalog);
          if (!log.has_failures()) continue;
          DiagnosisContext ctx(netlist, launch, capture, log,
                               config.candidates);
          diagnose_case(ctx, *defect, collapsed, config, outcomes[c]);
        }
      });

  return aggregate(outcomes);
}

}  // namespace mdd
