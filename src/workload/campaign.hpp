// openmdd — defect-injection campaign driver.
//
// Reproduces the evaluation methodology of the multiple-defect diagnosis
// literature: sample a defect multiplet, simulate the composite defective
// machine against the production test set to produce a tester datalog, run
// each diagnoser, score against ground truth, aggregate. All sampling is
// seed-deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"

namespace mdd {

/// How strongly the sampled defects are made to interact.
enum class InteractionLevel {
  None,           ///< anywhere in the circuit
  SharedOutputs,  ///< members 2..k reach at least one PO member 1 reaches
  SameCone,       ///< members 2..k lie in member 1's fan-in or fan-out cone
                  ///< (same sensitization paths => heavy masking)
};

struct DefectSampleConfig {
  std::size_t multiplicity = 2;
  /// Fraction of multiplet members that are dominant bridges (rest are
  /// stem/branch stuck-at faults).
  double bridge_fraction = 0.25;
  /// Fraction of stuck-at members placed on branches (when available).
  double branch_fraction = 0.25;
  /// Pair-testing campaigns only: fraction of members that are transition
  /// (slow-to-rise/fall) faults; the rest are stuck-at.
  double transition_fraction = 0.5;
  InteractionLevel interaction = InteractionLevel::None;
  /// Resample any member that the pattern set cannot detect in isolation
  /// (an undetectable defect is invisible to every diagnoser).
  bool require_member_detected = true;
};

/// Samples one defect multiplet. Returns nullopt if no valid multiplet was
/// found within the try budget (tiny circuits with strict constraints).
std::optional<std::vector<Fault>> sample_defect(const Netlist& netlist,
                                                FaultSimulator& fsim,
                                                const DefectSampleConfig& config,
                                                std::mt19937_64& rng,
                                                std::size_t max_tries = 400);

/// Pair-testing variant: members are transition faults (with probability
/// transition_fraction) or stem stuck-at faults; detectability is checked
/// under two-pattern simulation.
std::optional<std::vector<Fault>> sample_tdf_defect(
    const Netlist& netlist, PairFaultSimulator& fsim,
    const DefectSampleConfig& config, std::mt19937_64& rng,
    std::size_t max_tries = 400);

/// Per-method aggregate over a campaign.
struct MethodAggregate {
  std::string method;
  std::size_t n_cases = 0;
  double sum_hit_rate = 0;
  double sum_precision = 0;
  double sum_resolution = 0;
  std::size_t n_all_hit = 0;
  std::size_t n_first_hit = 0;
  std::size_t n_exact = 0;  ///< reports that reproduce the datalog exactly
  double sum_cpu = 0;

  void add(const TruthEvaluation& ev, const DiagnosisReport& report);
  double avg_hit_rate() const { return n_cases ? sum_hit_rate / n_cases : 0; }
  double avg_precision() const {
    return n_cases ? sum_precision / n_cases : 0;
  }
  double avg_resolution() const {
    return n_cases ? sum_resolution / n_cases : 0;
  }
  double all_hit_rate() const {
    return n_cases ? static_cast<double>(n_all_hit) / n_cases : 0;
  }
  double first_hit_rate() const {
    return n_cases ? static_cast<double>(n_first_hit) / n_cases : 0;
  }
  double exact_rate() const {
    return n_cases ? static_cast<double>(n_exact) / n_cases : 0;
  }
  double avg_cpu_ms() const {
    return n_cases ? 1000.0 * sum_cpu / n_cases : 0;
  }
};

struct CampaignConfig {
  std::size_t n_cases = 50;
  DefectSampleConfig defect{};
  DatalogOptions datalog{};
  CandidateOptions candidates{};
  bool run_single = true;
  bool run_slat = true;
  bool run_multiplet = true;
  SingleFaultOptions single{};
  SlatOptions slat{};
  MultipletOptions multiplet{};
  std::uint64_t seed = 1;
  /// Case-parallel execution. Each case draws from its own RNG stream
  /// (seeded from `seed` and the case index) and cases are aggregated in
  /// index order, so every deterministic field of CampaignResult is
  /// byte-identical for any thread count (cpu-time fields are measured
  /// wall clock and excluded from that guarantee).
  ExecPolicy exec{};
};

struct CampaignResult {
  MethodAggregate single;
  MethodAggregate slat;
  MethodAggregate multiplet;
  std::size_t n_cases = 0;
  double avg_failing_patterns = 0;
  double avg_failing_bits = 0;
  /// Fraction of failing patterns exactly explainable by one candidate
  /// (the SLAT property), averaged over cases.
  double avg_slat_fraction = 0;
};

CampaignResult run_campaign(const Netlist& netlist, const PatternSet& patterns,
                            const CampaignConfig& config);

/// Transition-testing campaign: defects sampled per transition_fraction,
/// datalogs produced by two-pattern simulation, diagnosis in pair mode.
CampaignResult run_tdf_campaign(const Netlist& netlist,
                                const PatternSet& launch,
                                const PatternSet& capture,
                                const CampaignConfig& config);

}  // namespace mdd
