#include "workload/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mdd {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << " " << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  line(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) line(row);
}

std::string TextTable::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void TextTable::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace mdd
