#include "workload/textio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mdd {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("textio: " + what);
}

/// Strict unsigned field: a whole token of digits. Signs, junk, overflow,
/// and a missing token all fail with `what` in the message — stream
/// extraction into an unsigned type silently wraps negatives, which is
/// exactly the corruption a tester datalog must not smuggle in.
std::size_t read_count(std::istream& ls, const std::string& what) {
  std::string tok;
  if (!(ls >> tok)) fail("missing " + what);
  if (tok.find_first_not_of("0123456789") != std::string::npos)
    fail(what + " must be a non-negative integer, got '" + tok + "'");
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    fail(what + " out of range: '" + tok + "'");
  }
}

/// Rejects any non-space residue on a parsed line.
void expect_line_end(std::istream& ls, const std::string& line) {
  std::string extra;
  if (ls >> extra) fail("trailing junk on line: '" + line + "'");
}

std::string next_content_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    std::size_t b = 0, e = line.size();
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1])))
      --e;
    if (e > b) return line.substr(b, e - b);
  }
  return {};
}

}  // namespace

void write_patterns(std::ostream& out, const PatternSet& patterns) {
  out << "# openmdd pattern set\n";
  out << "patterns " << patterns.n_signals() << "\n";
  for (std::size_t p = 0; p < patterns.n_patterns(); ++p)
    out << patterns.to_string(p) << "\n";
}

PatternSet read_patterns(std::istream& in) {
  std::string header = next_content_line(in);
  std::istringstream hs(header);
  std::string kw;
  hs >> kw;
  if (kw != "patterns") fail("expected 'patterns <width>' header");
  const std::size_t n_signals = read_count(hs, "pattern width");
  if (n_signals == 0) fail("pattern width must be positive");
  expect_line_end(hs, header);
  PatternSet ps(0, n_signals);
  for (std::string line = next_content_line(in); !line.empty();
       line = next_content_line(in)) {
    if (line.size() != n_signals)
      fail("pattern width mismatch: '" + line + "'");
    std::vector<bool> bits(n_signals);
    for (std::size_t i = 0; i < n_signals; ++i) {
      if (line[i] != '0' && line[i] != '1')
        fail("pattern must be binary: '" + line + "'");
      bits[i] = line[i] == '1';
    }
    ps.append(bits);
  }
  if (ps.n_patterns() == 0) fail("pattern file has no patterns");
  return ps;
}

void write_patterns_file(const std::string& path, const PatternSet& patterns) {
  std::ofstream out(path);
  if (!out) fail("cannot write " + path);
  write_patterns(out, patterns);
}

PatternSet read_patterns_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_patterns(in);
}

void write_datalog(std::ostream& out, const Datalog& datalog,
                   const Netlist& netlist) {
  out << "datalog\n";
  out << "applied " << datalog.n_patterns_applied << "\n";
  if (datalog.pattern_truncated) out << "pattern_truncated\n";
  if (datalog.pin_truncated) out << "pin_truncated\n";
  const ErrorSignature& obs = datalog.observed;
  for (std::size_t i = 0; i < obs.n_failing_patterns(); ++i) {
    out << "fail " << obs.failing_patterns()[i] << " :";
    for (std::uint32_t po : obs.failing_outputs(i))
      out << " " << netlist.net_name(netlist.outputs()[po]);
    out << "\n";
  }
}

Datalog read_datalog(std::istream& in, const Netlist& netlist) {
  if (next_content_line(in) != "datalog") fail("expected 'datalog' header");
  Datalog log;
  std::size_t n_applied = 0;
  struct Entry {
    std::uint32_t pattern;
    std::vector<Word> mask;
  };
  std::vector<Entry> entries;
  const std::size_t n_po_words = (netlist.n_outputs() + 63) / 64;

  for (std::string line = next_content_line(in); !line.empty();
       line = next_content_line(in)) {
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "applied") {
      n_applied = read_count(ls, "'applied' count");
      expect_line_end(ls, line);
    } else if (kw == "pattern_truncated") {
      expect_line_end(ls, line);
      log.pattern_truncated = true;
    } else if (kw == "pin_truncated") {
      expect_line_end(ls, line);
      log.pin_truncated = true;
    } else if (kw == "fail") {
      Entry e;
      e.mask.assign(n_po_words, kAllZero);
      const std::size_t pattern = read_count(ls, "fail pattern index");
      if (pattern > std::numeric_limits<std::uint32_t>::max())
        fail("fail pattern index out of range: " + line);
      e.pattern = static_cast<std::uint32_t>(pattern);
      std::string colon;
      ls >> colon;
      if (colon != ":") fail("expected ':' in fail line: " + line);
      std::string name;
      bool any = false;
      while (ls >> name) {
        const NetId net = netlist.find_net(name);
        if (net == kNoNet) fail("unknown output '" + name + "'");
        const auto idx = netlist.output_index(net);
        if (!idx) fail("net '" + name + "' is not an output");
        e.mask[*idx / 64] |= Word{1} << (*idx % 64);
        any = true;
      }
      if (!any) fail("fail line lists no outputs: " + line);
      entries.push_back(std::move(e));
    } else {
      fail("unknown datalog line: " + line);
    }
  }
  if (n_applied == 0) fail("datalog missing 'applied <n>'");
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.pattern < b.pattern; });
  log.observed = ErrorSignature(n_applied, netlist.n_outputs());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.pattern >= n_applied) fail("failing pattern beyond applied window");
    if (i > 0 && entries[i - 1].pattern == e.pattern)
      fail("duplicate fail line for pattern " + std::to_string(e.pattern));
    log.observed.append(e.pattern, e.mask);
  }
  log.n_patterns_applied = n_applied;
  return log;
}

void write_datalog_file(const std::string& path, const Datalog& datalog,
                        const Netlist& netlist) {
  std::ofstream out(path);
  if (!out) fail("cannot write " + path);
  write_datalog(out, datalog, netlist);
}

Datalog read_datalog_file(const std::string& path, const Netlist& netlist) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_datalog(in, netlist);
}

Fault parse_fault_spec(std::string_view spec, const Netlist& netlist) {
  std::istringstream ss{std::string(spec)};
  std::string kind;
  ss >> kind;
  std::transform(kind.begin(), kind.end(), kind.begin(),
                 [](unsigned char c) { return std::tolower(c); });

  auto net_of = [&](const std::string& name) {
    const NetId n = netlist.find_net(name);
    if (n == kNoNet) fail("unknown net '" + name + "' in fault spec");
    return n;
  };

  const auto parse = [&]() -> Fault {
  if (kind == "sa0" || kind == "sa1") {
    std::string site;
    ss >> site;
    if (site.empty()) fail("stuck-at spec needs a net");
    const bool value = kind == "sa1";
    const std::size_t dot = site.rfind('.');
    if (dot != std::string::npos &&
        site.find_first_not_of("0123456789", dot + 1) == std::string::npos &&
        dot + 1 < site.size() && netlist.find_net(site) == kNoNet) {
      const NetId gate = net_of(site.substr(0, dot));
      // Bounded read like read_count: "g1.99999999999999999999" must
      // fail with the textio: prefix, not escape as raw std::out_of_range.
      const std::string pin_tok = site.substr(dot + 1);
      std::uint32_t pin = 0;
      try {
        const unsigned long v = std::stoul(pin_tok);
        if (v > std::numeric_limits<std::uint32_t>::max()) throw
            std::out_of_range(pin_tok);
        pin = static_cast<std::uint32_t>(v);
      } catch (const std::exception&) {
        fail("branch pin out of range: '" + site + "'");
      }
      const Fault f = Fault::branch_sa(gate, pin, value);
      validate_fault(f, netlist);
      return f;
    }
    return Fault::stem_sa(net_of(site), value);
  }
  if (kind == "dom") {
    std::string agg, victim;
    ss >> agg >> victim;
    if (victim.empty()) fail("dom spec: 'dom AGGRESSOR VICTIM'");
    const Fault f = Fault::bridge_dom(net_of(victim), net_of(agg));
    validate_fault(f, netlist);
    return f;
  }
  if (kind == "wand" || kind == "wor") {
    std::string a, b;
    ss >> a >> b;
    if (b.empty()) fail(kind + " spec: '" + kind + " NET NET'");
    const Fault f = kind == "wand" ? Fault::bridge_wand(net_of(a), net_of(b))
                                   : Fault::bridge_wor(net_of(a), net_of(b));
    validate_fault(f, netlist);
    return f;
  }
  if (kind == "str" || kind == "stf") {
    std::string site;
    ss >> site;
    if (site.empty()) fail("transition spec needs a net");
    return kind == "str" ? Fault::slow_to_rise(net_of(site))
                         : Fault::slow_to_fall(net_of(site));
  }
  fail("unknown fault kind '" + kind + "'");
  };  // parse

  const Fault f = parse();
  std::string extra;
  if (ss >> extra)
    fail("trailing junk in fault spec: '" + std::string(spec) + "'");
  return f;
}

}  // namespace mdd
