// openmdd — text file formats for the command-line flow.
//
// Pattern file (one pattern per line, PI order = netlist inputs order):
//
//     # comment
//     patterns 5
//     01101
//     11000
//
// Datalog file (named outputs; `applied` bounds the tester window):
//
//     datalog
//     applied 128
//     fail 3 : z1 z2
//     fail 17 : z2
//
// Fault specs (CLI `--fault` syntax, also used in datalog tooling):
//
//     sa0 NET            stem stuck-at-0
//     sa1 NET.3          stuck-at-1 on fanin pin 3 of gate NET
//     dom AGG VICTIM     dominant bridge (aggressor first)
//     wand A B / wor A B wired bridges
//     str NET / stf NET  slow-to-rise / slow-to-fall
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "diag/datalog.hpp"
#include "fault/fault.hpp"
#include "sim/patterns.hpp"

namespace mdd {

void write_patterns(std::ostream& out, const PatternSet& patterns);
PatternSet read_patterns(std::istream& in);
void write_patterns_file(const std::string& path, const PatternSet& patterns);
PatternSet read_patterns_file(const std::string& path);

/// Datalog I/O; output names resolve through the netlist's PO list.
void write_datalog(std::ostream& out, const Datalog& datalog,
                   const Netlist& netlist);
Datalog read_datalog(std::istream& in, const Netlist& netlist);
void write_datalog_file(const std::string& path, const Datalog& datalog,
                        const Netlist& netlist);
Datalog read_datalog_file(const std::string& path, const Netlist& netlist);

/// Parses a fault spec (see header comment). Throws std::runtime_error
/// with a helpful message on bad syntax or unknown nets.
Fault parse_fault_spec(std::string_view spec, const Netlist& netlist);

}  // namespace mdd
