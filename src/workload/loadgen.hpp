// openmdd — serving-load corpus generation and latency accounting.
//
// The load generator replays realistic tester datalogs against the
// diagnosis daemon. This module produces those datalogs the same way the
// campaign driver does — sample a defect multiplet, simulate the
// composite machine, truncate like an ATE — with the campaign's
// decorrelated per-case seeding, so a corpus is reproducible from
// (circuit, seed, n_cases) alone. It also carries the latency quantile
// math the tools print as p50/p95/p99 tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diag/datalog.hpp"
#include "workload/campaign.hpp"

namespace mdd {

struct LoadgenCase {
  std::vector<Fault> defect;
  /// Datalog in the textio wire format (what goes into a request's
  /// inline "datalog" field or a corpus file).
  std::string datalog_text;
  std::size_t n_failing_patterns = 0;
};

struct CorpusConfig {
  std::size_t n_cases = 50;
  DefectSampleConfig defect{};
  DatalogOptions datalog{};
  std::uint64_t seed = 1;
};

/// Seed-deterministic datalog corpus for one circuit. `good` must be the
/// good-machine response for `patterns`. Cases whose defect sampling
/// fails (tiny circuits + strict constraints) are skipped, so the result
/// may hold fewer than n_cases entries.
std::vector<LoadgenCase> make_corpus(const Netlist& netlist,
                                     const PatternSet& patterns,
                                     const PatternSet& good,
                                     const CorpusConfig& config);

struct LatencySummary {
  std::size_t n = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Nearest-rank quantiles over per-request latencies (ms).
LatencySummary summarize_latencies(std::vector<double> latencies_ms);

}  // namespace mdd
