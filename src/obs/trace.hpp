// openmdd — per-request wall-time trace.
//
// A `Trace` is a request-scoped stack of named spans recording where one
// diagnosis spent its wall time (parse → session lookup → baseline →
// candidate extraction → ranking → serialize). It is deliberately NOT
// thread-safe: one trace belongs to the one worker executing the
// request, costs two steady_clock reads per span, and is collected for
// every request — attachment to the JSON response (`"trace": true`) and
// the slow-request log are the only conditional parts. Spans may nest;
// `depth` preserves the structure in the flat span list.
//
//     obs::Trace trace;
//     { auto s = trace.span("session"); ... }
//     { auto s = trace.span("rank:multiplet"); ... }
//     trace.spans();  // [{session, 1.2ms, depth 0}, ...]
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace mdd::obs {

class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  struct SpanRecord {
    std::string stage;
    int depth = 0;         ///< nesting level (0 = top)
    double start_ms = 0;   ///< offset from trace creation
    double ms = 0;         ///< wall time inside the span
  };

  /// RAII span: closes (records the elapsed time) on destruction, or
  /// earlier via close().
  class Span {
   public:
    Span(Span&& other) noexcept
        : trace_(std::exchange(other.trace_, nullptr)), index_(other.index_) {}
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span() { close(); }

    void close() {
      if (trace_ != nullptr) std::exchange(trace_, nullptr)->close(index_);
    }

   private:
    friend class Trace;
    Span(Trace* trace, std::size_t index) : trace_(trace), index_(index) {}
    Trace* trace_;
    std::size_t index_;
  };

  Trace() : t0_(Clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a nested span; close order must be LIFO (RAII enforces it).
  [[nodiscard]] Span span(std::string stage) {
    const std::size_t index = spans_.size();
    spans_.push_back({std::move(stage), depth_, ms_since(t0_), 0.0});
    ++depth_;
    return Span(this, index);
  }

  /// All spans in open order (closed spans carry their duration).
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Sum of top-level (depth 0) span durations — the coverage figure the
  /// trace acceptance check compares against end-to-end latency.
  double top_level_ms() const {
    double total = 0;
    for (const SpanRecord& s : spans_)
      if (s.depth == 0) total += s.ms;
    return total;
  }

  double ms_since_start() const { return ms_since(t0_); }

 private:
  static double ms_since(Clock::time_point t) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
  }

  void close(std::size_t index) {
    spans_[index].ms = ms_since(t0_) - spans_[index].start_ms;
    --depth_;
  }

  Clock::time_point t0_;
  std::vector<SpanRecord> spans_;
  int depth_ = 0;
};

}  // namespace mdd::obs
