#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mdd::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
  const std::size_t n = bounds_.size() + 1;  // + implicit Inf bin
  bin_storage_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  bins_ = {bin_storage_.get(), n};
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  bins_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::span<const double> latency_buckets_ms() {
  static constexpr std::array<double, 16> kBuckets = {
      0.1, 0.25, 0.5, 1.0,    2.5,    5.0,    10.0,   25.0,
      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return kBuckets;
}

Registry::Slot& Registry::resolve(std::string_view name, Kind kind) {
  auto it = slots_.find(name);
  if (it == slots_.end())
    it = slots_.emplace(std::string(name), Slot{kind, nullptr, nullptr,
                                                nullptr, {}, {}})
             .first;
  if (it->second.kind != kind)
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = resolve(name, Kind::Counter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = resolve(name, Kind::Gauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = resolve(name, Kind::Histogram);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>(
      upper_bounds);
  return *slot.histogram;
}

void Registry::set_info(std::string_view name, std::string_view label_key,
                        std::string_view label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = resolve(name, Kind::Info);
  slot.info_key = std::string(label_key);
  slot.info_value = std::string(label_value);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::Counter:
        snap.counters.push_back({name, slot.counter->value()});
        break;
      case Kind::Gauge:
        snap.gauges.push_back({name, slot.gauge->value()});
        break;
      case Kind::Histogram: {
        const Histogram& h = *slot.histogram;
        HistogramSample s;
        s.name = name;
        s.bounds = h.bounds();
        s.bins.reserve(h.n_bins());
        for (std::size_t i = 0; i < h.n_bins(); ++i)
          s.bins.push_back(h.bin(i));
        s.count = h.count();
        s.sum = h.sum();
        snap.histograms.push_back(std::move(s));
        break;
      }
      case Kind::Info:
        snap.infos.push_back({name, slot.info_key, slot.info_value});
        break;
    }
  }
  return snap;  // map iteration order is already name-sorted
}

Registry& registry() {
  static Registry instance;
  return instance;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '-') c = '_';
  return out;
}

void append_number(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  std::ostringstream ss;
  ss << v;
  out += ss.str();
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string n = prom_name(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string n = prom_name(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.value) + "\n";
  }
  for (const InfoSample& i : snapshot.infos) {
    const std::string n = prom_name(i.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + "{" + i.label_key + "=\"" + i.label_value + "\"} 1\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bins[i];
      out += n + "_bucket{le=\"";
      append_number(out, h.bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += h.bins.empty() ? 0 : h.bins.back();
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += n + "_sum ";
    append_number(out, h.sum);
    out += "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string relabel_prometheus(std::string_view exposition,
                               std::string_view label_key,
                               std::string_view label_value) {
  const std::string label =
      std::string(label_key) + "=\"" + std::string(label_value) + "\"";
  std::string out;
  out.reserve(exposition.size() + exposition.size() / 8);
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t eol = exposition.find('\n', pos);
    if (eol == std::string_view::npos) eol = exposition.size();
    const std::string_view line = exposition.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') {
      out += line;
      out += '\n';
      continue;
    }
    // A sample line is `name[{labels}] value`; the name ends at the first
    // '{' or space. Lines that fit neither shape pass through untouched —
    // relabelling must never corrupt an exposition it cannot parse.
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (brace != std::string_view::npos &&
        (space == std::string_view::npos || brace < space)) {
      out += line.substr(0, brace + 1);
      out += label;
      out += ',';
      out += line.substr(brace + 1);
    } else if (space != std::string_view::npos) {
      out += line.substr(0, space);
      out += '{';
      out += label;
      out += '}';
      out += line.substr(space);
    } else {
      out += line;
    }
    out += '\n';
  }
  return out;
}

std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& labeled,
    std::string_view label_key) {
  // `# TYPE` lines repeat across shards; a valid exposition declares each
  // metric once, so only the first occurrence survives the merge.
  std::vector<std::string> seen_comments;
  std::string out;
  for (const auto& [value, exposition] : labeled) {
    const std::string relabeled =
        relabel_prometheus(exposition, label_key, value);
    std::size_t pos = 0;
    while (pos < relabeled.size()) {
      std::size_t eol = relabeled.find('\n', pos);
      if (eol == std::string::npos) eol = relabeled.size();
      const std::string_view line =
          std::string_view(relabeled).substr(pos, eol - pos);
      pos = eol + 1;
      if (!line.empty() && line.front() == '#') {
        if (std::find(seen_comments.begin(), seen_comments.end(), line) !=
            seen_comments.end())
          continue;
        seen_comments.emplace_back(line);
      }
      out += line;
      out += '\n';
    }
  }
  return out;
}

}  // namespace mdd::obs
