// openmdd — process-wide metrics registry.
//
// The measurement substrate for the serving layer (and every later perf
// PR): named monotonic counters, gauges, and fixed-bucket latency
// histograms, all updated with relaxed atomics so a hot path pays one
// uncontended RMW per event — no lock is ever taken after a metric
// handle has been resolved. Registration (name → handle) takes a mutex
// once; instrument sites cache the returned reference, typically in a
// function-local static:
//
//     static obs::Counter& c = obs::registry().counter("fsim.signatures");
//     c.inc();
//
// Names are label-free dotted paths ("server.request_ms"); the
// Prometheus exposition rewrites '.' to '_' (dots are not legal there).
// Snapshots are point-in-time copies, safe to take while writers run;
// counter reads are monotonic, histogram bins may be mid-update relative
// to each other (sum/count can trail by in-flight observations — fine
// for monitoring, documented here so nobody asserts exactness).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdd::obs {

/// Monotonic event count. Relaxed increments; value() is a point read.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, resident bytes). Signed so transient
/// decrements below an initial set() cannot wrap.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-boundary histogram with atomic bins. Boundaries are inclusive
/// upper bounds ("le"), strictly increasing; one implicit +Inf bin is
/// appended. observe() is one binary search plus two relaxed RMWs.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double value);

  std::size_t n_bins() const { return bins_.size(); }  ///< bounds + Inf
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bin(std::size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bin_storage_;
  std::span<std::atomic<std::uint64_t>> bins_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency boundaries (milliseconds) shared by the request,
/// queue-wait, and stage histograms: ~1–2 bins per decade, 100µs..10s.
std::span<const double> latency_buckets_ms();

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;       ///< upper bounds, +Inf implicit
  std::vector<std::uint64_t> bins;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A Prometheus-style info series: constant value 1 with one identifying
/// label ("which kernel / build / config is this process running").
struct InfoSample {
  std::string name;
  std::string label_key;
  std::string label_value;
};

/// Point-in-time copy of a registry, sorted by name within each kind.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<InfoSample> infos;
};

/// Named metric registry. Handles are created on first use and live as
/// long as the registry; the same name always returns the same handle.
/// Asking for an existing name as a different kind throws
/// std::logic_error (a misspelled instrument site, not a runtime input).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first creation.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);
  /// Latency histogram with the shared millisecond buckets.
  Histogram& latency(std::string_view name) {
    return histogram(name, latency_buckets_ms());
  }

  /// Sets (or replaces) an info series: rendered as
  /// `name{label_key="label_value"} 1`. Unlike the handle-based metrics
  /// this is set-once-per-change state, not a hot-path instrument.
  void set_info(std::string_view name, std::string_view label_key,
                std::string_view label_value);

  Snapshot snapshot() const;

 private:
  enum class Kind { Counter, Gauge, Histogram, Info };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::string info_key;
    std::string info_value;
  };

  Slot& resolve(std::string_view name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Slot, std::less<>> slots_;
};

/// The process-wide registry every instrument site records into.
Registry& registry();

/// Prometheus text exposition (format 0.0.4) of a snapshot: '.' in names
/// becomes '_', histograms render as cumulative `_bucket{le="..."}`
/// series plus `_sum`/`_count`, infos as `name{key="value"} 1` gauges.
std::string render_prometheus(const Snapshot& snapshot);

/// Rewrites a text exposition so every sample line carries
/// `label_key="label_value"` (prepended to an existing label set, or as
/// a fresh one): `m 3` → `m{shard="0"} 3`, `m{le="5"} 3` →
/// `m{shard="0",le="5"} 3`. Comment and blank lines pass through
/// untouched. The shard router uses this to keep per-worker series
/// distinguishable in one aggregated scrape.
std::string relabel_prometheus(std::string_view exposition,
                               std::string_view label_key,
                               std::string_view label_value);

/// Merges several label-disjoint expositions (one per shard) into one:
/// each input is relabelled with `label_key="<its label>"`, and repeated
/// `# TYPE` comment lines are emitted once (first occurrence wins) so
/// the merged exposition stays parseable.
std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& labeled,
    std::string_view label_key = "shard");

}  // namespace mdd::obs
