// openmdd — cooperative cancellation and deadlines.
//
// `CancelToken` is the stop signal threaded through long-running work: a
// sticky cancelled flag plus an optional steady-clock deadline. Nothing is
// ever interrupted preemptively — loops poll the token at checkpoints and
// wind down with whatever partial result they have, which is what lets the
// serving layer promise that a pathological datalog cannot wedge a worker
// past its deadline.
//
// `CancelCheckpoint` throttles the polling: `cancelled()` reads the clock,
// so tight inner loops check only every `stride` calls. Once a checkpoint
// observes cancellation it stays tripped (no un-cancel).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mdd {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires on its own; cancel via request_cancel().
  CancelToken() = default;

  /// Expires at `deadline` (and can still be cancelled earlier).
  explicit CancelToken(Clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  /// Expires `budget` from now.
  static CancelToken after(std::chrono::milliseconds budget) {
    return CancelToken(Clock::now() + budget);
  }

  // Shared by reference/pointer between the requester and the workers;
  // copying would silently fork the flag.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Thread-safe; sticky.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. The deadline check latches
  /// into the flag so later calls skip the clock read.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Throttled token poll for tight loops. A null token never cancels, so
/// call sites need no branching of their own:
///
///     CancelCheckpoint cp(options.cancel, 64);
///     for (...) { if (cp()) break; ... }
class CancelCheckpoint {
 public:
  explicit CancelCheckpoint(const CancelToken* token,
                            std::uint32_t stride = 64)
      : token_(token), stride_(stride == 0 ? 1 : stride) {}

  /// True if the token is cancelled; polls every `stride` calls (and on
  /// the first call).
  bool operator()() {
    if (token_ == nullptr) return false;
    if (tripped_) return true;
    if (count_++ % stride_ == 0) tripped_ = token_->cancelled();
    return tripped_;
  }

 private:
  const CancelToken* token_;
  std::uint32_t stride_;
  std::uint32_t count_ = 0;
  bool tripped_ = false;
};

}  // namespace mdd
