#include "core/thread_pool.hpp"

#include <algorithm>

namespace mdd {

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t n = std::max<std::size_t>(1, n_threads);
  errors_.resize(n);
  workers_.reserve(n);
  for (std::size_t id = 0; id < n; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& job) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &job;
  std::fill(errors_.begin(), errors_.end(), nullptr);
  n_done_ = 0;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return n_done_ == workers_.size(); });
  job_ = nullptr;
  for (std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
}

void ThreadPool::worker_main(std::size_t id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_[id] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++n_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace mdd
