// openmdd — release version string (reported by `openmdd version` and the
// server's ping/stats responses; bump on protocol or schema changes).
#pragma once

#include <string_view>

namespace mdd {

inline constexpr std::string_view kVersion = "0.7.0";

}  // namespace mdd
