// openmdd — deterministic fixed-size thread pool.
//
// A deliberately simple pool: N persistent workers, no work stealing, no
// task queue. One job runs at a time; `run_on_all` hands every worker its
// id and blocks until all of them finish. Higher-level loops (exec.hpp)
// build static index partitions on top, so which worker computes which
// index is a pure function of (n, n_threads) — the scheduling itself can
// never perturb results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdd {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (at least 1). Workers idle until a job is
  /// submitted and persist for the pool's lifetime.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return workers_.size(); }

  /// Runs job(worker_id) once on every worker and blocks until all have
  /// returned. If any worker throws, the first exception (by worker id) is
  /// rethrown here after the barrier. Not reentrant: calling from inside a
  /// job deadlocks — exec.hpp runs nested regions serially instead.
  void run_on_all(const std::function<void(std::size_t)>& job);

 private:
  void worker_main(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  std::uint64_t generation_ = 0;
  std::size_t n_done_ = 0;
  bool stop_ = false;
};

}  // namespace mdd
