#include "core/exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "core/thread_pool.hpp"

namespace mdd {

namespace {

/// Set while the current thread is executing inside a pool worker; nested
/// parallel regions detect it and run inline.
thread_local bool t_in_worker = false;

/// Process-wide pool, grown (recreated) when a larger thread count is
/// requested. `pool_mutex` also serializes concurrent top-level parallel
/// regions — only one runs at a time, which keeps worker ids meaningful
/// for per-worker scratch state.
std::mutex pool_mutex;
std::unique_ptr<ThreadPool> shared_pool;

}  // namespace

ExecPolicy ExecPolicy::parallel(std::size_t n) {
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  return ExecPolicy{n};
}

ExecPolicy ExecPolicy::from_env() {
  const char* env = std::getenv("MDD_THREADS");
  if (env == nullptr || *env == '\0') return serial();
  const long v = std::atol(env);
  if (v < 0) return serial();
  return parallel(static_cast<std::size_t>(v));
}

void parallel_for_ranges(
    const ExecPolicy& policy, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t n_workers = std::min(policy.n_threads, n);
  if (n_workers <= 1 || t_in_worker) {
    body(0, n, 0);
    return;
  }

  std::lock_guard<std::mutex> lock(pool_mutex);
  if (!shared_pool || shared_pool->n_threads() < n_workers)
    shared_pool = std::make_unique<ThreadPool>(n_workers);

  shared_pool->run_on_all([&](std::size_t worker) {
    if (worker >= n_workers) return;  // pool may be larger than needed
    const std::size_t begin = worker * n / n_workers;
    const std::size_t end = (worker + 1) * n / n_workers;
    if (begin >= end) return;
    t_in_worker = true;
    try {
      body(begin, end, worker);
    } catch (...) {
      t_in_worker = false;
      throw;
    }
    t_in_worker = false;
  });
}

void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_ranges(policy, n,
                      [&](std::size_t begin, std::size_t end,
                          std::size_t worker) {
                        for (std::size_t i = begin; i < end; ++i)
                          body(i, worker);
                      });
}

void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const CancelToken* cancel,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (cancel == nullptr) {
    parallel_for(policy, n, body);
    return;
  }
  parallel_for_ranges(policy, n,
                      [&](std::size_t begin, std::size_t end,
                          std::size_t worker) {
                        CancelCheckpoint cp(cancel, 8);
                        for (std::size_t i = begin; i < end; ++i) {
                          if (cp()) break;
                          body(i, worker);
                        }
                      });
}

}  // namespace mdd
