// openmdd — execution policy and deterministic parallel loops.
//
// `ExecPolicy` is the knob threaded through the stack: serial (the
// default, always available) or parallel with a fixed thread count. Every
// parallel loop in the repo goes through `parallel_for` /
// `parallel_for_ranges`, which partition [0, n) into contiguous
// per-worker ranges on a shared fixed-size `ThreadPool`. Callers write
// results into per-index slots and aggregate in index order, so output is
// byte-identical to the serial loop for any thread count — the property
// the differential tests (tests/test_parallel_equiv.cpp) pin down.
//
// Nested parallel regions (a parallel_for issued from inside a worker)
// degrade to serial execution in the calling worker: determinism and
// deadlock-freedom over cleverness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/cancel.hpp"

namespace mdd {

struct ExecPolicy {
  /// Number of worker threads; <= 1 means serial.
  std::size_t n_threads = 1;

  static ExecPolicy serial() { return ExecPolicy{1}; }

  /// `n == 0` picks std::thread::hardware_concurrency().
  static ExecPolicy parallel(std::size_t n = 0);

  /// Reads the MDD_THREADS environment variable ("0" = hardware
  /// concurrency, unset/empty/"1" = serial).
  static ExecPolicy from_env();

  bool is_serial() const { return n_threads <= 1; }

  bool operator==(const ExecPolicy&) const = default;
};

/// Runs body(begin, end, worker) over a static partition of [0, n) into
/// min(policy.n_threads, n) contiguous ranges (one per worker, worker ids
/// dense from 0). Serial policies, n <= 1, and nested calls run inline as
/// body(0, n, 0). Blocks until every range is done; exceptions propagate.
void parallel_for_ranges(
    const ExecPolicy& policy, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Per-index convenience over parallel_for_ranges: body(i, worker).
void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Cancellable per-index loop: identical to parallel_for, except every
/// worker polls `cancel` (throttled, every few indices) and stops at the
/// next index boundary once the token is cancelled or its deadline has
/// passed. Cooperative: indices already started still finish, and which
/// indices ran is NOT deterministic after cancellation — callers must
/// treat a cancelled loop as partial and check `cancel->cancelled()`
/// afterwards. A null token degrades to plain parallel_for.
void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const CancelToken* cancel,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace mdd
