#include "atpg/podem.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mdd {

namespace {

/// True if good/bad values are both binary and differ (a "D" net).
bool is_error(Val3 good, Val3 bad) {
  return v3_is_binary(good) && v3_is_binary(bad) && good != bad;
}

bool is_unknown(Val3 good, Val3 bad) {
  return good == Val3::X || bad == Val3::X;
}

}  // namespace

Podem::Podem(const Netlist& netlist, Options options)
    : netlist_(&netlist),
      options_(options),
      good_(netlist),
      bad_(netlist),
      scoap_(compute_scoap(netlist)) {}

void Podem::simulate_both() {
  good_.run();
  bad_.run();
}

bool Podem::fault_activated() const {
  const Val3 v = good_.value(fault_site_);
  return v3_is_binary(v) && v3_to_bool(v) != fault_.stuck_value();
}

bool Podem::fault_effect_at_output() const {
  for (NetId o : netlist_->outputs())
    if (is_error(good_.value(o), bad_.value(o))) return true;
  return false;
}

bool Podem::x_path_exists() const {
  // Forward reachability from every error net through unknown nets to a PO.
  const Netlist& nl = *netlist_;
  std::vector<bool> seen(nl.n_nets(), false);
  std::vector<NetId> stack;
  for (NetId n = 0; n < nl.n_nets(); ++n) {
    if (is_error(good_.value(n), bad_.value(n))) {
      stack.push_back(n);
      seen[n] = true;
    }
  }
  // Branch faults: the error is born inside the faulted gate (its input
  // nets show no good/bad difference), so seed from the gate output while
  // it is still unresolved.
  if (fault_.pin != kStemPin && fault_activated() && !seen[fault_.net] &&
      is_unknown(good_.value(fault_.net), bad_.value(fault_.net))) {
    stack.push_back(fault_.net);
    seen[fault_.net] = true;
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const bool err = is_error(good_.value(n), bad_.value(n));
    const bool unk = is_unknown(good_.value(n), bad_.value(n));
    if (!err && !unk) continue;  // settled identical value: blocked
    if (netlist_->output_index(n).has_value() && (err || unk)) return true;
    for (NetId s : nl.fanouts(n)) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

std::optional<Podem::Objective> Podem::next_objective() {
  // Phase 1: activate the fault.
  if (good_.value(fault_site_) == Val3::X)
    return Objective{fault_site_, v3_from_bool(!fault_.stuck_value())};
  if (!fault_activated()) return std::nullopt;

  // Phase 2: advance the D-frontier — pick the frontier gate with the
  // lowest level and target one of its X inputs with the non-controlling
  // value.
  const Netlist& nl = *netlist_;
  NetId best_gate = kNoNet;
  for (NetId g = 0; g < nl.n_nets(); ++g) {
    if (!is_unknown(good_.value(g), bad_.value(g))) continue;
    // A branch-faulted gate carries the nascent error even though none of
    // its input *nets* differ (the override lives on the pin).
    bool has_error_input = (g == fault_.net && fault_.pin != kStemPin);
    for (NetId f : nl.fanins(g))
      if (is_error(good_.value(f), bad_.value(f))) {
        has_error_input = true;
        break;
      }
    if (!has_error_input) continue;
    if (best_gate == kNoNet || nl.level(g) < nl.level(best_gate)) best_gate = g;
  }
  if (best_gate == kNoNet) return std::nullopt;

  const GateKind k = nl.kind(best_gate);
  for (NetId f : nl.fanins(best_gate)) {
    if (good_.value(f) == Val3::X && bad_.value(f) == Val3::X) {
      const bool target =
          has_controlling_value(k) ? !controlling_value(k) : false;
      return Objective{f, v3_from_bool(target)};
    }
  }
  return std::nullopt;
}

std::optional<Podem::PiAssignment> Podem::backtrace(Objective obj) const {
  const Netlist& nl = *netlist_;
  NetId net = obj.net;
  bool want = v3_to_bool(obj.value);
  for (std::size_t guard = 0; guard <= nl.n_nets(); ++guard) {
    const GateKind k = nl.kind(net);
    if (k == GateKind::Input) {
      // Position of this PI in the inputs() list.
      const auto& ins = nl.inputs();
      const auto it = std::find(ins.begin(), ins.end(), net);
      assert(it != ins.end());
      const std::size_t pi = static_cast<std::size_t>(it - ins.begin());
      if (good_.input(pi) != Val3::X)
        return std::nullopt;  // already assigned: objective unreachable
      return PiAssignment{pi, v3_from_bool(want)};
    }
    const auto fi = nl.fanins(net);
    if (fi.empty()) return std::nullopt;  // tie cell: cannot control
    if (k == GateKind::Buf || k == GateKind::Not) {
      if (k == GateKind::Not) want = !want;
      net = fi[0];
      continue;
    }
    if (k == GateKind::Xor || k == GateKind::Xnor) {
      // Choose an X input; make the chosen input's target consistent with
      // the known inputs (unknown others counted as 0).
      bool parity = (k == GateKind::Xnor);  // output inversion folded in
      NetId chosen = kNoNet;
      for (NetId f : fi) {
        if (good_.value(f) == Val3::One) parity = !parity;
        if (chosen == kNoNet && good_.value(f) == Val3::X) chosen = f;
      }
      if (chosen == kNoNet) return std::nullopt;
      want = want != parity;
      net = chosen;
      continue;
    }
    // AND/NAND/OR/NOR.
    const bool c = controlling_value(k);
    const bool inv = is_inverting(k);
    const bool base_want = inv ? !want : want;  // desired pre-inversion value
    NetId chosen = kNoNet;
    if (base_want == c) {
      // One controlling input suffices: cheapest-to-control X input
      // (SCOAP CC toward the controlling value).
      for (NetId f : fi) {
        if (good_.value(f) != Val3::X) continue;
        if (chosen == kNoNet || scoap_.cc(f, c) < scoap_.cc(chosen, c))
          chosen = f;
      }
      want = c;
    } else {
      // All inputs must be non-controlling: tackle the hardest first so
      // infeasible assignments fail before effort is spent on easy ones.
      for (NetId f : fi) {
        if (good_.value(f) != Val3::X) continue;
        if (chosen == kNoNet || scoap_.cc(f, !c) > scoap_.cc(chosen, !c))
          chosen = f;
      }
      want = !c;
    }
    if (chosen == kNoNet) return std::nullopt;
    net = chosen;
  }
  return std::nullopt;  // unreachable (guard)
}

PodemResult Podem::generate(const Fault& fault) {
  if (!fault.is_stuck_at())
    throw std::invalid_argument("Podem: only stuck-at faults supported");
  validate_fault(fault, *netlist_);
  fault_ = fault;

  good_.reset();
  bad_.reset();
  const Val3 stuck = v3_from_bool(fault.stuck_value());
  if (fault.pin == kStemPin) {
    fault_site_ = fault.net;
    bad_.set_override(fault.net, stuck);
  } else {
    fault_site_ = netlist_->fanins(fault.net)[fault.pin];
    bad_.set_pin_override(fault.net, fault.pin, stuck);
  }

  PodemResult result;
  struct Decision {
    std::size_t pi;
    bool flipped;
  };
  std::vector<Decision> decisions;
  simulate_both();

  const std::size_t n_pis = netlist_->n_inputs();
  auto current_pattern = [&]() {
    std::vector<Val3> pat(n_pis);
    for (std::size_t i = 0; i < n_pis; ++i) pat[i] = good_.input(i);
    return pat;
  };

  // Iterative PODEM search. Each loop either succeeds, extends the decision
  // stack by one PI assignment, or backtracks.
  for (;;) {
    if (fault_effect_at_output()) {
      result.outcome = PodemOutcome::Detected;
      result.pattern = current_pattern();
      return result;
    }

    bool dead = false;
    const Val3 site_good = good_.value(fault_site_);
    if (v3_is_binary(site_good) &&
        v3_to_bool(site_good) == fault_.stuck_value()) {
      dead = true;  // activation impossible under current assignment
    } else if (fault_activated() && !x_path_exists()) {
      dead = true;  // effect exists but cannot reach any PO
    }

    std::optional<Objective> obj;
    if (!dead) {
      obj = next_objective();
      if (!obj && fault_activated()) dead = true;  // D-frontier exhausted
      if (!obj && !fault_activated()) dead = true; // cannot activate
    }
    std::optional<PiAssignment> assignment;
    if (!dead && obj) {
      assignment = backtrace(*obj);
      if (!assignment) dead = true;
    }

    if (!dead && assignment) {
      decisions.push_back({assignment->pi, false});
      good_.set_input(assignment->pi, assignment->value);
      bad_.set_input(assignment->pi, assignment->value);
      simulate_both();
      continue;
    }

    // Backtrack.
    for (;;) {
      if (decisions.empty()) {
        result.outcome = PodemOutcome::Untestable;
        return result;
      }
      Decision& d = decisions.back();
      if (d.flipped) {
        good_.set_input(d.pi, Val3::X);
        bad_.set_input(d.pi, Val3::X);
        decisions.pop_back();
        continue;
      }
      ++result.backtracks;
      if (result.backtracks > options_.backtrack_limit) {
        result.outcome = PodemOutcome::Aborted;
        return result;
      }
      d.flipped = true;
      const Val3 cur = good_.input(d.pi);
      const Val3 flipped = v3_not(cur);
      good_.set_input(d.pi, flipped);
      bad_.set_input(d.pi, flipped);
      simulate_both();
      break;
    }
  }
}

std::optional<std::vector<bool>> generate_test(const Netlist& netlist,
                                               const Fault& fault,
                                               bool fill_value,
                                               std::size_t backtrack_limit) {
  Podem podem(netlist, {backtrack_limit});
  const PodemResult r = podem.generate(fault);
  if (r.outcome != PodemOutcome::Detected) return std::nullopt;
  std::vector<bool> pattern(r.pattern.size());
  for (std::size_t i = 0; i < r.pattern.size(); ++i)
    pattern[i] = r.pattern[i] == Val3::X ? fill_value
                                         : v3_to_bool(r.pattern[i]);
  return pattern;
}

}  // namespace mdd
