// openmdd — production test-set generation flow.
//
// The standard industrial recipe, used to make the diagnosis experiments
// consume realistic pattern sets:
//   1. random-pattern bootstrap with fault dropping (only patterns that
//      detect a new fault are kept);
//   2. PODEM top-up for random-resistant faults;
//   3. optional reverse-order static compaction.
// Coverage is computed over collapsed stuck-at representatives.
#pragma once

#include <cstdint>

#include "atpg/podem.hpp"
#include "fault/collapse.hpp"
#include "fsim/fsim.hpp"
#include "sim/patterns.hpp"

namespace mdd {

struct TpgOptions {
  std::size_t random_batch = 256;     ///< candidate patterns per random round
  std::size_t max_random_rounds = 8;  ///< rounds stop early when a round
                                      ///< detects nothing new
  bool run_podem = true;              ///< top-up random-resistant faults
  std::size_t backtrack_limit = 100;
  bool compact = true;                ///< reverse-order static compaction
  std::size_t max_patterns = 4096;
  std::uint64_t seed = 1;
};

struct TpgResult {
  PatternSet patterns;
  std::size_t n_target_faults = 0;  ///< collapsed representatives
  std::size_t n_detected = 0;
  std::size_t n_untestable = 0;     ///< proven redundant by PODEM
  std::size_t n_aborted = 0;        ///< PODEM backtrack limit hit

  double coverage() const {
    return n_target_faults == 0
               ? 1.0
               : static_cast<double>(n_detected) /
                     static_cast<double>(n_target_faults);
  }
  /// Coverage excluding proven-untestable faults.
  double effective_coverage() const {
    const std::size_t testable = n_target_faults - n_untestable;
    return testable == 0 ? 1.0
                         : static_cast<double>(n_detected) /
                               static_cast<double>(testable);
  }
};

/// Generates a stuck-at test set for `netlist`.
TpgResult generate_tests(const Netlist& netlist, const TpgOptions& options = {});

/// Reverse-order static compaction: returns the subset of `patterns`
/// (original order preserved) that keeps every fault in `faults` detected.
PatternSet compact_reverse(const Netlist& netlist, const PatternSet& patterns,
                           std::span<const Fault> faults);

// ---- transition-fault (two-pattern) test generation -------------------------

struct TdfTpgOptions {
  std::size_t pair_batch = 256;   ///< candidate pairs per random round
  std::size_t max_rounds = 8;
  std::size_t max_pairs = 4096;
  std::uint64_t seed = 1;
};

struct TdfTpgResult {
  PatternSet launch;
  PatternSet capture;
  std::size_t n_target_faults = 0;  ///< transition universe (2 per net)
  std::size_t n_detected = 0;

  double coverage() const {
    return n_target_faults == 0
               ? 1.0
               : static_cast<double>(n_detected) /
                     static_cast<double>(n_target_faults);
  }
};

/// Random two-pattern (launch-on-capture style) transition test generation
/// with fault dropping: a pair is kept only when it first-detects a
/// still-undetected slow-to-rise/fall fault.
TdfTpgResult generate_tdf_tests(const Netlist& netlist,
                                const TdfTpgOptions& options = {});

}  // namespace mdd
