#include "atpg/tpg.hpp"

#include <algorithm>
#include <random>

#include "fsim/propagate.hpp"

namespace mdd {

TpgResult generate_tests(const Netlist& netlist, const TpgOptions& options) {
  const CollapsedFaults collapsed(netlist);
  const std::vector<Fault>& targets = collapsed.representatives();

  TpgResult result;
  result.n_target_faults = targets.size();
  result.patterns = PatternSet(0, netlist.n_inputs());

  std::vector<Fault> undetected(targets.begin(), targets.end());
  std::mt19937_64 rng(options.seed);

  // Phase 1: random rounds with fault dropping. A pattern from the batch is
  // kept only if it is the first detector of some still-undetected fault.
  for (std::size_t round = 0; round < options.max_random_rounds; ++round) {
    if (undetected.empty()) break;
    if (result.patterns.n_patterns() >= options.max_patterns) break;
    const PatternSet batch =
        PatternSet::random(options.random_batch, netlist.n_inputs(), rng());
    SingleFaultPropagator prop(netlist, batch);
    std::vector<bool> keep(batch.n_patterns(), false);
    std::vector<Fault> still;
    still.reserve(undetected.size());
    for (const Fault& f : undetected) {
      const ErrorSignature sig = prop.signature(f);
      if (!sig.empty()) {
        keep[sig.failing_patterns().front()] = true;
      } else {
        still.push_back(f);
      }
    }
    if (still.size() == undetected.size()) break;  // round detected nothing
    for (std::size_t p = 0; p < batch.n_patterns(); ++p) {
      if (keep[p] && result.patterns.n_patterns() < options.max_patterns)
        result.patterns.append(batch.pattern(p));
    }
    undetected = std::move(still);
  }

  // Phase 2: PODEM top-up for random-resistant faults. Generated patterns
  // are accumulated in small batches and fault-dropped so one deterministic
  // pattern can retire several remaining faults.
  if (options.run_podem && !undetected.empty()) {
    Podem podem(netlist, {options.backtrack_limit});
    PatternSet batch(0, netlist.n_inputs());
    std::vector<bool> retired(undetected.size(), false);

    auto flush_batch = [&](std::size_t next_index) {
      if (batch.n_patterns() == 0) return;
      // Fault-drop: retire any remaining target this batch happens to
      // detect, so it never costs a PODEM run of its own.
      SingleFaultPropagator prop(netlist, batch);
      for (std::size_t j = next_index; j < undetected.size(); ++j)
        if (!retired[j] && !prop.signature(undetected[j]).empty())
          retired[j] = true;
      for (std::size_t p = 0; p < batch.n_patterns(); ++p)
        if (result.patterns.n_patterns() < options.max_patterns)
          result.patterns.append(batch.pattern(p));
      batch = PatternSet(0, netlist.n_inputs());
    };

    for (std::size_t i = 0; i < undetected.size(); ++i) {
      if (retired[i]) continue;
      const PodemResult pr = podem.generate(undetected[i]);
      if (pr.outcome == PodemOutcome::Untestable) {
        ++result.n_untestable;
        continue;
      }
      if (pr.outcome == PodemOutcome::Aborted) {
        ++result.n_aborted;
        continue;
      }
      std::vector<bool> pattern(pr.pattern.size());
      for (std::size_t j = 0; j < pr.pattern.size(); ++j)
        pattern[j] = pr.pattern[j] == Val3::X ? (rng() & 1u)
                                              : v3_to_bool(pr.pattern[j]);
      batch.append(pattern);
      if (batch.n_patterns() == 64) flush_batch(i + 1);
    }
    flush_batch(undetected.size());
  }

  // Phase 3: optional reverse-order compaction over the kept set.
  if (options.compact && result.patterns.n_patterns() > 1) {
    result.patterns = compact_reverse(netlist, result.patterns, targets);
  }

  // Final accounting on the finished pattern set.
  if (result.patterns.n_patterns() > 0) {
    SingleFaultPropagator prop(netlist, result.patterns);
    for (const Fault& f : targets)
      if (!prop.signature(f).empty()) ++result.n_detected;
  }
  return result;
}

TdfTpgResult generate_tdf_tests(const Netlist& netlist,
                                const TdfTpgOptions& options) {
  TdfTpgResult result;
  const std::vector<Fault> targets = all_transition_faults(netlist);
  result.n_target_faults = targets.size();
  result.launch = PatternSet(0, netlist.n_inputs());
  result.capture = PatternSet(0, netlist.n_inputs());

  std::vector<Fault> undetected(targets.begin(), targets.end());
  std::mt19937_64 rng(options.seed);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    if (undetected.empty()) break;
    if (result.capture.n_patterns() >= options.max_pairs) break;
    const PatternSet launch =
        PatternSet::random(options.pair_batch, netlist.n_inputs(), rng());
    const PatternSet capture =
        PatternSet::random(options.pair_batch, netlist.n_inputs(), rng());
    SingleFaultPropagator prop(netlist, launch, capture);
    std::vector<bool> keep(options.pair_batch, false);
    std::vector<Fault> still;
    still.reserve(undetected.size());
    for (const Fault& f : undetected) {
      const ErrorSignature sig = prop.signature(f);
      if (!sig.empty()) {
        keep[sig.failing_patterns().front()] = true;
      } else {
        still.push_back(f);
      }
    }
    if (still.size() == undetected.size()) break;
    for (std::size_t p = 0; p < options.pair_batch; ++p) {
      if (keep[p] && result.capture.n_patterns() < options.max_pairs) {
        result.launch.append(launch.pattern(p));
        result.capture.append(capture.pattern(p));
      }
    }
    undetected = std::move(still);
  }

  if (result.capture.n_patterns() > 0) {
    SingleFaultPropagator prop(netlist, result.launch, result.capture);
    for (const Fault& f : targets)
      if (!prop.signature(f).empty()) ++result.n_detected;
  }
  return result;
}

PatternSet compact_reverse(const Netlist& netlist, const PatternSet& patterns,
                           std::span<const Fault> faults) {
  SingleFaultPropagator prop(netlist, patterns);
  // Per-fault detecting-pattern lists.
  std::vector<std::vector<std::uint32_t>> detectors;
  detectors.reserve(faults.size());
  for (const Fault& f : faults) {
    detectors.push_back(prop.signature(f).failing_patterns());
  }
  // Greedy reverse scan: keep a pattern if some fault's detector set
  // contains it and no already-kept pattern.
  std::vector<bool> kept(patterns.n_patterns(), false);
  std::vector<bool> fault_covered(faults.size(), false);
  for (std::size_t p = patterns.n_patterns(); p-- > 0;) {
    bool needed = false;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (fault_covered[fi]) continue;
      const auto& det = detectors[fi];
      if (det.empty()) continue;
      if (!std::binary_search(det.begin(), det.end(),
                              static_cast<std::uint32_t>(p)))
        continue;
      // Is `p` the last remaining chance for this fault (no kept detector
      // yet and no detector earlier than p)? Greedy reverse: keep p if the
      // fault has no kept detector and p is its highest uncovered detector.
      needed = true;
      break;
    }
    if (!needed) continue;
    kept[p] = true;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (fault_covered[fi]) continue;
      const auto& det = detectors[fi];
      if (std::binary_search(det.begin(), det.end(),
                             static_cast<std::uint32_t>(p)))
        fault_covered[fi] = true;
    }
  }
  PatternSet out(0, patterns.n_signals());
  for (std::size_t p = 0; p < patterns.n_patterns(); ++p)
    if (kept[p]) out.append(patterns.pattern(p));
  return out;
}

}  // namespace mdd
