// openmdd — PODEM automatic test pattern generation for stuck-at faults.
//
// Classic PODEM (Goel 1981): decisions are made only on primary inputs;
// objectives (activate the fault, then advance the D-frontier) are mapped
// to PI assignments by backtrace through easiest-to-control paths; implied
// values come from a pair of three-valued simulations (good machine and
// faulty machine with the stuck site overridden). A backtrack limit bounds
// per-fault effort; exceeding it marks the fault *aborted* rather than
// untestable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/scoap.hpp"
#include "fault/fault.hpp"
#include "sim/sim3.hpp"

namespace mdd {

enum class PodemOutcome : std::uint8_t {
  Detected,    ///< test found (pattern is valid)
  Untestable,  ///< search space exhausted: fault is redundant
  Aborted,     ///< backtrack limit exceeded
};

struct PodemResult {
  PodemOutcome outcome = PodemOutcome::Aborted;
  /// PI values for Detected; X positions may be filled arbitrarily.
  std::vector<Val3> pattern;
  std::size_t backtracks = 0;
};

struct PodemOptions {
  std::size_t backtrack_limit = 200;
};

class Podem {
 public:
  using Options = PodemOptions;

  explicit Podem(const Netlist& netlist, Options options = Options{});

  /// Generates a test for a *stem or branch* stuck-at fault. Branch faults
  /// are handled by targeting the stem value at the branch source with
  /// propagation restricted through the branched gate.
  PodemResult generate(const Fault& fault);

  const Netlist& netlist() const { return *netlist_; }

 private:
  struct Objective {
    NetId net;
    Val3 value;
  };

  struct PiAssignment {
    std::size_t pi;
    Val3 value;
  };

  bool fault_activated() const;
  bool fault_effect_at_output() const;
  bool x_path_exists() const;
  std::optional<Objective> next_objective();
  std::optional<PiAssignment> backtrace(Objective obj) const;
  void simulate_both();

  const Netlist* netlist_;
  Options options_;
  Scalar3Sim good_;
  Scalar3Sim bad_;
  Fault fault_{};
  NetId fault_site_ = kNoNet;  ///< net whose good value must differ
  Scoap scoap_;  ///< SCOAP measures drive the backtrace input choices
};

/// Convenience: a binary pattern detecting `fault`, if PODEM succeeds.
/// X positions are filled with `fill_value`.
std::optional<std::vector<bool>> generate_test(const Netlist& netlist,
                                               const Fault& fault,
                                               bool fill_value = false,
                                               std::size_t backtrack_limit = 200);

}  // namespace mdd
