#include "atpg/scoap.hpp"

#include <algorithm>

namespace mdd {

namespace {

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t s = a + b;
  return std::min(s, Scoap::kInf);
}

}  // namespace

Scoap compute_scoap(const Netlist& nl) {
  Scoap scoap;
  scoap.cc0.assign(nl.n_nets(), Scoap::kInf);
  scoap.cc1.assign(nl.n_nets(), Scoap::kInf);
  scoap.co.assign(nl.n_nets(), Scoap::kInf);

  // Forward: controllability in topological order.
  for (NetId g : nl.topo_order()) {
    const auto fi = nl.fanins(g);
    switch (nl.kind(g)) {
      case GateKind::Input:
        scoap.cc0[g] = scoap.cc1[g] = 1;
        break;
      case GateKind::Const0:
        scoap.cc0[g] = 1;
        break;
      case GateKind::Const1:
        scoap.cc1[g] = 1;
        break;
      case GateKind::Buf:
        scoap.cc0[g] = sat_add(scoap.cc0[fi[0]], 1);
        scoap.cc1[g] = sat_add(scoap.cc1[fi[0]], 1);
        break;
      case GateKind::Not:
        scoap.cc0[g] = sat_add(scoap.cc1[fi[0]], 1);
        scoap.cc1[g] = sat_add(scoap.cc0[fi[0]], 1);
        break;
      case GateKind::And:
      case GateKind::Nand: {
        std::uint32_t all1 = 0, min0 = Scoap::kInf;
        for (NetId f : fi) {
          all1 = sat_add(all1, scoap.cc1[f]);
          min0 = std::min(min0, scoap.cc0[f]);
        }
        const std::uint32_t out1 = sat_add(all1, 1);   // all inputs 1
        const std::uint32_t out0 = sat_add(min0, 1);   // any input 0
        const bool inv = nl.kind(g) == GateKind::Nand;
        scoap.cc1[g] = inv ? out0 : out1;
        scoap.cc0[g] = inv ? out1 : out0;
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        std::uint32_t all0 = 0, min1 = Scoap::kInf;
        for (NetId f : fi) {
          all0 = sat_add(all0, scoap.cc0[f]);
          min1 = std::min(min1, scoap.cc1[f]);
        }
        const std::uint32_t out0 = sat_add(all0, 1);
        const std::uint32_t out1 = sat_add(min1, 1);
        const bool inv = nl.kind(g) == GateKind::Nor;
        scoap.cc1[g] = inv ? out0 : out1;
        scoap.cc0[g] = inv ? out1 : out0;
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        // Fold inputs pairwise: cheapest way to reach parity 0 / 1.
        std::uint32_t p0 = scoap.cc0[fi[0]], p1 = scoap.cc1[fi[0]];
        for (std::size_t j = 1; j < fi.size(); ++j) {
          const std::uint32_t q0 = scoap.cc0[fi[j]], q1 = scoap.cc1[fi[j]];
          const std::uint32_t n0 =
              std::min(sat_add(p0, q0), sat_add(p1, q1));
          const std::uint32_t n1 =
              std::min(sat_add(p0, q1), sat_add(p1, q0));
          p0 = n0;
          p1 = n1;
        }
        const bool inv = nl.kind(g) == GateKind::Xnor;
        scoap.cc0[g] = sat_add(inv ? p1 : p0, 1);
        scoap.cc1[g] = sat_add(inv ? p0 : p1, 1);
        break;
      }
    }
  }

  // Backward: observability in reverse topological order.
  for (NetId o : nl.outputs()) scoap.co[o] = 0;
  const auto& topo = nl.topo_order();
  for (std::size_t idx = topo.size(); idx-- > 0;) {
    const NetId g = topo[idx];
    if (scoap.co[g] >= Scoap::kInf) continue;  // unobservable gate
    const auto fi = nl.fanins(g);
    for (std::size_t i = 0; i < fi.size(); ++i) {
      std::uint32_t side = 0;  // cost of enabling the side inputs
      switch (nl.kind(g)) {
        case GateKind::And:
        case GateKind::Nand:
          for (std::size_t j = 0; j < fi.size(); ++j)
            if (j != i) side = sat_add(side, scoap.cc1[fi[j]]);
          break;
        case GateKind::Or:
        case GateKind::Nor:
          for (std::size_t j = 0; j < fi.size(); ++j)
            if (j != i) side = sat_add(side, scoap.cc0[fi[j]]);
          break;
        case GateKind::Xor:
        case GateKind::Xnor:
          for (std::size_t j = 0; j < fi.size(); ++j)
            if (j != i)
              side = sat_add(side,
                             std::min(scoap.cc0[fi[j]], scoap.cc1[fi[j]]));
          break;
        default:
          break;  // BUF/NOT: no side inputs
      }
      const std::uint32_t through = sat_add(sat_add(scoap.co[g], side), 1);
      scoap.co[fi[i]] = std::min(scoap.co[fi[i]], through);
    }
  }
  return scoap;
}

}  // namespace mdd
