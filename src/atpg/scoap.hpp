// openmdd — SCOAP testability analysis (Goldstein 1979).
//
// Combinational controllability CC0/CC1 (minimum "effort" to set a net to
// 0/1, counted in gate traversals) and observability CO (effort to
// propagate a net's value to a primary output). Used by PODEM's backtrace
// to choose the easiest controlling input / hardest non-controlling input,
// and exposed for reporting (hard-to-test net identification).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace mdd {

struct Scoap {
  /// Large finite sentinel for uncontrollable/unobservable nets (ties and
  /// arithmetic stay well-defined, unlike with infinities).
  static constexpr std::uint32_t kInf = 1u << 24;

  std::vector<std::uint32_t> cc0;  ///< per net: cost to drive 0
  std::vector<std::uint32_t> cc1;  ///< per net: cost to drive 1
  std::vector<std::uint32_t> co;   ///< per net: cost to observe

  /// Cost to drive net `n` to `value`.
  std::uint32_t cc(NetId n, bool value) const {
    return value ? cc1[n] : cc0[n];
  }
  /// Combined stuck-at-v test effort for a net (controll to !v + observe).
  std::uint32_t test_effort(NetId n, bool stuck_value) const {
    const std::uint32_t c = cc(n, !stuck_value);
    return c >= kInf || co[n] >= kInf ? kInf : c + co[n];
  }
};

/// Computes SCOAP measures for a finalized netlist. One forward pass for
/// controllability (topological), one backward pass for observability.
Scoap compute_scoap(const Netlist& netlist);

}  // namespace mdd
