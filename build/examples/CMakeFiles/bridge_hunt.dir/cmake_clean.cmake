file(REMOVE_RECURSE
  "CMakeFiles/bridge_hunt.dir/bridge_hunt.cpp.o"
  "CMakeFiles/bridge_hunt.dir/bridge_hunt.cpp.o.d"
  "bridge_hunt"
  "bridge_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
