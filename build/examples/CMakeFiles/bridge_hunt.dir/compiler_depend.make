# Empty compiler generated dependencies file for bridge_hunt.
# This may be replaced when dependencies are built.
