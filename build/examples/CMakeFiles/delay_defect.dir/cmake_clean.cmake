file(REMOVE_RECURSE
  "CMakeFiles/delay_defect.dir/delay_defect.cpp.o"
  "CMakeFiles/delay_defect.dir/delay_defect.cpp.o.d"
  "delay_defect"
  "delay_defect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_defect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
