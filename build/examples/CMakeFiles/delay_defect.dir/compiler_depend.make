# Empty compiler generated dependencies file for delay_defect.
# This may be replaced when dependencies are built.
