# Empty compiler generated dependencies file for interacting_defects.
# This may be replaced when dependencies are built.
