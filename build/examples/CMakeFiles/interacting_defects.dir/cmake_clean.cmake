file(REMOVE_RECURSE
  "CMakeFiles/interacting_defects.dir/interacting_defects.cpp.o"
  "CMakeFiles/interacting_defects.dir/interacting_defects.cpp.o.d"
  "interacting_defects"
  "interacting_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interacting_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
