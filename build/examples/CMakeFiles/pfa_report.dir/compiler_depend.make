# Empty compiler generated dependencies file for pfa_report.
# This may be replaced when dependencies are built.
