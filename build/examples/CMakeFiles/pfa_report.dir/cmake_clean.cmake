file(REMOVE_RECURSE
  "CMakeFiles/pfa_report.dir/pfa_report.cpp.o"
  "CMakeFiles/pfa_report.dir/pfa_report.cpp.o.d"
  "pfa_report"
  "pfa_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfa_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
