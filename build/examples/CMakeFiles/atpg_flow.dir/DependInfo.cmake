
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/atpg_flow.cpp" "examples/CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o" "gcc" "examples/CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mdd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/mdd_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/mdd_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/mdd_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mdd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mdd_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
