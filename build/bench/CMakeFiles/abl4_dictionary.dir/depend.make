# Empty dependencies file for abl4_dictionary.
# This may be replaced when dependencies are built.
