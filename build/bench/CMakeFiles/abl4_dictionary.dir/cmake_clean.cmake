file(REMOVE_RECURSE
  "CMakeFiles/abl4_dictionary.dir/abl4_dictionary.cpp.o"
  "CMakeFiles/abl4_dictionary.dir/abl4_dictionary.cpp.o.d"
  "abl4_dictionary"
  "abl4_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
