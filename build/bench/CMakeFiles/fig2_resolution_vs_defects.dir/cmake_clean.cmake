file(REMOVE_RECURSE
  "CMakeFiles/fig2_resolution_vs_defects.dir/fig2_resolution_vs_defects.cpp.o"
  "CMakeFiles/fig2_resolution_vs_defects.dir/fig2_resolution_vs_defects.cpp.o.d"
  "fig2_resolution_vs_defects"
  "fig2_resolution_vs_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_resolution_vs_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
