# Empty compiler generated dependencies file for fig2_resolution_vs_defects.
# This may be replaced when dependencies are built.
