file(REMOVE_RECURSE
  "CMakeFiles/perf_diag.dir/perf_diag.cpp.o"
  "CMakeFiles/perf_diag.dir/perf_diag.cpp.o.d"
  "perf_diag"
  "perf_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
