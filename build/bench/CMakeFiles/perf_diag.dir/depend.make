# Empty dependencies file for perf_diag.
# This may be replaced when dependencies are built.
