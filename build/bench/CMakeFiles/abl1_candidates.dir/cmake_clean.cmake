file(REMOVE_RECURSE
  "CMakeFiles/abl1_candidates.dir/abl1_candidates.cpp.o"
  "CMakeFiles/abl1_candidates.dir/abl1_candidates.cpp.o.d"
  "abl1_candidates"
  "abl1_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
