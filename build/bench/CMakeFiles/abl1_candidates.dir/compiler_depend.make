# Empty compiler generated dependencies file for abl1_candidates.
# This may be replaced when dependencies are built.
