# Empty compiler generated dependencies file for tab5_interaction.
# This may be replaced when dependencies are built.
