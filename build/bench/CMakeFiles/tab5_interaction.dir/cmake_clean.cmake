file(REMOVE_RECURSE
  "CMakeFiles/tab5_interaction.dir/tab5_interaction.cpp.o"
  "CMakeFiles/tab5_interaction.dir/tab5_interaction.cpp.o.d"
  "tab5_interaction"
  "tab5_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
