file(REMOVE_RECURSE
  "CMakeFiles/fig1_accuracy_vs_defects.dir/fig1_accuracy_vs_defects.cpp.o"
  "CMakeFiles/fig1_accuracy_vs_defects.dir/fig1_accuracy_vs_defects.cpp.o.d"
  "fig1_accuracy_vs_defects"
  "fig1_accuracy_vs_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_accuracy_vs_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
