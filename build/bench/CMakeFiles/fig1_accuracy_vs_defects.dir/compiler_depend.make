# Empty compiler generated dependencies file for fig1_accuracy_vs_defects.
# This may be replaced when dependencies are built.
