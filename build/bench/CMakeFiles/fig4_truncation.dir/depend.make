# Empty dependencies file for fig4_truncation.
# This may be replaced when dependencies are built.
