file(REMOVE_RECURSE
  "CMakeFiles/fig4_truncation.dir/fig4_truncation.cpp.o"
  "CMakeFiles/fig4_truncation.dir/fig4_truncation.cpp.o.d"
  "fig4_truncation"
  "fig4_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
