# Empty compiler generated dependencies file for tab1_circuits.
# This may be replaced when dependencies are built.
