file(REMOVE_RECURSE
  "CMakeFiles/tab1_circuits.dir/tab1_circuits.cpp.o"
  "CMakeFiles/tab1_circuits.dir/tab1_circuits.cpp.o.d"
  "tab1_circuits"
  "tab1_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
