# Empty compiler generated dependencies file for abl2_weights.
# This may be replaced when dependencies are built.
