file(REMOVE_RECURSE
  "CMakeFiles/abl2_weights.dir/abl2_weights.cpp.o"
  "CMakeFiles/abl2_weights.dir/abl2_weights.cpp.o.d"
  "abl2_weights"
  "abl2_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
