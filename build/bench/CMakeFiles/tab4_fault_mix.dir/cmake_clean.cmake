file(REMOVE_RECURSE
  "CMakeFiles/tab4_fault_mix.dir/tab4_fault_mix.cpp.o"
  "CMakeFiles/tab4_fault_mix.dir/tab4_fault_mix.cpp.o.d"
  "tab4_fault_mix"
  "tab4_fault_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_fault_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
