# Empty dependencies file for tab4_fault_mix.
# This may be replaced when dependencies are built.
