file(REMOVE_RECURSE
  "CMakeFiles/fig5_xmask.dir/fig5_xmask.cpp.o"
  "CMakeFiles/fig5_xmask.dir/fig5_xmask.cpp.o.d"
  "fig5_xmask"
  "fig5_xmask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_xmask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
