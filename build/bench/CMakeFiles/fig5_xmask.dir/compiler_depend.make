# Empty compiler generated dependencies file for fig5_xmask.
# This may be replaced when dependencies are built.
