file(REMOVE_RECURSE
  "CMakeFiles/abl3_refinement.dir/abl3_refinement.cpp.o"
  "CMakeFiles/abl3_refinement.dir/abl3_refinement.cpp.o.d"
  "abl3_refinement"
  "abl3_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
