# Empty compiler generated dependencies file for abl3_refinement.
# This may be replaced when dependencies are built.
