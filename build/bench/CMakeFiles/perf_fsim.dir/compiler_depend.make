# Empty compiler generated dependencies file for perf_fsim.
# This may be replaced when dependencies are built.
