file(REMOVE_RECURSE
  "CMakeFiles/perf_fsim.dir/perf_fsim.cpp.o"
  "CMakeFiles/perf_fsim.dir/perf_fsim.cpp.o.d"
  "perf_fsim"
  "perf_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
