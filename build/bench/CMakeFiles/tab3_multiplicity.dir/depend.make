# Empty dependencies file for tab3_multiplicity.
# This may be replaced when dependencies are built.
