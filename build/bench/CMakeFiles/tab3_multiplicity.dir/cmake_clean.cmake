file(REMOVE_RECURSE
  "CMakeFiles/tab3_multiplicity.dir/tab3_multiplicity.cpp.o"
  "CMakeFiles/tab3_multiplicity.dir/tab3_multiplicity.cpp.o.d"
  "tab3_multiplicity"
  "tab3_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
