file(REMOVE_RECURSE
  "CMakeFiles/tab6_delay.dir/tab6_delay.cpp.o"
  "CMakeFiles/tab6_delay.dir/tab6_delay.cpp.o.d"
  "tab6_delay"
  "tab6_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
