# Empty dependencies file for tab6_delay.
# This may be replaced when dependencies are built.
