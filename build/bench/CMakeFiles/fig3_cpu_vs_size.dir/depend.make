# Empty dependencies file for fig3_cpu_vs_size.
# This may be replaced when dependencies are built.
