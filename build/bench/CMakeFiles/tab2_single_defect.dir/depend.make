# Empty dependencies file for tab2_single_defect.
# This may be replaced when dependencies are built.
