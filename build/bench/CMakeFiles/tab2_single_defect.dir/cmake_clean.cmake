file(REMOVE_RECURSE
  "CMakeFiles/tab2_single_defect.dir/tab2_single_defect.cpp.o"
  "CMakeFiles/tab2_single_defect.dir/tab2_single_defect.cpp.o.d"
  "tab2_single_defect"
  "tab2_single_defect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_single_defect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
