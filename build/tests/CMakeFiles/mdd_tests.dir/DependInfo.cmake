
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_atpg.cpp" "tests/CMakeFiles/mdd_tests.dir/test_atpg.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_atpg.cpp.o.d"
  "/root/repo/tests/test_bench_parser.cpp" "tests/CMakeFiles/mdd_tests.dir/test_bench_parser.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_bench_parser.cpp.o.d"
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/mdd_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_candidates.cpp" "tests/CMakeFiles/mdd_tests.dir/test_candidates.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_candidates.cpp.o.d"
  "/root/repo/tests/test_cell.cpp" "tests/CMakeFiles/mdd_tests.dir/test_cell.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_cell.cpp.o.d"
  "/root/repo/tests/test_collapse.cpp" "tests/CMakeFiles/mdd_tests.dir/test_collapse.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_collapse.cpp.o.d"
  "/root/repo/tests/test_cpt.cpp" "tests/CMakeFiles/mdd_tests.dir/test_cpt.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_cpt.cpp.o.d"
  "/root/repo/tests/test_datalog.cpp" "tests/CMakeFiles/mdd_tests.dir/test_datalog.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_datalog.cpp.o.d"
  "/root/repo/tests/test_diag_sweep.cpp" "tests/CMakeFiles/mdd_tests.dir/test_diag_sweep.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_diag_sweep.cpp.o.d"
  "/root/repo/tests/test_diagnosis.cpp" "tests/CMakeFiles/mdd_tests.dir/test_diagnosis.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_diagnosis.cpp.o.d"
  "/root/repo/tests/test_dictionary.cpp" "tests/CMakeFiles/mdd_tests.dir/test_dictionary.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_dictionary.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/mdd_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/mdd_tests.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_fault.cpp.o.d"
  "/root/repo/tests/test_fsim.cpp" "tests/CMakeFiles/mdd_tests.dir/test_fsim.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_fsim.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/mdd_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mdd_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_logic.cpp" "tests/CMakeFiles/mdd_tests.dir/test_logic.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_logic.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/mdd_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_options.cpp" "tests/CMakeFiles/mdd_tests.dir/test_options.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_options.cpp.o.d"
  "/root/repo/tests/test_propagate.cpp" "tests/CMakeFiles/mdd_tests.dir/test_propagate.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_propagate.cpp.o.d"
  "/root/repo/tests/test_scoap.cpp" "tests/CMakeFiles/mdd_tests.dir/test_scoap.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_scoap.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/mdd_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mdd_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tdf.cpp" "tests/CMakeFiles/mdd_tests.dir/test_tdf.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_tdf.cpp.o.d"
  "/root/repo/tests/test_textio.cpp" "tests/CMakeFiles/mdd_tests.dir/test_textio.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_textio.cpp.o.d"
  "/root/repo/tests/test_verilog_parser.cpp" "tests/CMakeFiles/mdd_tests.dir/test_verilog_parser.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_verilog_parser.cpp.o.d"
  "/root/repo/tests/test_xmask.cpp" "tests/CMakeFiles/mdd_tests.dir/test_xmask.cpp.o" "gcc" "tests/CMakeFiles/mdd_tests.dir/test_xmask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mdd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/mdd_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/mdd_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/mdd_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mdd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mdd_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
