# Empty dependencies file for mdd_tests.
# This may be replaced when dependencies are built.
