file(REMOVE_RECURSE
  "CMakeFiles/openmdd.dir/openmdd.cpp.o"
  "CMakeFiles/openmdd.dir/openmdd.cpp.o.d"
  "openmdd"
  "openmdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
