# Empty dependencies file for openmdd.
# This may be replaced when dependencies are built.
