# Empty compiler generated dependencies file for openmdd.
# This may be replaced when dependencies are built.
