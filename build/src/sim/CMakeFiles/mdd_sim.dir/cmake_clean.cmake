file(REMOVE_RECURSE
  "CMakeFiles/mdd_sim.dir/event_sim.cpp.o"
  "CMakeFiles/mdd_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/mdd_sim.dir/patterns.cpp.o"
  "CMakeFiles/mdd_sim.dir/patterns.cpp.o.d"
  "CMakeFiles/mdd_sim.dir/sim2.cpp.o"
  "CMakeFiles/mdd_sim.dir/sim2.cpp.o.d"
  "CMakeFiles/mdd_sim.dir/sim3.cpp.o"
  "CMakeFiles/mdd_sim.dir/sim3.cpp.o.d"
  "libmdd_sim.a"
  "libmdd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
