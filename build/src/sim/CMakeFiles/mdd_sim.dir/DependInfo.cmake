
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/mdd_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mdd_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/patterns.cpp" "src/sim/CMakeFiles/mdd_sim.dir/patterns.cpp.o" "gcc" "src/sim/CMakeFiles/mdd_sim.dir/patterns.cpp.o.d"
  "/root/repo/src/sim/sim2.cpp" "src/sim/CMakeFiles/mdd_sim.dir/sim2.cpp.o" "gcc" "src/sim/CMakeFiles/mdd_sim.dir/sim2.cpp.o.d"
  "/root/repo/src/sim/sim3.cpp" "src/sim/CMakeFiles/mdd_sim.dir/sim3.cpp.o" "gcc" "src/sim/CMakeFiles/mdd_sim.dir/sim3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mdd_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
