file(REMOVE_RECURSE
  "libmdd_sim.a"
)
