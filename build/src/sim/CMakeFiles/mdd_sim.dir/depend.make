# Empty dependencies file for mdd_sim.
# This may be replaced when dependencies are built.
