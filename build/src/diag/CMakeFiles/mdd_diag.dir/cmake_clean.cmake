file(REMOVE_RECURSE
  "CMakeFiles/mdd_diag.dir/candidates.cpp.o"
  "CMakeFiles/mdd_diag.dir/candidates.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/datalog.cpp.o"
  "CMakeFiles/mdd_diag.dir/datalog.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/diagnosis.cpp.o"
  "CMakeFiles/mdd_diag.dir/diagnosis.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/dictionary.cpp.o"
  "CMakeFiles/mdd_diag.dir/dictionary.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/metrics.cpp.o"
  "CMakeFiles/mdd_diag.dir/metrics.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/multiplet.cpp.o"
  "CMakeFiles/mdd_diag.dir/multiplet.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/single_fault.cpp.o"
  "CMakeFiles/mdd_diag.dir/single_fault.cpp.o.d"
  "CMakeFiles/mdd_diag.dir/slat.cpp.o"
  "CMakeFiles/mdd_diag.dir/slat.cpp.o.d"
  "libmdd_diag.a"
  "libmdd_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
