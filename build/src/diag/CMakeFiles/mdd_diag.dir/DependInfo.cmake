
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diag/candidates.cpp" "src/diag/CMakeFiles/mdd_diag.dir/candidates.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/candidates.cpp.o.d"
  "/root/repo/src/diag/datalog.cpp" "src/diag/CMakeFiles/mdd_diag.dir/datalog.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/datalog.cpp.o.d"
  "/root/repo/src/diag/diagnosis.cpp" "src/diag/CMakeFiles/mdd_diag.dir/diagnosis.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/diagnosis.cpp.o.d"
  "/root/repo/src/diag/dictionary.cpp" "src/diag/CMakeFiles/mdd_diag.dir/dictionary.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/dictionary.cpp.o.d"
  "/root/repo/src/diag/metrics.cpp" "src/diag/CMakeFiles/mdd_diag.dir/metrics.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/metrics.cpp.o.d"
  "/root/repo/src/diag/multiplet.cpp" "src/diag/CMakeFiles/mdd_diag.dir/multiplet.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/multiplet.cpp.o.d"
  "/root/repo/src/diag/single_fault.cpp" "src/diag/CMakeFiles/mdd_diag.dir/single_fault.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/single_fault.cpp.o.d"
  "/root/repo/src/diag/slat.cpp" "src/diag/CMakeFiles/mdd_diag.dir/slat.cpp.o" "gcc" "src/diag/CMakeFiles/mdd_diag.dir/slat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsim/CMakeFiles/mdd_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mdd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mdd_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
