# Empty dependencies file for mdd_diag.
# This may be replaced when dependencies are built.
