file(REMOVE_RECURSE
  "libmdd_diag.a"
)
