file(REMOVE_RECURSE
  "libmdd_fsim.a"
)
