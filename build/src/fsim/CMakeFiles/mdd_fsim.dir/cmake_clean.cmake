file(REMOVE_RECURSE
  "CMakeFiles/mdd_fsim.dir/cpt.cpp.o"
  "CMakeFiles/mdd_fsim.dir/cpt.cpp.o.d"
  "CMakeFiles/mdd_fsim.dir/fsim.cpp.o"
  "CMakeFiles/mdd_fsim.dir/fsim.cpp.o.d"
  "CMakeFiles/mdd_fsim.dir/propagate.cpp.o"
  "CMakeFiles/mdd_fsim.dir/propagate.cpp.o.d"
  "libmdd_fsim.a"
  "libmdd_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
