# Empty dependencies file for mdd_fsim.
# This may be replaced when dependencies are built.
