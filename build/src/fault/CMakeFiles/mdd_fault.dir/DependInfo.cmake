
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/collapse.cpp" "src/fault/CMakeFiles/mdd_fault.dir/collapse.cpp.o" "gcc" "src/fault/CMakeFiles/mdd_fault.dir/collapse.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/mdd_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/mdd_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/inject.cpp" "src/fault/CMakeFiles/mdd_fault.dir/inject.cpp.o" "gcc" "src/fault/CMakeFiles/mdd_fault.dir/inject.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mdd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
