# Empty dependencies file for mdd_fault.
# This may be replaced when dependencies are built.
