file(REMOVE_RECURSE
  "CMakeFiles/mdd_fault.dir/collapse.cpp.o"
  "CMakeFiles/mdd_fault.dir/collapse.cpp.o.d"
  "CMakeFiles/mdd_fault.dir/fault.cpp.o"
  "CMakeFiles/mdd_fault.dir/fault.cpp.o.d"
  "CMakeFiles/mdd_fault.dir/inject.cpp.o"
  "CMakeFiles/mdd_fault.dir/inject.cpp.o.d"
  "libmdd_fault.a"
  "libmdd_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
