file(REMOVE_RECURSE
  "libmdd_fault.a"
)
