# Empty compiler generated dependencies file for mdd_workload.
# This may be replaced when dependencies are built.
