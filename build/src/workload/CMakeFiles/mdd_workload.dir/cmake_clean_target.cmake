file(REMOVE_RECURSE
  "libmdd_workload.a"
)
