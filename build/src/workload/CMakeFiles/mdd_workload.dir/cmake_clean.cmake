file(REMOVE_RECURSE
  "CMakeFiles/mdd_workload.dir/campaign.cpp.o"
  "CMakeFiles/mdd_workload.dir/campaign.cpp.o.d"
  "CMakeFiles/mdd_workload.dir/circuits.cpp.o"
  "CMakeFiles/mdd_workload.dir/circuits.cpp.o.d"
  "CMakeFiles/mdd_workload.dir/table.cpp.o"
  "CMakeFiles/mdd_workload.dir/table.cpp.o.d"
  "CMakeFiles/mdd_workload.dir/textio.cpp.o"
  "CMakeFiles/mdd_workload.dir/textio.cpp.o.d"
  "libmdd_workload.a"
  "libmdd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
