file(REMOVE_RECURSE
  "libmdd_netlist.a"
)
