file(REMOVE_RECURSE
  "CMakeFiles/mdd_netlist.dir/bench_parser.cpp.o"
  "CMakeFiles/mdd_netlist.dir/bench_parser.cpp.o.d"
  "CMakeFiles/mdd_netlist.dir/cell.cpp.o"
  "CMakeFiles/mdd_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/mdd_netlist.dir/dot.cpp.o"
  "CMakeFiles/mdd_netlist.dir/dot.cpp.o.d"
  "CMakeFiles/mdd_netlist.dir/generator.cpp.o"
  "CMakeFiles/mdd_netlist.dir/generator.cpp.o.d"
  "CMakeFiles/mdd_netlist.dir/netlist.cpp.o"
  "CMakeFiles/mdd_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/mdd_netlist.dir/verilog_parser.cpp.o"
  "CMakeFiles/mdd_netlist.dir/verilog_parser.cpp.o.d"
  "libmdd_netlist.a"
  "libmdd_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
