
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_parser.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/bench_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/bench_parser.cpp.o.d"
  "/root/repo/src/netlist/cell.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/cell.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/cell.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/dot.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/dot.cpp.o.d"
  "/root/repo/src/netlist/generator.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/generator.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/generator.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_parser.cpp" "src/netlist/CMakeFiles/mdd_netlist.dir/verilog_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/mdd_netlist.dir/verilog_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
