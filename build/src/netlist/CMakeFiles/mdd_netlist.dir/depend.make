# Empty dependencies file for mdd_netlist.
# This may be replaced when dependencies are built.
