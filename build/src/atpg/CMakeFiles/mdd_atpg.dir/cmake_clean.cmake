file(REMOVE_RECURSE
  "CMakeFiles/mdd_atpg.dir/podem.cpp.o"
  "CMakeFiles/mdd_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/mdd_atpg.dir/scoap.cpp.o"
  "CMakeFiles/mdd_atpg.dir/scoap.cpp.o.d"
  "CMakeFiles/mdd_atpg.dir/tpg.cpp.o"
  "CMakeFiles/mdd_atpg.dir/tpg.cpp.o.d"
  "libmdd_atpg.a"
  "libmdd_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
