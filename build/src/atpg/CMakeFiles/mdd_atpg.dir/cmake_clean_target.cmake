file(REMOVE_RECURSE
  "libmdd_atpg.a"
)
