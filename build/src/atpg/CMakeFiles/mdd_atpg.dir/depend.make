# Empty dependencies file for mdd_atpg.
# This may be replaced when dependencies are built.
