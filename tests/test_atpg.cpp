// Unit tests: PODEM and the test-generation flow.
#include <gtest/gtest.h>

#include "atpg/tpg.hpp"
#include "fault/collapse.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

/// Verifies a claimed test pattern by simulation.
bool pattern_detects(const Netlist& nl, const Fault& f,
                     const std::vector<bool>& pattern) {
  PatternSet ps(0, nl.n_inputs());
  ps.append(pattern);
  FaultSimulator fsim(nl, ps);
  return fsim.detects(f);
}

class PodemOnCircuit : public ::testing::TestWithParam<const char*> {};

/// Property: every PODEM "Detected" result carries a pattern that really
/// detects the fault; collapsed representatives only (equivalent faults
/// share tests).
TEST_P(PodemOnCircuit, DetectedPatternsAreValid) {
  const Netlist nl = make_named_circuit(GetParam());
  const CollapsedFaults cf(nl);
  Podem podem(nl, {200});
  std::size_t n_detected = 0;
  for (const Fault& f : cf.representatives()) {
    const PodemResult r = podem.generate(f);
    if (r.outcome != PodemOutcome::Detected) continue;
    ++n_detected;
    std::vector<bool> pattern(r.pattern.size());
    for (std::size_t i = 0; i < r.pattern.size(); ++i)
      pattern[i] = r.pattern[i] == Val3::X ? false : v3_to_bool(r.pattern[i]);
    ASSERT_TRUE(pattern_detects(nl, f, pattern)) << to_string(f, nl);
  }
  // PODEM must handle the large majority of testable faults.
  EXPECT_GE(n_detected * 10, cf.representatives().size() * 8);
}

INSTANTIATE_TEST_SUITE_P(Circuits, PodemOnCircuit,
                         ::testing::Values("c17", "add8", "mux16"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Podem, C17AllFaultsTestable) {
  const Netlist nl = make_c17();
  const CollapsedFaults cf(nl);
  Podem podem(nl, {500});
  for (const Fault& f : cf.representatives()) {
    const PodemResult r = podem.generate(f);
    EXPECT_EQ(r.outcome, PodemOutcome::Detected) << to_string(f, nl);
  }
}

TEST(Podem, FindsRedundantFault) {
  // z = a | !a is constantly 1 -> z SA1 is untestable; also the inputs of
  // the OR can never make it 0.
  Netlist nl("red");
  const NetId a = nl.add_input("a");
  const NetId na = nl.add_gate(GateKind::Not, {a}, "na");
  const NetId z = nl.add_gate(GateKind::Or, {a, na}, "z");
  nl.mark_output(z);
  nl.finalize();
  Podem podem(nl, {1000});
  EXPECT_EQ(podem.generate(Fault::stem_sa(z, true)).outcome,
            PodemOutcome::Untestable);
  EXPECT_EQ(podem.generate(Fault::stem_sa(z, false)).outcome,
            PodemOutcome::Detected);
}

TEST(Podem, BranchFaults) {
  const Netlist nl = make_c17();
  // Branch 16.pin1 (from net 11) SA1.
  const Fault f = Fault::branch_sa(nl.find_net("16"), 1, true);
  Podem podem(nl);
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.outcome, PodemOutcome::Detected);
  std::vector<bool> pattern(r.pattern.size());
  for (std::size_t i = 0; i < r.pattern.size(); ++i)
    pattern[i] = r.pattern[i] == Val3::X ? true : v3_to_bool(r.pattern[i]);
  EXPECT_TRUE(pattern_detects(nl, f, pattern));
}

TEST(Podem, RejectsBridgeFaults) {
  const Netlist nl = make_c17();
  Podem podem(nl);
  EXPECT_THROW(podem.generate(Fault::bridge_dom(0, 1)),
               std::invalid_argument);
}

TEST(GenerateTests, FullCoverageOnSmallCircuits) {
  for (const char* name : {"c17", "add8"}) {
    const Netlist nl = make_named_circuit(name);
    TpgOptions opt;
    opt.random_batch = 64;
    opt.max_random_rounds = 4;
    const TpgResult r = generate_tests(nl, opt);
    EXPECT_DOUBLE_EQ(r.effective_coverage(), 1.0) << name;
    EXPECT_EQ(r.n_aborted, 0u) << name;
    EXPECT_GT(r.patterns.n_patterns(), 0u) << name;
  }
}

TEST(GenerateTests, Deterministic) {
  const Netlist nl = make_named_circuit("g200");
  TpgOptions opt;
  opt.seed = 11;
  const TpgResult a = generate_tests(nl, opt);
  const TpgResult b = generate_tests(nl, opt);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.n_detected, b.n_detected);
}

TEST(GenerateTests, RandomOnlyMode) {
  const Netlist nl = make_named_circuit("g200");
  TpgOptions opt;
  opt.run_podem = false;
  const TpgResult r = generate_tests(nl, opt);
  // g200 is deliberately deep (locality window) — random-resistant faults
  // abound, which is exactly why phase 2 exists.
  EXPECT_GT(r.coverage(), 0.5);
  EXPECT_EQ(r.n_untestable, 0u);  // PODEM never ran
}

TEST(GenerateTests, PodemImprovesOverRandomOnly) {
  const Netlist nl = make_named_circuit("mux16");
  TpgOptions ro;
  ro.run_podem = false;
  ro.max_random_rounds = 2;
  ro.random_batch = 32;
  TpgOptions full = ro;
  full.run_podem = true;
  const TpgResult a = generate_tests(nl, ro);
  const TpgResult b = generate_tests(nl, full);
  EXPECT_GE(b.coverage(), a.coverage());
}

TEST(CompactReverse, PreservesCoverageAndShrinks) {
  const Netlist nl = make_named_circuit("add8");
  const CollapsedFaults cf(nl);
  const PatternSet patterns = PatternSet::random(256, nl.n_inputs(), 13);
  FaultSimulator before(nl, patterns);
  std::vector<Fault> detected;
  for (const Fault& f : cf.representatives())
    if (before.detects(f)) detected.push_back(f);

  const PatternSet compacted = compact_reverse(nl, patterns, detected);
  EXPECT_LT(compacted.n_patterns(), patterns.n_patterns());
  FaultSimulator after(nl, compacted);
  for (const Fault& f : detected)
    EXPECT_TRUE(after.detects(f)) << to_string(f, nl);
}

}  // namespace
}  // namespace mdd
