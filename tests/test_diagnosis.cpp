// Unit tests: diagnosis context, scoring, and the three diagnosers on
// controlled cases.
#include <gtest/gtest.h>

#include <random>

#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

struct Case {
  Netlist netlist;
  PatternSet patterns;
  PatternSet good;
  CollapsedFaults collapsed;

  explicit Case(const std::string& name, std::size_t n_patterns = 256,
                std::uint64_t seed = 17)
      : netlist(make_named_circuit(name)),
        patterns(PatternSet::random(n_patterns, netlist.n_inputs(), seed)),
        good(simulate(netlist, patterns)),
        collapsed(netlist) {}

  Datalog log(std::span<const Fault> defect,
              const DatalogOptions& opt = {}) const {
    return datalog_from_defect(netlist, defect, patterns, good, opt);
  }
};

TEST(ScoreWeights, Ordering) {
  const ScoreWeights w;
  MatchCounts perfect{10, 0, 0};
  MatchCounts partial{7, 3, 0};
  MatchCounts noisy{10, 0, 5};
  EXPECT_GT(score_of(perfect, w), score_of(partial, w));
  EXPECT_GT(score_of(perfect, w), score_of(noisy, w));
}

TEST(DiagnosisContext, WindowRestriction) {
  const Case tc("c17", 32);
  const Fault f = Fault::stem_sa(tc.netlist.find_net("16"), true);
  DatalogOptions opt;
  opt.max_failing_patterns = 1;
  const Datalog log = tc.log({&f, 1}, opt);
  ASSERT_TRUE(log.pattern_truncated);
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  EXPECT_EQ(ctx.patterns().n_patterns(), log.n_patterns_applied);
  EXPECT_LE(ctx.observed().failing_patterns().back(),
            log.n_patterns_applied - 1);
}

TEST(DiagnosisContext, SoloSignaturesCached) {
  const Case tc("c17", 32);
  const Fault f = Fault::stem_sa(tc.netlist.find_net("16"), true);
  const Datalog log = tc.log({&f, 1});
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  ASSERT_GT(ctx.n_candidates(), 0u);
  const ErrorSignature& a = ctx.solo_signature(0);
  const ErrorSignature& b = ctx.solo_signature(0);
  EXPECT_EQ(&a, &b);  // same cached object
}

// ---- single-fault baseline --------------------------------------------------

TEST(SingleFault, RanksInjectedFaultFirst) {
  const Case tc("g200");
  FaultSimulator fsim(tc.netlist, tc.patterns);
  std::mt19937_64 rng(3);
  const CollapsedFaults& cf = tc.collapsed;
  std::size_t tested = 0;
  while (tested < 15) {
    const Fault f = Fault::stem_sa(rng() % tc.netlist.n_nets(), rng() & 1);
    if (!fsim.detects(f)) continue;
    ++tested;
    const Datalog log = tc.log({&f, 1});
    DiagnosisContext ctx(tc.netlist, tc.patterns, log);
    const DiagnosisReport r = diagnose_single_fault(ctx);
    ASSERT_FALSE(r.suspects.empty());
    const TruthEvaluation ev = evaluate_against_truth(r, {&f, 1}, cf);
    EXPECT_TRUE(ev.first_hit) << to_string(f, tc.netlist);
    EXPECT_TRUE(r.explains_all) << to_string(f, tc.netlist);
  }
}

TEST(SingleFault, TopKLimit) {
  const Case tc("g200");
  const Fault f = Fault::stem_sa(tc.netlist.find_net("g_50"), false);
  const Datalog log = tc.log({&f, 1});
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  SingleFaultOptions opt;
  opt.top_k = 3;
  const DiagnosisReport r = diagnose_single_fault(ctx, opt);
  EXPECT_LE(r.suspects.size(), 3u);
  // Scores are non-increasing.
  for (std::size_t i = 1; i < r.suspects.size(); ++i)
    EXPECT_LE(r.suspects[i].score, r.suspects[i - 1].score);
}

// ---- SLAT baseline ----------------------------------------------------------

TEST(Slat, SingleFaultAllPatternsSlat) {
  const Case tc("g200");
  const Fault f = Fault::stem_sa(tc.netlist.find_net("g_50"), false);
  const Datalog log = tc.log({&f, 1});
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  const DiagnosisReport r = diagnose_slat(ctx);
  EXPECT_EQ(r.n_nonslat_patterns, 0u);
  EXPECT_GE(r.n_slat_patterns, 1u);
  const TruthEvaluation ev = evaluate_against_truth(r, {&f, 1}, tc.collapsed);
  EXPECT_TRUE(ev.all_hit);
}

TEST(Slat, IndependentDoubleDefectCovered) {
  // Two defects in disjoint cones never interact at a shared output, but
  // patterns exciting both at once still produce non-SLAT responses (two
  // failing POs no single fault predicts together). SLAT discards those
  // and must still recover both defects from the single-excitation
  // patterns.
  Netlist nl("disjoint");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId d = nl.add_input("d");
  const NetId x = nl.add_gate(GateKind::And, {a, b}, "x");
  const NetId y = nl.add_gate(GateKind::Or, {c, d}, "y");
  nl.mark_output(x);
  nl.mark_output(y);
  nl.finalize();
  const PatternSet patterns = PatternSet::exhaustive(4);
  const PatternSet good = simulate(nl, patterns);
  const CollapsedFaults cf(nl);

  const std::vector<Fault> defect{Fault::stem_sa(x, true),
                                  Fault::stem_sa(y, false)};
  const Datalog log = datalog_from_defect(nl, defect, patterns, good);
  DiagnosisContext ctx(nl, patterns, log);
  const DiagnosisReport r = diagnose_slat(ctx);
  EXPECT_GT(r.n_slat_patterns, 0u);
  const TruthEvaluation ev = evaluate_against_truth(r, defect, cf);
  EXPECT_TRUE(ev.all_hit);
}

TEST(Slat, MaskingCreatesNonSlatPatterns) {
  // Crafted interaction with side observations so the composite is NOT
  // equivalent to any single fault: n1 and n2 are directly observed (z2,
  // z3) and also meet at an XOR (z1) where simultaneous errors cancel.
  // Patterns exciting both defects produce the response {z2, z3 fail,
  // z1 pass}, which no single fault predicts -> non-SLAT.
  Netlist nl("maskcase");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId d = nl.add_input("d");
  const NetId n1 = nl.add_gate(GateKind::And, {a, b}, "n1");
  const NetId n2 = nl.add_gate(GateKind::And, {c, d}, "n2");
  const NetId z1 = nl.add_gate(GateKind::Xor, {n1, n2}, "z1");
  const NetId z2 = nl.add_gate(GateKind::Buf, {n1}, "z2");
  const NetId z3 = nl.add_gate(GateKind::Buf, {n2}, "z3");
  nl.mark_output(z1);
  nl.mark_output(z2);
  nl.mark_output(z3);
  nl.finalize();
  const PatternSet patterns = PatternSet::exhaustive(4);
  const PatternSet good = simulate(nl, patterns);

  const std::vector<Fault> defect{Fault::stem_sa(n1, true),
                                  Fault::stem_sa(n2, true)};
  const Datalog log = datalog_from_defect(nl, defect, patterns, good);
  DiagnosisContext ctx(nl, patterns, log);

  const DiagnosisReport slat = diagnose_slat(ctx);
  EXPECT_GT(slat.n_nonslat_patterns, 0u);

  // No single candidate reproduces the log.
  const DiagnosisReport single = diagnose_single_fault(ctx);
  EXPECT_FALSE(single.explains_all);

  // The no-assumptions multiplet diagnoser explains it exactly and names
  // both sites.
  const DiagnosisReport multi = diagnose_multiplet(ctx);
  EXPECT_TRUE(multi.explains_all);
  const CollapsedFaults cf(nl);
  const TruthEvaluation ev = evaluate_against_truth(multi, defect, cf);
  EXPECT_TRUE(ev.all_hit);
}

// ---- multiplet (headline) ---------------------------------------------------

TEST(Multiplet, SingleFaultExact) {
  const Case tc("g200");
  FaultSimulator fsim(tc.netlist, tc.patterns);
  std::mt19937_64 rng(5);
  std::size_t tested = 0;
  while (tested < 15) {
    const Fault f = Fault::stem_sa(rng() % tc.netlist.n_nets(), rng() & 1);
    if (!fsim.detects(f)) continue;
    ++tested;
    const Datalog log = tc.log({&f, 1});
    DiagnosisContext ctx(tc.netlist, tc.patterns, log);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    EXPECT_TRUE(r.explains_all) << to_string(f, tc.netlist);
    EXPECT_EQ(r.suspects.size(), 1u) << to_string(f, tc.netlist);
    const TruthEvaluation ev =
        evaluate_against_truth(r, {&f, 1}, tc.collapsed);
    EXPECT_TRUE(ev.all_hit) << to_string(f, tc.netlist);
  }
}

TEST(Multiplet, ReportedMultipletReallyExplainsWhenExact) {
  const Case tc("g200");
  FaultSimulator fsim(tc.netlist, tc.patterns);
  std::mt19937_64 rng(6);
  std::size_t tested = 0;
  while (tested < 8) {
    const std::vector<Fault> defect{
        Fault::stem_sa(rng() % tc.netlist.n_nets(), rng() & 1),
        Fault::stem_sa(rng() % tc.netlist.n_nets(), rng() & 1)};
    if (defect[0].net == defect[1].net) continue;
    if (!fsim.detects(defect[0]) || !fsim.detects(defect[1])) continue;
    ++tested;
    const Datalog log = tc.log(defect);
    DiagnosisContext ctx(tc.netlist, tc.patterns, log);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    if (!r.explains_all) continue;
    // Independent verification: injecting the reported multiplet must
    // reproduce the datalog bit-for-bit.
    const std::vector<Fault> reported = r.suspect_faults();
    const PatternSet resp =
        simulate_with_faults(tc.netlist, reported, tc.patterns);
    EXPECT_EQ(ErrorSignature::diff(tc.good, resp), log.observed);
  }
}

TEST(Multiplet, MultiplicityCapRespected) {
  const Case tc("g200");
  const std::vector<Fault> defect{
      Fault::stem_sa(tc.netlist.find_net("g_10"), true),
      Fault::stem_sa(tc.netlist.find_net("g_90"), false),
      Fault::stem_sa(tc.netlist.find_net("g_150"), true)};
  const Datalog log = tc.log(defect);
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  MultipletOptions opt;
  opt.max_multiplicity = 2;
  const DiagnosisReport r = diagnose_multiplet(ctx, opt);
  EXPECT_LE(r.suspects.size(), 2u);
}

TEST(Multiplet, Deterministic) {
  const Case tc("g200");
  const std::vector<Fault> defect{
      Fault::stem_sa(tc.netlist.find_net("g_10"), true),
      Fault::stem_sa(tc.netlist.find_net("g_90"), false)};
  const Datalog log = tc.log(defect);
  DiagnosisContext ctx1(tc.netlist, tc.patterns, log);
  DiagnosisContext ctx2(tc.netlist, tc.patterns, log);
  const DiagnosisReport a = diagnose_multiplet(ctx1);
  const DiagnosisReport b = diagnose_multiplet(ctx2);
  EXPECT_EQ(a.suspect_faults(), b.suspect_faults());
}

TEST(Multiplet, EmptyDatalogReportsNothing) {
  const Case tc("c17", 32);
  Datalog log;
  log.observed = ErrorSignature(32, tc.netlist.n_outputs());
  log.n_patterns_applied = 32;
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  const DiagnosisReport r = diagnose_multiplet(ctx);
  EXPECT_TRUE(r.suspects.empty());
  EXPECT_FALSE(r.explains_all);
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, SameSiteRules) {
  const Netlist nl = make_c17();
  const CollapsedFaults cf(nl);
  const NetId n1 = nl.find_net("1"), n10 = nl.find_net("10");
  // Equivalent through NAND rule: 1 sa0 ~ 10 sa1.
  EXPECT_TRUE(same_site(Fault::stem_sa(n1, false), Fault::stem_sa(n10, true),
                        cf));
  EXPECT_FALSE(same_site(Fault::stem_sa(n1, true), Fault::stem_sa(n10, true),
                         cf));
  // Bridges: victim match suffices for dominant pairs, and the same
  // unordered net pair is the same physical short regardless of which net
  // dominates.
  EXPECT_TRUE(same_site(Fault::bridge_dom(n10, n1),
                        Fault::bridge_dom(n10, nl.find_net("19")), cf));
  EXPECT_TRUE(same_site(Fault::bridge_dom(n1, n10),
                        Fault::bridge_dom(n10, n1), cf));
  EXPECT_FALSE(same_site(Fault::bridge_dom(n1, n10),
                         Fault::bridge_dom(nl.find_net("19"), n10), cf));
  // Mixed SA/bridge never matches.
  EXPECT_FALSE(same_site(Fault::stem_sa(n10, false),
                         Fault::bridge_dom(n10, n1), cf));
}

TEST(Metrics, EvaluateCounts) {
  const Netlist nl = make_c17();
  const CollapsedFaults cf(nl);
  DiagnosisReport report;
  report.method = "test";
  ScoredCandidate sc1;
  sc1.fault = Fault::stem_sa(nl.find_net("16"), false);
  ScoredCandidate sc2;
  sc2.fault = Fault::stem_sa(nl.find_net("19"), true);
  report.suspects = {sc1, sc2};
  const std::vector<Fault> injected{Fault::stem_sa(nl.find_net("16"), false),
                                    Fault::stem_sa(nl.find_net("22"), true)};
  const TruthEvaluation ev = evaluate_against_truth(report, injected, cf);
  EXPECT_EQ(ev.n_injected, 2u);
  EXPECT_EQ(ev.n_hit, 1u);
  EXPECT_FALSE(ev.all_hit);
  EXPECT_TRUE(ev.first_hit);
  EXPECT_DOUBLE_EQ(ev.hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(ev.precision, 0.5);
  EXPECT_DOUBLE_EQ(ev.resolution, 1.0);
}

TEST(Metrics, AlternatesCountAsHits) {
  const Netlist nl = make_c17();
  const CollapsedFaults cf(nl);
  DiagnosisReport report;
  ScoredCandidate sc;
  sc.fault = Fault::stem_sa(nl.find_net("19"), true);
  sc.alternates = {Fault::stem_sa(nl.find_net("16"), false)};
  report.suspects = {sc};
  const std::vector<Fault> injected{Fault::stem_sa(nl.find_net("16"), false)};
  const TruthEvaluation ev = evaluate_against_truth(report, injected, cf);
  EXPECT_TRUE(ev.all_hit);
}

}  // namespace
}  // namespace mdd
