// Unit tests: ISCAS .bench reader/writer.
#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "sim/sim2.hpp"

namespace mdd {
namespace {

constexpr const char* kC17 = R"(
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchParser, ParsesC17) {
  const BenchParseResult r = parse_bench_string(kC17, "c17");
  EXPECT_EQ(r.n_dff, 0u);
  EXPECT_EQ(r.netlist.n_inputs(), 5u);
  EXPECT_EQ(r.netlist.n_outputs(), 2u);
  EXPECT_EQ(r.netlist.n_gates(), 6u);
}

TEST(BenchParser, ParsedC17MatchesBuiltin) {
  const Netlist parsed = parse_bench_string(kC17, "c17").netlist;
  const Netlist builtin = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  EXPECT_EQ(simulate(parsed, stimuli), simulate(builtin, stimuli));
}

TEST(BenchParser, OutOfOrderDefinitions) {
  const char* text = R"(
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = AND(a, w)
w = NOT(a)
)";
  const Netlist nl = parse_bench_string(text).netlist;
  EXPECT_EQ(nl.n_gates(), 3u);
  // z = !(a & !a) == 1 always.
  const PatternSet stimuli = PatternSet::exhaustive(1);
  const PatternSet resp = simulate(nl, stimuli);
  EXPECT_TRUE(resp.get(0, 0));
  EXPECT_TRUE(resp.get(1, 0));
}

TEST(BenchParser, DffScanConversion) {
  const char* text = R"(
INPUT(a)
OUTPUT(z)
q = DFF(d)
d = AND(a, q)
z = NOT(q)
)";
  const BenchParseResult r = parse_bench_string(text);
  EXPECT_EQ(r.n_dff, 1u);
  // q becomes a pseudo-PI, d a pseudo-PO.
  EXPECT_EQ(r.netlist.n_inputs(), 2u);
  EXPECT_EQ(r.netlist.n_outputs(), 2u);
  EXPECT_NE(r.netlist.find_net("q"), kNoNet);
  EXPECT_TRUE(r.netlist.is_input(r.netlist.find_net("q")));
}

TEST(BenchParser, DffInputAlreadyOutputNotDoubleMarked) {
  const char* text = R"(
INPUT(a)
OUTPUT(d)
q = DFF(d)
d = NOT(a)
z = AND(q, a)
OUTPUT(z)
)";
  const BenchParseResult r = parse_bench_string(text);
  EXPECT_EQ(r.netlist.n_outputs(), 2u);  // d listed once
}

TEST(BenchParser, Errors) {
  EXPECT_THROW(parse_bench_string("z = FROB(a)\nINPUT(a)\nOUTPUT(z)"),
               std::runtime_error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)"),  // z undefined
               std::runtime_error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, q)"),
               std::runtime_error);  // q undefined
  EXPECT_THROW(parse_bench_string("INPUT(a)\nGARBAGE"), std::runtime_error);
  // Combinational loop.
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)"),
      std::runtime_error);
}

TEST(BenchParser, RoundTripPreservesBehaviour) {
  for (const char* name : {"c17", "add8", "par64"}) {
    const Netlist original = make_named_circuit(name);
    const std::string text = write_bench_string(original);
    const Netlist reparsed = parse_bench_string(text, name).netlist;
    ASSERT_EQ(reparsed.n_inputs(), original.n_inputs()) << name;
    ASSERT_EQ(reparsed.n_outputs(), original.n_outputs()) << name;
    const PatternSet stimuli =
        PatternSet::random(256, original.n_inputs(), 99);
    ASSERT_EQ(simulate(reparsed, stimuli), simulate(original, stimuli))
        << name;
  }
}

}  // namespace
}  // namespace mdd
