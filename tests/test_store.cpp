// Persistent fault-dictionary store: format codecs, the write→mmap→read
// round trip (byte-for-byte against the live simulator, on every
// available kernel), hostile-input rejection (truncation, bit flips,
// wrong version, wrong content), and the consumers built on the reader
// (FaultDictionary-from-store, DiagnosisContext store warm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "diag/dictionary.hpp"
#include "diag/multiplet.hpp"
#include "fsim/fsim.hpp"
#include "fsim/propagate.hpp"
#include "netlist/generator.hpp"
#include "server/signature_memo.hpp"
#include "sim/kernel.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "workload/textio.hpp"

namespace mdd::store {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Re-stamps the content hash after a deliberate body mutation, so the
/// structural validators (not the hash) are what rejects the file.
void restamp_content_hash(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), kHeaderBytes);
  const std::uint64_t h =
      fnv1a(bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
  std::vector<std::uint8_t> word;
  put_u64(word, h);
  std::copy(word.begin(), word.end(), bytes.begin() + 64);
}

struct StoreFixture {
  Netlist netlist;
  PatternSet patterns;
  std::vector<Fault> universe;
  std::string path;

  static StoreFixture make(const std::string& tag,
                           StoreUniverseConfig config = {}) {
    StoreFixture f{make_named_circuit("g200"), PatternSet(0, 0), {}, {}};
    f.patterns = PatternSet::random(96, f.netlist.n_inputs(), 0xD1C7);
    f.universe = default_store_universe(f.netlist, config);
    f.path = ::testing::TempDir() + "store_" + tag + kStoreExtension;
    const DictWriter writer(f.netlist, f.patterns);
    writer.write(f.path, f.universe);
    return f;
  }
};

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,    1,    127,  128,   129,
                                  0x3fff, 0x4000, 1u << 20, 0xffffffffull,
                                  0xffffffffffffffffull};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : values) put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = p + buf.size();
  for (std::uint64_t v : values) EXPECT_EQ(get_varint(p, end), v);
  EXPECT_EQ(p, end);
}

TEST(Varint, RejectsTruncationNonCanonicalAndOverflow) {
  {
    std::vector<std::uint8_t> buf{0x80};  // continuation, then nothing
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(p, p + buf.size()), StoreError);
  }
  {
    std::vector<std::uint8_t> buf{0x80, 0x00};  // 0 encoded in two bytes
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(p, p + buf.size()), StoreError);
  }
  {
    // 11 bytes of continuation: wider than 64 bits.
    std::vector<std::uint8_t> buf(11, 0xff);
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(p, p + buf.size()), StoreError);
  }
  {
    // 10th byte carries bits beyond bit 63.
    std::vector<std::uint8_t> buf(9, 0xff);
    buf.push_back(0x02);
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(p, p + buf.size()), StoreError);
  }
}

TEST(ContentHash, TracksContentNotNames) {
  const Netlist a = make_named_circuit("g200");
  Netlist b = make_named_circuit("g200");
  EXPECT_EQ(netlist_content_hash(a), netlist_content_hash(b));
  EXPECT_NE(netlist_content_hash(a),
            netlist_content_hash(make_named_circuit("add8")));

  const PatternSet p1 = PatternSet::random(64, a.n_inputs(), 1);
  const PatternSet p2 = PatternSet::random(64, a.n_inputs(), 1);
  const PatternSet p3 = PatternSet::random(64, a.n_inputs(), 2);
  EXPECT_EQ(patterns_content_hash(p1), patterns_content_hash(p2));
  EXPECT_NE(patterns_content_hash(p1), patterns_content_hash(p3));
}

// The tentpole property: for every fault in the store, decode() must
// reproduce the simulator's ErrorSignature byte for byte — and since the
// file was written once, this also proves the format is kernel-portable.
TEST(StoreRoundTrip, EverySignatureIsByteIdenticalOnEveryKernel) {
  const StoreFixture f = StoreFixture::make("roundtrip");
  const SimKernel& saved = current_kernel();
  for (const SimKernel* kernel : available_kernels()) {
    set_current_kernel(*kernel);
    const auto dict = DictReader::open(f.path);
    dict->validate_for(f.netlist, f.patterns);
    FaultSimulator fsim(f.netlist, f.patterns);
    ASSERT_EQ(dict->n_entries(), f.universe.size())
        << "universe should be duplicate-free";
    for (std::size_t i = 0; i < dict->n_entries(); ++i) {
      const Fault fault = dict->fault_at(i);
      EXPECT_EQ(dict->decode(i), fsim.signature(fault))
          << "record " << i << " kernel " << kernel->name;
    }
  }
  set_current_kernel(saved);
}

TEST(StoreRoundTrip, UndetectedFaultsArePresentWithEmptySignatures) {
  const StoreFixture f = StoreFixture::make("empty");
  const auto dict = DictReader::open(f.path);
  FaultSimulator fsim(f.netlist, f.patterns);
  std::size_t n_empty = 0;
  for (std::size_t i = 0; i < dict->n_entries(); ++i) {
    if (fsim.signature(dict->fault_at(i)).empty()) {
      ++n_empty;
      EXPECT_TRUE(dict->decode(i).empty());
    }
  }
  // g200 with 96 random patterns leaves some faults undetected; the store
  // must record them as present-but-empty (a lookup hit, not a miss).
  EXPECT_GT(n_empty, 0u);
  EXPECT_EQ(dict->verify_all(), dict->total_error_bits());
}

TEST(StoreLookup, FindsEveryStoredFaultAndMissesOthers) {
  StoreUniverseConfig no_bridges;
  no_bridges.include_bridges = false;
  const StoreFixture f = StoreFixture::make("lookup", no_bridges);
  const auto dict = DictReader::open(f.path);
  for (const Fault& fault : f.universe)
    EXPECT_TRUE(dict->find(fault).has_value());
  // Bridges were excluded from this store: a bridge lookup is a miss, not
  // an error (the serving layer falls back to simulation).
  EXPECT_FALSE(dict->lookup(Fault::bridge_dom(1, 2)).has_value());
  EXPECT_FALSE(dict->find(Fault::slow_to_rise(0)).has_value());
}

TEST(StoreHostile, TruncationAtEveryRegionIsRejected) {
  const StoreFixture f = StoreFixture::make("trunc");
  const std::vector<std::uint8_t> good = read_file(f.path);
  const std::string tmp = ::testing::TempDir() + "store_trunc_cut.mdds";
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{7}, std::size_t{40}, kHeaderBytes,
        kHeaderBytes + kRecordBytes + 3, good.size() / 2,
        good.size() - 1}) {
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() + cut);
    write_file(tmp, bytes);
    EXPECT_THROW(DictReader::open(tmp), StoreError) << "cut at " << cut;
  }
}

TEST(StoreHostile, BitFlipsAnywhereAreRejected) {
  const StoreFixture f = StoreFixture::make("flip");
  const std::vector<std::uint8_t> good = read_file(f.path);
  const std::string tmp = ::testing::TempDir() + "store_flip_bit.mdds";
  // One flip per region: magic, header fields, index, payload middle,
  // payload last byte.
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{33}, kHeaderBytes + 5, good.size() / 2,
        good.size() - 1}) {
    std::vector<std::uint8_t> bytes = good;
    bytes[at] ^= 0x40;
    write_file(tmp, bytes);
    EXPECT_THROW(DictReader::open(tmp), StoreError) << "flip at " << at;
  }
}

TEST(StoreHostile, UnsupportedFormatVersionNamesTheProblem) {
  const StoreFixture f = StoreFixture::make("version");
  std::vector<std::uint8_t> bytes = read_file(f.path);
  bytes[8] = 0x2A;  // format_version u32 LE at offset 8
  const std::string tmp = ::testing::TempDir() + "store_version.mdds";
  write_file(tmp, bytes);
  try {
    DictReader::open(tmp);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(StoreHostile, StructuralLiesSurviveRestampedHashesButNotValidation) {
  const StoreFixture f = StoreFixture::make("struct");
  const std::vector<std::uint8_t> good = read_file(f.path);
  const std::string tmp = ::testing::TempDir() + "store_struct.mdds";

  {
    // Swap the first two index records: content hash fixed up, but the
    // index is no longer sorted — binary search would be wrong.
    std::vector<std::uint8_t> bytes = good;
    std::swap_ranges(bytes.begin() + kHeaderBytes,
                     bytes.begin() + kHeaderBytes + kRecordBytes,
                     bytes.begin() + kHeaderBytes + kRecordBytes);
    restamp_content_hash(bytes);
    write_file(tmp, bytes);
    EXPECT_THROW(DictReader::open(tmp), StoreError) << "unsorted index";
  }
  {
    // Nudge record 0's extent start: extents are no longer contiguous.
    std::vector<std::uint8_t> bytes = good;
    bytes[kHeaderBytes + 16] ^= 0x01;  // FaultRecord.offset low byte
    restamp_content_hash(bytes);
    write_file(tmp, bytes);
    EXPECT_THROW(DictReader::open(tmp), StoreError) << "extent gap";
  }
  {
    // Claim an unknown fault kind.
    std::vector<std::uint8_t> bytes = good;
    bytes[kHeaderBytes] = 0x77;
    restamp_content_hash(bytes);
    write_file(tmp, bytes);
    EXPECT_THROW(DictReader::open(tmp), StoreError) << "bad fault kind";
  }
}

TEST(StoreIdentity, WrongNetlistOrPatternsIsDetectedByContentHash) {
  const StoreFixture f = StoreFixture::make("identity");
  const auto dict = DictReader::open(f.path);
  const Netlist other_netlist = make_named_circuit("add8");
  const PatternSet other_patterns =
      PatternSet::random(96, f.netlist.n_inputs(), 0xBEEF);
  EXPECT_TRUE(dict->matches(f.netlist, f.patterns));
  EXPECT_FALSE(dict->matches(f.netlist, other_patterns));
  EXPECT_FALSE(dict->matches(other_netlist,
                             PatternSet::random(96, other_netlist.n_inputs(), 1)));
  EXPECT_NO_THROW(dict->validate_for(f.netlist, f.patterns));
  EXPECT_THROW(dict->validate_for(f.netlist, other_patterns), StoreError);
}

TEST(StoreWriter, RewritesAreAtomicAndDeduplicated) {
  StoreFixture f = StoreFixture::make("atomic");
  // Duplicate the universe: the writer must sort + dedupe to one record
  // per fault, and the rewrite must land atomically over the old file.
  std::vector<Fault> doubled = f.universe;
  doubled.insert(doubled.end(), f.universe.begin(), f.universe.end());
  const DictWriter writer(f.netlist, f.patterns);
  const BuildStats stats = writer.write(f.path, doubled);
  EXPECT_EQ(stats.n_faults, f.universe.size());
  const auto dict = DictReader::open(f.path);
  EXPECT_EQ(dict->n_entries(), f.universe.size());
  EXPECT_EQ(dict->verify_all(), stats.n_error_bits);
  // No .tmp debris after a successful rename.
  std::ifstream tmp(f.path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(StoreDictionary, FromStoreBuildEqualsFreshSimulation) {
  const StoreFixture f = StoreFixture::make("dict");
  const auto dict_reader = DictReader::open(f.path);

  const FaultDictionary fresh(f.netlist, f.patterns);
  const FaultDictionary from_store(f.netlist, f.patterns, *dict_reader);
  EXPECT_EQ(from_store.n_entries(), fresh.n_entries());
  EXPECT_EQ(from_store.stored_bits(), fresh.stored_bits());
  // The default store universe (uncollapsed stuck-at + the same sampled
  // dominant bridges) covers every collapsed representative, so at most
  // the dictionary's wired-bridge-free sampling differs — count it.
  EXPECT_GT(from_store.store_hits(), 0u);

  FaultSimulator fsim(f.netlist, f.patterns);
  const std::vector<Fault> defect{Fault::stem_sa(f.netlist.n_nets() / 3, true)};
  const Datalog log = datalog_from_defect(f.netlist, defect, f.patterns,
                                          fsim.good_response());
  const DiagnosisReport a = fresh.diagnose(log);
  const DiagnosisReport b = from_store.diagnose(log);
  ASSERT_FALSE(a.suspects.empty());
  ASSERT_EQ(a.suspects.size(), b.suspects.size());
  for (std::size_t i = 0; i < a.suspects.size(); ++i) {
    EXPECT_EQ(a.suspects[i].fault, b.suspects[i].fault);
    EXPECT_EQ(a.suspects[i].score, b.suspects[i].score);
    EXPECT_EQ(a.suspects[i].alternates, b.suspects[i].alternates);
  }
  EXPECT_EQ(a.explains_all, b.explains_all);
}

TEST(StoreWarm, ContextWarmsFromStoreWithoutSimulatingCoveredCandidates) {
  const StoreFixture f = StoreFixture::make("warm");
  const auto dict = DictReader::open(f.path);
  dict->validate_for(f.netlist, f.patterns);
  server::SignatureMemo memo;
  memo.set_store(dict);
  ASSERT_TRUE(memo.has_store());

  FaultSimulator fsim(f.netlist, f.patterns);
  const std::vector<Fault> defect{
      Fault::stem_sa(f.netlist.n_nets() / 3, false),
      Fault::stem_sa(f.netlist.n_nets() / 2, true)};
  const Datalog log = datalog_from_defect(f.netlist, defect, f.patterns,
                                          fsim.good_response());

  DiagnosisContext ctx(f.netlist, f.patterns, log);
  ctx.attach_solo_store(&memo);
  ASSERT_TRUE(ctx.solo_store_attached());
  const std::size_t warmed = ctx.warm_solo_from_store();
  // Every stem stuck-at candidate is in the store; only candidates the
  // extractor invents outside it (sampled dominant bridges with other
  // pairings) can be cold.
  EXPECT_GT(warmed, 0u);
  EXPECT_EQ(ctx.solo_compute_count(), 0u)
      << "store warm must not simulate anything";
  EXPECT_GT(memo.stats().store_hits, 0u);

  // And the store-warmed context must diagnose byte-identically to a
  // storeless one.
  DiagnosisContext cold(f.netlist, f.patterns, log);
  const DiagnosisReport a = diagnose_multiplet(ctx);
  const DiagnosisReport b = diagnose_multiplet(cold);
  ASSERT_EQ(a.suspects.size(), b.suspects.size());
  for (std::size_t i = 0; i < a.suspects.size(); ++i) {
    EXPECT_EQ(a.suspects[i].fault, b.suspects[i].fault);
    EXPECT_EQ(a.suspects[i].score, b.suspects[i].score);
  }
  EXPECT_EQ(a.explains_all, b.explains_all);
}

TEST(StoreMemo, DiskTierPromotesIntoMemoryTier) {
  const StoreFixture f = StoreFixture::make("memo");
  const auto dict = DictReader::open(f.path);
  server::SignatureMemo memo;
  memo.set_store(dict);

  const std::size_t full = dict->n_patterns();
  const Fault fault = f.universe.front();
  const auto first = memo.lookup(fault, full);
  ASSERT_NE(first, nullptr) << "store should answer the memory miss";
  const auto second = memo.lookup(fault, full);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second.get(), first.get())
      << "second lookup must be the promoted in-memory object";

  const server::SignatureMemoStats s = memo.stats();
  EXPECT_EQ(s.store_hits, 1u);
  EXPECT_EQ(s.hits, 1u);
  // A store hit is an answered lookup: the caller never simulates, so the
  // memory-tier miss counter must not move.
  EXPECT_EQ(s.misses, 0u);

  // A fault the store lacks is a miss on both tiers.
  EXPECT_EQ(memo.lookup(Fault::slow_to_rise(0), full), nullptr);
  EXPECT_EQ(memo.stats().store_misses, 1u);
}

TEST(StoreMemo, DiskTierRestrictsForTruncatedWindows) {
  // ATE-truncated datalogs ask for a shorter window than the dictionary
  // simulated; the memo must serve the restriction of the stored
  // full-window signature, shape included — byte-identical to simulating
  // over the short window directly.
  const StoreFixture f = StoreFixture::make("memo-truncated");
  const auto dict = DictReader::open(f.path);
  server::SignatureMemo memo;
  memo.set_store(dict);

  const std::size_t full = dict->n_patterns();
  ASSERT_GT(full, 1u);
  const std::size_t short_window = full / 2;

  // Pick a fault that actually fails somewhere so the comparison bites.
  SingleFaultPropagator prop_full(f.netlist, f.patterns);
  Fault fault = f.universe.front();
  for (const Fault& u : f.universe) {
    if (!prop_full.signature(u).empty()) {
      fault = u;
      break;
    }
  }

  const auto served = memo.lookup(fault, short_window);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->n_patterns(), short_window);

  PatternSet window(0, f.patterns.n_signals());
  for (std::size_t p = 0; p < short_window; ++p)
    window.append(f.patterns.pattern(p));
  SingleFaultPropagator prop(f.netlist, window);
  EXPECT_EQ(*served, prop.signature(fault))
      << "restricted store answer must match a fresh short-window "
         "simulation exactly";
  EXPECT_GT(memo.stats().window_restricts, 0u);
}

}  // namespace
}  // namespace mdd::store
