// Unit tests: event-driven single-fault propagation (PPSFP engine).
//
// The defining property: for every supported fault kind the propagator's
// signature is bit-identical to the full faulty-machine simulation.
#include <gtest/gtest.h>

#include <random>

#include "fsim/propagate.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

TEST(Propagator, MatchesFaultyMachineForStuckAt) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(200, nl.n_inputs(), 11);
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  EXPECT_EQ(prop.good_response(), reference.good_response());
  for (const Fault& f : all_stuck_at_faults(nl)) {
    ASSERT_EQ(prop.signature(f), reference.signature(f)) << to_string(f, nl);
  }
}

TEST(Propagator, MatchesFaultyMachineForBridges) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(200, nl.n_inputs(), 12);
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  BridgeUniverseConfig cfg;
  cfg.count = 40;
  cfg.seed = 3;
  for (const Fault& f : sample_bridge_faults(nl, cfg)) {
    ASSERT_EQ(prop.signature(f), reference.signature(f)) << to_string(f, nl);
  }
}

TEST(Propagator, FeedbackBridgeFallsBackExactly) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  // 11 feeds 16: a feedback pair.
  const Fault f = Fault::bridge_dom(nl.find_net("16"), nl.find_net("11"));
  EXPECT_EQ(prop.signature(f), reference.signature(f));
}

TEST(Propagator, MatchesPairMachineForTransitions) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet launch = PatternSet::random(150, nl.n_inputs(), 13);
  const PatternSet capture = PatternSet::random(150, nl.n_inputs(), 14);
  PairFaultSimulator reference(nl, launch, capture);
  SingleFaultPropagator prop(nl, launch, capture);
  EXPECT_EQ(prop.good_response(), reference.good_response());
  std::mt19937_64 rng(9);
  for (int iter = 0; iter < 60; ++iter) {
    const NetId n = rng() % nl.n_nets();
    const Fault f =
        (rng() & 1) ? Fault::slow_to_rise(n) : Fault::slow_to_fall(n);
    ASSERT_EQ(prop.signature(f), reference.signature(f)) << to_string(f, nl);
  }
  // Static faults under pair testing too.
  for (int iter = 0; iter < 40; ++iter) {
    const Fault f = Fault::stem_sa(rng() % nl.n_nets(), rng() & 1);
    ASSERT_EQ(prop.signature(f), reference.signature(f)) << to_string(f, nl);
  }
}

TEST(Propagator, StateCleanBetweenQueries) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  SingleFaultPropagator prop(nl, patterns);
  const Fault a = Fault::stem_sa(nl.find_net("11"), true);
  const Fault b = Fault::stem_sa(nl.find_net("10"), false);
  const ErrorSignature sa1 = prop.signature(a);
  prop.signature(b);
  EXPECT_EQ(prop.signature(a), sa1);  // no state leakage
}

}  // namespace
}  // namespace mdd
