// Unit tests for cooperative cancellation: token stickiness, deadline
// latching, and the throttled checkpoint the diagnoser hot loops poll.
#include <gtest/gtest.h>

#include <chrono>

#include "core/cancel.hpp"

namespace mdd {
namespace {

TEST(CancelToken, DefaultNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, RequestCancelIsSticky) {
  CancelToken token;
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, PastDeadlineCancels) {
  const CancelToken token = CancelToken::after(std::chrono::milliseconds(0));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, FutureDeadlineDoesNotCancelYet) {
  CancelToken token = CancelToken::after(std::chrono::milliseconds(60000));
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();  // early cancel still works under a deadline
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelCheckpoint, NullTokenNeverTrips) {
  CancelCheckpoint cp(nullptr, 4);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(cp());
}

TEST(CancelCheckpoint, PollsFirstCallAndEveryStride) {
  CancelToken token;
  CancelCheckpoint cp(&token, 8);
  EXPECT_FALSE(cp());  // polled (first call), not cancelled yet
  token.request_cancel();
  // Calls 2..8 are within the stride window — the checkpoint may not have
  // re-polled yet; by the next poll boundary it must trip.
  bool tripped = false;
  for (int i = 0; i < 8; ++i) tripped = cp();
  EXPECT_TRUE(tripped);
  // Once tripped, stays tripped.
  EXPECT_TRUE(cp());
}

TEST(CancelCheckpoint, ZeroStrideClampsToEveryCall) {
  CancelToken token;
  CancelCheckpoint cp(&token, 0);
  EXPECT_FALSE(cp());
  token.request_cancel();
  EXPECT_TRUE(cp());
}

}  // namespace
}  // namespace mdd
