// Unit + stress tests for the bounded job queue: non-blocking admission
// with explicit rejection when full, FIFO drain, close semantics, and a
// multi-producer/multi-consumer stress run (this file builds into the
// tsan-labelled binary).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "server/job_queue.hpp"

namespace mdd::server {
namespace {

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int spill = 3;
  EXPECT_FALSE(q.try_push(std::move(spill)));
  // try_push only moves on success — a rejected item is still usable
  // (the service builds the `overloaded` reply from it).
  EXPECT_EQ(spill, 3);

  const auto s = q.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.high_water, 2u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, CloseStopsAdmissionButDrainsFifo) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(10));
  EXPECT_TRUE(q.try_push(20));
  EXPECT_TRUE(q.try_push(30));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(40));

  // Queued work still drains, in order, before the terminal nullopt.
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 20);
  EXPECT_EQ(q.pop(), 30);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99);
    got.store(true);
  });
  // The consumer is (very likely) parked in pop() by now; either way the
  // push must wake it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_TRUE(q.try_push(99));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedQueue, CloseWakesAllBlockedPoppers) {
  BoundedQueue<int> q(1);
  constexpr std::size_t kPoppers = 4;
  std::atomic<std::size_t> woke{0};
  std::vector<std::thread> poppers;
  for (std::size_t i = 0; i < kPoppers; ++i)
    poppers.emplace_back([&] {
      EXPECT_EQ(q.pop(), std::nullopt);
      ++woke;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (std::thread& t : poppers) t.join();
  EXPECT_EQ(woke.load(), kPoppers);
}

TEST(BoundedQueueStress, ProducersAndConsumersConserveItems) {
  // 4 producers push 500 items each through a deliberately tight queue;
  // producers spin on try_push rejection (the clients' retry loop), so
  // every item is eventually admitted exactly once. 4 consumers drain
  // until close; the union of consumed items must be exactly the set
  // produced — nothing lost, nothing duplicated.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = static_cast<int>(p) * kPerProducer + i;
        while (!q.try_push(std::move(item)))
          std::this_thread::yield();
      }
    });

  std::mutex seen_mutex;
  std::vector<int> seen;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<int> mine;
      while (auto v = q.pop()) mine.push_back(*v);
      std::lock_guard<std::mutex> lock(seen_mutex);
      seen.insert(seen.end(), mine.begin(), mine.end());
    });

  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  std::vector<bool> present(kProducers * kPerProducer, false);
  for (int v : seen) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<std::size_t>(v), present.size());
    EXPECT_FALSE(present[static_cast<std::size_t>(v)]) << "duplicate " << v;
    present[static_cast<std::size_t>(v)] = true;
  }
  const auto s = q.stats();
  EXPECT_EQ(s.accepted, kProducers * kPerProducer);
  EXPECT_LE(s.high_water, q.capacity());
  EXPECT_EQ(s.depth, 0u);
}

}  // namespace
}  // namespace mdd::server
