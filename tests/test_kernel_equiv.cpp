// Differential kernel-equivalence harness (the property backing the SIMD
// widening): every available simulation kernel must produce BYTE-IDENTICAL
// results to the scalar reference — ErrorSignatures, detect sets, coverage,
// good responses, propagator solo and composite signatures, pair (launch/
// capture) signatures — over randomized circuits, randomized mixed fault
// lists (stem/branch stuck-at, dom/wand/wor bridges, slow-to-rise/fall),
// ragged pattern counts, and multiple thread counts. Any divergence prints
// the (circuit seed, fault seed, kernel) triple via SCOPED_TRACE so a
// failure reproduces with one line.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fsim/fsim.hpp"
#include "fsim/propagate.hpp"
#include "netlist/generator.hpp"
#include "sim/kernel.hpp"
#include "sim/sim2.hpp"

namespace mdd {
namespace {

/// Restores the process-wide kernel on scope exit, so tests that poke
/// set_current_kernel cannot leak their choice into later tests.
class KernelGuard {
 public:
  KernelGuard() : saved_(&current_kernel()) {}
  ~KernelGuard() { set_current_kernel(*saved_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  const SimKernel* saved_;
};

/// Random circuits deliberately sized so pattern counts straddle lane-group
/// boundaries: odd PO counts exercise ragged PO words, and the pattern
/// counts below exercise ragged tail blocks for every lane width (1, 4, 8).
RandomCircuitConfig circuit_config(std::uint64_t seed) {
  RandomCircuitConfig cfg;
  cfg.name = "kq" + std::to_string(seed);
  cfg.n_inputs = 24;
  cfg.n_gates = 150 + static_cast<unsigned>(seed % 3) * 60;
  cfg.n_outputs = 13 + static_cast<unsigned>(seed % 5) * 13;  // 13..65, odd-ish
  cfg.max_fanin = 4;
  cfg.locality = 48;
  cfg.seed = seed;
  return cfg;
}

/// Mixed fault list covering every FaultKind the simulators accept.
std::vector<Fault> make_fault_list(const Netlist& nl, std::size_t n,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Fault> faults;
  while (faults.size() < n) {
    const NetId net = static_cast<NetId>(rng() % nl.n_nets());
    switch (rng() % 6) {
      case 0:
        faults.push_back(Fault::stem_sa(net, rng() % 2 == 0));
        break;
      case 1: {
        const auto fi = nl.fanins(net);
        if (fi.empty()) continue;
        const std::uint32_t pin = static_cast<std::uint32_t>(rng() % fi.size());
        if (nl.fanouts(fi[pin]).size() > 1)
          faults.push_back(Fault::branch_sa(net, pin, rng() % 2 == 0));
        else
          faults.push_back(Fault::stem_sa(net, rng() % 2 == 0));
        break;
      }
      case 2:
        faults.push_back(rng() % 2 == 0 ? Fault::slow_to_rise(net)
                                        : Fault::slow_to_fall(net));
        break;
      case 3: {
        const NetId other = static_cast<NetId>(rng() % nl.n_nets());
        if (other == net) continue;
        faults.push_back(rng() % 2 == 0 ? Fault::bridge_wand(net, other)
                                        : Fault::bridge_wor(net, other));
        break;
      }
      default: {
        const NetId other = static_cast<NetId>(rng() % nl.n_nets());
        if (other == net || is_feedback_pair(nl, net, other)) continue;
        faults.push_back(Fault::bridge_dom(net, other));
        break;
      }
    }
  }
  return faults;
}

/// Static-fault subset (PairFaultSimulator takes any mix; FaultSimulator
/// rejects transitions, so the single-frame checks filter them out).
std::vector<Fault> static_only(const std::vector<Fault>& faults) {
  std::vector<Fault> out;
  for (const Fault& f : faults)
    if (!f.is_transition()) out.push_back(f);
  return out;
}

/// Pattern counts chosen to land on and around lane-group boundaries for
/// every kernel width: 64*8 = 512 patterns per widest pass.
constexpr std::size_t kPatternCounts[] = {37, 64, 130, 259, 530};

TEST(KernelEquiv, AvailableKernelsAreOrderedScalarFirst) {
  const auto& kernels = available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name, "scalar");
  EXPECT_EQ(kernels.front()->lanes, 1u);
  for (std::size_t i = 1; i < kernels.size(); ++i) {
    EXPECT_GT(kernels[i]->lanes, kernels[i - 1]->lanes);
    EXPECT_LE(kernels[i]->lanes, kMaxKernelLanes);
  }
  EXPECT_EQ(&best_kernel(), kernels.back());
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);
  for (const SimKernel* k : kernels) EXPECT_EQ(find_kernel(k->name), k);
}

TEST(KernelEquiv, GoodSimulationMatchesScalar) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Netlist nl = make_random_circuit(circuit_config(seed));
    for (const std::size_t n_pat : kPatternCounts) {
      const PatternSet stimuli =
          PatternSet::random(n_pat, nl.n_inputs(), seed * 1000 + n_pat);
      const PatternSet reference = simulate(nl, stimuli, scalar_kernel());
      for (const SimKernel* k : available_kernels()) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " n_pat=" + std::to_string(n_pat) + " kernel=" + k->name);
        EXPECT_EQ(simulate(nl, stimuli, *k), reference);
      }
    }
  }
}

TEST(KernelEquiv, SignaturesDetectsCoverageMatchScalar) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Netlist nl = make_random_circuit(circuit_config(seed));
    const PatternSet patterns =
        PatternSet::random(kPatternCounts[seed % 5], nl.n_inputs(), seed);
    const std::vector<Fault> faults =
        static_only(make_fault_list(nl, 48, seed * 7));

    FaultSimulator reference(nl, patterns, scalar_kernel());
    const auto ref_sigs = reference.signatures(faults, ExecPolicy::serial());
    const auto ref_det = reference.detected(faults);
    const double ref_cov = reference.coverage(faults);

    for (const SimKernel* k : available_kernels()) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " kernel=" + k->name);
      FaultSimulator fsim(nl, patterns, *k);
      EXPECT_EQ(&fsim.kernel(), k);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        SCOPED_TRACE("fault " + std::to_string(i));
        EXPECT_EQ(fsim.signature(faults[i]), ref_sigs[i]);
        EXPECT_EQ(fsim.first_detecting_pattern(faults[i]),
                  reference.first_detecting_pattern(faults[i]));
      }
      EXPECT_EQ(fsim.detected(faults), ref_det);
      EXPECT_EQ(fsim.coverage(faults), ref_cov);
      // Thread counts must not change a single byte either.
      for (const std::size_t n_threads : {1u, 3u}) {
        SCOPED_TRACE("n_threads=" + std::to_string(n_threads));
        const ExecPolicy policy = ExecPolicy::parallel(n_threads);
        EXPECT_EQ(fsim.signatures(faults, policy), ref_sigs);
        EXPECT_EQ(fsim.detected(faults, policy), ref_det);
        EXPECT_EQ(fsim.coverage(faults, policy), ref_cov);
      }
    }
  }
}

TEST(KernelEquiv, MultipletSignaturesMatchScalar) {
  const std::uint64_t seed = 21;
  const Netlist nl = make_random_circuit(circuit_config(seed));
  const PatternSet patterns = PatternSet::random(130, nl.n_inputs(), seed);
  const std::vector<Fault> faults =
      static_only(make_fault_list(nl, 24, seed * 7));

  FaultSimulator reference(nl, patterns, scalar_kernel());
  for (const SimKernel* k : available_kernels()) {
    SCOPED_TRACE(std::string("kernel=") + k->name);
    FaultSimulator fsim(nl, patterns, *k);
    std::mt19937_64 rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      SCOPED_TRACE("trial " + std::to_string(trial));
      std::vector<Fault> multiplet;
      const std::size_t size = 2 + rng() % 3;
      for (std::size_t j = 0; j < size; ++j)
        multiplet.push_back(faults[rng() % faults.size()]);
      EXPECT_EQ(fsim.signature(multiplet), reference.signature(multiplet));
    }
  }
}

TEST(KernelEquiv, PairSignaturesMatchScalar) {
  for (const std::uint64_t seed : {31ull, 32ull}) {
    const Netlist nl = make_random_circuit(circuit_config(seed));
    const std::size_t n_pat = kPatternCounts[(seed + 2) % 5];
    const PatternSet launch =
        PatternSet::random(n_pat, nl.n_inputs(), seed * 2);
    const PatternSet capture =
        PatternSet::random(n_pat, nl.n_inputs(), seed * 2 + 1);
    // Transitions included: the two-frame path is the whole point here.
    const std::vector<Fault> faults = make_fault_list(nl, 32, seed * 7);

    PairFaultSimulator reference(nl, launch, capture, scalar_kernel());
    const double ref_cov = reference.coverage(faults);
    for (const SimKernel* k : available_kernels()) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " kernel=" + k->name);
      PairFaultSimulator fsim(nl, launch, capture, *k);
      EXPECT_EQ(fsim.good_response(), reference.good_response());
      for (std::size_t i = 0; i < faults.size(); ++i) {
        SCOPED_TRACE("fault " + std::to_string(i));
        EXPECT_EQ(fsim.signature(faults[i]), reference.signature(faults[i]));
        EXPECT_EQ(fsim.first_detecting_pair(faults[i]),
                  reference.first_detecting_pair(faults[i]));
      }
      EXPECT_EQ(fsim.coverage(faults), ref_cov);
      std::vector<Fault> multiplet{faults[0], faults[7], faults[19]};
      EXPECT_EQ(fsim.signature(multiplet), reference.signature(multiplet));
    }
  }
}

TEST(KernelEquiv, PropagatorSoloAndCompositeMatchScalar) {
  for (const std::uint64_t seed : {41ull, 42ull}) {
    const Netlist nl = make_random_circuit(circuit_config(seed));
    const PatternSet patterns =
        PatternSet::random(kPatternCounts[seed % 5], nl.n_inputs(), seed);
    const std::vector<Fault> faults =
        static_only(make_fault_list(nl, 32, seed * 7));

    SingleFaultPropagator reference(nl, patterns, scalar_kernel());
    // The propagator must also agree with the full-machine simulator.
    FaultSimulator full(nl, patterns, scalar_kernel());
    for (const SimKernel* k : available_kernels()) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " kernel=" + k->name);
      SingleFaultPropagator prop(nl, patterns, *k);
      EXPECT_EQ(&prop.kernel(), k);
      std::mt19937_64 rng(seed);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        SCOPED_TRACE("fault " + std::to_string(i));
        const ErrorSignature sig = prop.signature(faults[i]);
        EXPECT_EQ(sig, reference.signature(faults[i]));
        EXPECT_EQ(sig, full.signature(faults[i]));
      }
      for (int trial = 0; trial < 8; ++trial) {
        SCOPED_TRACE("composite trial " + std::to_string(trial));
        std::vector<Fault> multiplet;
        const std::size_t size = 2 + rng() % 2;
        for (std::size_t j = 0; j < size; ++j)
          multiplet.push_back(faults[rng() % faults.size()]);
        EXPECT_EQ(prop.signature(multiplet), reference.signature(multiplet));
      }
    }
  }
}

TEST(KernelEquiv, SetCurrentKernelByNameRoundTrips) {
  KernelGuard guard;
  for (const SimKernel* k : available_kernels()) {
    ASSERT_TRUE(set_current_kernel(k->name));
    EXPECT_EQ(&current_kernel(), k);
    // Default-constructed machinery picks the process-wide choice up.
    const Netlist nl = make_named_circuit("c17");
    const PatternSet patterns = PatternSet::random(70, nl.n_inputs(), 5);
    FaultSimulator fsim(nl, patterns);
    EXPECT_EQ(&fsim.kernel(), k);
  }
  EXPECT_FALSE(set_current_kernel("definitely-not-a-kernel"));
}

}  // namespace
}  // namespace mdd
