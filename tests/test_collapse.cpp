// Unit tests: structural stuck-at fault collapsing.
#include <gtest/gtest.h>

#include "fault/collapse.hpp"
#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

TEST(Collapse, BufferChainCollapsesFully) {
  Netlist nl("chain");
  const NetId a = nl.add_input("a");
  const NetId b1 = nl.add_gate(GateKind::Buf, {a}, "b1");
  const NetId b2 = nl.add_gate(GateKind::Not, {b1}, "b2");
  const NetId b3 = nl.add_gate(GateKind::Buf, {b2}, "b3");
  nl.mark_output(b3);
  nl.finalize();
  const CollapsedFaults cf(nl);
  // 4 nets x 2 faults, all single-fanout: collapse to 2 classes (one per
  // polarity of the whole chain).
  EXPECT_EQ(cf.universe().size(), 8u);
  EXPECT_EQ(cf.classes().size(), 2u);
  EXPECT_TRUE(cf.equivalent(Fault::stem_sa(a, false),
                            Fault::stem_sa(b1, false)));
  EXPECT_TRUE(cf.equivalent(Fault::stem_sa(a, false),
                            Fault::stem_sa(b2, true)));  // through NOT
  EXPECT_FALSE(cf.equivalent(Fault::stem_sa(a, false),
                             Fault::stem_sa(a, true)));
}

TEST(Collapse, AndGateRule) {
  Netlist nl("and");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId z = nl.add_gate(GateKind::And, {a, b}, "z");
  nl.mark_output(z);
  nl.finalize();
  const CollapsedFaults cf(nl);
  // a sa0 ~ b sa0 ~ z sa0; a sa1, b sa1, z sa1 distinct: 4 classes of 6.
  EXPECT_EQ(cf.classes().size(), 4u);
  EXPECT_TRUE(cf.equivalent(Fault::stem_sa(a, false),
                            Fault::stem_sa(z, false)));
  EXPECT_TRUE(cf.equivalent(Fault::stem_sa(b, false),
                            Fault::stem_sa(z, false)));
  EXPECT_FALSE(cf.equivalent(Fault::stem_sa(a, true),
                             Fault::stem_sa(z, true)));
}

TEST(Collapse, NandBranchRule) {
  const Netlist nl = make_c17();
  const CollapsedFaults cf(nl);
  // NAND input sa0 ~ output sa1. Net 10 = NAND(1, 3); input 1 has single
  // fanout so its stem stands for the branch.
  EXPECT_TRUE(cf.equivalent(Fault::stem_sa(nl.find_net("1"), false),
                            Fault::stem_sa(nl.find_net("10"), true)));
  // Branch fault on multi-fanout stem 3 at gate 10.
  const auto fi = nl.fanins(nl.find_net("10"));
  ASSERT_EQ(fi.size(), 2u);
  const std::uint32_t pin3 = fi[0] == nl.find_net("3") ? 0 : 1;
  EXPECT_TRUE(cf.equivalent(Fault::branch_sa(nl.find_net("10"), pin3, false),
                            Fault::stem_sa(nl.find_net("10"), true)));
  // But the stem fault of 3 is NOT equivalent (it also feeds 11).
  EXPECT_FALSE(cf.equivalent(Fault::stem_sa(nl.find_net("3"), false),
                             Fault::stem_sa(nl.find_net("10"), true)));
}

TEST(Collapse, RatioAndLookup) {
  const Netlist nl = make_named_circuit("g200");
  const CollapsedFaults cf(nl);
  EXPECT_LT(cf.collapse_ratio(), 1.0);
  EXPECT_GT(cf.collapse_ratio(), 0.2);
  EXPECT_EQ(cf.representatives().size(), cf.classes().size());
  for (const Fault& rep : cf.representatives())
    EXPECT_NO_THROW(cf.class_of(rep));
  EXPECT_THROW(cf.class_of(Fault::bridge_dom(0, 1)), std::out_of_range);
}

/// Property: faults that collapse into one class are functionally
/// equivalent — identical error signatures under exhaustive patterns.
TEST(Collapse, ClassesAreFunctionallyEquivalent) {
  for (std::uint64_t seed : {41ull, 42ull}) {
    RandomCircuitConfig cfg;
    cfg.n_inputs = 8;
    cfg.n_gates = 40;
    cfg.n_outputs = 4;
    cfg.seed = seed;
    const Netlist nl = make_random_circuit(cfg);
    const PatternSet stimuli = PatternSet::exhaustive(nl.n_inputs());
    FaultSimulator fsim(nl, stimuli);
    const CollapsedFaults cf(nl);
    for (const auto& cls : cf.classes()) {
      if (cls.size() < 2) continue;
      const ErrorSignature ref = fsim.signature(cls.front());
      for (std::size_t i = 1; i < cls.size(); ++i) {
        ASSERT_EQ(fsim.signature(cls[i]), ref)
            << "seed " << seed << ": " << to_string(cls.front(), nl)
            << " vs " << to_string(cls[i], nl);
      }
    }
  }
}

}  // namespace
}  // namespace mdd
