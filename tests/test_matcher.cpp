// Property tests for SignatureMatcher: the dense-bitmap accelerator must
// produce exactly match(observed, sim) for every candidate — it replaces
// the sorted-merge in the scoring hot loops, so any divergence would
// silently reorder diagnosis rankings.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

ErrorSignature random_signature(std::mt19937_64& rng, std::size_t n_patterns,
                                std::size_t n_outputs, unsigned density) {
  ErrorSignature sig(n_patterns, n_outputs);
  const std::size_t n_words = sig.n_po_words();
  for (std::uint32_t p = 0; p < n_patterns; ++p) {
    if (rng() % density != 0) continue;
    std::vector<Word> mask(n_words, kAllZero);
    const std::size_t n_fail = 1 + rng() % 5;
    for (std::size_t k = 0; k < n_fail; ++k) {
      const std::size_t o = rng() % n_outputs;
      mask[o / 64] |= Word{1} << (o % 64);
    }
    sig.append(p, mask);
  }
  return sig;
}

TEST(SignatureMatcherProps, AgreesWithMatchOnRandomSignatures) {
  constexpr std::uint64_t kSeeds[] = {1, 42, 0xBEEF, 0x5EED5EED};
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const std::size_t n_patterns = 1 + rng() % 300;
    const std::size_t n_outputs = 1 + rng() % 200;

    const ErrorSignature observed =
        random_signature(rng, n_patterns, n_outputs, 3);
    const SignatureMatcher matcher(observed);
    for (int c = 0; c < 50; ++c) {
      // Mix dense, sparse, and empty candidates.
      const ErrorSignature sim =
          random_signature(rng, n_patterns, n_outputs, 1 + rng() % 8);
      const MatchCounts slow = match(observed, sim);
      const MatchCounts fast = matcher.match(sim);
      EXPECT_EQ(fast.tfsf, slow.tfsf) << "candidate " << c;
      EXPECT_EQ(fast.tfsp, slow.tfsp) << "candidate " << c;
      EXPECT_EQ(fast.tpsf, slow.tpsf) << "candidate " << c;
    }
  }
}

TEST(SignatureMatcherProps, EdgeShapes) {
  std::mt19937_64 rng(7);
  const std::size_t n_patterns = 64;
  const std::size_t n_outputs = 65;  // straddles a word boundary
  const ErrorSignature observed =
      random_signature(rng, n_patterns, n_outputs, 2);
  const SignatureMatcher matcher(observed);

  {  // Empty candidate: everything observed is unexplained.
    const ErrorSignature empty(n_patterns, n_outputs);
    const MatchCounts mc = matcher.match(empty);
    EXPECT_EQ(mc.tfsf, 0u);
    EXPECT_EQ(mc.tfsp, observed.n_error_bits());
    EXPECT_EQ(mc.tpsf, 0u);
  }
  {  // Perfect candidate: the observed signature itself.
    const MatchCounts mc = matcher.match(observed);
    EXPECT_EQ(mc.tfsf, observed.n_error_bits());
    EXPECT_EQ(mc.tfsp, 0u);
    EXPECT_EQ(mc.tpsf, 0u);
  }
  {  // Empty observed: every candidate bit is a misprediction.
    const ErrorSignature no_fail(n_patterns, n_outputs);
    const SignatureMatcher empty_matcher(no_fail);
    const ErrorSignature sim = random_signature(rng, n_patterns, n_outputs, 2);
    const MatchCounts mc = empty_matcher.match(sim);
    EXPECT_EQ(mc.tfsf, 0u);
    EXPECT_EQ(mc.tfsp, 0u);
    EXPECT_EQ(mc.tpsf, sim.n_error_bits());
  }
}

TEST(SignatureMatcherProps, AgreesWithMatchOnCircuitSignatures) {
  // The real workload: one observed multiplet signature scored against
  // every collapsed solo candidate of a generated circuit.
  const Netlist netlist = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(128, netlist.n_inputs(), 3);
  FaultSimulator fsim(netlist, patterns);

  const std::vector<Fault> defect{
      Fault::stem_sa(netlist.n_nets() / 4, true),
      Fault::stem_sa(netlist.n_nets() / 2, false)};
  const ErrorSignature observed = fsim.signature(defect);
  ASSERT_FALSE(observed.empty());

  const SignatureMatcher matcher(observed);
  for (const Fault& f : all_stuck_at_faults(netlist)) {
    const ErrorSignature sim = fsim.signature(f);
    const MatchCounts slow = match(observed, sim);
    const MatchCounts fast = matcher.match(sim);
    ASSERT_EQ(fast.tfsf, slow.tfsf);
    ASSERT_EQ(fast.tfsp, slow.tfsp);
    ASSERT_EQ(fast.tpsf, slow.tpsf);
  }
}

}  // namespace
}  // namespace mdd
