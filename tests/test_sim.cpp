// Unit tests: pattern containers and the three simulators.
#include <gtest/gtest.h>

#include <random>

#include "netlist/generator.hpp"
#include "sim/event_sim.hpp"
#include "sim/sim2.hpp"
#include "sim/sim3.hpp"

namespace mdd {
namespace {

TEST(PatternSet, GetSetRoundTrip) {
  PatternSet ps(100, 7);
  ps.set(0, 0, true);
  ps.set(63, 6, true);
  ps.set(64, 3, true);
  ps.set(99, 0, true);
  EXPECT_TRUE(ps.get(0, 0));
  EXPECT_TRUE(ps.get(63, 6));
  EXPECT_TRUE(ps.get(64, 3));
  EXPECT_TRUE(ps.get(99, 0));
  EXPECT_FALSE(ps.get(1, 0));
  EXPECT_EQ(ps.n_blocks(), 2u);
  ps.set(63, 6, false);
  EXPECT_FALSE(ps.get(63, 6));
}

TEST(PatternSet, AppendGrowsBlocks) {
  PatternSet ps(0, 3);
  for (int i = 0; i < 130; ++i)
    ps.append({i % 2 == 0, false, true});
  EXPECT_EQ(ps.n_patterns(), 130u);
  EXPECT_EQ(ps.n_blocks(), 3u);
  EXPECT_TRUE(ps.get(128, 0));
  EXPECT_FALSE(ps.get(129, 0));
  EXPECT_TRUE(ps.get(129, 2));
  EXPECT_THROW(ps.append({true}), std::invalid_argument);
}

TEST(PatternSet, ValidMask) {
  PatternSet ps(70, 2);
  EXPECT_EQ(ps.valid_mask(0), kAllOne);
  EXPECT_EQ(ps.valid_mask(1), (Word{1} << 6) - 1);
  PatternSet full(128, 2);
  EXPECT_EQ(full.valid_mask(1), kAllOne);
}

TEST(PatternSet, ExhaustiveEnumerates) {
  const PatternSet ps = PatternSet::exhaustive(4);
  EXPECT_EQ(ps.n_patterns(), 16u);
  for (std::size_t p = 0; p < 16; ++p)
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_EQ(ps.get(p, s), ((p >> s) & 1u) != 0);
  EXPECT_THROW(PatternSet::exhaustive(21), std::invalid_argument);
}

TEST(PatternSet, RandomDeterministicAndMasked) {
  const PatternSet a = PatternSet::random(100, 5, 7);
  const PatternSet b = PatternSet::random(100, 5, 7);
  EXPECT_EQ(a, b);
  const PatternSet c = PatternSet::random(100, 5, 8);
  EXPECT_NE(a, c);
  // Tail bits beyond n_patterns are zero.
  for (std::size_t s = 0; s < 5; ++s)
    EXPECT_EQ(a.word(1, s) & ~a.valid_mask(1), kAllZero);
}

TEST(BlockSim, C17KnownVector) {
  const Netlist nl = make_c17();
  // Pattern 01110 (1=0,2=1,3=1,6=1,7=0):
  // 10=NAND(0,1)=1, 11=NAND(1,1)=0, 16=NAND(1,0)=1, 19=NAND(0,0)=1,
  // 22=NAND(1,1)=0, 23=NAND(1,1)=0.
  PatternSet ps(1, 5);
  ps.set(0, 1, true);
  ps.set(0, 2, true);
  ps.set(0, 3, true);
  const PatternSet resp = simulate(nl, ps);
  EXPECT_FALSE(resp.get(0, 0));
  EXPECT_FALSE(resp.get(0, 1));
}

/// Property: the bit-parallel block simulator and the event-driven
/// single-pattern simulator agree on every net for random circuits.
TEST(Simulators, BlockVsEventEquivalence) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    RandomCircuitConfig cfg;
    cfg.n_inputs = 12;
    cfg.n_gates = 150;
    cfg.n_outputs = 8;
    cfg.seed = seed;
    const Netlist nl = make_random_circuit(cfg);
    const PatternSet stimuli = PatternSet::random(64, nl.n_inputs(), seed);
    BlockSim block(nl);
    block.run(stimuli, 0);
    EventSim ev(nl);
    for (std::size_t p = 0; p < 64; ++p) {
      ev.apply(stimuli, p);
      for (NetId n = 0; n < nl.n_nets(); ++n) {
        ASSERT_EQ(ev.value(n), ((block.value(n) >> p) & 1u) != 0)
            << "seed " << seed << " pattern " << p << " net "
            << nl.net_name(n);
      }
    }
  }
}

/// Property: Scalar3Sim with binary inputs equals the 2-valued simulators.
TEST(Simulators, Scalar3BinaryAgreement) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet stimuli = PatternSet::random(20, nl.n_inputs(), 5);
  Scalar3Sim sim3(nl);
  EventSim ev(nl);
  for (std::size_t p = 0; p < 20; ++p) {
    ev.apply(stimuli, p);
    sim3.reset();
    for (std::size_t i = 0; i < nl.n_inputs(); ++i)
      sim3.set_input(i, v3_from_bool(stimuli.get(p, i)));
    sim3.run();
    for (NetId n = 0; n < nl.n_nets(); ++n) {
      ASSERT_EQ(sim3.value(n), v3_from_bool(ev.value(n)))
          << "pattern " << p << " net " << nl.net_name(n);
    }
  }
}

/// Property: with some inputs X, every binary output of simulate3 agrees
/// with the 2-valued simulation of any completion.
TEST(Simulators, DualRailConservative) {
  const Netlist nl = make_named_circuit("g200");
  std::mt19937_64 rng(31);
  Pattern3Set stim3;
  stim3.is0 = PatternSet(32, nl.n_inputs());
  stim3.is1 = PatternSet(32, nl.n_inputs());
  PatternSet completion(32, nl.n_inputs());
  const Val3 choices[3] = {Val3::Zero, Val3::One, Val3::X};
  for (std::size_t p = 0; p < 32; ++p)
    for (std::size_t i = 0; i < nl.n_inputs(); ++i) {
      const Val3 v = choices[rng() % 3];
      stim3.set(p, i, v);
      completion.set(p, i, v == Val3::X ? (rng() & 1) : v3_to_bool(v));
    }
  const Pattern3Set resp3 = simulate3(nl, stim3);
  const PatternSet resp2 = simulate(nl, completion);
  for (std::size_t p = 0; p < 32; ++p)
    for (std::size_t o = 0; o < nl.n_outputs(); ++o) {
      const Val3 v = resp3.get(p, o);
      if (v == Val3::X) continue;
      ASSERT_EQ(v3_to_bool(v), resp2.get(p, o)) << p << "," << o;
    }
}

TEST(Simulators, Pattern3FromBinary) {
  const PatternSet ps = PatternSet::random(70, 3, 2);
  const Pattern3Set p3 = Pattern3Set::from_binary(ps);
  for (std::size_t p = 0; p < 70; ++p)
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_EQ(p3.get(p, s), v3_from_bool(ps.get(p, s)));
}

TEST(Scalar3Sim, StemOverride) {
  const Netlist nl = make_c17();
  Scalar3Sim sim(nl);
  for (std::size_t i = 0; i < 5; ++i) sim.set_input(i, Val3::One);
  sim.set_override(nl.find_net("11"), Val3::One);  // would be 0 normally
  sim.run();
  EXPECT_EQ(sim.value(nl.find_net("11")), Val3::One);
  // 16 = NAND(2=1, 11=1) = 0; 22 = NAND(10, 16=0) = 1.
  EXPECT_EQ(sim.value(nl.find_net("16")), Val3::Zero);
  EXPECT_EQ(sim.value(nl.find_net("22")), Val3::One);
}

TEST(Scalar3Sim, PinOverride) {
  const Netlist nl = make_c17();
  Scalar3Sim sim(nl);
  for (std::size_t i = 0; i < 5; ++i) sim.set_input(i, Val3::One);
  // Force pin 1 (net 11) of gate 16 to 1; stem 11 itself stays 0.
  sim.set_pin_override(nl.find_net("16"), 1, Val3::One);
  sim.run();
  EXPECT_EQ(sim.value(nl.find_net("11")), Val3::Zero);
  EXPECT_EQ(sim.value(nl.find_net("16")), Val3::Zero);  // NAND(1, forced 1)
  // Gate 19 still sees the true stem: NAND(11=0, 7=1) = 1.
  EXPECT_EQ(sim.value(nl.find_net("19")), Val3::One);
}

/// Property: flip_observed_outputs equals the brute-force "re-simulate with
/// the net forced to the opposite value and compare POs".
TEST(EventSim, FlipMatchesBruteForce) {
  RandomCircuitConfig cfg;
  cfg.n_inputs = 10;
  cfg.n_gates = 120;
  cfg.n_outputs = 6;
  cfg.seed = 55;
  const Netlist nl = make_random_circuit(cfg);
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 3);
  EventSim ev(nl);
  Scalar3Sim forced(nl);
  for (std::size_t p = 0; p < 8; ++p) {
    ev.apply(stimuli, p);
    for (NetId n = 0; n < nl.n_nets(); ++n) {
      const auto observed = ev.flip_observed_outputs(n);
      // Brute force via Scalar3Sim override.
      forced.reset();
      for (std::size_t i = 0; i < nl.n_inputs(); ++i)
        forced.set_input(i, v3_from_bool(stimuli.get(p, i)));
      forced.set_override(n, v3_from_bool(!ev.value(n)));
      forced.run();
      std::vector<std::uint32_t> expected;
      for (std::size_t o = 0; o < nl.n_outputs(); ++o) {
        if (forced.value(nl.outputs()[o]) !=
            v3_from_bool(ev.value(nl.outputs()[o])))
          expected.push_back(static_cast<std::uint32_t>(o));
      }
      ASSERT_EQ(observed, expected) << "pattern " << p << " net "
                                    << nl.net_name(n);
    }
  }
}

TEST(EventSim, StateRestoredAfterFlip) {
  const Netlist nl = make_c17();
  PatternSet ps(1, 5);
  ps.set(0, 2, true);
  EventSim ev(nl);
  ev.apply(ps, 0);
  std::vector<bool> before(nl.n_nets());
  for (NetId n = 0; n < nl.n_nets(); ++n) before[n] = ev.value(n);
  for (NetId n = 0; n < nl.n_nets(); ++n) ev.flip_observed_outputs(n);
  for (NetId n = 0; n < nl.n_nets(); ++n)
    EXPECT_EQ(ev.value(n), before[n]) << nl.net_name(n);
}

TEST(EventSim, FlipChangedNetsIncludesSelf) {
  const Netlist nl = make_c17();
  PatternSet ps(1, 5);
  EventSim ev(nl);
  ev.apply(ps, 0);
  const NetId g16 = nl.find_net("16");
  const auto changed = ev.flip_changed_nets(g16);
  EXPECT_NE(std::find(changed.begin(), changed.end(), g16), changed.end());
}

}  // namespace
}  // namespace mdd
