// Unit tests: netlist construction, finalization, topology queries.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"

namespace mdd {
namespace {

Netlist two_gate() {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateKind::And, {a, b}, "g");
  const NetId h = nl.add_gate(GateKind::Not, {g}, "h");
  nl.mark_output(h);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicCounts) {
  const Netlist nl = two_gate();
  EXPECT_EQ(nl.n_nets(), 4u);
  EXPECT_EQ(nl.n_inputs(), 2u);
  EXPECT_EQ(nl.n_gates(), 2u);
  EXPECT_EQ(nl.n_outputs(), 1u);
  EXPECT_TRUE(nl.finalized());
}

TEST(Netlist, Levels) {
  const Netlist nl = two_gate();
  EXPECT_EQ(nl.level(nl.find_net("a")), 0u);
  EXPECT_EQ(nl.level(nl.find_net("g")), 1u);
  EXPECT_EQ(nl.level(nl.find_net("h")), 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = make_named_circuit("g200");
  std::vector<std::size_t> position(nl.n_nets());
  for (std::size_t i = 0; i < nl.topo_order().size(); ++i)
    position[nl.topo_order()[i]] = i;
  EXPECT_EQ(nl.topo_order().size(), nl.n_nets());
  for (NetId g = 0; g < nl.n_nets(); ++g)
    for (NetId f : nl.fanins(g))
      EXPECT_LT(position[f], position[g]);
}

TEST(Netlist, FanoutsAreInverseOfFanins) {
  const Netlist nl = make_named_circuit("g200");
  for (NetId g = 0; g < nl.n_nets(); ++g) {
    for (NetId f : nl.fanins(g)) {
      const auto fo = nl.fanouts(f);
      EXPECT_NE(std::find(fo.begin(), fo.end(), g), fo.end());
    }
  }
}

TEST(Netlist, NamesResolve) {
  const Netlist nl = two_gate();
  EXPECT_EQ(nl.net_name(nl.find_net("g")), "g");
  EXPECT_EQ(nl.find_net("nope"), kNoNet);
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::runtime_error);
}

TEST(Netlist, ArityChecks) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateKind::Not, {a, a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateKind::Xor, {a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateKind::Const0, {a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateKind::Input, {}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateKind::And, {}), std::runtime_error);
}

TEST(Netlist, OutputBookkeeping) {
  const Netlist nl = two_gate();
  const NetId h = nl.find_net("h");
  ASSERT_TRUE(nl.output_index(h).has_value());
  EXPECT_EQ(*nl.output_index(h), 0u);
  EXPECT_FALSE(nl.output_index(nl.find_net("g")).has_value());
}

TEST(Netlist, DoubleMarkOutputRejected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate(GateKind::Buf, {a});
  nl.mark_output(g);
  EXPECT_THROW(nl.mark_output(g), std::runtime_error);
}

TEST(Netlist, FinalizeWithoutOutputsRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, FaninCone) {
  const Netlist nl = make_c17();
  const NetId g22 = nl.find_net("22");
  const auto cone = nl.fanin_cone(g22);
  // 22 = NAND(10, 16); 10 = NAND(1,3); 16 = NAND(2,11); 11 = NAND(3,6).
  std::vector<std::string> expected = {"1", "3", "2", "6", "10", "11", "16",
                                       "22"};
  EXPECT_EQ(cone.size(), expected.size());
  for (const auto& name : expected) {
    EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find_net(name)),
              cone.end())
        << name;
  }
  // Topologically ordered.
  for (std::size_t i = 1; i < cone.size(); ++i)
    EXPECT_LE(nl.level(cone[i - 1]), nl.level(cone[i]));
}

TEST(Netlist, FanoutConeAndReachableOutputs) {
  const Netlist nl = make_c17();
  const NetId g11 = nl.find_net("11");
  const auto cone = nl.fanout_cone(g11);
  for (const auto& name : {"11", "16", "19", "22", "23"})
    EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find_net(name)),
              cone.end())
        << name;
  const auto pos = nl.reachable_outputs(g11);
  EXPECT_EQ(pos.size(), 2u);  // both POs
  const auto pos10 = nl.reachable_outputs(nl.find_net("10"));
  ASSERT_EQ(pos10.size(), 1u);
  EXPECT_EQ(nl.outputs()[pos10[0]], nl.find_net("22"));
}

TEST(Netlist, CellExpansionRecordsInstance) {
  const CellLibrary lib;
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId z = nl.add_cell(*lib.find("AOI21"), {a, b, c}, "u1", "z");
  nl.mark_output(z);
  nl.finalize();

  ASSERT_EQ(nl.cell_instances().size(), 1u);
  const CellInstance& inst = nl.cell_instances()[0];
  EXPECT_EQ(inst.cell_name, "AOI21");
  EXPECT_EQ(inst.instance_name, "u1");
  EXPECT_EQ(inst.output, z);
  EXPECT_EQ(inst.pins.size(), 3u);
  EXPECT_EQ(inst.internal.size(), 1u);  // the inner AND

  ASSERT_TRUE(nl.owning_cell(z).has_value());
  EXPECT_EQ(*nl.owning_cell(z), 0u);
  EXPECT_TRUE(nl.owning_cell(inst.internal[0]).has_value());
  EXPECT_FALSE(nl.owning_cell(a).has_value());
}

TEST(Netlist, CellPinCountChecked) {
  const CellLibrary lib;
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_cell(*lib.find("AOI21"), {a}, "u1"),
               std::runtime_error);
}

TEST(Netlist, Stats) {
  const Netlist nl = make_c17();
  const auto s = nl.stats();
  EXPECT_EQ(s.n_gates, 6u);
  EXPECT_EQ(s.n_inputs, 5u);
  EXPECT_EQ(s.n_outputs, 2u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.max_fanin, 2u);
  // Stems with fanout > 1: net 3, 11, 16.
  EXPECT_EQ(s.n_fanout_stems, 3u);
}

}  // namespace
}  // namespace mdd
