// Shard-router tests. Unit: rendezvous placement is deterministic,
// stable, and spreads keys. Integration: the real openmdd_serve binary
// in --shards mode must route diagnoses to a stable shard, turn a
// SIGKILLed worker mid-batch into a typed shard_failed error (never a
// hung connection), respawn the worker, and serve byte-identical reports
// from the replacement — the crash-recovery contract of DESIGN.md §15.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/datalog.hpp"
#include "fsim/fsim.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "server/json.hpp"
#include "server/router.hpp"
#include "server/serve.hpp"
#include "workload/textio.hpp"

namespace mdd::server {
namespace {

TEST(PickShard, DeterministicAndStableAcrossCalls) {
  const std::string key = "netlist.bench\npatterns.pat";
  const std::size_t first = pick_shard(key, 4);
  EXPECT_LT(first, 4u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(pick_shard(key, 4), first);
}

TEST(PickShard, SingleShardTakesEverything) {
  EXPECT_EQ(pick_shard("anything", 1), 0u);
  EXPECT_EQ(pick_shard("", 1), 0u);
}

TEST(PickShard, SpreadsDistinctKeysAcrossShards) {
  // 64 distinct keys over 4 shards: rendezvous hashing must not collapse
  // onto one shard (that would serialize the whole fleet).
  std::set<std::size_t> used;
  std::size_t counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 64; ++i) {
    const std::size_t s =
        pick_shard("circuit_" + std::to_string(i) + ".bench\np.pat", 4);
    ASSERT_LT(s, 4u);
    used.insert(s);
    ++counts[s];
  }
  EXPECT_EQ(used.size(), 4u) << "64 keys should touch all 4 shards";
  for (std::size_t c : counts)
    EXPECT_LT(c, 40u) << "placement is badly skewed";
}

TEST(PickShard, PlacementIgnoresShardCountOnlyViaWeights) {
  // Rendezvous property: removing a shard only moves the keys that lived
  // on it — keys placed elsewhere keep their shard (cache affinity
  // across fleet resize). With highest-random-weight placement over
  // n=4 vs n=3, any key whose n=4 winner is < 3 must keep it at n=3.
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t at4 = pick_shard(key, 4);
    if (at4 < 3) {
      EXPECT_EQ(pick_shard(key, 3), at4) << key;
    }
  }
}

/// The circuit/pattern/datalog triple the integration tests diagnose,
/// written under the test temp dir (worker processes read the paths).
struct RouterFixture {
  std::string netlist_path;
  std::string patterns_path;
  std::string datalog_text;

  static RouterFixture make(const std::string& tag) {
    const Netlist netlist = make_named_circuit("g200");
    const PatternSet patterns =
        PatternSet::random(128, netlist.n_inputs(), 0x5EED);
    FaultSimulator fsim(netlist, patterns);
    const std::vector<Fault> defect{
        Fault::stem_sa(netlist.n_nets() / 3, false),
        Fault::stem_sa(netlist.n_nets() / 2, true)};
    const Datalog log = datalog_from_defect(netlist, defect, patterns,
                                            fsim.good_response());
    EXPECT_TRUE(log.has_failures());

    RouterFixture f;
    f.netlist_path = ::testing::TempDir() + "router_" + tag + ".bench";
    f.patterns_path = ::testing::TempDir() + "router_" + tag + ".patterns";
    std::ofstream(f.netlist_path) << write_bench_string(netlist);
    write_patterns_file(f.patterns_path, patterns);
    std::ostringstream dl;
    write_datalog(dl, log, netlist);
    f.datalog_text = dl.str();
    return f;
  }
};

/// The sharded daemon under test: fork/exec the real serve binary with
/// --shards 2, wait until ping answers, kill the tree on teardown.
struct RouterProcess {
  pid_t pid = -1;
  std::uint16_t port = 0;

  static std::uint16_t pick_port() {
    // Ephemeral-ish port keyed on our pid; retried probes below catch
    // the (rare) collision as a failed startup.
    return static_cast<std::uint16_t>(20000 + (::getpid() * 7) % 20000);
  }

  void start() {
    port = pick_port();
    const std::string port_str = std::to_string(port);
    const std::string socket_dir =
        ::testing::TempDir() + "router_sockets_" + std::to_string(::getpid());
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const char* argv[] = {OPENMDD_SERVE_BIN,
                            "--port", port_str.c_str(),
                            "--shards", "2",
                            "--shard-socket-dir", socket_dir.c_str(),
                            "--workers", "2",
                            nullptr};
      ::execv(argv[0], const_cast<char* const*>(argv));
      _exit(127);
    }
    // Workers compile sessions lazily but must fork+ready fast; a minute
    // is far beyond any healthy startup.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < give_up) {
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, WNOHANG), 0)
          << "router exited during startup";
      try {
        TcpLineClient client("127.0.0.1", port);
        client.send_line("{\"op\":\"ping\"}");
        const std::optional<std::string> reply = client.recv_line_for(2000);
        if (reply &&
            reply->find("\"status\":\"ok\"") != std::string::npos)
          return;
      } catch (const std::exception&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    FAIL() << "router never became pingable on port " << port;
  }

  void shutdown() {
    if (pid < 0) return;
    try {
      TcpLineClient client("127.0.0.1", port);
      client.send_line("{\"op\":\"shutdown\"}");
      client.recv_line_for(15000);
    } catch (const std::exception&) {
    }
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pid, SIGKILL);  // last resort: don't leak the process tree
    ::waitpid(pid, nullptr, 0);
    pid = -1;
    ADD_FAILURE() << "router needed SIGKILL after a graceful shutdown op";
  }

  ~RouterProcess() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

/// Receives one line within `timeout_ms` and parses it; a timeout or a
/// malformed line is a test failure that yields a null Json.
Json recv_json(LineClient& client, int timeout_ms) {
  const std::optional<std::string> line = client.recv_line_for(timeout_ms);
  EXPECT_TRUE(line.has_value()) << "no line within " << timeout_ms << "ms";
  if (!line.has_value()) return Json();
  Json parsed;
  EXPECT_NO_THROW(parsed = Json::parse(*line)) << *line;
  return parsed;
}

/// `op=shard_of` for the fixture's key: the router's placement oracle.
Json shard_of(std::uint16_t port, const RouterFixture& f) {
  TcpLineClient client("127.0.0.1", port);
  Json r;
  r.set("op", "shard_of");
  r.set("netlist", f.netlist_path);
  r.set("patterns", f.patterns_path);
  client.send_line(r.dump());
  return recv_json(client, 5000);
}

Json diagnose_via_router(std::uint16_t port, const RouterFixture& f) {
  TcpLineClient client("127.0.0.1", port);
  Json r;
  r.set("op", "diagnose");
  r.set("netlist", f.netlist_path);
  r.set("patterns", f.patterns_path);
  r.set("datalog", f.datalog_text);
  client.send_line(r.dump());
  return recv_json(client, 60000);
}

TEST(ShardRouterIntegration, CrashedWorkerFailsTypedThenRecoversIdentical) {
  const RouterFixture f = RouterFixture::make("crash");
  RouterProcess router;
  router.start();
  if (::testing::Test::HasFatalFailure()) return;

  // Placement is stable: the oracle names one live shard, repeatedly.
  const Json placed = shard_of(router.port, f);
  ASSERT_EQ(placed.get_string("status"), "ok") << placed.dump();
  const std::size_t shard =
      static_cast<std::size_t>(placed.get_number("shard", 99));
  ASSERT_LT(shard, 2u);
  EXPECT_EQ(placed.get_string("state"), "live");
  const pid_t worker_pid = static_cast<pid_t>(placed.get_number("pid", -1));
  ASSERT_GT(worker_pid, 0);
  const std::uint64_t generation =
      static_cast<std::uint64_t>(placed.get_number("generation", 0));
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(shard_of(router.port, f).get_number("shard", 99),
              static_cast<double>(shard))
        << "placement must not wander between calls";

  // Baseline reports through the healthy fleet.
  const Json baseline = diagnose_via_router(router.port, f);
  ASSERT_EQ(baseline.get_string("status"), "ok") << baseline.dump();
  const Json* baseline_reports = baseline.find("reports");
  ASSERT_NE(baseline_reports, nullptr);

  // Kill the owning worker right after submitting a streamed batch: the
  // in-flight request must come back as a typed shard_failed error, not
  // a connection that hangs until some client-side timeout.
  {
    TcpLineClient client("127.0.0.1", router.port);
    Json r;
    r.set("op", "diagnose_batch");
    r.set("id", "doomed");
    r.set("netlist", f.netlist_path);
    r.set("patterns", f.patterns_path);
    JsonArray datalogs;
    for (int i = 0; i < 8; ++i) datalogs.emplace_back(f.datalog_text);
    r.set("datalogs", Json(std::move(datalogs)));
    r.set("stream", true);
    client.send_line(r.dump());
    ASSERT_EQ(::kill(worker_pid, SIGKILL), 0);

    bool saw_shard_failed = false;
    for (int i = 0; i < 32 && !saw_shard_failed; ++i) {
      const Json line = recv_json(client, 15000);
      if (line.get_string("error") == "shard_failed") {
        saw_shard_failed = true;
        EXPECT_EQ(line.get_string("id"), "doomed");
        EXPECT_EQ(line.get_number("shard", 99),
                  static_cast<double>(shard));
      } else if (line.get_string("op") == "diagnose_batch") {
        break;  // the batch outran the SIGKILL — nothing left to fail
      }
    }
    EXPECT_TRUE(saw_shard_failed)
        << "killing the worker mid-batch must surface shard_failed";
  }

  // The supervisor respawns the shard (backoff starts at 200ms); the
  // replacement must re-admit the same placement at a higher generation.
  Json respawned;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    respawned = shard_of(router.port, f);
    if (respawned.get_string("state") == "live" &&
        respawned.get_number("generation", 0) >
            static_cast<double>(generation))
      break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "shard never respawned: " << respawned.dump();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(respawned.get_number("shard", 99), static_cast<double>(shard))
      << "a respawned shard must get its placement back";
  EXPECT_NE(static_cast<pid_t>(respawned.get_number("pid", -1)), worker_pid);

  // Crash recovery is invisible to results: the replacement worker's
  // reports are byte-identical to the pre-crash baseline.
  const Json after = diagnose_via_router(router.port, f);
  ASSERT_EQ(after.get_string("status"), "ok") << after.dump();
  const Json* after_reports = after.find("reports");
  ASSERT_NE(after_reports, nullptr);
  EXPECT_EQ(after_reports->dump(), baseline_reports->dump());

  // Aggregated stats carry the incident ledger.
  {
    TcpLineClient client("127.0.0.1", router.port);
    client.send_line("{\"op\":\"stats\"}");
    const Json response = recv_json(client, 15000);
    const Json* stats_obj = response.find("stats");
    ASSERT_NE(stats_obj, nullptr) << response.dump();
    const Json& stats = *stats_obj;
    const Json* router_obj = stats.find("router");
    ASSERT_NE(router_obj, nullptr) << stats.dump();
    EXPECT_EQ(router_obj->get_number("shards", 0), 2.0);
    EXPECT_EQ(router_obj->get_number("live", 0), 2.0);
    EXPECT_GE(router_obj->get_number("respawns", 0), 1.0);
    EXPECT_GE(router_obj->get_number("shard_failures", 0), 1.0);
    const Json* shards = stats.find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->as_array().size(), 2u);
  }

  router.shutdown();
}

}  // namespace
}  // namespace mdd::server
