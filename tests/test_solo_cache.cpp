// Stress/regression tests for the DiagnosisContext solo-signature cache:
// concurrent readers racing on the same slots must all observe the same
// cached object, each slot computed exactly once (atomic compute counter).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "diag/diagnosis.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

struct CacheCase {
  Netlist netlist;
  PatternSet patterns;
  Datalog log;
};

CacheCase make_case() {
  CacheCase c{make_named_circuit("g200"), {}, {}};
  c.patterns = PatternSet::random(128, c.netlist.n_inputs(), 0xCACE);
  FaultSimulator fsim(c.netlist, c.patterns);
  const std::vector<Fault> defect{
      Fault::stem_sa(c.netlist.n_nets() / 3, false),
      Fault::stem_sa(c.netlist.n_nets() / 2, true)};
  c.log = datalog_from_defect(c.netlist, defect, c.patterns,
                              fsim.good_response());
  return c;
}

TEST(SoloCacheStress, ConcurrentReadersComputeEachSlotOnce) {
  const CacheCase c = make_case();
  ASSERT_TRUE(c.log.has_failures());
  DiagnosisContext ctx(c.netlist, c.patterns, c.log);
  const std::size_t n = ctx.n_candidates();
  ASSERT_GT(n, 0u);

  constexpr std::size_t kReaders = 8;
  // Every reader touches every slot, in a reader-specific order, and
  // records the address it saw.
  std::vector<std::vector<const ErrorSignature*>> seen(
      kReaders, std::vector<const ErrorSignature*>(n));
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t k = 0; k < n; ++k) {
        // Cyclic shift per reader: full coverage, staggered contention.
        const std::size_t i = (k + r * (n / kReaders)) % n;
        seen[r][i] = &ctx.solo_signature(i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Exactly one compute per slot, despite 8 racing readers.
  EXPECT_EQ(ctx.solo_compute_count(), n);
  // All readers saw the same cached object per slot.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t r = 1; r < kReaders; ++r)
      EXPECT_EQ(seen[r][i], seen[0][i]) << "slot " << i << " reader " << r;
}

TEST(SoloCacheStress, WarmThenReadDoesNotRecompute) {
  const CacheCase c = make_case();
  DiagnosisContext ctx(c.netlist, c.patterns, c.log);
  const std::size_t n = ctx.n_candidates();

  ctx.warm_solo_signatures(ExecPolicy::parallel(4));
  EXPECT_EQ(ctx.solo_compute_count(), n);

  // Addresses are stable and no slot recomputes on re-read or re-warm.
  std::vector<const ErrorSignature*> first(n);
  for (std::size_t i = 0; i < n; ++i) first[i] = &ctx.solo_signature(i);
  ctx.warm_solo_signatures(ExecPolicy::parallel(4));
  ctx.warm_solo_signatures(ExecPolicy::serial());
  EXPECT_EQ(ctx.solo_compute_count(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(&ctx.solo_signature(i), first[i]) << "slot " << i;
}

TEST(SoloCacheStress, PartiallyLazyThenParallelWarm) {
  const CacheCase c = make_case();
  DiagnosisContext ctx(c.netlist, c.patterns, c.log);
  const std::size_t n = ctx.n_candidates();
  ASSERT_GT(n, 2u);

  // Touch a few slots lazily first (the diagnoser access pattern)...
  const ErrorSignature* s0 = &ctx.solo_signature(0);
  const ErrorSignature* s1 = &ctx.solo_signature(n / 2);
  EXPECT_EQ(ctx.solo_compute_count(), 2u);

  // ...then a parallel warm fills only the remaining slots.
  ctx.warm_solo_signatures(ExecPolicy::parallel(4));
  EXPECT_EQ(ctx.solo_compute_count(), n);
  EXPECT_EQ(&ctx.solo_signature(0), s0);
  EXPECT_EQ(&ctx.solo_signature(n / 2), s1);
}

}  // namespace
}  // namespace mdd
