// Tests of the metrics registry and trace spans: histogram bin boundaries
// are inclusive upper bounds, counters stay exact under concurrent
// increments, registry handles are stable and kind-checked, the
// Prometheus exposition is well-formed, and nested trace spans record
// depth and duration. Builds into the tsan-labelled binary — the atomic
// instruments are exactly the surface that job checks.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdd::obs {
namespace {

TEST(Histogram, BinBoundariesAreInclusiveUpperBounds) {
  const std::array<double, 2> bounds{1.0, 10.0};
  Histogram h(bounds);
  ASSERT_EQ(h.n_bins(), 3u);  // two bounds + the implicit +Inf bin

  h.observe(0.5);   // <= 1.0        -> bin 0
  h.observe(1.0);   // le is inclusive -> bin 0
  h.observe(1.5);   // <= 10.0       -> bin 1
  h.observe(10.0);  //               -> bin 1
  h.observe(11.0);  // beyond bounds -> +Inf bin

  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  const std::array<double, 2> equal{1.0, 1.0};
  EXPECT_THROW(Histogram{equal}, std::invalid_argument);
  const std::array<double, 2> decreasing{2.0, 1.0};
  EXPECT_THROW(Histogram{decreasing}, std::invalid_argument);
}

TEST(Counter, ExactUnderConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Registry, SameNameReturnsSameHandleDifferentKindThrows) {
  Counter& a = registry().counter("obs_test.stable_handle");
  a.inc(3);
  Counter& b = registry().counter("obs_test.stable_handle");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(registry().gauge("obs_test.stable_handle"), std::logic_error);
  EXPECT_THROW(registry().latency("obs_test.stable_handle"),
               std::logic_error);
}

TEST(Registry, ConcurrentRegistrationAndUseIsSafe) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      // Resolve inside the thread: registration races are the point.
      Counter& c = registry().counter("obs_test.concurrent_reg");
      Histogram& h = registry().latency("obs_test.concurrent_hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 7));
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry().counter("obs_test.concurrent_reg").value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry().latency("obs_test.concurrent_hist").count(),
            kThreads * kPerThread);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  registry().counter("obs_test.snap_a").inc();
  registry().counter("obs_test.snap_b").inc(2);
  registry().gauge("obs_test.snap_gauge").set(-5);
  const Snapshot snap = registry().snapshot();

  bool found_a = false, found_b = false, found_gauge = false;
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  for (const CounterSample& c : snap.counters) {
    if (c.name == "obs_test.snap_a") found_a = c.value >= 1;
    if (c.name == "obs_test.snap_b") found_b = c.value >= 2;
  }
  for (const GaugeSample& g : snap.gauges)
    if (g.name == "obs_test.snap_gauge") found_gauge = g.value == -5;
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
  EXPECT_TRUE(found_gauge);
}

TEST(Prometheus, ExpositionIsWellFormedAndCumulative) {
  Snapshot snap;
  snap.counters.push_back({"server.requests.ok", 7});
  snap.gauges.push_back({"server.queue_depth", 3});
  HistogramSample h;
  h.name = "server.request_ms";
  h.bounds = {1.0, 10.0};
  h.bins = {2, 1, 1};  // +Inf bin last
  h.count = 4;
  h.sum = 15.5;
  snap.histograms.push_back(h);

  const std::string text = render_prometheus(snap);
  // Dots become underscores; no '.' may survive into a metric name.
  EXPECT_NE(text.find("server_requests_ok 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE server_requests_ok counter"),
            std::string::npos);
  EXPECT_NE(text.find("server_queue_depth 3"), std::string::npos);
  // Buckets are cumulative: 2, then 2+1, then the total in +Inf.
  EXPECT_NE(text.find("server_request_ms_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_ms_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_ms_count 4"), std::string::npos);
  EXPECT_NE(text.find("server_request_ms_sum 15.5"), std::string::npos);
}

TEST(Prometheus, RelabelPrependsTheLabelToEverySampleLine) {
  const std::string text =
      "# HELP m something\n"
      "# TYPE m counter\n"
      "m 3\n"
      "\n"
      "h_bucket{le=\"5\"} 3\n"
      "h_sum 1.5\n";
  const std::string relabeled = relabel_prometheus(text, "shard", "1");
  // Bare samples grow a label set; existing sets get the new label first.
  EXPECT_NE(relabeled.find("m{shard=\"1\"} 3"), std::string::npos)
      << relabeled;
  EXPECT_NE(relabeled.find("h_bucket{shard=\"1\",le=\"5\"} 3"),
            std::string::npos)
      << relabeled;
  EXPECT_NE(relabeled.find("h_sum{shard=\"1\"} 1.5"), std::string::npos);
  // Comments and blank lines pass through untouched.
  EXPECT_NE(relabeled.find("# HELP m something\n"), std::string::npos);
  EXPECT_NE(relabeled.find("# TYPE m counter\n"), std::string::npos);
  EXPECT_NE(relabeled.find("\n\n"), std::string::npos);
}

TEST(Prometheus, MergeLabelsShardsAndDeclaresEachTypeOnce) {
  const std::string shard0 =
      "# TYPE requests counter\n"
      "requests 10\n";
  const std::string shard1 =
      "# TYPE requests counter\n"
      "requests 32\n";
  const std::string merged =
      merge_prometheus({{"0", shard0}, {"1", shard1}}, "shard");

  EXPECT_NE(merged.find("requests{shard=\"0\"} 10"), std::string::npos)
      << merged;
  EXPECT_NE(merged.find("requests{shard=\"1\"} 32"), std::string::npos)
      << merged;
  // A valid exposition declares each metric once: the repeated TYPE
  // comment from shard 1 must be dropped.
  std::size_t type_lines = 0;
  for (std::size_t pos = merged.find("# TYPE requests counter");
       pos != std::string::npos;
       pos = merged.find("# TYPE requests counter", pos + 1))
    ++type_lines;
  EXPECT_EQ(type_lines, 1u) << merged;
}

TEST(Prometheus, MergedRegistryExpositionStaysParseable) {
  // End-to-end shape check on real registry output: every sample line in
  // the merged text must carry the shard label, mirroring what the
  // router's /metrics endpoint serves.
  registry().counter("obs_test.merge_e2e").inc(5);
  const std::string text = render_prometheus(registry().snapshot());
  const std::string merged =
      merge_prometheus({{"0", text}, {"router", text}});
  std::size_t pos = 0;
  while (pos < merged.size()) {
    std::size_t eol = merged.find('\n', pos);
    if (eol == std::string::npos) eol = merged.size();
    const std::string_view line(merged.data() + pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find("shard=\""), std::string_view::npos)
          << "unlabeled sample line: " << line;
    }
    pos = eol + 1;
  }
  EXPECT_NE(merged.find("obs_test_merge_e2e{shard=\"router\"} 5"),
            std::string::npos);
}

TEST(Trace, NestedSpansRecordDepthAndDuration) {
  Trace trace;
  {
    auto outer = trace.span("outer");
    { auto inner = trace.span("inner"); }
    { auto inner2 = trace.span("inner2"); }
  }
  { auto tail = trace.span("tail"); }

  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].stage, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].stage, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].stage, "inner2");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[3].stage, "tail");
  EXPECT_EQ(spans[3].depth, 0);
  for (const Trace::SpanRecord& s : spans) EXPECT_GE(s.ms, 0.0);
  // Nested spans live inside their parent, so the top-level total bounds
  // them and never exceeds the trace's own lifetime.
  EXPECT_GE(spans[0].ms, spans[1].ms + spans[2].ms - 1e-6);
  EXPECT_DOUBLE_EQ(trace.top_level_ms(), spans[0].ms + spans[3].ms);
  EXPECT_LE(trace.top_level_ms(), trace.ms_since_start() + 1e-6);
}

TEST(Trace, EarlyCloseFreezesDurationAndMoveTransfersOwnership) {
  Trace trace;
  auto span = trace.span("frozen");
  span.close();
  const double frozen = trace.spans()[0].ms;
  span.close();  // second close is a no-op
  EXPECT_DOUBLE_EQ(trace.spans()[0].ms, frozen);

  auto a = trace.span("moved");
  auto b = std::move(a);
  b.close();
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].stage, "moved");
}

}  // namespace
}  // namespace mdd::obs
