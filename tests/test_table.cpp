// Unit tests: text table formatting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/table.hpp"

namespace mdd {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"circuit", "gates"});
  t.add_row({"c17", "6"});
  t.add_row({"g20k", "20000"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| circuit | gates "), std::string::npos);
  EXPECT_NE(s.find("| c17 "), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| x |"), std::string::npos);
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.87349, 3), "0.873");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt_pct(0.873, 1), "87.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace mdd
