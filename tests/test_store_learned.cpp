// Workload-learned store growth: the store-miss journal (append, dedup,
// compact, hostile files), the refresh fold (byte-carry-over merge,
// rebuild-from-absent, journal reset), the composite spill (round trips,
// torn tails, identity checks, mid-flight corruption), and the
// CompositeMemo's memory → spill → compute ladder. Every hostile-input
// case must fail OPEN: sidecars are optimizations, never dependencies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/composite_memo.hpp"
#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"
#include "store/journal.hpp"
#include "store/reader.hpp"
#include "store/refresh.hpp"
#include "store/spill.hpp"
#include "store/writer.hpp"

namespace mdd::store {
namespace {

struct LearnedFixture {
  Netlist netlist;
  PatternSet patterns;
  std::uint64_t nh = 0;
  std::uint64_t ph = 0;
  std::string dir;

  /// A g200 session keyed into a fresh directory. With `build_store`, a
  /// bridge-free dictionary is prebuilt — so every bridge fault below is
  /// guaranteed to be outside the stored universe (a store miss).
  static LearnedFixture make(const std::string& tag, bool build_store) {
    LearnedFixture f{make_named_circuit("g200"), PatternSet(0, 0), 0, 0, {}};
    f.patterns = PatternSet::random(96, f.netlist.n_inputs(), 0xF01D);
    f.nh = netlist_content_hash(f.netlist);
    f.ph = patterns_content_hash(f.patterns);
    f.dir = ::testing::TempDir() + "learned_" + tag;
    std::filesystem::remove_all(f.dir);
    std::filesystem::create_directories(f.dir);
    if (build_store) {
      StoreUniverseConfig no_bridges;
      no_bridges.include_bridges = false;
      no_bridges.include_wired = false;
      const DictWriter writer(f.netlist, f.patterns);
      writer.write(store_path_for(f.dir, f.netlist, f.patterns),
                   default_store_universe(f.netlist, no_bridges));
    }
    return f;
  }

  std::string store_path() const {
    return store_path_for(dir, netlist, patterns);
  }
  std::string journal_path() const {
    return journal_path_for(dir, netlist, patterns);
  }
  std::string spill_path() const {
    return spill_path_for(dir, netlist, patterns);
  }

  /// Dominant bridges between valid nets — the kind of candidate the
  /// extractor invents and a sampled (here: empty) bridge universe lacks.
  std::vector<Fault> bridges(std::size_t n) const {
    std::vector<Fault> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(Fault::bridge_dom(
          static_cast<NetId>(netlist.n_nets() / 2 + i),
          static_cast<NetId>(netlist.n_nets() / 4 + i)));
    return out;
  }
};

TEST(Journal, RecordsDedupsAndReadsBack) {
  const LearnedFixture f = LearnedFixture::make("journal", false);
  const std::vector<Fault> faults = f.bridges(3);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    ASSERT_FALSE(journal.detached());
    EXPECT_EQ(journal.pending(), 0u);
    for (const Fault& x : faults) journal.record(x);
    journal.record(faults.front());  // duplicate: one line per fault
    EXPECT_EQ(journal.pending(), faults.size());
  }
  const JournalContents contents = read_journal(f.journal_path(), f.nh, f.ph);
  EXPECT_EQ(contents.faults, faults);
  EXPECT_EQ(contents.n_skipped, 0u);

  // Reopen: pre-existing entries must load into the dedup set, so a
  // restarted daemon does not re-journal what the file already holds.
  FaultJournal again(f.journal_path(), f.nh, f.ph);
  EXPECT_EQ(again.pending(), faults.size());
  again.record(faults[1]);
  EXPECT_EQ(again.pending(), faults.size());
}

TEST(Journal, WrongHashesRejectReadsAndDetachWriters) {
  const LearnedFixture f = LearnedFixture::make("journal_id", false);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    journal.record(f.bridges(1).front());
  }
  // Folding a journal into the wrong store would poison it: read throws.
  EXPECT_THROW(read_journal(f.journal_path(), f.nh + 1, f.ph), StoreError);
  EXPECT_THROW(read_journal(f.journal_path(), f.nh, f.ph ^ 1), StoreError);

  // The append side fails open instead: detached no-op, file untouched.
  FaultJournal wrong(f.journal_path(), f.nh + 1, f.ph);
  EXPECT_TRUE(wrong.detached());
  wrong.record(f.bridges(2).back());
  EXPECT_EQ(wrong.pending(), 0u);
  EXPECT_EQ(read_journal(f.journal_path(), f.nh, f.ph).faults.size(), 1u);
}

TEST(Journal, MalformedLinesAreSkippedNotFatal) {
  const LearnedFixture f = LearnedFixture::make("journal_torn", false);
  const std::vector<Fault> faults = f.bridges(2);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    for (const Fault& x : faults) journal.record(x);
  }
  {
    // A torn append plus assorted garbage after the good records.
    std::ofstream out(f.journal_path(), std::ios::app);
    out << "f 0 notanumber 0 0\n"
        << "unknown line\n"
        << "f 1 2 3";  // five fields required, torn at four
  }
  const JournalContents contents = read_journal(f.journal_path(), f.nh, f.ph);
  EXPECT_EQ(contents.faults, faults);
  EXPECT_EQ(contents.n_skipped, 3u);

  // The writer survives the same file: still attached, good lines loaded.
  FaultJournal journal(f.journal_path(), f.nh, f.ph);
  EXPECT_FALSE(journal.detached());
  EXPECT_EQ(journal.pending(), faults.size());
}

TEST(Journal, CompactKeepsUnfoldedRemainderAndDedupSet) {
  const LearnedFixture f = LearnedFixture::make("journal_compact", false);
  const std::vector<Fault> faults = f.bridges(3);
  FaultJournal journal(f.journal_path(), f.nh, f.ph);
  journal.record(faults[0]);
  journal.record(faults[1]);
  const std::vector<Fault> folded = journal.pending_faults();
  journal.record(faults[2]);  // lands between the snapshot and the fold

  journal.compact(folded);
  EXPECT_EQ(journal.pending_faults(), std::vector<Fault>{faults[2]});
  EXPECT_EQ(read_journal(f.journal_path(), f.nh, f.ph).faults,
            std::vector<Fault>{faults[2]});

  // Folded faults are store-served now; re-recording them must not
  // re-grow the file (the dedup set survives the compact).
  journal.record(faults[0]);
  EXPECT_EQ(journal.pending(), 1u);
}

TEST(Refresh, FoldCarriesExistingRecordsAndAddsNewFaultsByteIdentically) {
  const LearnedFixture f = LearnedFixture::make("fold", true);
  const std::vector<Fault> extra = f.bridges(4);
  const auto before = DictReader::open(f.store_path());
  const std::size_t n_before = before->n_entries();
  for (const Fault& x : extra) EXPECT_FALSE(before->find(x).has_value());

  const RefreshStats stats =
      fold_into_store(f.netlist, f.patterns, f.dir, extra);
  EXPECT_EQ(stats.n_offered, extra.size());
  EXPECT_EQ(stats.n_new, extra.size());
  EXPECT_EQ(stats.n_existing, n_before);
  EXPECT_EQ(stats.n_invalid, 0u);
  EXPECT_FALSE(stats.rebuilt);
  EXPECT_TRUE(stats.wrote);

  const auto after = DictReader::open(f.store_path());
  after->validate_for(f.netlist, f.patterns);
  ASSERT_EQ(after->n_entries(), n_before + extra.size());
  FaultSimulator fsim(f.netlist, f.patterns);
  for (const Fault& x : extra) {
    const auto idx = after->find(x);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(after->decode(*idx), fsim.signature(x));
  }
  // Every carried-over record must decode exactly as it did before the
  // fold — the merge moves bytes, never re-encodes them.
  for (std::size_t i = 0; i < n_before; ++i) {
    const auto idx = after->find(before->fault_at(i));
    ASSERT_TRUE(idx.has_value()) << "record " << i << " lost in the fold";
    EXPECT_EQ(after->decode(*idx), before->decode(i));
  }

  // Folding the same faults again is a healthy no-op: nothing rewritten.
  const RefreshStats again =
      fold_into_store(f.netlist, f.patterns, f.dir, extra);
  EXPECT_EQ(again.n_new, 0u);
  EXPECT_FALSE(again.wrote);
}

TEST(Refresh, InvalidOfferedFaultsAreCountedAndDropped) {
  const LearnedFixture f = LearnedFixture::make("fold_invalid", true);
  std::vector<Fault> extra = f.bridges(1);
  extra.push_back(Fault::bridge_dom(
      static_cast<NetId>(f.netlist.n_nets() + 7), 1));  // no such net
  extra.push_back(Fault::stem_sa(2, false));  // likely already stored

  const RefreshStats stats =
      fold_into_store(f.netlist, f.patterns, f.dir, extra);
  EXPECT_EQ(stats.n_offered, 3u);
  EXPECT_EQ(stats.n_invalid, 1u);
  EXPECT_EQ(stats.n_new, 1u);
  const auto dict = DictReader::open(f.store_path());
  EXPECT_NO_THROW(dict->validate_for(f.netlist, f.patterns));
  EXPECT_TRUE(dict->find(extra.front()).has_value());
}

TEST(Refresh, RefreshStoreFoldsTheJournalAndResetsIt) {
  const LearnedFixture f = LearnedFixture::make("refresh", true);

  // No journal yet: a healthy no-op, not an error.
  const RefreshStats idle = refresh_store(f.netlist, f.patterns, f.dir);
  EXPECT_EQ(idle.n_offered, 0u);
  EXPECT_FALSE(idle.wrote);

  const std::vector<Fault> learned = f.bridges(3);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    for (const Fault& x : learned) journal.record(x);
  }
  const RefreshStats stats = refresh_store(f.netlist, f.patterns, f.dir);
  EXPECT_EQ(stats.n_new, learned.size());
  EXPECT_TRUE(stats.wrote);
  const auto dict = DictReader::open(f.store_path());
  for (const Fault& x : learned) EXPECT_TRUE(dict->find(x).has_value());
  // Folded: the journal is reset to header-only, ready for new misses.
  EXPECT_TRUE(read_journal(f.journal_path(), f.nh, f.ph).faults.empty());

  // A journal keyed to a different store must never fold: hard error.
  {
    FaultJournal foreign(f.journal_path(), f.nh, f.ph);
  }
  std::ofstream(f.journal_path(), std::ios::trunc)
      << "mddj1 0000000000000bad 0000000000000bad\n";
  EXPECT_THROW(refresh_store(f.netlist, f.patterns, f.dir), StoreError);
}

TEST(Refresh, RebuildsFromDefaultUniverseWhenStoreAbsent) {
  const LearnedFixture f = LearnedFixture::make("rebuild", false);
  const std::vector<Fault> learned = f.bridges(2);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    for (const Fault& x : learned) journal.record(x);
  }
  const RefreshStats stats = refresh_store(f.netlist, f.patterns, f.dir);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_TRUE(stats.wrote);
  EXPECT_EQ(stats.n_new, learned.size());

  const auto dict = DictReader::open(f.store_path());
  EXPECT_NO_THROW(dict->validate_for(f.netlist, f.patterns));
  EXPECT_GT(dict->n_entries(), learned.size())
      << "rebuild must include the default universe, not just the journal";
  for (const Fault& x : learned) EXPECT_TRUE(dict->find(x).has_value());
}

/// A fault of the fixture circuit whose solo signature is non-empty —
/// spill round trips should exercise real postings, not the empty case.
Fault detected_fault(const LearnedFixture& f, FaultSimulator& fsim) {
  for (NetId n = 0; n < f.netlist.n_nets(); ++n) {
    const Fault candidate = Fault::stem_sa(n, false);
    if (!fsim.signature(candidate).empty()) return candidate;
  }
  ADD_FAILURE() << "no detectable fault in the fixture circuit";
  return Fault::stem_sa(0, false);
}

TEST(RefreshLock, SecondAcquirerSeesBusyUntilRelease) {
  const std::string lock_path =
      ::testing::TempDir() + "refresh_lock_excl.lock";
  RefreshLock first = RefreshLock::try_acquire_path(lock_path);
  ASSERT_TRUE(first.held());
  EXPECT_TRUE(first.may_fold());

  // flock is per open file description, so a second open in the same
  // process models a second worker process exactly.
  const RefreshLock second = RefreshLock::try_acquire_path(lock_path);
  EXPECT_EQ(second.state(), RefreshLock::State::busy);
  EXPECT_FALSE(second.held());
  EXPECT_FALSE(second.may_fold()) << "busy must mean: skip this round";

  first.release();
  const RefreshLock third = RefreshLock::try_acquire_path(lock_path);
  EXPECT_TRUE(third.held()) << "release must free the lock for reuse";
}

TEST(RefreshLock, UnusableLockFileFailsOpen) {
  // The lock is an optimization guard, never a dependency: if the lock
  // file cannot be created, folds proceed unguarded rather than stop.
  const RefreshLock lock = RefreshLock::try_acquire_path(
      ::testing::TempDir() + "no_such_dir_for_lock/x.lock");
  EXPECT_EQ(lock.state(), RefreshLock::State::unavailable);
  EXPECT_FALSE(lock.held());
  EXPECT_TRUE(lock.may_fold()) << "fail-open: unguarded, not blocked";
}

TEST(RefreshLock, RefreshStoreWaitsForTheHolder) {
  // Regression for the sharded-daemon lost-update race: refresh_store
  // must block on the holder and re-read journal + store after it
  // releases, so the holder's fold cannot be silently overwritten.
  const LearnedFixture f = LearnedFixture::make("lock_wait", true);
  const std::vector<Fault> learned = f.bridges(2);
  {
    FaultJournal journal(f.journal_path(), f.nh, f.ph);
    for (const Fault& x : learned) journal.record(x);
  }

  RefreshLock holder = RefreshLock::acquire_path(
      refresh_lock_path_for(f.dir, f.netlist, f.patterns));
  ASSERT_TRUE(holder.held());

  std::atomic<bool> folded{false};
  RefreshStats stats;
  std::thread refresher([&] {
    stats = refresh_store(f.netlist, f.patterns, f.dir);
    folded.store(true);
  });
  // Generous settle window: the refresher must still be parked on the
  // flock, not done, while we hold it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(folded.load())
      << "refresh_store must wait for the in-flight fold";

  holder.release();
  refresher.join();
  EXPECT_TRUE(folded.load());
  EXPECT_TRUE(stats.wrote);
  const auto dict = DictReader::open(f.store_path());
  for (const Fault& x : learned) EXPECT_TRUE(dict->find(x).has_value());
}

TEST(RefreshLock, SerializedFoldsLoseNoFaults) {
  // Two workers folding disjoint learned sets against one store: with
  // each fold under the lock, the second fold reads the first fold's
  // output, so both sets land. (Unserialized, both read version N and
  // the last rename silently drops the other fold — the audited race.)
  const LearnedFixture f = LearnedFixture::make("lock_serial", true);
  const std::string lock_path =
      refresh_lock_path_for(f.dir, f.netlist, f.patterns);
  const std::vector<Fault> set_a = f.bridges(2);
  std::vector<Fault> set_b;
  for (std::size_t i = 0; i < 2; ++i)
    set_b.push_back(Fault::bridge_dom(
        static_cast<NetId>(f.netlist.n_nets() / 2 + 10 + i),
        static_cast<NetId>(f.netlist.n_nets() / 4 + 10 + i)));

  std::thread worker_a([&] {
    const RefreshLock lock = RefreshLock::acquire_path(lock_path);
    ASSERT_TRUE(lock.may_fold());
    fold_into_store(f.netlist, f.patterns, f.dir, set_a);
  });
  std::thread worker_b([&] {
    const RefreshLock lock = RefreshLock::acquire_path(lock_path);
    ASSERT_TRUE(lock.may_fold());
    fold_into_store(f.netlist, f.patterns, f.dir, set_b);
  });
  worker_a.join();
  worker_b.join();

  const auto dict = DictReader::open(f.store_path());
  for (const Fault& x : set_a)
    EXPECT_TRUE(dict->find(x).has_value()) << "worker A's fold was lost";
  for (const Fault& x : set_b)
    EXPECT_TRUE(dict->find(x).has_value()) << "worker B's fold was lost";
}

TEST(Spill, PutGetRoundTripsAcrossReopen) {
  const LearnedFixture f = LearnedFixture::make("spill", false);
  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const std::vector<Fault> members{seed, Fault::stem_sa(seed.net, true)};
  const ErrorSignature sig = fsim.signature(seed);
  const std::vector<Fault> other{seed};
  const ErrorSignature empty(f.patterns.n_patterns(), f.netlist.n_outputs());
  const std::size_t window = f.patterns.n_patterns();
  {
    CompositeSpill spill(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                         f.netlist.n_outputs(), 0);
    ASSERT_FALSE(spill.detached());
    EXPECT_FALSE(spill.get(members, window).has_value());
    spill.put(members, window, sig);
    spill.put(other, window, empty);  // undetected composites store too
    const auto got = spill.get(members, window);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, sig);

    spill.put(members, window, sig);  // duplicate key: declined, not grown
    const SpillStats s = spill.stats();
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.declined, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
  }
  // Reopen (a restart): the scan re-indexes both records byte-for-byte.
  CompositeSpill again(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                       f.netlist.n_outputs(), 0);
  EXPECT_EQ(again.stats().entries, 2u);
  EXPECT_EQ(again.stats().dropped, 0u);
  const auto a = again.get(members, window);
  const auto b = again.get(other, window);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, sig);
  EXPECT_EQ(*b, empty);
  EXPECT_TRUE(b->empty());
}

TEST(Spill, TornTailIsTruncatedAndEarlierRecordsStillServe) {
  const LearnedFixture f = LearnedFixture::make("spill_torn", false);
  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const std::vector<Fault> members{seed};
  const ErrorSignature sig = fsim.signature(seed);
  const std::size_t window = f.patterns.n_patterns();
  {
    CompositeSpill spill(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                         f.netlist.n_outputs(), 0);
    spill.put(members, window, sig);
  }
  const auto good_size = std::filesystem::file_size(f.spill_path());
  {
    // A crash mid-append: stray bytes after the last complete record.
    std::ofstream out(f.spill_path(), std::ios::binary | std::ios::app);
    out << "torn!";
  }
  CompositeSpill spill(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                       f.netlist.n_outputs(), 0);
  ASSERT_FALSE(spill.detached());
  EXPECT_EQ(spill.stats().dropped, 1u);
  EXPECT_EQ(spill.stats().entries, 1u);
  const auto got = spill.get(members, window);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sig);
  // The torn bytes are gone so the next append lands on a boundary.
  EXPECT_EQ(std::filesystem::file_size(f.spill_path()), good_size);
}

TEST(Spill, WrongIdentityOrBadHeaderDetachesFailOpen) {
  const LearnedFixture f = LearnedFixture::make("spill_id", false);
  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const std::vector<Fault> members{seed};
  const ErrorSignature sig = fsim.signature(seed);
  const std::size_t window = f.patterns.n_patterns();
  {
    CompositeSpill spill(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                         f.netlist.n_outputs(), 0);
    spill.put(members, window, sig);
  }
  // Different netlist hash: a spill for some other circuit — detach, and
  // every operation is a quiet no-op.
  CompositeSpill wrong(f.spill_path(), f.nh + 1, f.ph,
                       f.patterns.n_patterns(), f.netlist.n_outputs(), 0);
  EXPECT_TRUE(wrong.detached());
  EXPECT_FALSE(wrong.get(members, window).has_value());
  wrong.put(members, window, sig);
  EXPECT_EQ(wrong.stats().writes, 0u);

  {
    // Corrupt magic: the whole file is untrustworthy.
    std::fstream file(f.spill_path(),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(0);
    file.put('X');
  }
  CompositeSpill corrupt(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                         f.netlist.n_outputs(), 0);
  EXPECT_TRUE(corrupt.detached());
}

TEST(Spill, MidFlightCorruptionDetachesInsteadOfServingBadBits) {
  const LearnedFixture f = LearnedFixture::make("spill_flip", false);
  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const std::vector<Fault> members{seed};
  const ErrorSignature sig = fsim.signature(seed);
  ASSERT_FALSE(sig.empty());
  const std::size_t window = f.patterns.n_patterns();
  CompositeSpill spill(f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
                       f.netlist.n_outputs(), 0);
  spill.put(members, window, sig);
  {
    // The file changes under the open instance (posting byte flipped):
    // the pread-side checksum must catch it.
    std::fstream file(f.spill_path(),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-1, std::ios::end);
    const char byte = static_cast<char>(file.peek() ^ 0x40);
    file.seekp(-1, std::ios::end);
    file.put(byte);
  }
  EXPECT_FALSE(spill.get(members, window).has_value());
  EXPECT_TRUE(spill.detached());
}

TEST(CompositeMemoSpill, DiskTierServesAcrossMemoInstances) {
  const LearnedFixture f = LearnedFixture::make("memo_spill", false);
  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const std::vector<Fault> members{seed, Fault::stem_sa(seed.net, true)};
  const auto sig =
      std::make_shared<const ErrorSignature>(fsim.signature(seed));
  const CompositeKey key(members, f.patterns.n_patterns());

  auto spill = std::make_shared<CompositeSpill>(
      f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
      f.netlist.n_outputs(), 0);
  {
    CompositeMemo memo;
    memo.set_spill(spill);
    EXPECT_EQ(memo.lookup(key), nullptr);
    EXPECT_EQ(memo.stats().spill_misses, 1u);
    memo.store(key, sig);  // writes through to disk
    EXPECT_NE(memo.lookup(key), nullptr);
    EXPECT_EQ(memo.stats().hits, 1u);
  }
  EXPECT_EQ(spill->stats().writes, 1u);

  // A fresh memo (restart, or the entry was evicted): the spill answers,
  // the composite is never re-propagated, and the hit promotes back into
  // the memory tier.
  CompositeMemo fresh;
  fresh.set_spill(spill);
  const auto from_disk = fresh.lookup(key);
  ASSERT_NE(from_disk, nullptr);
  EXPECT_EQ(*from_disk, *sig);
  const CompositeMemoStats stats = fresh.stats();
  EXPECT_EQ(stats.spill_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u) << "a spill hit is a served lookup, not a miss";
  const auto promoted = fresh.lookup(key);
  EXPECT_EQ(promoted.get(), from_disk.get())
      << "the second lookup must be the promoted in-memory object";
}

TEST(CompositeMemoSpill, DetachedSpillLeavesTheMemoFullyFunctional) {
  const LearnedFixture f = LearnedFixture::make("memo_spill_detached", false);
  std::ofstream(f.spill_path()) << "not a spill file";
  auto spill = std::make_shared<CompositeSpill>(
      f.spill_path(), f.nh, f.ph, f.patterns.n_patterns(),
      f.netlist.n_outputs(), 0);
  EXPECT_TRUE(spill->detached());

  FaultSimulator fsim(f.netlist, f.patterns);
  const Fault seed = detected_fault(f, fsim);
  const CompositeKey key(std::vector<Fault>{seed}, f.patterns.n_patterns());
  CompositeMemo memo;
  memo.set_spill(spill);
  EXPECT_EQ(memo.lookup(key), nullptr);
  memo.store(key,
             std::make_shared<const ErrorSignature>(fsim.signature(seed)));
  EXPECT_NE(memo.lookup(key), nullptr) << "memory tier must keep working";
}

}  // namespace
}  // namespace mdd::store
