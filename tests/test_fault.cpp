// Unit tests: fault models, universe generation, composite injection.
#include <gtest/gtest.h>

#include <random>

#include "fault/fault.hpp"
#include "fault/inject.hpp"
#include "netlist/generator.hpp"
#include "sim/sim2.hpp"
#include "sim/sim3.hpp"

namespace mdd {
namespace {

TEST(Fault, Constructors) {
  const Fault s = Fault::stem_sa(3, true);
  EXPECT_EQ(s.kind, FaultKind::StuckAt1);
  EXPECT_TRUE(s.is_stuck_at());
  EXPECT_TRUE(s.stuck_value());
  EXPECT_EQ(s.pin, kStemPin);

  const Fault b = Fault::branch_sa(5, 1, false);
  EXPECT_EQ(b.pin, 1u);
  EXPECT_FALSE(b.stuck_value());

  const Fault d = Fault::bridge_dom(2, 9);
  EXPECT_TRUE(d.is_bridge());
  EXPECT_EQ(d.net, 2u);        // victim
  EXPECT_EQ(d.bridge_net, 9u);  // aggressor

  const Fault w = Fault::bridge_wand(9, 2);
  EXPECT_EQ(w.net, 2u);  // normalized
  EXPECT_EQ(w.bridge_net, 9u);
}

TEST(Fault, ToString) {
  const Netlist nl = make_c17();
  EXPECT_EQ(to_string(Fault::stem_sa(nl.find_net("16"), false), nl),
            "SA0 16");
  EXPECT_EQ(to_string(Fault::bridge_dom(nl.find_net("16"),
                                        nl.find_net("10")),
                      nl),
            "BR-DOM 10->16");
  const std::string branch =
      to_string(Fault::branch_sa(nl.find_net("16"), 1, true), nl);
  EXPECT_NE(branch.find("16.pin1"), std::string::npos);
  EXPECT_NE(branch.find("(11)"), std::string::npos);
}

TEST(Fault, Validation) {
  const Netlist nl = make_c17();
  EXPECT_NO_THROW(validate_fault(Fault::stem_sa(0, false), nl));
  EXPECT_THROW(validate_fault(Fault::stem_sa(1000, false), nl),
               std::invalid_argument);
  EXPECT_THROW(validate_fault(Fault::branch_sa(nl.find_net("16"), 7, false),
                              nl),
               std::invalid_argument);
  EXPECT_THROW(validate_fault(Fault::bridge_dom(3, 3), nl),
               std::invalid_argument);
  EXPECT_THROW(validate_fault(Fault::bridge_dom(3, 1000), nl),
               std::invalid_argument);
}

TEST(Fault, StuckAtUniverseCount) {
  const Netlist nl = make_c17();
  const auto faults = all_stuck_at_faults(nl);
  // 11 nets * 2 stems + branch faults on pins fed by multi-fanout stems.
  // Multi-fanout stems in c17: 3 (feeds 10,11), 11 (feeds 16,19),
  // 16 (feeds 22,23) -> 6 branch pins * 2 polarities = 12.
  EXPECT_EQ(faults.size(), 11u * 2 + 12u);
  for (const Fault& f : faults) EXPECT_NO_THROW(validate_fault(f, nl));
}

TEST(Fault, FeedbackPairDetection) {
  const Netlist nl = make_c17();
  // 11 feeds 16 -> feedback pair.
  EXPECT_TRUE(is_feedback_pair(nl, nl.find_net("11"), nl.find_net("16")));
  EXPECT_TRUE(is_feedback_pair(nl, nl.find_net("16"), nl.find_net("11")));
  // 10 and 19 are independent.
  EXPECT_FALSE(is_feedback_pair(nl, nl.find_net("10"), nl.find_net("19")));
  // PI 1 reaches 22.
  EXPECT_TRUE(is_feedback_pair(nl, nl.find_net("1"), nl.find_net("22")));
}

TEST(Fault, BridgeSamplingIsCleanAndDeterministic) {
  const Netlist nl = make_named_circuit("g200");
  BridgeUniverseConfig cfg;
  cfg.count = 20;
  cfg.seed = 5;
  const auto a = sample_bridge_faults(nl, cfg);
  const auto b = sample_bridge_faults(nl, cfg);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 20u);  // 4 faults per accepted pair
  for (const Fault& f : a) {
    EXPECT_TRUE(f.is_bridge());
    EXPECT_NO_THROW(validate_fault(f, nl));
    EXPECT_FALSE(is_feedback_pair(nl, f.net, f.bridge_net))
        << to_string(f, nl);
  }
}

// ---- FaultyMachine ---------------------------------------------------------

TEST(FaultyMachine, EmptyFaultSetEqualsGoodMachine) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet stimuli = PatternSet::random(200, nl.n_inputs(), 9);
  FaultyMachine fm(nl);
  fm.set_faults({});
  EXPECT_EQ(fm.simulate(stimuli), simulate(nl, stimuli));
  EXPECT_TRUE(fm.converged());
}

TEST(FaultyMachine, StemStuckAt) {
  const Netlist nl = make_c17();
  // All-ones input: 11 = NAND(3,6) = 0; with 11 SA1: 16 = NAND(2,11) -> 0,
  // 19 = NAND(11,7) -> 0, 22 = NAND(10,16) -> 1, 23 = NAND(16,19) -> 1.
  PatternSet ps(1, 5);
  for (int i = 0; i < 5; ++i) ps.set(0, i, true);
  const Fault f = Fault::stem_sa(nl.find_net("11"), true);
  FaultyMachine fm(nl);
  fm.set_faults({&f, 1});
  fm.run(ps, 0);
  EXPECT_EQ(fm.value(nl.find_net("11")) & 1u, 1u);
  EXPECT_EQ(fm.value(nl.find_net("16")) & 1u, 0u);
  EXPECT_EQ(fm.value(nl.find_net("22")) & 1u, 1u);
  EXPECT_EQ(fm.value(nl.find_net("23")) & 1u, 1u);
}

TEST(FaultyMachine, BranchStuckAtIsLocal) {
  const Netlist nl = make_c17();
  PatternSet ps(1, 5);
  for (int i = 0; i < 5; ++i) ps.set(0, i, true);
  // Branch 16.pin1 (from 11) SA1: 16 flips to 0, but 19 still sees 11=0.
  const Fault f = Fault::branch_sa(nl.find_net("16"), 1, true);
  FaultyMachine fm(nl);
  fm.set_faults({&f, 1});
  fm.run(ps, 0);
  EXPECT_EQ(fm.value(nl.find_net("11")) & 1u, 0u);  // stem unchanged
  EXPECT_EQ(fm.value(nl.find_net("16")) & 1u, 0u);  // NAND(1, forced 1)
  EXPECT_EQ(fm.value(nl.find_net("19")) & 1u, 1u);  // NAND(0, 1) = 1
}

TEST(FaultyMachine, DominantBridgeForcesVictim) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  const NetId victim = nl.find_net("10");
  const NetId aggressor = nl.find_net("19");  // later in topo order!
  ASSERT_GT(nl.level(aggressor), nl.level(victim));
  const Fault f = Fault::bridge_dom(victim, aggressor);
  FaultyMachine fm(nl);
  fm.set_faults({&f, 1});
  const PatternSet good = simulate(nl, stimuli);

  // Reference: victim value must equal the aggressor's *faulty-machine*
  // value everywhere; since the aggressor is not downstream of the victim,
  // that equals its good value.
  BlockSim gs(nl);
  for (std::size_t b = 0; b < stimuli.n_blocks(); ++b) {
    gs.run(stimuli, b);
    fm.run(stimuli, b);
    EXPECT_TRUE(fm.converged());
    const Word mask = stimuli.valid_mask(b);
    EXPECT_EQ(fm.value(victim) & mask, gs.value(aggressor) & mask);
  }
}

TEST(FaultyMachine, WiredBridges) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  const NetId a = nl.find_net("10"), b = nl.find_net("19");
  BlockSim gs(nl);
  gs.run(stimuli, 0);
  const Word va = gs.value(a), vb = gs.value(b);
  const Word mask = stimuli.valid_mask(0);

  FaultyMachine fm(nl);
  const Fault wand = Fault::bridge_wand(a, b);
  fm.set_faults({&wand, 1});
  fm.run(stimuli, 0);
  EXPECT_EQ(fm.value(a) & mask, (va & vb) & mask);
  EXPECT_EQ(fm.value(b) & mask, (va & vb) & mask);

  const Fault wor = Fault::bridge_wor(a, b);
  fm.set_faults({&wor, 1});
  fm.run(stimuli, 0);
  EXPECT_EQ(fm.value(a) & mask, (va | vb) & mask);
  EXPECT_EQ(fm.value(b) & mask, (va | vb) & mask);
}

TEST(FaultyMachine, MultipleFaultsMask) {
  // Hand-built masking: z = AND(a, b); fault1 = a SA0, fault2 = z SA0.
  // Alone, each flips z on pattern a=b=1. Together the response equals the
  // single z-SA0 response: fault1 is masked by fault2.
  Netlist nl("mask");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId z = nl.add_gate(GateKind::And, {a, b}, "z");
  nl.mark_output(z);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(2);

  const Fault f1 = Fault::stem_sa(a, false);
  const Fault f2 = Fault::stem_sa(z, false);
  const std::vector<Fault> both{f1, f2};
  const PatternSet r_both = simulate_with_faults(nl, both, stimuli);
  const PatternSet r_f2 = simulate_with_faults(nl, {&f2, 1}, stimuli);
  EXPECT_EQ(r_both, r_f2);
}

TEST(FaultyMachine, MultipleFaultsCompose) {
  // Two independent cones: each fault shows on its own output only;
  // composite shows both.
  Netlist nl("compose");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_gate(GateKind::Not, {a}, "x");
  const NetId y = nl.add_gate(GateKind::Not, {b}, "y");
  nl.mark_output(x);
  nl.mark_output(y);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(2);
  const PatternSet good = simulate(nl, stimuli);

  const std::vector<Fault> both{Fault::stem_sa(x, false),
                                Fault::stem_sa(y, true)};
  const PatternSet r = simulate_with_faults(nl, both, stimuli);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(r.get(p, 0));
    EXPECT_TRUE(r.get(p, 1));
  }
}

TEST(FaultyMachine, StuckAtWinsOverBridge) {
  Netlist nl("prio");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_gate(GateKind::Buf, {a}, "x");
  const NetId y = nl.add_gate(GateKind::Buf, {b}, "y");
  nl.mark_output(x);
  nl.mark_output(y);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(2);
  // x bridged from y, but x also hard SA0: SA0 must win.
  const std::vector<Fault> faults{Fault::bridge_dom(x, y),
                                  Fault::stem_sa(x, false)};
  const PatternSet r = simulate_with_faults(nl, faults, stimuli);
  for (std::size_t p = 0; p < 4; ++p) EXPECT_FALSE(r.get(p, 0));
}

TEST(FaultyMachine, BridgeChainConverges) {
  // victim2 <- victim1 <- aggressor, with victims earlier in topo order.
  Netlist nl("chain");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId v2 = nl.add_gate(GateKind::Buf, {a}, "v2");
  const NetId v1 = nl.add_gate(GateKind::Buf, {b}, "v1");
  const NetId agg = nl.add_gate(GateKind::Not, {b}, "agg");
  nl.mark_output(v2);
  nl.mark_output(v1);
  nl.mark_output(agg);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(2);
  const std::vector<Fault> faults{Fault::bridge_dom(v1, agg),
                                  Fault::bridge_dom(v2, v1)};
  FaultyMachine fm(nl);
  fm.set_faults(faults);
  const PatternSet r = fm.simulate(stimuli);
  EXPECT_TRUE(fm.converged());
  for (std::size_t p = 0; p < 4; ++p) {
    const bool agg_val = !((p >> 1) & 1);
    EXPECT_EQ(r.get(p, 1), agg_val);  // v1 = agg
    EXPECT_EQ(r.get(p, 0), agg_val);  // v2 = v1 = agg
  }
}

TEST(FaultyMachine, RejectsInvalidFault) {
  const Netlist nl = make_c17();
  FaultyMachine fm(nl);
  const Fault bad = Fault::stem_sa(1000, false);
  EXPECT_THROW(fm.set_faults({&bad, 1}), std::invalid_argument);
}

/// Property: injecting a single stem SA0/SA1 equals forcing the net in a
/// reference simulation (brute force over random circuits).
TEST(FaultyMachine, SingleStemMatchesBruteForce) {
  RandomCircuitConfig cfg;
  cfg.n_inputs = 10;
  cfg.n_gates = 80;
  cfg.n_outputs = 5;
  cfg.seed = 321;
  const Netlist nl = make_random_circuit(cfg);
  const PatternSet stimuli = PatternSet::random(64, nl.n_inputs(), 4);
  FaultyMachine fm(nl);
  Scalar3Sim ref(nl);
  std::mt19937_64 rng(8);
  for (int iter = 0; iter < 30; ++iter) {
    const NetId n = rng() % nl.n_nets();
    const bool v = rng() & 1;
    const Fault f = Fault::stem_sa(n, v);
    fm.set_faults({&f, 1});
    fm.run(stimuli, 0);
    const std::size_t p = rng() % 64;
    ref.reset();
    for (std::size_t i = 0; i < nl.n_inputs(); ++i)
      ref.set_input(i, v3_from_bool(stimuli.get(p, i)));
    ref.set_override(n, v3_from_bool(v));
    ref.run();
    for (NetId m = 0; m < nl.n_nets(); ++m) {
      ASSERT_EQ(v3_from_bool((fm.value(m) >> p) & 1u), ref.value(m))
          << "iter " << iter << " net " << nl.net_name(m);
    }
  }
}

}  // namespace
}  // namespace mdd
