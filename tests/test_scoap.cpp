// Unit tests: SCOAP testability analysis.
#include <gtest/gtest.h>

#include "atpg/scoap.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

TEST(Scoap, PrimaryInputs) {
  const Netlist nl = make_c17();
  const Scoap s = compute_scoap(nl);
  for (NetId i : nl.inputs()) {
    EXPECT_EQ(s.cc0[i], 1u);
    EXPECT_EQ(s.cc1[i], 1u);
  }
}

TEST(Scoap, AndGateRules) {
  Netlist nl("and");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId z = nl.add_gate(GateKind::And, {a, b}, "z");
  nl.mark_output(z);
  nl.finalize();
  const Scoap s = compute_scoap(nl);
  EXPECT_EQ(s.cc1[z], 3u);  // both inputs 1: 1+1+1
  EXPECT_EQ(s.cc0[z], 2u);  // one input 0: 1+1
  EXPECT_EQ(s.co[z], 0u);   // is a PO
  // Observing `a` needs b=1: co(z)+cc1(b)+1 = 2.
  EXPECT_EQ(s.co[a], 2u);
}

TEST(Scoap, InverterSwapsControllability) {
  Netlist nl("inv");
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_gate(GateKind::Not, {a}, "z");
  nl.mark_output(z);
  nl.finalize();
  const Scoap s = compute_scoap(nl);
  EXPECT_EQ(s.cc0[z], s.cc1[a] + 1);
  EXPECT_EQ(s.cc1[z], s.cc0[a] + 1);
  EXPECT_EQ(s.co[a], 1u);
}

TEST(Scoap, TieCellsOneSidedControllable) {
  Netlist nl("tie");
  const NetId t0 = nl.add_gate(GateKind::Const0, {}, "t0");
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_gate(GateKind::Or, {t0, a}, "z");
  nl.mark_output(z);
  nl.finalize();
  const Scoap s = compute_scoap(nl);
  EXPECT_LT(s.cc0[t0], Scoap::kInf);
  EXPECT_GE(s.cc1[t0], Scoap::kInf);  // cannot drive a tie-0 to 1
}

TEST(Scoap, XorBothValuesReachable) {
  const Netlist nl = make_parity_tree(8);
  const Scoap s = compute_scoap(nl);
  const NetId out = nl.outputs()[0];
  EXPECT_LT(s.cc0[out], Scoap::kInf);
  EXPECT_LT(s.cc1[out], Scoap::kInf);
  // Deeper XOR levels cost more.
  EXPECT_GT(s.cc0[out], s.cc0[nl.inputs()[0]]);
}

TEST(Scoap, DistanceFromOutputsIncreasesObservationCost) {
  const Netlist nl = make_ripple_adder(8);
  const Scoap s = compute_scoap(nl);
  // Early carries must propagate through the rest of the chain (their
  // direct sum outputs aside, the carry path itself gets longer), so the
  // chain head is never cheaper to observe than the tail.
  const NetId cy0 = nl.find_net("cy_0");
  const NetId cy6 = nl.find_net("cy_6");
  ASSERT_NE(cy0, kNoNet);
  ASSERT_NE(cy6, kNoNet);
  EXPECT_GE(s.co[cy0], s.co[cy6]);
  EXPECT_LT(s.co[cy0], Scoap::kInf);
  // Controllability through the XOR sum path grows with bit position.
  EXPECT_LT(s.cc1[nl.find_net("axb_0")], Scoap::kInf);
}

TEST(Scoap, ObservabilityFiniteIffReachesOutput) {
  const Netlist nl = make_named_circuit("g200");
  const Scoap s = compute_scoap(nl);
  for (NetId n = 0; n < nl.n_nets(); ++n) {
    const bool reaches = !nl.reachable_outputs(n).empty();
    EXPECT_EQ(s.co[n] < Scoap::kInf, reaches) << nl.net_name(n);
  }
}

TEST(Scoap, TestEffortCombines) {
  const Netlist nl = make_c17();
  const Scoap s = compute_scoap(nl);
  const NetId n16 = nl.find_net("16");
  EXPECT_EQ(s.test_effort(n16, false), s.cc1[n16] + s.co[n16]);
}

}  // namespace
}  // namespace mdd
