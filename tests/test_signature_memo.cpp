// Regression tests for SignatureMemo admission under budget pressure. The
// original memo stopped admitting permanently once full: a diagnosis
// session whose early requests filled the budget could never memoize the
// faults its later (hotter) requests kept recomputing. The memo now runs
// second-chance (clock) eviction — these tests pin down admission after
// fill-up, survival of referenced entries, exact byte accounting, and
// bounded concurrent behavior (this file builds into the tsan-labelled
// binary).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "server/signature_memo.hpp"

namespace mdd::server {
namespace {

/// Window length shared by the fixed-shape signatures below — entries are
/// keyed by (fault, window) now, so the tests name it explicitly.
constexpr std::size_t kWindow = 64;

/// Identically-shaped signatures so every memo entry has the same cost —
/// the eviction arithmetic in the tests stays exact.
std::shared_ptr<const ErrorSignature> make_signature(std::size_t n_failing) {
  auto sig = std::make_shared<ErrorSignature>(kWindow, 4);
  const std::vector<Word> mask(sig->n_po_words(), Word{1});
  for (std::size_t p = 0; p < n_failing; ++p)
    sig->append(static_cast<std::uint32_t>(p), mask);
  return sig;
}

Fault nth_fault(std::size_t n) {
  return Fault::stem_sa(static_cast<std::uint32_t>(n), (n & 1) != 0);
}

/// Budget that fits exactly `n` entries of `cost` bytes.
std::size_t budget_for(std::size_t n, std::size_t cost) { return n * cost; }

std::size_t one_entry_cost() {
  SignatureMemo probe(1 << 20);
  probe.store(nth_fault(0), kWindow, make_signature(8));
  return probe.stats().approx_bytes;
}

TEST(SignatureMemo, AdmitsNewEntriesAfterFillingUp) {
  const std::size_t cost = one_entry_cost();
  ASSERT_GT(cost, 0u);
  SignatureMemo memo(budget_for(4, cost));

  // Fill the budget exactly, then keep storing: before the eviction fix
  // the memo silently declined everything from here on, so the "hot"
  // fault below would never be admitted.
  for (std::size_t i = 0; i < 8; ++i)
    memo.store(nth_fault(i), kWindow, make_signature(8));

  const Fault hot = nth_fault(100);
  memo.store(hot, kWindow, make_signature(8));
  EXPECT_NE(memo.lookup(hot, kWindow), nullptr)
      << "a full memo must evict cold entries, not decline new ones";

  const SignatureMemoStats stats = memo.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_LE(stats.approx_bytes, budget_for(4, cost));
}

TEST(SignatureMemo, SecondChanceSparesRecentlyUsedEntries) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(4, cost));
  for (std::size_t i = 0; i < 4; ++i)
    memo.store(nth_fault(i), kWindow, make_signature(8));

  // Reference entry 0; the clock hand must then clear its bit and pass
  // over it, evicting the first unreferenced entry (entry 1) instead.
  EXPECT_NE(memo.lookup(nth_fault(0), kWindow), nullptr);
  memo.store(nth_fault(4), kWindow, make_signature(8));

  EXPECT_NE(memo.lookup(nth_fault(0), kWindow), nullptr);
  EXPECT_EQ(memo.lookup(nth_fault(1), kWindow), nullptr);
  EXPECT_NE(memo.lookup(nth_fault(4), kWindow), nullptr);
}

TEST(SignatureMemo, ByteAccountingIsExactAcrossEvictions) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(3, cost));
  for (std::size_t i = 0; i < 10; ++i) {
    memo.store(nth_fault(i), kWindow, make_signature(8));
    const SignatureMemoStats stats = memo.stats();
    EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
    EXPECT_LE(stats.approx_bytes, budget_for(3, cost));
  }
  EXPECT_EQ(memo.stats().entries, 3u);
}

TEST(SignatureMemo, OversizedEntryIsDeclinedOutright) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(cost / 2);
  memo.store(nth_fault(0), kWindow, make_signature(8));
  EXPECT_EQ(memo.lookup(nth_fault(0), kWindow), nullptr);
  EXPECT_EQ(memo.stats().entries, 0u);
  EXPECT_EQ(memo.stats().approx_bytes, 0u);
}

TEST(SignatureMemo, DuplicateStoreKeepsFirstEntryAndAccounting) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(4, cost));
  const auto first = make_signature(8);
  memo.store(nth_fault(0), kWindow, first);
  memo.store(nth_fault(0), kWindow, make_signature(8));  // racing compute, same fault
  EXPECT_EQ(memo.lookup(nth_fault(0), kWindow).get(), first.get());
  EXPECT_EQ(memo.stats().entries, 1u);
  EXPECT_EQ(memo.stats().approx_bytes, cost);
}

TEST(SignatureMemo, ConcurrentChurnStaysWithinBudget) {
  const std::size_t cost = one_entry_cost();
  const std::size_t budget = budget_for(6, cost);
  SignatureMemo memo(budget);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&memo, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Fault f = nth_fault(static_cast<std::size_t>((t * 7 + i) % 32));
        if (auto sig = memo.lookup(f, kWindow)) {
          // Entries are immutable once stored; a hit must stay readable.
          EXPECT_EQ(sig->n_failing_patterns(), 8u);
        } else {
          memo.store(f, kWindow, make_signature(8));
        }
      }
    });
  for (std::thread& t : threads) t.join();

  const SignatureMemoStats stats = memo.stats();
  EXPECT_LE(stats.approx_bytes, budget);
  EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(SignatureMemo, WindowsKeySeparateEntries) {
  SignatureMemo memo(1 << 20);
  const Fault f = nth_fault(0);
  const auto full = make_signature(8);
  memo.store(f, kWindow, full);

  // A different (shorter) window is a different key — the full-window
  // entry must never be returned AS-IS for it...
  auto short_sig = std::make_shared<ErrorSignature>(kWindow / 2, 4);
  memo.store(f, kWindow / 2, short_sig);
  EXPECT_EQ(memo.lookup(f, kWindow / 2).get(), short_sig.get());
  EXPECT_EQ(memo.lookup(f, kWindow).get(), full.get());
  EXPECT_EQ(memo.stats().entries, 2u);
}

TEST(SignatureMemo, TruncatedLookupRestrictsFullWindowEntry) {
  // Memo built knowing the session's full window: a miss on (f, short)
  // falls back to restricting the (f, full) entry, byte-identical to a
  // fresh simulation over the short window (shape included).
  SignatureMemo memo(1 << 20, kWindow);
  const Fault f = nth_fault(3);
  memo.store(f, kWindow, make_signature(8));  // failing patterns 0..7

  const std::size_t short_window = 5;
  auto restricted = memo.lookup(f, short_window);
  ASSERT_NE(restricted, nullptr);
  EXPECT_EQ(restricted->n_patterns(), short_window);
  EXPECT_EQ(restricted->n_failing_patterns(), 5u);  // patterns 0..4 kept
  EXPECT_EQ(memo.stats().window_restricts, 1u);

  // The restricted result is admitted under its exact key: the next
  // lookup is a pointer copy, no second restriction.
  EXPECT_EQ(memo.lookup(f, short_window).get(), restricted.get());
  EXPECT_EQ(memo.stats().window_restricts, 1u);

  // Unknown faults still miss.
  EXPECT_EQ(memo.lookup(nth_fault(99), short_window), nullptr);
}

TEST(SignatureMemo, UnknownFullWindowServesExactKeysOnly) {
  SignatureMemo memo(1 << 20);  // full window unknown (0)
  const Fault f = nth_fault(1);
  memo.store(f, kWindow, make_signature(8));
  EXPECT_EQ(memo.lookup(f, kWindow / 2), nullptr)
      << "without a known full window the memo must not guess which "
         "entry is restrictable";
}

}  // namespace
}  // namespace mdd::server
