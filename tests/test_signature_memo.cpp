// Regression tests for SignatureMemo admission under budget pressure. The
// original memo stopped admitting permanently once full: a diagnosis
// session whose early requests filled the budget could never memoize the
// faults its later (hotter) requests kept recomputing. The memo now runs
// second-chance (clock) eviction — these tests pin down admission after
// fill-up, survival of referenced entries, exact byte accounting, and
// bounded concurrent behavior (this file builds into the tsan-labelled
// binary).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "server/signature_memo.hpp"

namespace mdd::server {
namespace {

/// Identically-shaped signatures so every memo entry has the same cost —
/// the eviction arithmetic in the tests stays exact.
std::shared_ptr<const ErrorSignature> make_signature(std::size_t n_failing) {
  auto sig = std::make_shared<ErrorSignature>(64, 4);
  const std::vector<Word> mask(sig->n_po_words(), Word{1});
  for (std::size_t p = 0; p < n_failing; ++p)
    sig->append(static_cast<std::uint32_t>(p), mask);
  return sig;
}

Fault nth_fault(std::size_t n) {
  return Fault::stem_sa(static_cast<std::uint32_t>(n), (n & 1) != 0);
}

/// Budget that fits exactly `n` entries of `cost` bytes.
std::size_t budget_for(std::size_t n, std::size_t cost) { return n * cost; }

std::size_t one_entry_cost() {
  SignatureMemo probe(1 << 20);
  probe.store(nth_fault(0), make_signature(8));
  return probe.stats().approx_bytes;
}

TEST(SignatureMemo, AdmitsNewEntriesAfterFillingUp) {
  const std::size_t cost = one_entry_cost();
  ASSERT_GT(cost, 0u);
  SignatureMemo memo(budget_for(4, cost));

  // Fill the budget exactly, then keep storing: before the eviction fix
  // the memo silently declined everything from here on, so the "hot"
  // fault below would never be admitted.
  for (std::size_t i = 0; i < 8; ++i)
    memo.store(nth_fault(i), make_signature(8));

  const Fault hot = nth_fault(100);
  memo.store(hot, make_signature(8));
  EXPECT_NE(memo.lookup(hot), nullptr)
      << "a full memo must evict cold entries, not decline new ones";

  const SignatureMemoStats stats = memo.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_LE(stats.approx_bytes, budget_for(4, cost));
}

TEST(SignatureMemo, SecondChanceSparesRecentlyUsedEntries) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(4, cost));
  for (std::size_t i = 0; i < 4; ++i)
    memo.store(nth_fault(i), make_signature(8));

  // Reference entry 0; the clock hand must then clear its bit and pass
  // over it, evicting the first unreferenced entry (entry 1) instead.
  EXPECT_NE(memo.lookup(nth_fault(0)), nullptr);
  memo.store(nth_fault(4), make_signature(8));

  EXPECT_NE(memo.lookup(nth_fault(0)), nullptr);
  EXPECT_EQ(memo.lookup(nth_fault(1)), nullptr);
  EXPECT_NE(memo.lookup(nth_fault(4)), nullptr);
}

TEST(SignatureMemo, ByteAccountingIsExactAcrossEvictions) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(3, cost));
  for (std::size_t i = 0; i < 10; ++i) {
    memo.store(nth_fault(i), make_signature(8));
    const SignatureMemoStats stats = memo.stats();
    EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
    EXPECT_LE(stats.approx_bytes, budget_for(3, cost));
  }
  EXPECT_EQ(memo.stats().entries, 3u);
}

TEST(SignatureMemo, OversizedEntryIsDeclinedOutright) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(cost / 2);
  memo.store(nth_fault(0), make_signature(8));
  EXPECT_EQ(memo.lookup(nth_fault(0)), nullptr);
  EXPECT_EQ(memo.stats().entries, 0u);
  EXPECT_EQ(memo.stats().approx_bytes, 0u);
}

TEST(SignatureMemo, DuplicateStoreKeepsFirstEntryAndAccounting) {
  const std::size_t cost = one_entry_cost();
  SignatureMemo memo(budget_for(4, cost));
  const auto first = make_signature(8);
  memo.store(nth_fault(0), first);
  memo.store(nth_fault(0), make_signature(8));  // racing compute, same fault
  EXPECT_EQ(memo.lookup(nth_fault(0)).get(), first.get());
  EXPECT_EQ(memo.stats().entries, 1u);
  EXPECT_EQ(memo.stats().approx_bytes, cost);
}

TEST(SignatureMemo, ConcurrentChurnStaysWithinBudget) {
  const std::size_t cost = one_entry_cost();
  const std::size_t budget = budget_for(6, cost);
  SignatureMemo memo(budget);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&memo, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Fault f = nth_fault(static_cast<std::size_t>((t * 7 + i) % 32));
        if (auto sig = memo.lookup(f)) {
          // Entries are immutable once stored; a hit must stay readable.
          EXPECT_EQ(sig->n_failing_patterns(), 8u);
        } else {
          memo.store(f, make_signature(8));
        }
      }
    });
  for (std::thread& t : threads) t.join();

  const SignatureMemoStats stats = memo.stats();
  EXPECT_LE(stats.approx_bytes, budget);
  EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace mdd::server
