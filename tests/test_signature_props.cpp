// Property tests: ErrorSignature invariants on seeded randomized inputs.
//
// Each property runs over several fixed seeds; the seed is attached to
// every assertion via SCOPED_TRACE so a failure names the reproducing
// input exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <random>
#include <vector>

#include "fsim/fsim.hpp"

namespace mdd {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 0xBEEF, 0x5EED5EED, 987654321};

/// Random signature shape plus sorted/unique failing patterns and random
/// (possibly sparse) PO masks, built through the public append API.
struct RandomSignature {
  ErrorSignature sig;
  std::vector<std::uint32_t> patterns;
  std::vector<std::vector<Word>> masks;
};

RandomSignature make_random_signature(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t n_patterns = 1 + rng() % 300;
  const std::size_t n_outputs = 1 + rng() % 150;

  RandomSignature r{ErrorSignature(n_patterns, n_outputs), {}, {}};
  // Sorted unique pattern subset.
  for (std::uint32_t p = 0; p < n_patterns; ++p)
    if (rng() % 3 == 0) r.patterns.push_back(p);

  const std::size_t n_words = r.sig.n_po_words();
  for (std::uint32_t p : r.patterns) {
    std::vector<Word> mask(n_words, kAllZero);
    // 1..4 failing outputs per pattern.
    const std::size_t n_fail = 1 + rng() % 4;
    for (std::size_t k = 0; k < n_fail; ++k) {
      const std::size_t o = rng() % n_outputs;
      mask[o / 64] |= Word{1} << (o % 64);
    }
    r.sig.append(p, mask);
    r.masks.push_back(std::move(mask));
  }
  return r;
}

TEST(SignatureProps, DiffOfIdenticalResponsesIsEmpty) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const std::size_t n_patterns = 1 + rng() % 200;
    const std::size_t n_signals = 1 + rng() % 100;
    const PatternSet good = PatternSet::random(n_patterns, n_signals, seed);
    const ErrorSignature d = ErrorSignature::diff(good, good);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.n_failing_patterns(), 0u);
    EXPECT_EQ(d.n_error_bits(), 0u);
  }
}

TEST(SignatureProps, AppendPreservesSortedUniqueOrder) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomSignature r = make_random_signature(seed);
    const auto& fp = r.sig.failing_patterns();
    ASSERT_EQ(fp, r.patterns);
    EXPECT_TRUE(std::is_sorted(fp.begin(), fp.end()));
    EXPECT_EQ(std::adjacent_find(fp.begin(), fp.end()), fp.end());
    EXPECT_EQ(r.sig.n_failing_patterns(), r.patterns.size());
  }
}

TEST(SignatureProps, MaskOfPatternAgreesWithMaskAndFailingPatterns) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomSignature r = make_random_signature(seed);
    // Every failing pattern: mask_of_pattern == mask(i) == what was
    // appended.
    for (std::size_t i = 0; i < r.patterns.size(); ++i) {
      const auto by_index = r.sig.mask(i);
      const auto by_pattern = r.sig.mask_of_pattern(r.patterns[i]);
      ASSERT_EQ(by_index.size(), by_pattern.size());
      ASSERT_EQ(by_index.size(), r.masks[i].size());
      for (std::size_t w = 0; w < by_index.size(); ++w) {
        EXPECT_EQ(by_index[w], r.masks[i][w]) << "i=" << i << " w=" << w;
        EXPECT_EQ(by_pattern[w], r.masks[i][w]) << "i=" << i << " w=" << w;
      }
    }
    // Every non-failing pattern: empty span.
    std::vector<bool> failing(r.sig.n_patterns(), false);
    for (std::uint32_t p : r.patterns) failing[p] = true;
    for (std::uint32_t p = 0; p < r.sig.n_patterns(); ++p)
      if (!failing[p])
        EXPECT_TRUE(r.sig.mask_of_pattern(p).empty()) << "p=" << p;
  }
}

TEST(SignatureProps, ErrorBitCountEqualsMaskPopcount) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomSignature r = make_random_signature(seed);
    std::size_t expect = 0;
    for (const auto& mask : r.masks)
      for (Word w : mask) expect += static_cast<std::size_t>(std::popcount(w));
    EXPECT_EQ(r.sig.n_error_bits(), expect);
    // failing_outputs is the per-pattern expansion of the same bits.
    std::size_t from_outputs = 0;
    for (std::size_t i = 0; i < r.sig.n_failing_patterns(); ++i)
      from_outputs += r.sig.failing_outputs(i).size();
    EXPECT_EQ(from_outputs, expect);
  }
}

TEST(SignatureProps, DiffMatchesBitwiseRecomputation) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed ^ 0xD1FF);
    const std::size_t n_patterns = 1 + rng() % 150;
    const std::size_t n_signals = 1 + rng() % 90;
    const PatternSet good = PatternSet::random(n_patterns, n_signals, seed);
    PatternSet faulty = good;
    // Flip a handful of random bits.
    const std::size_t n_flips = 1 + rng() % 20;
    for (std::size_t k = 0; k < n_flips; ++k) {
      const std::size_t p = rng() % n_patterns;
      const std::size_t s = rng() % n_signals;
      faulty.set(p, s, !faulty.get(p, s));
    }
    const ErrorSignature d = ErrorSignature::diff(good, faulty);
    // Every disagreement bit and no other appears in the signature.
    std::size_t n_diff_bits = 0;
    for (std::size_t p = 0; p < n_patterns; ++p) {
      for (std::size_t s = 0; s < n_signals; ++s) {
        const bool differs = good.get(p, s) != faulty.get(p, s);
        n_diff_bits += differs;
        const auto mask = d.mask_of_pattern(static_cast<std::uint32_t>(p));
        const bool in_sig =
            !mask.empty() && ((mask[s / 64] >> (s % 64)) & 1u);
        EXPECT_EQ(in_sig, differs) << "p=" << p << " s=" << s;
      }
    }
    EXPECT_EQ(d.n_error_bits(), n_diff_bits);
  }
}

}  // namespace
}  // namespace mdd
