// Unit tests: candidate extraction.
#include <gtest/gtest.h>

#include <random>

#include "diag/candidates.hpp"
#include "diag/diagnosis.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

struct Case {
  Netlist netlist;
  PatternSet patterns;
  PatternSet good;

  explicit Case(const std::string& name, std::size_t n_patterns = 256)
      : netlist(make_named_circuit(name)),
        patterns(PatternSet::random(n_patterns, netlist.n_inputs(), 17)),
        good(simulate(netlist, patterns)) {}

  Datalog log(std::span<const Fault> defect) const {
    return datalog_from_defect(netlist, defect, patterns, good);
  }
};

/// Property: for random detectable stuck-at defects, the candidate pool
/// contains the injected fault (or an equivalent: same net, right value).
TEST(Candidates, InjectedStuckAtInPool) {
  const Case tc("g200");
  FaultSimulator fsim(tc.netlist, tc.patterns);
  std::mt19937_64 rng(23);
  std::size_t tested = 0;
  while (tested < 25) {
    const NetId net = rng() % tc.netlist.n_nets();
    const Fault f = Fault::stem_sa(net, rng() & 1);
    if (!fsim.detects(f)) continue;
    ++tested;
    const Datalog log = tc.log({&f, 1});
    const CandidatePool pool =
        extract_candidates(tc.netlist, tc.patterns, log);
    const bool found =
        std::find(pool.faults.begin(), pool.faults.end(), f) !=
        pool.faults.end();
    EXPECT_TRUE(found) << to_string(f, tc.netlist);
  }
}

TEST(Candidates, SupportIsDescending) {
  const Case tc("g200");
  const Fault f = Fault::stem_sa(tc.netlist.find_net("g_50"), false);
  const Datalog log = tc.log({&f, 1});
  const CandidatePool pool = extract_candidates(tc.netlist, tc.patterns, log);
  ASSERT_EQ(pool.faults.size(), pool.support.size());
  for (std::size_t i = 1; i < pool.support.size(); ++i)
    EXPECT_LE(pool.support[i], pool.support[i - 1]);
}

TEST(Candidates, BridgeVictimGetsAggressorCandidates) {
  const Case tc("g200");
  FaultSimulator fsim(tc.netlist, tc.patterns);
  std::mt19937_64 rng(29);
  for (int iter = 0; iter < 40; ++iter) {
    const NetId victim = rng() % tc.netlist.n_nets();
    const NetId aggressor = rng() % tc.netlist.n_nets();
    if (victim == aggressor) continue;
    if (is_feedback_pair(tc.netlist, victim, aggressor)) continue;
    const Fault f = Fault::bridge_dom(victim, aggressor);
    if (!fsim.detects(f)) continue;
    const Datalog log = tc.log({&f, 1});
    CandidateOptions opt;
    opt.bridge_partners = 64;  // generous pool for the test
    const CandidatePool pool =
        extract_candidates(tc.netlist, tc.patterns, log, opt);
    // Some dominant bridge on this victim must be present.
    bool victim_bridge = false;
    for (const Fault& c : pool.faults)
      if (c.kind == FaultKind::BridgeDom && c.net == victim)
        victim_bridge = true;
    EXPECT_TRUE(victim_bridge) << to_string(f, tc.netlist);
    return;  // one solid case is enough
  }
  GTEST_SKIP() << "no detectable bridge sampled";
}

TEST(Candidates, BridgesCanBeDisabled) {
  const Case tc("g200");
  const Fault f = Fault::stem_sa(tc.netlist.find_net("g_50"), false);
  const Datalog log = tc.log({&f, 1});
  CandidateOptions opt;
  opt.include_bridges = false;
  const CandidatePool pool =
      extract_candidates(tc.netlist, tc.patterns, log, opt);
  for (const Fault& c : pool.faults) EXPECT_TRUE(c.is_stuck_at());
}

TEST(Candidates, MaxCandidatesCap) {
  const Case tc("g200");
  const Fault f = Fault::stem_sa(tc.netlist.find_net("g_50"), false);
  const Datalog log = tc.log({&f, 1});
  CandidateOptions opt;
  opt.max_candidates = 10;
  const CandidatePool pool =
      extract_candidates(tc.netlist, tc.patterns, log, opt);
  EXPECT_LE(pool.faults.size(), 10u);
  EXPECT_FALSE(pool.faults.empty());
}

TEST(Candidates, EmptyDatalogYieldsEmptyPool) {
  const Case tc("c17", 32);
  Datalog log;
  log.observed = ErrorSignature(32, tc.netlist.n_outputs());
  log.n_patterns_applied = 32;
  const CandidatePool pool = extract_candidates(tc.netlist, tc.patterns, log);
  EXPECT_TRUE(pool.faults.empty());
}

}  // namespace
}  // namespace mdd
