// End-to-end tests of the diagnosis service: served results must be
// byte-identical to direct (CLI-path) diagnosis, repeat requests must hit
// the session cache and memos without changing a single byte, deadlines
// must cut work short with a timeout/partial answer, and a saturated job
// queue must answer `overloaded` instead of queueing without bound (this
// file builds into the tsan-labelled binary).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/version.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "server/result_json.hpp"
#include "server/service.hpp"
#include "workload/textio.hpp"

namespace mdd::server {
namespace {

/// One circuit + pattern set on disk plus a datalog (inline text) for a
/// planted two-fault defect — the ingredients of a diagnose request.
struct ServiceFixture {
  std::string netlist_path;
  std::string patterns_path;
  std::string datalog_text;

  static ServiceFixture make(const std::string& tag) {
    const Netlist netlist = make_named_circuit("g200");
    const PatternSet patterns =
        PatternSet::random(128, netlist.n_inputs(), 0x5EED);
    FaultSimulator fsim(netlist, patterns);
    const std::vector<Fault> defect{
        Fault::stem_sa(netlist.n_nets() / 3, false),
        Fault::stem_sa(netlist.n_nets() / 2, true)};
    const Datalog log = datalog_from_defect(netlist, defect, patterns,
                                            fsim.good_response());
    EXPECT_TRUE(log.has_failures());

    ServiceFixture f;
    f.netlist_path = ::testing::TempDir() + "svc_" + tag + ".bench";
    f.patterns_path = ::testing::TempDir() + "svc_" + tag + ".patterns";
    std::ofstream(f.netlist_path) << write_bench_string(netlist);
    write_patterns_file(f.patterns_path, patterns);
    std::ostringstream dl;
    write_datalog(dl, log, netlist);
    f.datalog_text = dl.str();
    return f;
  }

  Json diagnose_request(const std::string& method) const {
    Json r;
    r.set("op", "diagnose");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    r.set("datalog", datalog_text);
    r.set("method", method);
    return r;
  }

  /// What the CLI path computes for the same inputs: parse the same files,
  /// build a plain context (no session cache, memos, or shared baseline),
  /// run the diagnoser, serialize through the shared schema.
  std::string direct_reports_json(const std::string& method) const {
    const Netlist netlist = parse_bench_file(netlist_path).netlist;
    const PatternSet patterns = read_patterns_file(patterns_path);
    std::istringstream in(datalog_text);
    const Datalog log = read_datalog(in, netlist);
    DiagnosisContext ctx(netlist, patterns, log);
    std::vector<DiagnosisReport> reports;
    if (method == "multiplet") reports.push_back(diagnose_multiplet(ctx));
    if (method == "slat") reports.push_back(diagnose_slat(ctx));
    if (method == "single") reports.push_back(diagnose_single_fault(ctx));
    return reports_to_json(reports, netlist).dump();
  }
};

std::string reports_dump(const Json& response) {
  const Json* reports = response.find("reports");
  EXPECT_NE(reports, nullptr);
  return reports == nullptr ? std::string() : reports->dump();
}

TEST(ServiceDifferential, ServedReportsMatchDirectDiagnosisByteForByte) {
  const ServiceFixture f = ServiceFixture::make("diff");
  DiagnosisService service;
  for (const std::string method : {"single", "multiplet", "slat"}) {
    const Json response = service.handle(f.diagnose_request(method));
    EXPECT_EQ(response.get_string("status"), "ok") << method;
    EXPECT_EQ(reports_dump(response), f.direct_reports_json(method))
        << method;
  }
}

TEST(ServiceDifferential, RepeatRequestHitsCacheAndStaysIdentical) {
  const ServiceFixture f = ServiceFixture::make("repeat");
  DiagnosisService service;
  const Json request = f.diagnose_request("all");

  // First request loads the session; repeats are served from the session
  // cache with warm signature/trace memos — and must not change a byte.
  const Json first = service.handle(request);
  EXPECT_EQ(first.get_string("status"), "ok");
  EXPECT_EQ(first.get_string("cache"), "miss");
  for (int i = 0; i < 2; ++i) {
    const Json again = service.handle(request);
    EXPECT_EQ(again.get_string("status"), "ok");
    EXPECT_EQ(again.get_string("cache"), "hit");
    EXPECT_EQ(reports_dump(again), reports_dump(first));
  }

  const auto& session = *service.cache().get(f.netlist_path, f.patterns_path);
  EXPECT_GT(session.memo->stats().hits, 0u);
  EXPECT_GT(session.traces->stats().hits, 0u);
}

TEST(ServiceDeadline, ExpiredDeadlineYieldsTimeoutWithPartialResult) {
  const ServiceFixture f = ServiceFixture::make("deadline");
  DiagnosisService service;
  Json request = f.diagnose_request("single");
  // Sub-millisecond budget: expired before the first cancellation
  // checkpoint, so the diagnoser winds down immediately.
  request.set("deadline_ms", 0.001);
  const Json response = service.handle(request);
  EXPECT_EQ(response.get_string("status"), "timeout");
  EXPECT_TRUE(response.get_bool("partial"));
  // A partial report is still delivered (and still schema-valid).
  EXPECT_NE(response.find("reports"), nullptr);
}

TEST(ServiceDeadline, SleepHonorsDeadline) {
  DiagnosisService service;
  Json request;
  request.set("op", "sleep");
  request.set("ms", 10000.0);
  request.set("deadline_ms", 30.0);
  const auto t0 = std::chrono::steady_clock::now();
  const Json response = service.handle(request);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(response.get_string("status"), "timeout");
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(ServiceQueue, SaturatedQueueAnswersOverloaded) {
  ServiceOptions options;
  options.n_workers = 1;
  options.queue_depth = 1;
  DiagnosisService service(options);

  // One worker busy on a long sleep + a depth-1 queue: a burst of
  // submissions must get explicit `overloaded` rejects, and every submit
  // must be answered exactly once.
  constexpr int kBurst = 8;
  std::mutex mutex;
  std::condition_variable all_done;
  std::vector<std::string> statuses;
  for (int i = 0; i < kBurst; ++i) {
    Json request;
    request.set("op", "sleep");
    request.set("ms", 300.0);
    request.set("id", i);
    service.submit(std::move(request), [&](Json response) {
      std::lock_guard<std::mutex> lock(mutex);
      statuses.push_back(response.get_string("status"));
      all_done.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return statuses.size() == kBurst; });
  }
  service.shutdown();

  int n_ok = 0, n_overloaded = 0;
  for (const std::string& s : statuses) {
    if (s == "ok") ++n_ok;
    if (s == "overloaded") ++n_overloaded;
  }
  EXPECT_EQ(n_ok + n_overloaded, kBurst);
  EXPECT_GE(n_ok, 1);
  EXPECT_GE(n_overloaded, 1);

  const Json stats = service.stats_json();
  const Json* queue = stats.find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->get_number("rejected"), 1.0);
}

TEST(ServiceQueue, DeadlineSpentInQueueAnswersTimeoutWithoutRunning) {
  ServiceOptions options;
  options.n_workers = 1;
  options.queue_depth = 8;
  DiagnosisService service(options);

  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<Json> responses;
  auto collect = [&](Json response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(std::move(response));
    done_cv.notify_one();
  };

  // First job occupies the only worker well past the second job's
  // deadline; the second must be answered `timeout` from the queue,
  // without occupying the worker.
  Json blocker;
  blocker.set("op", "sleep");
  blocker.set("ms", 400.0);
  blocker.set("id", "blocker");
  service.submit(std::move(blocker), collect);

  Json doomed;
  doomed.set("op", "sleep");
  doomed.set("ms", 0.0);
  doomed.set("id", "doomed");
  doomed.set("deadline_ms", 50.0);
  service.submit(std::move(doomed), collect);

  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return responses.size() == 2; });
  }
  service.shutdown();

  for (const Json& r : responses) {
    if (r.get_string("id", "x") == "doomed") {
      EXPECT_EQ(r.get_string("status"), "timeout");
      EXPECT_EQ(r.get_string("where"), "queue");
    } else {
      EXPECT_EQ(r.get_string("status"), "ok");
    }
  }
}

TEST(ServiceProtocol, MalformedRequestsAnswerErrorNotCrash) {
  const ServiceFixture f = ServiceFixture::make("errors");
  DiagnosisService service;

  {  // Unknown op.
    Json r;
    r.set("op", "frobnicate");
    EXPECT_EQ(service.handle(r).get_string("status"), "error");
  }
  {  // Not an object at all.
    EXPECT_EQ(service.handle(Json(3.0)).get_string("status"), "error");
  }
  {  // Missing required paths.
    Json r;
    r.set("op", "diagnose");
    EXPECT_EQ(service.handle(r).get_string("status"), "error");
  }
  {  // Both inline datalog and datalog_file.
    Json r = f.diagnose_request("single");
    r.set("datalog_file", "/nonexistent");
    EXPECT_EQ(service.handle(r).get_string("status"), "error");
  }
  {  // Unknown method.
    Json r = f.diagnose_request("psychic");
    EXPECT_EQ(service.handle(r).get_string("status"), "error");
  }
  {  // Unreadable netlist path — load failure surfaces as error.
    Json r = f.diagnose_request("single");
    r.set("netlist", ::testing::TempDir() + "svc_nosuch.bench");
    const Json response = service.handle(r);
    EXPECT_EQ(response.get_string("status"), "error");
    EXPECT_FALSE(response.get_string("error").empty());
  }
}

TEST(ServiceDeadline, FractionalDeadlineMeansTheSameOnEveryPath) {
  // Regression: handle() used to truncate deadline_ms with
  // static_cast<long>, so 0.5 became 0 = "no deadline" and a long sleep
  // ran to completion — while the same request through submit() (which
  // converted at microsecond resolution) timed out. Both paths now share
  // deadline_budget().
  DiagnosisService service;
  Json request;
  request.set("op", "sleep");
  request.set("ms", 2000.0);
  request.set("deadline_ms", 0.5);

  const auto t0 = std::chrono::steady_clock::now();
  const Json direct = service.handle(request);
  EXPECT_EQ(direct.get_string("status"), "timeout")
      << "handle() must honor a sub-millisecond deadline";
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(1));

  std::mutex mutex;
  std::condition_variable done_cv;
  std::optional<Json> submitted;
  service.submit(request, [&](Json response) {
    std::lock_guard<std::mutex> lock(mutex);
    submitted = std::move(response);
    done_cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return submitted.has_value(); });
  }
  EXPECT_EQ(submitted->get_string("status"), direct.get_string("status"));
}

TEST(ServiceDeadline, InvalidDeadlineIsRejectedNotIgnored) {
  DiagnosisService service;
  for (const Json bad :
       {Json(-1.0), Json(std::nan("")),
        Json(std::numeric_limits<double>::infinity()), Json("soon")}) {
    Json request;
    request.set("op", "ping");
    request.set("deadline_ms", bad);
    EXPECT_EQ(service.handle(request).get_string("status"), "error")
        << bad.dump();

    std::mutex mutex;
    std::condition_variable done_cv;
    std::optional<Json> submitted;
    service.submit(request, [&](Json response) {
      std::lock_guard<std::mutex> lock(mutex);
      submitted = std::move(response);
      done_cv.notify_one();
    });
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return submitted.has_value(); });
    }
    EXPECT_EQ(submitted->get_string("status"), "error") << bad.dump();
  }
}

TEST(ServiceTrace, OptInTraceReportsStagesCoveringTheRequest) {
  const ServiceFixture f = ServiceFixture::make("trace");
  DiagnosisService service;
  Json request = f.diagnose_request("single");

  // Without the opt-in field no trace is attached.
  EXPECT_EQ(service.handle(request).find("trace"), nullptr);

  request.set("trace", true);
  const Json response = service.handle(request);
  ASSERT_EQ(response.get_string("status"), "ok");
  const Json* trace = response.find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());

  double stage_sum = 0.0;
  bool saw_session = false, saw_rank = false, saw_serialize = false;
  for (const Json& span : trace->as_array()) {
    const std::string stage = span.get_string("stage");
    if (span.get_number("depth", 0.0) == 0.0)
      stage_sum += span.get_number("ms");
    saw_session |= stage == "session";
    saw_rank |= stage == "rank:single";
    saw_serialize |= stage == "serialize";
  }
  EXPECT_TRUE(saw_session);
  EXPECT_TRUE(saw_rank);
  EXPECT_TRUE(saw_serialize);

  // The stages must account for (most of) the reported end-to-end time:
  // the acceptance bound is stage-sum within 20% of total.
  const Json* timings = response.find("timings_ms");
  ASSERT_NE(timings, nullptr);
  const double total = timings->get_number("total");
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_LE(stage_sum, total * 1.001 + 0.1);
  EXPECT_GE(stage_sum, total * 0.8 - 0.1)
      << "per-stage spans cover too little of the request";
}

TEST(ServiceMetrics, MetricsOpReturnsRegistrySnapshot) {
  const ServiceFixture f = ServiceFixture::make("metrics");
  DiagnosisService service;
  EXPECT_EQ(service.handle(f.diagnose_request("single")).get_string("status"),
            "ok");

  Json request;
  request.set("op", "metrics");
  const Json response = service.handle(request);
  EXPECT_EQ(response.get_string("status"), "ok");
  const Json* metrics = response.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Json* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  // The diagnose above must have moved the core serving counters.
  EXPECT_GE(counters->get_number("server.requests.ok"), 1.0);
  EXPECT_GE(counters->get_number("sessions.misses"), 1.0);
  EXPECT_GE(counters->get_number("diag.contexts"), 1.0);
  const Json* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* request_ms = histograms->find("server.request_ms");
  ASSERT_NE(request_ms, nullptr);
  EXPECT_GE(request_ms->get_number("count"), 1.0);
}

TEST(ServiceSlowLog, SlowRequestsEmitOneStructuredLine) {
  ServiceOptions options;
  std::ostringstream slow_log;
  options.slow_ms = 1.0;
  options.slow_log = &slow_log;
  DiagnosisService service(options);

  Json fast;
  fast.set("op", "ping");
  EXPECT_EQ(service.handle(fast).get_string("status"), "ok");
  EXPECT_TRUE(slow_log.str().empty());

  Json slow;
  slow.set("op", "sleep");
  slow.set("ms", 20.0);
  slow.set("id", "slowpoke");
  EXPECT_EQ(service.handle(slow).get_string("status"), "ok");
  ASSERT_FALSE(slow_log.str().empty());

  const Json record = Json::parse(
      slow_log.str().substr(0, slow_log.str().find('\n')));
  EXPECT_EQ(record.get_string("event"), "slow_request");
  EXPECT_EQ(record.get_string("id"), "slowpoke");
  EXPECT_EQ(record.get_string("op"), "sleep");
  EXPECT_GE(record.get_number("total_ms"), 1.0);
  EXPECT_NE(record.find("stages_ms"), nullptr);
}

TEST(ServiceProtocol, PingEchoesIdAndVersion) {
  DiagnosisService service;
  Json request;
  request.set("op", "ping");
  request.set("id", 42);
  const Json response = service.handle(request);
  EXPECT_EQ(response.get_string("status"), "ok");
  EXPECT_EQ(response.get_string("version"), std::string(kVersion));
  const Json* id = response.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->as_number(), 42.0);
}

}  // namespace
}  // namespace mdd::server
