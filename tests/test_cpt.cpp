// Unit tests: critical path tracing.
#include <gtest/gtest.h>

#include <random>

#include "fault/inject.hpp"
#include "fsim/cpt.hpp"
#include "netlist/generator.hpp"
#include "sim/sim2.hpp"

namespace mdd {
namespace {

/// Brute-force criticality: does forcing net n to its complement flip PO
/// `po` under this pattern?
bool brute_critical(const Netlist& nl, const PatternSet& stimuli,
                    std::size_t p, NetId n, std::uint32_t po) {
  EventSim sim(nl);
  sim.apply(stimuli, p);
  const auto observed = sim.flip_observed_outputs(n);
  return std::binary_search(observed.begin(), observed.end(), po);
}

/// Soundness: every net CPT reports critical really flips the PO.
TEST(CPT, SoundnessOnRandomCircuits) {
  for (std::uint64_t seed : {61ull, 62ull}) {
    RandomCircuitConfig cfg;
    cfg.n_inputs = 10;
    cfg.n_gates = 100;
    cfg.n_outputs = 6;
    cfg.seed = seed;
    const Netlist nl = make_random_circuit(cfg);
    const PatternSet stimuli = PatternSet::random(16, nl.n_inputs(), seed);
    EventSim sim(nl);
    CriticalPathTracer cpt(nl);
    for (std::size_t p = 0; p < stimuli.n_patterns(); ++p) {
      sim.apply(stimuli, p);
      for (std::uint32_t po = 0; po < nl.n_outputs(); ++po) {
        for (NetId n : cpt.critical_nets(sim, po)) {
          ASSERT_TRUE(brute_critical(nl, stimuli, p, n, po))
              << "seed " << seed << " p " << p << " po " << po << " net "
              << nl.net_name(n);
        }
      }
    }
  }
}

/// Completeness on fanout-free circuits: CPT's per-gate rules are exact
/// when there is no reconvergence, so the critical set must equal the
/// brute-force set.
TEST(CPT, CompleteOnFanoutFreeTree) {
  const Netlist nl = make_parity_tree(32);
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 9);
  EventSim sim(nl);
  CriticalPathTracer cpt(nl);
  for (std::size_t p = 0; p < 8; ++p) {
    sim.apply(stimuli, p);
    const auto critical = cpt.critical_nets(sim, 0);
    // XOR tree: every net is critical on every pattern.
    EXPECT_EQ(critical.size(), nl.n_nets());
  }
}

TEST(CPT, CompleteOnAndChain) {
  // z = a & b & c & d as a chain; criticality depends on values.
  Netlist nl("chain");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId d = nl.add_input("d");
  const NetId g1 = nl.add_gate(GateKind::And, {a, b}, "g1");
  const NetId g2 = nl.add_gate(GateKind::And, {g1, c}, "g2");
  const NetId g3 = nl.add_gate(GateKind::And, {g2, d}, "g3");
  nl.mark_output(g3);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(4);
  EventSim sim(nl);
  CriticalPathTracer cpt(nl);
  for (std::size_t p = 0; p < 16; ++p) {
    sim.apply(stimuli, p);
    const auto critical = cpt.critical_nets(sim, 0);
    for (NetId n = 0; n < nl.n_nets(); ++n) {
      const bool expected = brute_critical(nl, stimuli, p, n, 0);
      const bool got =
          std::binary_search(critical.begin(), critical.end(), n);
      ASSERT_EQ(got, expected) << "p=" << p << " net " << nl.net_name(n);
    }
  }
}

/// On reconvergent circuits classical CPT may under-approximate at gates
/// with multiple controlling inputs, but must never over-approximate; and
/// it must remain complete for nets whose criticality flows through
/// single-path sensitization. Verified on c17 exhaustively against brute
/// force for the subset relationship.
TEST(CPT, C17SubsetOfBruteForce) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  EventSim sim(nl);
  CriticalPathTracer cpt(nl);
  std::size_t cpt_total = 0, brute_total = 0;
  for (std::size_t p = 0; p < 32; ++p) {
    sim.apply(stimuli, p);
    for (std::uint32_t po = 0; po < 2; ++po) {
      const auto critical = cpt.critical_nets(sim, po);
      cpt_total += critical.size();
      for (NetId n = 0; n < nl.n_nets(); ++n) {
        const bool brute = brute_critical(nl, stimuli, p, n, po);
        brute_total += brute;
        if (!brute) {
          ASSERT_FALSE(
              std::binary_search(critical.begin(), critical.end(), n))
              << "overapprox p=" << p << " po=" << po << " net "
              << nl.net_name(n);
        }
      }
    }
  }
  // CPT finds the large majority of critical nets on c17.
  EXPECT_GE(cpt_total * 10, brute_total * 9);
}

/// Property: every fault CPT proposes, when injected, produces an error at
/// exactly that (pattern, PO) — the defining property of a candidate.
TEST(CPT, CriticalFaultsExplainTheFailure) {
  RandomCircuitConfig cfg;
  cfg.n_inputs = 10;
  cfg.n_gates = 120;
  cfg.n_outputs = 6;
  cfg.seed = 77;
  const Netlist nl = make_random_circuit(cfg);
  const PatternSet stimuli = PatternSet::random(6, nl.n_inputs(), 1);
  const PatternSet good = simulate(nl, stimuli);
  EventSim sim(nl);
  CriticalPathTracer cpt(nl);
  FaultyMachine fm(nl);
  for (std::size_t p = 0; p < stimuli.n_patterns(); ++p) {
    sim.apply(stimuli, p);
    for (std::uint32_t po = 0; po < nl.n_outputs(); ++po) {
      for (const Fault& f : cpt.critical_faults(sim, po)) {
        fm.set_faults({&f, 1});
        fm.run(stimuli, p / 64);
        const Word diff =
            fm.value(nl.outputs()[po]) ^
            (good.get(p, po) ? kAllOne : kAllZero);
        ASSERT_TRUE((diff >> (p % 64)) & 1u)
            << to_string(f, nl) << " does not flip po " << po
            << " on pattern " << p;
      }
    }
  }
}

TEST(CPT, TraceIncludesTheOutputItself) {
  const Netlist nl = make_c17();
  PatternSet stimuli(1, 5);
  EventSim sim(nl);
  sim.apply(stimuli, 0);
  CriticalPathTracer cpt(nl);
  const auto critical = cpt.critical_nets(sim, 0);
  EXPECT_TRUE(std::binary_search(critical.begin(), critical.end(),
                                 nl.outputs()[0]));
}

}  // namespace
}  // namespace mdd
