// CompositeMemo unit tests: admission after fill-up, second-chance
// eviction, exact byte accounting, oversized/duplicate handling, key
// canonicalization, and bounded concurrent behavior (this file builds
// into the tsan-labelled binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "diag/composite_memo.hpp"

namespace mdd {
namespace {

/// Identically-shaped signatures so every memo entry has the same cost —
/// the eviction arithmetic in the tests stays exact.
std::shared_ptr<const ErrorSignature> make_signature(std::size_t n_failing) {
  auto sig = std::make_shared<ErrorSignature>(64, 4);
  const std::vector<Word> mask(sig->n_po_words(), Word{1});
  for (std::size_t p = 0; p < n_failing; ++p)
    sig->append(static_cast<std::uint32_t>(p), mask);
  return sig;
}

/// Same-size multiplets so CompositeKey costs are uniform too.
CompositeKey nth_key(std::size_t n) {
  const Fault members[2] = {
      Fault::stem_sa(static_cast<std::uint32_t>(n), (n & 1) != 0),
      Fault::stem_sa(static_cast<std::uint32_t>(n + 1000), false)};
  return CompositeKey(members);
}

std::size_t budget_for(std::size_t n, std::size_t cost) { return n * cost; }

std::size_t one_entry_cost() {
  CompositeMemo probe(1 << 20);
  probe.store(nth_key(0), make_signature(8));
  return probe.stats().approx_bytes;
}

TEST(CompositeMemo, KeyIsOrderIndependent) {
  const Fault a = Fault::stem_sa(3, true);
  const Fault b = Fault::stem_sa(9, false);
  const Fault ab[2] = {a, b};
  const Fault ba[2] = {b, a};
  EXPECT_EQ(CompositeKey(ab), CompositeKey(ba));
  EXPECT_EQ(CompositeKeyHash{}(CompositeKey(ab)),
            CompositeKeyHash{}(CompositeKey(ba)));

  CompositeMemo memo(1 << 20);
  const auto sig = make_signature(4);
  memo.store(CompositeKey(ab), sig);
  EXPECT_EQ(memo.lookup(CompositeKey(ba)).get(), sig.get());
}

TEST(CompositeMemo, WindowLengthSeparatesKeys) {
  // The same member set propagated over a truncated window is a different
  // composite — sharing one entry would serve a full-window signature to
  // an ATE-truncated context.
  const Fault a = Fault::stem_sa(3, true);
  const Fault b = Fault::stem_sa(9, false);
  const Fault ab[2] = {a, b};
  EXPECT_NE(CompositeKey(ab, 64), CompositeKey(ab, 32));

  CompositeMemo memo(1 << 20);
  const auto full = make_signature(4);
  const auto truncated = make_signature(2);
  memo.store(CompositeKey(ab, 64), full);
  memo.store(CompositeKey(ab, 32), truncated);
  EXPECT_EQ(memo.lookup(CompositeKey(ab, 64)).get(), full.get());
  EXPECT_EQ(memo.lookup(CompositeKey(ab, 32)).get(), truncated.get());
}

TEST(CompositeMemo, AdmitsNewEntriesAfterFillingUp) {
  const std::size_t cost = one_entry_cost();
  ASSERT_GT(cost, 0u);
  CompositeMemo memo(budget_for(4, cost));

  for (std::size_t i = 0; i < 8; ++i)
    memo.store(nth_key(i), make_signature(8));

  const CompositeKey hot = nth_key(100);
  memo.store(hot, make_signature(8));
  EXPECT_NE(memo.lookup(hot), nullptr)
      << "a full memo must evict cold entries, not decline new ones";

  const CompositeMemoStats stats = memo.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_LE(stats.approx_bytes, budget_for(4, cost));
}

TEST(CompositeMemo, SecondChanceSparesRecentlyUsedEntries) {
  const std::size_t cost = one_entry_cost();
  CompositeMemo memo(budget_for(4, cost));
  for (std::size_t i = 0; i < 4; ++i)
    memo.store(nth_key(i), make_signature(8));

  // Reference entry 0; the clock hand must then clear its bit and pass
  // over it, evicting the first unreferenced entry (entry 1) instead.
  EXPECT_NE(memo.lookup(nth_key(0)), nullptr);
  memo.store(nth_key(4), make_signature(8));

  EXPECT_NE(memo.lookup(nth_key(0)), nullptr);
  EXPECT_EQ(memo.lookup(nth_key(1)), nullptr);
  EXPECT_NE(memo.lookup(nth_key(4)), nullptr);
}

TEST(CompositeMemo, ByteAccountingIsExactAcrossEvictions) {
  const std::size_t cost = one_entry_cost();
  CompositeMemo memo(budget_for(3, cost));
  for (std::size_t i = 0; i < 10; ++i) {
    memo.store(nth_key(i), make_signature(8));
    const CompositeMemoStats stats = memo.stats();
    EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
    EXPECT_LE(stats.approx_bytes, budget_for(3, cost));
  }
  EXPECT_EQ(memo.stats().entries, 3u);
}

TEST(CompositeMemo, OversizedEntryIsDeclinedOutright) {
  const std::size_t cost = one_entry_cost();
  CompositeMemo memo(cost / 2);
  memo.store(nth_key(0), make_signature(8));
  EXPECT_EQ(memo.lookup(nth_key(0)), nullptr);
  EXPECT_EQ(memo.stats().entries, 0u);
  EXPECT_EQ(memo.stats().approx_bytes, 0u);
}

TEST(CompositeMemo, DuplicateStoreKeepsFirstEntryAndAccounting) {
  const std::size_t cost = one_entry_cost();
  CompositeMemo memo(budget_for(4, cost));
  const auto first = make_signature(8);
  memo.store(nth_key(0), first);
  memo.store(nth_key(0), make_signature(8));  // racing compute, same set
  EXPECT_EQ(memo.lookup(nth_key(0)).get(), first.get());
  EXPECT_EQ(memo.stats().entries, 1u);
  EXPECT_EQ(memo.stats().approx_bytes, cost);
}

TEST(CompositeMemo, ConcurrentChurnStaysWithinBudget) {
  const std::size_t cost = one_entry_cost();
  const std::size_t budget = budget_for(6, cost);
  CompositeMemo memo(budget);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&memo, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const CompositeKey k = nth_key(static_cast<std::size_t>(
            (t * 7 + i) % 32));
        if (auto sig = memo.lookup(k)) {
          // Entries are immutable once stored; a hit must stay readable.
          EXPECT_EQ(sig->n_failing_patterns(), 8u);
        } else {
          memo.store(k, make_signature(8));
        }
      }
    });
  for (std::thread& t : threads) t.join();

  const CompositeMemoStats stats = memo.stats();
  EXPECT_LE(stats.approx_bytes, budget);
  EXPECT_EQ(stats.approx_bytes, stats.entries * cost);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace mdd
